#include "mem/cache.hh"

#include <bit>

namespace ccnuma
{

const char *
lineStateName(LineState s)
{
    switch (s) {
      case LineState::Invalid: return "I";
      case LineState::Shared: return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified: return "M";
    }
    return "?";
}

SetAssocCache::SetAssocCache(const std::string &name,
                             std::uint64_t size_bytes, unsigned assoc,
                             unsigned line_bytes)
    : name_(name), lineBytes_(line_bytes), assoc_(assoc),
      statGroup_(name)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        fatal("cache %s: line size %u not a power of two",
              name.c_str(), line_bytes);
    if (assoc == 0)
        fatal("cache %s: associativity must be positive", name.c_str());
    std::uint64_t num_lines = size_bytes / line_bytes;
    if (num_lines == 0 || num_lines % assoc != 0)
        fatal("cache %s: %llu lines not divisible into %u ways",
              name.c_str(), (unsigned long long)num_lines, assoc);
    numSets_ = static_cast<unsigned>(num_lines / assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("cache %s: set count %u not a power of two",
              name.c_str(), numSets_);
    lineShift_ = std::countr_zero(static_cast<unsigned>(lineBytes_));
    lines_.resize(num_lines);

    statGroup_.add(&statEvictions);
    statGroup_.add(&statDirtyEvictions);
    statGroup_.add(&statInvalidations);
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

CacheLine *
SetAssocCache::findLine(Addr addr)
{
    // Invalid lines carry kNoLineTag, so tag equality alone decides a
    // hit; the way loop is branch-per-compare over one contiguous set.
    Addr la = lineAlign(addr);
    CacheLine *line = lines_.data() + setIndex(addr) * assoc_;
    CacheLine *end = line + assoc_;
    for (; line != end; ++line) {
        if (line->lineAddr == la)
            return line;
    }
    return nullptr;
}

const CacheLine *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

CacheLine *
SetAssocCache::allocate(Addr addr, LineState st, Victim *victim)
{
    Addr la = lineAlign(addr);
    ccnuma_assert(findLine(addr) == nullptr);
    std::size_t base = setIndex(addr) * assoc_;
    CacheLine *target = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (!lineValid(line.state)) {
            target = &line;
            break;
        }
        if (!target || line.lastUse < target->lastUse)
            target = &line;
    }
    if (victim) {
        victim->valid = lineValid(target->state);
        victim->lineAddr = target->lineAddr;
        victim->state = target->state;
        victim->version = target->version;
    }
    if (lineValid(target->state)) {
        ++statEvictions;
        if (target->state == LineState::Modified)
            ++statDirtyEvictions;
    }
    target->lineAddr = la;
    target->state = st;
    target->version = 0;
    touch(target);
    return target;
}

LineState
SetAssocCache::invalidate(Addr addr)
{
    CacheLine *line = findLine(addr);
    if (!line)
        return LineState::Invalid;
    LineState prior = line->state;
    line->state = LineState::Invalid;
    line->lineAddr = kNoLineTag;
    ++statInvalidations;
    return prior;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &line : lines_) {
        line.state = LineState::Invalid;
        line.lineAddr = kNoLineTag;
    }
}

std::size_t
SetAssocCache::numValid() const
{
    std::size_t n = 0;
    for (const auto &line : lines_) {
        if (lineValid(line.state))
            ++n;
    }
    return n;
}

} // namespace ccnuma
