#include "mem/cache.hh"

#include <bit>

namespace ccnuma
{

const char *
lineStateName(LineState s)
{
    switch (s) {
      case LineState::Invalid: return "I";
      case LineState::Shared: return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified: return "M";
    }
    return "?";
}

SetAssocCache::SetAssocCache(const std::string &name,
                             std::uint64_t size_bytes, unsigned assoc,
                             unsigned line_bytes)
    : name_(name), lineBytes_(line_bytes), assoc_(assoc),
      statGroup_(name)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        fatal("cache %s: line size %u not a power of two",
              name.c_str(), line_bytes);
    if (assoc == 0)
        fatal("cache %s: associativity must be positive", name.c_str());
    std::uint64_t num_lines = size_bytes / line_bytes;
    if (num_lines == 0 || num_lines % assoc != 0)
        fatal("cache %s: %llu lines not divisible into %u ways",
              name.c_str(), (unsigned long long)num_lines, assoc);
    numSets_ = static_cast<unsigned>(num_lines / assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("cache %s: set count %u not a power of two",
              name.c_str(), numSets_);
    lineShift_ = std::countr_zero(static_cast<unsigned>(lineBytes_));
    lines_.resize(num_lines);

    statGroup_.add(&statEvictions);
    statGroup_.add(&statDirtyEvictions);
    statGroup_.add(&statInvalidations);
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

CacheLine *
SetAssocCache::findLine(Addr addr)
{
    // Resolve before the tag compare: a corrupted tag must never
    // produce a false hit (or mask a true one).
    resolvePending();
    // Invalid lines carry kNoLineTag, so tag equality alone decides a
    // hit; the way loop is branch-per-compare over one contiguous set.
    Addr la = lineAlign(addr);
    CacheLine *line = lines_.data() + setIndex(addr) * assoc_;
    CacheLine *end = line + assoc_;
    for (; line != end; ++line) {
        if (line->lineAddr == la) {
            // Callers mutate the returned line in place; journal its
            // pre-image so speculation can roll the mutation back.
            jrec(line);
            return line;
        }
    }
    return nullptr;
}

const CacheLine *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

CacheLine *
SetAssocCache::allocate(Addr addr, LineState st, Victim *victim)
{
    resolvePending();
    Addr la = lineAlign(addr);
    ccnuma_assert(findLine(addr) == nullptr);
    std::size_t base = setIndex(addr) * assoc_;
    CacheLine *target = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (!lineValid(line.state)) {
            target = &line;
            break;
        }
        if (!target || line.lastUse < target->lastUse)
            target = &line;
    }
    if (victim) {
        victim->valid = lineValid(target->state);
        victim->lineAddr = target->lineAddr;
        victim->state = target->state;
        victim->version = target->version;
    }
    if (lineValid(target->state)) {
        ++statEvictions;
        if (target->state == LineState::Modified)
            ++statDirtyEvictions;
    }
    jrec(target);
    target->lineAddr = la;
    target->state = st;
    target->version = 0;
    touch(target);
    return target;
}

LineState
SetAssocCache::invalidate(Addr addr)
{
    CacheLine *line = findLine(addr);
    if (!line)
        return LineState::Invalid;
    LineState prior = line->state;
    line->state = LineState::Invalid;
    line->lineAddr = kNoLineTag;
    ++statInvalidations;
    return prior;
}

void
SetAssocCache::invalidateAll()
{
    // Correct first, then drop: pending repairs of lines about to be
    // discarded still count as corrected, keeping the ledger closed.
    resolvePending();
    for (auto &line : lines_) {
        jrec(&line);
        line.state = LineState::Invalid;
        line.lineAddr = kNoLineTag;
    }
}

std::size_t
SetAssocCache::numValid() const
{
    resolvePending();
    std::size_t n = 0;
    for (const auto &line : lines_) {
        if (lineValid(line.state))
            ++n;
    }
    return n;
}

std::uint64_t
SetAssocCache::packWord(const CacheLine &l, unsigned w)
{
    switch (w) {
      case 0: return l.lineAddr;
      case 1: return l.version;
      default: return static_cast<std::uint64_t>(l.state);
    }
}

void
SetAssocCache::unpackWord(CacheLine &l, unsigned w, std::uint64_t v)
{
    switch (w) {
      case 0: l.lineAddr = v; break;
      case 1: l.version = v; break;
      default: l.state = static_cast<LineState>(v & 0xff); break;
    }
}

Addr
SetAssocCache::injectCeFlip(Random &rng)
{
    resolvePending();
    std::size_t valid = numValid();
    if (valid == 0)
        return kNoLineTag;
    std::size_t pick = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(valid)));
    std::size_t idx = lines_.size();
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (!lineValid(lines_[i].state))
            continue;
        if (pick-- == 0) {
            idx = i;
            break;
        }
    }
    ccnuma_assert(idx < lines_.size());
    CacheLine &l = lines_[idx];
    Addr victim_addr = l.lineAddr;
    unsigned word = static_cast<unsigned>(rng.below(3));
    std::uint64_t data = packWord(l, word);
    PendingCe ce;
    ce.lineIdx = idx;
    ce.word = word;
    ce.shadow = data;
    std::uint8_t check = ecc::encode(data);
    unsigned k = static_cast<unsigned>(rng.below(ecc::codewordBits));
    ecc::flipBit(data, check, k);
    ce.check = check;
    ce.corrupted = data;
    unpackWord(l, word, data);
    pendingCe_.push_back(ce);
    return victim_addr;
}

void
SetAssocCache::resolvePendingSlow() const
{
    std::vector<PendingCe> pending;
    pending.swap(pendingCe_);
    for (const PendingCe &ce : pending) {
        CacheLine &l = lines_[ce.lineIdx];
        ecc::EccResult r = ecc::decode(ce.corrupted, ce.check);
        ccnuma_assert(r.status == ecc::EccStatus::CorrectedData ||
                      r.status == ecc::EccStatus::CorrectedCheck);
        ccnuma_assert(r.data == ce.shadow);
        unpackWord(l, ce.word, r.data);
        ++eccCorrected_;
    }
}

} // namespace ccnuma
