/**
 * @file
 * Interleaved main-memory controller.
 *
 * The paper's nodes use interleaved memory whose controller is a
 * separate bus agent from the coherence controller. We model a set of
 * banks interleaved at line granularity; each access occupies its bank
 * for a fixed busy time, and data becomes available a fixed access
 * latency after the bank starts servicing the request. Contention
 * appears as bank queuing delay.
 */

#ifndef CCNUMA_MEM_MEMORY_CONTROLLER_HH
#define CCNUMA_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Timing parameters for a node's memory system. */
struct MemoryParams
{
    unsigned numBanks = 4;
    /** Bank occupied per access (DRAM cycle time), in ticks. */
    Tick bankBusy = 24;
    /**
     * Address strobe to start of data transfer with an idle bank
     * (Table 1: 20 compute-processor cycles).
     */
    Tick accessLatency = 20;
    unsigned lineBytes = 128;
};

/**
 * Bank-interleaved memory timing model. The bus asks it when a read's
 * data transfer can start; writes are posted.
 */
class MemoryController
{
  public:
    MemoryController(const std::string &name, const MemoryParams &p);

    /**
     * Schedule a line read beginning no earlier than @p earliest
     * (the address strobe time).
     * @return the tick at which the data transfer may start.
     */
    Tick scheduleRead(Addr line_addr, Tick earliest);

    /**
     * Post a line write arriving at @p when (e.g. writeback data).
     * @return the tick at which the bank accepted the write.
     */
    Tick scheduleWrite(Addr line_addr, Tick when);

    /**
     * Checker payload: the version of the data currently held in
     * memory for @p line_addr (0 if never written).
     */
    std::uint64_t
    version(Addr line_addr) const
    {
        auto it = versions_.find(line_addr);
        return it == versions_.end() ? 0 : it->second;
    }

    /** Checker payload: record @p v as the memory contents. */
    void setVersion(Addr line_addr, std::uint64_t v)
    {
        versions_[line_addr] = v;
    }

    /**
     * All recorded line versions (degraded-mode migration copies a
     * dead home's memory image to its successor).
     */
    const std::unordered_map<Addr, std::uint64_t> &versions() const
    {
        return versions_;
    }

    stats::Group &statGroup() { return statGroup_; }

    stats::Scalar statReads{"reads", "line reads serviced"};
    stats::Scalar statWrites{"writes", "line writes serviced"};
    stats::Average statBankWait{"bank_wait",
        "ticks a request waited for a busy bank"};

  private:
    std::size_t bankIndex(Addr line_addr) const;

    MemoryParams params_;
    unsigned lineShift_;
    std::vector<Tick> bankFreeAt_;
    std::unordered_map<Addr, std::uint64_t> versions_;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_MEM_MEMORY_CONTROLLER_HH
