/**
 * @file
 * Interleaved main-memory controller.
 *
 * The paper's nodes use interleaved memory whose controller is a
 * separate bus agent from the coherence controller. We model a set of
 * banks interleaved at line granularity; each access occupies its bank
 * for a fixed busy time, and data becomes available a fixed access
 * latency after the bank starts servicing the request. Contention
 * appears as bank queuing delay.
 */

#ifndef CCNUMA_MEM_MEMORY_CONTROLLER_HH
#define CCNUMA_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Timing parameters for a node's memory system. */
struct MemoryParams
{
    unsigned numBanks = 4;
    /** Bank occupied per access (DRAM cycle time), in ticks. */
    Tick bankBusy = 24;
    /**
     * Address strobe to start of data transfer with an idle bank
     * (Table 1: 20 compute-processor cycles).
     */
    Tick accessLatency = 20;
    unsigned lineBytes = 128;
};

/**
 * Bank-interleaved memory timing model. The bus asks it when a read's
 * data transfer can start; writes are posted.
 */
class MemoryController : public Snapshottable
{
  public:
    MemoryController(const std::string &name, const MemoryParams &p);

    /**
     * Schedule a line read beginning no earlier than @p earliest
     * (the address strobe time).
     * @return the tick at which the data transfer may start.
     */
    Tick scheduleRead(Addr line_addr, Tick earliest);

    /**
     * Post a line write arriving at @p when (e.g. writeback data).
     * @return the tick at which the bank accepted the write.
     */
    Tick scheduleWrite(Addr line_addr, Tick when);

    /**
     * Checker payload: the version of the data currently held in
     * memory for @p line_addr (0 if never written).
     */
    std::uint64_t
    version(Addr line_addr) const
    {
        auto it = versions_.find(line_addr);
        return it == versions_.end() ? 0 : it->second;
    }

    /** Checker payload: record @p v as the memory contents. */
    void
    setVersion(Addr line_addr, std::uint64_t v)
    {
        if (jlog_.armed()) {
            auto it = versions_.find(line_addr);
            if (it != versions_.end())
                jlog_.push(JRec{line_addr, false, it->second});
            else
                jlog_.push(JRec{line_addr, true, 0});
        }
        versions_[line_addr] = v;
    }

    /**
     * All recorded line versions (degraded-mode migration copies a
     * dead home's memory image to its successor).
     */
    const std::unordered_map<Addr, std::uint64_t> &versions() const
    {
        return versions_;
    }

    stats::Group &statGroup() { return statGroup_; }

    // --- speculative checkpointing ---
    // The version map takes an undo journal (it grows with the
    // workload's footprint); the bank timers are a handful of ticks
    // and ride in the snapshot by value.

    void specBegin() override { jlog_.arm(); }

    std::shared_ptr<const void>
    specSave(std::size_t &bytes) override
    {
        bytes += sizeof(Snap) + bankFreeAt_.size() * sizeof(Tick) +
                 (jlog_.mark() - lastSaveMark_) * sizeof(JRec);
        lastSaveMark_ = jlog_.mark();
        return std::make_shared<Snap>(Snap{jlog_.mark(), bankFreeAt_});
    }

    void
    specRestore(const void *snap) override
    {
        const Snap *s = static_cast<const Snap *>(snap);
        jlog_.undoTo(s->mark, [this](const JRec &r) {
            if (r.insert)
                versions_.erase(r.key);
            else
                versions_[r.key] = r.old;
        });
        bankFreeAt_ = s->bankFreeAt;
        if (lastSaveMark_ > jlog_.mark())
            lastSaveMark_ = jlog_.mark();
    }

    void
    specCommit(const void *oldest) override
    {
        jlog_.trimBelow(static_cast<const Snap *>(oldest)->mark);
    }

    void specEnd() override { jlog_.disarm(); }

    stats::Scalar statReads{"reads", "line reads serviced"};
    stats::Scalar statWrites{"writes", "line writes serviced"};
    stats::Average statBankWait{"bank_wait",
        "ticks a request waited for a busy bank"};

  private:
    std::size_t bankIndex(Addr line_addr) const;

    /** Pre-image of one version-map mutation. */
    struct JRec
    {
        Addr key;
        bool insert;
        std::uint64_t old;
    };

    /** Journal position plus the (tiny) bank timer array. */
    struct Snap
    {
        std::size_t mark;
        std::vector<Tick> bankFreeAt;
    };

    UndoLog<JRec> jlog_;
    std::size_t lastSaveMark_ = 0;

    MemoryParams params_;
    unsigned lineShift_;
    std::vector<Tick> bankFreeAt_;
    std::unordered_map<Addr, std::uint64_t> versions_;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_MEM_MEMORY_CONTROLLER_HH
