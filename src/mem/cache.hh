/**
 * @file
 * Set-associative LRU cache with MESI line states.
 *
 * This models the tag/state arrays of the 16 KB L1 and 1 MB 4-way L2
 * caches of the paper's SMP nodes. Timing lives in the node model;
 * this class provides state, replacement, and bookkeeping. Lines carry
 * a version number used by the coherence invariant checker (each
 * machine-wide store bumps the line's version), not simulated data.
 */

#ifndef CCNUMA_MEM_CACHE_HH
#define CCNUMA_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** MESI cache line states. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< clean, sole copy (only attainable for local lines)
    Modified,
};

/** @return short name for a line state ("I", "S", "E", "M"). */
const char *lineStateName(LineState s);

/** @return true for states holding a valid copy. */
inline bool
lineValid(LineState s)
{
    return s != LineState::Invalid;
}

/**
 * Tag value carried by lines that hold no copy. Never equal to any
 * line-aligned address, so the hot lookup loop can compare tags alone
 * without also testing the state byte.
 */
inline constexpr Addr kNoLineTag = ~static_cast<Addr>(0);

/** One cache line's tag/state entry. */
struct CacheLine
{
    /** Full line-aligned address (the tag); kNoLineTag when invalid. */
    Addr lineAddr = kNoLineTag;
    LineState state = LineState::Invalid;
    std::uint64_t lastUse = 0;  ///< LRU timestamp
    std::uint64_t version = 0;  ///< checker: version of held data
};

/**
 * A set-associative cache with true-LRU replacement.
 *
 * The cache does not move data; callers react to the returned victim
 * information (e.g. issue a writeback for a Modified victim).
 */
class SetAssocCache
{
  public:
    /** Description of a line displaced by allocate(). */
    struct Victim
    {
        bool valid = false;
        Addr lineAddr = 0;
        LineState state = LineState::Invalid;
        std::uint64_t version = 0;
    };

    /**
     * @param name stat prefix
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size (power of two)
     */
    SetAssocCache(const std::string &name, std::uint64_t size_bytes,
                  unsigned assoc, unsigned line_bytes);

    unsigned lineBytes() const { return lineBytes_; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Line-align an address. */
    Addr
    lineAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(lineBytes_ - 1);
    }

    /**
     * Find the line holding @p addr.
     * @return pointer into the tag array, or nullptr on miss.
     */
    CacheLine *findLine(Addr addr);
    const CacheLine *findLine(Addr addr) const;

    /** Mark a line most-recently-used. */
    void touch(CacheLine *line) { line->lastUse = ++useClock_; }

    /**
     * Install @p addr in state @p st, evicting the LRU way if the set
     * is full. The displaced line (if any) is reported via @p victim.
     * @return the installed line.
     * @pre the address is not already present.
     */
    CacheLine *allocate(Addr addr, LineState st, Victim *victim);

    /** Invalidate @p addr if present. @return prior state. */
    LineState invalidate(Addr addr);

    /** Visit every valid line (used by the invariant checker). */
    template <typename F>
    void
    forEachLine(F &&f) const
    {
        for (const auto &line : lines_) {
            if (lineValid(line.state))
                f(line);
        }
    }

    /** Drop every line (used between workload phases in tests). */
    void invalidateAll();

    /** Count of currently valid lines. */
    std::size_t numValid() const;

    stats::Group &statGroup() { return statGroup_; }

    stats::Scalar statEvictions{"evictions",
        "lines displaced by allocation"};
    stats::Scalar statDirtyEvictions{"dirty_evictions",
        "modified lines displaced by allocation"};
    stats::Scalar statInvalidations{"invalidations",
        "lines invalidated by external request"};

  private:
    std::size_t setIndex(Addr addr) const;

    std::string name_;
    unsigned lineBytes_;
    unsigned assoc_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<CacheLine> lines_; ///< numSets_ * assoc_, set-major
    std::uint64_t useClock_ = 0;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_MEM_CACHE_HH
