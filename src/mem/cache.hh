/**
 * @file
 * Set-associative LRU cache with MESI line states.
 *
 * This models the tag/state arrays of the 16 KB L1 and 1 MB 4-way L2
 * caches of the paper's SMP nodes. Timing lives in the node model;
 * this class provides state, replacement, and bookkeeping. Lines carry
 * a version number used by the coherence invariant checker (each
 * machine-wide store bumps the line's version), not simulated data.
 */

#ifndef CCNUMA_MEM_CACHE_HH
#define CCNUMA_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "verify/ecc.hh"

namespace ccnuma
{

/** MESI cache line states. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< clean, sole copy (only attainable for local lines)
    Modified,
};

/** @return short name for a line state ("I", "S", "E", "M"). */
const char *lineStateName(LineState s);

/** @return true for states holding a valid copy. */
inline bool
lineValid(LineState s)
{
    return s != LineState::Invalid;
}

/**
 * Tag value carried by lines that hold no copy. Never equal to any
 * line-aligned address, so the hot lookup loop can compare tags alone
 * without also testing the state byte.
 */
inline constexpr Addr kNoLineTag = ~static_cast<Addr>(0);

/** One cache line's tag/state entry. */
struct CacheLine
{
    /** Full line-aligned address (the tag); kNoLineTag when invalid. */
    Addr lineAddr = kNoLineTag;
    LineState state = LineState::Invalid;
    std::uint64_t lastUse = 0;  ///< LRU timestamp
    std::uint64_t version = 0;  ///< checker: version of held data
};

/**
 * A set-associative cache with true-LRU replacement.
 *
 * The cache does not move data; callers react to the returned victim
 * information (e.g. issue a writeback for a Modified victim).
 */
class SetAssocCache : public Snapshottable
{
  public:
    /** Description of a line displaced by allocate(). */
    struct Victim
    {
        bool valid = false;
        Addr lineAddr = 0;
        LineState state = LineState::Invalid;
        std::uint64_t version = 0;
    };

    /**
     * @param name stat prefix
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size (power of two)
     */
    SetAssocCache(const std::string &name, std::uint64_t size_bytes,
                  unsigned assoc, unsigned line_bytes);

    unsigned lineBytes() const { return lineBytes_; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Line-align an address. */
    Addr
    lineAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(lineBytes_ - 1);
    }

    /**
     * Find the line holding @p addr.
     * @return pointer into the tag array, or nullptr on miss.
     */
    CacheLine *findLine(Addr addr);
    const CacheLine *findLine(Addr addr) const;

    /** Mark a line most-recently-used. */
    void
    touch(CacheLine *line)
    {
        jrec(line);
        line->lastUse = ++useClock_;
    }

    /**
     * Install @p addr in state @p st, evicting the LRU way if the set
     * is full. The displaced line (if any) is reported via @p victim.
     * @return the installed line.
     * @pre the address is not already present.
     */
    CacheLine *allocate(Addr addr, LineState st, Victim *victim);

    /** Invalidate @p addr if present. @return prior state. */
    LineState invalidate(Addr addr);

    /** Visit every valid line (used by the invariant checker). */
    template <typename F>
    void
    forEachLine(F &&f) const
    {
        resolvePending();
        for (const auto &line : lines_) {
            if (lineValid(line.state))
                f(line);
        }
    }

    /** Drop every line (used between workload phases in tests). */
    void invalidateAll();

    /** Count of currently valid lines. */
    std::size_t numValid() const;

    // --- integrity (PR 7) ---

    /**
     * Inject a correctable (single-bit) flip into one SECDED word of
     * a random valid line: the live word (tag, version, or state) is
     * corrupted in place and the correction parked in the pending
     * table. Every accessor resolves pending corrections before
     * observing any line, so the corrupted value is never served.
     * @return the victim line address, or kNoLineTag if the cache
     *         holds nothing to corrupt.
     */
    Addr injectCeFlip(Random &rng);

    /**
     * Background scrub pass: resolve every pending correction now.
     * @return the number of words corrected.
     */
    std::uint64_t
    scrubNow()
    {
        std::uint64_t before = eccCorrected_;
        resolvePending();
        return eccCorrected_ - before;
    }

    /** Single-bit flips corrected (at access or by scrub). */
    std::uint64_t eccCorrected() const { return eccCorrected_; }
    /** Corrections still latent (tests). */
    std::size_t pendingCount() const { return pendingCe_.size(); }

    stats::Group &statGroup() { return statGroup_; }

    // --- speculative checkpointing (undo journal; sim/snapshot.hh) ---

    void specBegin() override { jlog_.arm(); }

    std::shared_ptr<const void>
    specSave(std::size_t &bytes) override
    {
        bytes += sizeof(Snap) +
                 (jlog_.mark() - lastSaveMark_) * sizeof(JRec);
        lastSaveMark_ = jlog_.mark();
        return std::make_shared<Snap>(Snap{jlog_.mark(), useClock_});
    }

    void
    specRestore(const void *snap) override
    {
        const Snap *s = static_cast<const Snap *>(snap);
        jlog_.undoTo(s->mark, [this](const JRec &r) {
            lines_[r.idx] = r.old;
        });
        useClock_ = s->useClock;
        if (lastSaveMark_ > jlog_.mark())
            lastSaveMark_ = jlog_.mark();
    }

    void
    specCommit(const void *oldest) override
    {
        jlog_.trimBelow(static_cast<const Snap *>(oldest)->mark);
    }

    void specEnd() override { jlog_.disarm(); }

    stats::Scalar statEvictions{"evictions",
        "lines displaced by allocation"};
    stats::Scalar statDirtyEvictions{"dirty_evictions",
        "modified lines displaced by allocation"};
    stats::Scalar statInvalidations{"invalidations",
        "lines invalidated by external request"};

  private:
    std::size_t setIndex(Addr addr) const;

    /** One latent single-bit corruption awaiting correction. */
    struct PendingCe
    {
        std::size_t lineIdx = 0;  ///< index into lines_
        unsigned word = 0;        ///< 0 = tag, 1 = version, 2 = state
        std::uint8_t check = 0;   ///< check byte seen by decode
        std::uint64_t shadow = 0; ///< pristine word (cross-check)
        /**
         * The corrupted codeword as the SRAM would hold it. The live
         * line only mirrors the flip as far as its packed fields can
         * represent it, so resolution decodes this saved image (the
         * line cannot change in between: every access resolves
         * first).
         */
        std::uint64_t corrupted = 0;
    };

    /**
     * Apply every pending correction before any observation of the
     * tag array (logically const — it restores the semantic value).
     * The inline empty() test keeps a clean configuration's cost to
     * one never-taken branch per lookup.
     */
    void
    resolvePending() const
    {
        if (!pendingCe_.empty())
            resolvePendingSlow();
    }

    void resolvePendingSlow() const;

    static std::uint64_t packWord(const CacheLine &l, unsigned w);
    static void unpackWord(CacheLine &l, unsigned w, std::uint64_t v);

    /** Undo-journal pre-image: one line's prior contents. */
    struct JRec
    {
        std::uint32_t idx;
        CacheLine old;
    };

    /** Journal snapshot: a log position plus the LRU clock. */
    struct Snap
    {
        std::size_t mark;
        std::uint64_t useClock;
    };

    /** Record @p line's pre-image before a mutation (armed only). */
    void
    jrec(const CacheLine *line)
    {
        if (jlog_.armed()) {
            jlog_.push(JRec{static_cast<std::uint32_t>(
                                line - lines_.data()),
                            *line});
        }
    }

    std::string name_;
    unsigned lineBytes_;
    unsigned assoc_;
    unsigned numSets_;
    unsigned lineShift_;
    mutable std::vector<CacheLine> lines_; ///< set-major
    std::uint64_t useClock_ = 0;
    UndoLog<JRec> jlog_;
    std::size_t lastSaveMark_ = 0;
    mutable std::vector<PendingCe> pendingCe_;
    mutable std::uint64_t eccCorrected_ = 0;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_MEM_CACHE_HH
