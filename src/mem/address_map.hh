/**
 * @file
 * Global address-to-home-node mapping.
 *
 * The paper uses a round-robin page placement policy for all
 * applications except FFT, which uses programmer hints for optimal
 * placement. We implement round-robin as the default for any page
 * without an explicit placement, plus explicit per-range placement
 * used by the FFT hints (and available to any workload).
 */

#ifndef CCNUMA_MEM_ADDRESS_MAP_HH
#define CCNUMA_MEM_ADDRESS_MAP_HH

#include <cstdint>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Default placement for pages without an explicit assignment. */
enum class PlacementPolicy
{
    RoundRobin, ///< the paper's default policy
    FirstTouch, ///< page homed at the first node to miss on it
};

/** Maps physical pages to home nodes. */
class AddressMap
{
  public:
    explicit AddressMap(unsigned num_nodes,
                        unsigned page_bytes = 4096)
        : numNodes_(num_nodes), pageBytes_(page_bytes)
    {
        if (num_nodes == 0)
            fatal("address map: need at least one node");
        if (page_bytes == 0 || (page_bytes & (page_bytes - 1)) != 0)
            fatal("address map: page size must be a power of two");
    }

    void setPolicy(PlacementPolicy p) { policy_ = p; }
    PlacementPolicy policy() const { return policy_; }

    /**
     * Resolve the home of @p addr for an access by @p toucher.
     * Under first-touch, an unplaced page is pinned to the toucher's
     * node; otherwise this is homeOf().
     */
    NodeId
    resolve(Addr addr, NodeId toucher)
    {
        if (policy_ == PlacementPolicy::FirstTouch) {
            std::uint64_t page = addr / pageBytes_;
            auto [it, inserted] = placed_.try_emplace(page, toucher);
            return applyRemap(it->second);
        }
        return homeOf(addr);
    }

    unsigned numNodes() const { return numNodes_; }
    unsigned pageBytes() const { return pageBytes_; }

    /** Home node of @p addr. */
    NodeId
    homeOf(Addr addr) const
    {
        std::uint64_t page = addr / pageBytes_;
        auto it = placed_.find(page);
        if (it != placed_.end())
            return applyRemap(it->second);
        return applyRemap(static_cast<NodeId>(page % numNodes_));
    }

    /**
     * Degraded mode: every page homed at @p dead is served by
     * @p successor from now on. The recovery manager migrates the
     * dead home's memory image and directory entries first.
     */
    void
    setNodeRemap(NodeId dead, NodeId successor)
    {
        ccnuma_assert(dead < numNodes_ && successor < numNodes_);
        ccnuma_assert(dead != successor);
        remapFrom_ = dead;
        remapTo_ = successor;
        remapActive_ = true;
    }

    /** True once a degraded-mode remap is in force. */
    bool remapActive() const { return remapActive_; }

    /** Pin the page containing @p addr to @p home. */
    void
    placePage(Addr addr, NodeId home)
    {
        ccnuma_assert(home < numNodes_);
        placed_[addr / pageBytes_] = home;
    }

    /** Pin every page overlapping [start, start+bytes) to @p home. */
    void
    placeRange(Addr start, std::uint64_t bytes, NodeId home)
    {
        ccnuma_assert(home < numNodes_);
        std::uint64_t first = start / pageBytes_;
        std::uint64_t last = (start + bytes - 1) / pageBytes_;
        for (std::uint64_t p = first; p <= last; ++p)
            placed_[p] = home;
    }

    /** Number of explicitly placed pages. */
    std::size_t numPlaced() const { return placed_.size(); }

  private:
    NodeId
    applyRemap(NodeId home) const
    {
        if (remapActive_ && home == remapFrom_)
            return remapTo_;
        return home;
    }

    unsigned numNodes_;
    unsigned pageBytes_;
    PlacementPolicy policy_ = PlacementPolicy::RoundRobin;
    std::unordered_map<std::uint64_t, NodeId> placed_;
    bool remapActive_ = false;
    NodeId remapFrom_ = 0;
    NodeId remapTo_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_MEM_ADDRESS_MAP_HH
