#include "mem/memory_controller.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace ccnuma
{

MemoryController::MemoryController(const std::string &name,
                                   const MemoryParams &p)
    : params_(p), statGroup_(name)
{
    if (p.numBanks == 0)
        fatal("memory %s: need at least one bank", name.c_str());
    if (p.lineBytes == 0 || (p.lineBytes & (p.lineBytes - 1)) != 0)
        fatal("memory %s: line size must be a power of two",
              name.c_str());
    lineShift_ = std::countr_zero(p.lineBytes);
    bankFreeAt_.assign(p.numBanks, 0);

    statGroup_.add(&statReads);
    statGroup_.add(&statWrites);
    statGroup_.add(&statBankWait);
}

std::size_t
MemoryController::bankIndex(Addr line_addr) const
{
    return (line_addr >> lineShift_) % params_.numBanks;
}

Tick
MemoryController::scheduleRead(Addr line_addr, Tick earliest)
{
    Tick &free_at = bankFreeAt_[bankIndex(line_addr)];
    Tick begin = std::max(earliest, free_at);
    statBankWait.sample(static_cast<double>(begin - earliest));
    free_at = begin + params_.bankBusy;
    ++statReads;
    return begin + params_.accessLatency;
}

Tick
MemoryController::scheduleWrite(Addr line_addr, Tick when)
{
    Tick &free_at = bankFreeAt_[bankIndex(line_addr)];
    Tick begin = std::max(when, free_at);
    statBankWait.sample(static_cast<double>(begin - when));
    free_at = begin + params_.bankBusy;
    ++statWrites;
    return begin;
}

} // namespace ccnuma
