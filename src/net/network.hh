/**
 * @file
 * Point-to-point interconnection network model.
 *
 * The paper models its 32-byte-wide switch as a fixed point-to-point
 * latency (14 compute cycles = 70 ns in the base system) plus
 * contention at the external points (the network interfaces). We
 * model exactly that: each node has one egress and one ingress port;
 * a message serializes over each port at the port width per network
 * cycle, and spends the flight latency in between. Because each
 * source-destination pair's messages serialize at both endpoints with
 * a constant flight time, per-pair FIFO delivery order is guaranteed,
 * a property the coherence protocol relies on.
 */

#ifndef CCNUMA_NET_NETWORK_HH
#define CCNUMA_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

namespace obs
{
class Tracer;
} // namespace obs

/** Network timing parameters. */
struct NetworkParams
{
    /** Point-to-point latency (Table 1: 14 ticks = 70 ns). */
    Tick flightLatency = 14;
    /** Switch link width in bytes. */
    unsigned portWidthBytes = 32;
    /** Ticks per network port cycle (100 MHz => 2 ticks). */
    Tick portCycle = 2;
};

/**
 * Observation/injection hook on network deliveries (the fault
 * injector implements this; see src/verify/). The tap may adjust the
 * delivery tick, request a duplicate delivery, or drop the message.
 */
class NetworkTap
{
  public:
    virtual ~NetworkTap() = default;

    /**
     * Called for every message once its natural delivery tick is
     * known. @p delivered may be moved later (never earlier than the
     * current tick); setting @p duplicate_at nonzero schedules a
     * second delivery of the same message at that tick.
     * @return false to drop the message entirely.
     */
    virtual bool onDelivery(NodeId src, NodeId dst, Tick &delivered,
                            Tick &duplicate_at) = 0;
};

/**
 * The interconnect. Protocol layers send sized messages with a
 * delivery callback; the network adds egress serialization, flight
 * latency, and ingress serialization.
 */
class Network
{
  public:
    Network(const std::string &name, EventQueue &eq,
            unsigned num_nodes, const NetworkParams &p);

    const NetworkParams &params() const { return params_; }
    unsigned numNodes() const
    {
        return static_cast<unsigned>(egressFreeAt_.size());
    }

    /**
     * Send @p bytes from @p src to @p dst; @p on_delivered runs at
     * the tick the message has fully arrived at the destination's
     * network interface. The callback goes straight into the event
     * queue's one-shot pool: keep captures small (within
     * SmallCallback::inlineBytes) and this path never allocates.
     */
    template <typename F>
    void
    send(NodeId src, NodeId dst, unsigned bytes, F &&on_delivered)
    {
        Tick delivered = 0;
        Tick duplicate_at = 0;
        if (!planSend(src, dst, bytes, delivered, duplicate_at))
            return; // dropped by the fault-injection tap
        if (duplicate_at != 0) {
            // Injected duplicate: scheduled first, as the tap-era
            // core did, so event ordering stays bit-identical.
            eq_.scheduleFunction(on_delivered, duplicate_at,
                                 Event::defaultPriority,
                                 "net-dup-delivery");
        }
        recordSend(src, dst, bytes, delivered);
        eq_.scheduleFunction(std::forward<F>(on_delivered), delivered,
                             Event::defaultPriority, "net-delivery");
    }

    /** Install a delivery tap (fault injection); null to remove. */
    void setTap(NetworkTap *tap) { tap_ = tap; }

    /** Record message flights with the tracer (null = off). */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    stats::Group &statGroup() { return statGroup_; }

    stats::Scalar statMessages{"messages", "messages delivered"};
    stats::Scalar statBytes{"bytes", "payload bytes delivered"};
    stats::Average statEgressWait{"egress_wait",
        "ticks waited for the source port"};
    stats::Average statIngressWait{"ingress_wait",
        "ticks waited for the destination port"};
    stats::Average statLatency{"latency",
        "total ticks from send to delivery"};

  private:
    Tick serializeTicks(unsigned bytes) const;

    /**
     * Model port/flight timing and consult the tap.
     * @return false if the tap dropped the message.
     */
    bool planSend(NodeId src, NodeId dst, unsigned bytes,
                  Tick &delivered, Tick &duplicate_at);

    /** Account stats and tracer spans for a non-dropped send. */
    void recordSend(NodeId src, NodeId dst, unsigned bytes,
                    Tick delivered);

    std::string name_;
    EventQueue &eq_;
    NetworkParams params_;
    std::vector<Tick> egressFreeAt_;
    std::vector<Tick> ingressFreeAt_;
    NetworkTap *tap_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NET_NETWORK_HH
