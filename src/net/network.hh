/**
 * @file
 * Point-to-point interconnection network model.
 *
 * The paper models its 32-byte-wide switch as a fixed point-to-point
 * latency (14 compute cycles = 70 ns in the base system) plus
 * contention at the external points (the network interfaces). We
 * model exactly that: each node has one egress and one ingress port;
 * a message serializes over each port at the port width per network
 * cycle, and spends the flight latency in between. The source clamps
 * each pair's arrival tick to be non-decreasing, so per-pair FIFO
 * delivery order is guaranteed — a property the coherence protocol
 * relies on — even when a short message re-serializes faster than an
 * earlier long one.
 *
 * Timing is resolved in two stages so that the model shards cleanly:
 * the egress port and the fault-injection tap are source-side state,
 * consulted at send time on the source's event queue; the ingress
 * port is destination-side state, consulted by an arrival event that
 * fires on the destination's queue when the message head has crossed
 * the switch. Arrival events carry an explicit deterministic key
 * (sent tick, source egress context, per-source sequence), so their
 * firing order — and therefore every downstream stat — is identical
 * whether source and destination share one event queue or live on
 * different shards with a mailbox in between.
 */

#ifndef CCNUMA_NET_NETWORK_HH
#define CCNUMA_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sharded.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

namespace obs
{
class Tracer;
} // namespace obs

/** Network timing parameters. */
struct NetworkParams
{
    /** Point-to-point latency (Table 1: 14 ticks = 70 ns). */
    Tick flightLatency = 14;
    /** Switch link width in bytes. */
    unsigned portWidthBytes = 32;
    /** Ticks per network port cycle (100 MHz => 2 ticks). */
    Tick portCycle = 2;
};

/**
 * Observation/injection hook on network deliveries (the fault
 * injector implements this; see src/verify/). The tap may adjust the
 * delivery tick, request a duplicate delivery, or drop the message.
 */
class NetworkTap
{
  public:
    virtual ~NetworkTap() = default;

    /**
     * Called for every message once its natural delivery tick is
     * known. @p delivered may be moved later (never earlier than the
     * current tick); setting @p duplicate_at nonzero schedules a
     * second delivery of the same message at that tick.
     * @return false to drop the message entirely.
     */
    virtual bool onDelivery(NodeId src, NodeId dst, Tick &delivered,
                            Tick &duplicate_at) = 0;

    /**
     * Lower bound (possibly negative) on the adjustment this tap may
     * apply to a delivery tick, in ticks. The sharded scheduler
     * shrinks its conservative lookahead window by any negative
     * amount reported here; a tap that only ever delays deliveries
     * returns 0 and leaves the window at the full network minimum.
     * Returning an unsound (too large) value breaks conservatism
     * silently — this is the contract that keeps fault injection and
     * sharding composable.
     */
    virtual long long minExtraDelay() const { return 0; }
};

/**
 * The interconnect. Protocol layers send sized messages with a
 * delivery callback; the network adds egress serialization, flight
 * latency, and ingress serialization.
 */
class Network
{
  public:
    Network(const std::string &name, const ShardMap &map,
            const NetworkParams &p);

    /** Single-queue convenience constructor (unit tests). */
    Network(const std::string &name, EventQueue &eq,
            unsigned num_nodes, const NetworkParams &p);

    const NetworkParams &params() const { return params_; }
    unsigned numNodes() const
    {
        return static_cast<unsigned>(src_.size());
    }

    /**
     * Earliest possible gap, in ticks, between a send and its
     * arrival event firing at the destination: one egress port cycle
     * plus the switch flight plus one ingress port cycle. This (plus
     * the tap's minExtraDelay, if negative) is the network's
     * contribution to the conservative lookahead window.
     */
    Tick
    minLatency() const
    {
        return 2 * params_.portCycle + params_.flightLatency;
    }

    /**
     * Send @p bytes from @p src to @p dst; @p on_delivered runs at
     * the tick the message has fully arrived at the destination's
     * network interface. The callback goes straight into the event
     * queue's one-shot pool: keep captures small (within
     * SmallCallback::inlineBytes) and this path never allocates.
     */
    template <typename F>
    void
    send(NodeId src, NodeId dst, unsigned bytes, F &&on_delivered)
    {
        Tick ser = serializeTicks(bytes);
        Tick arrive_at = 0;
        Tick duplicate_at = 0;
        if (!planEgress(src, dst, ser, arrive_at, duplicate_at))
            return; // dropped by the fault-injection tap
        Tick send_tick = map_->of(src).curTick();
        if (duplicate_at != 0) {
            // Injected duplicate: scheduled first, as the tap-era
            // core did, so event ordering stays bit-identical.
            F dup(on_delivered);
            dispatchArrival(src, dst, bytes, ser, send_tick,
                            duplicate_at, std::move(dup),
                            "net-dup-arrival");
        }
        dispatchArrival(src, dst, bytes, ser, send_tick, arrive_at,
                        std::forward<F>(on_delivered), "net-arrival");
    }

    /**
     * Inject cross-shard arrival events accumulated during the last
     * window into their destination queues. Called at the window
     * barrier with all shard threads quiescent; injection order is
     * irrelevant because every arrival carries its explicit key.
     */
    void drainMailboxes();

    /** @return true when no cross-shard arrivals are buffered. */
    bool mailboxesEmpty() const;

    /** Install a delivery tap (fault injection); null to remove. */
    void setTap(NetworkTap *tap) { tap_ = tap; }
    NetworkTap *tap() const { return tap_; }

    // --- speculative (Time-Warp) sharding support ---

    /** Earliest buffered cross-shard arrival tick (maxTick if none). */
    Tick mailboxMinArrival() const;

    /**
     * Visit every buffered cross-shard arrival as
     * (src_shard, dst_node, send_tick, arrival_tick): the barrier
     * fixpoint's straggler-detection input.
     */
    template <typename F>
    void
    forEachMailboxEntry(F &&f) const
    {
        for (unsigned s = 0;
             s < static_cast<unsigned>(mailboxes_.size()); ++s) {
            for (const MailboxEntry &e : mailboxes_[s])
                f(s, static_cast<NodeId>(e.dstNode), e.schedTick,
                  e.when);
        }
    }

    /**
     * Anti-messages: cancel every buffered send of @p src_shard made
     * at or after @p from_tick. A rollback squashes the segment that
     * produced them before any destination observed them, so
     * cancellation never cascades.
     * @return entries cancelled.
     */
    std::uint64_t squashSends(unsigned src_shard, Tick from_tick);

    /**
     * Deliver buffered arrivals whose send tick has committed
     * (below @p send_bound, the new frontier). Later sends stay
     * buffered: a future rollback could still cancel them.
     */
    void drainMailboxesCommitted(Tick send_bound);

    /**
     * Snapshot / restore the pods owned by @p shard (speculation).
     * Source pods of the shard's nodes are touched only by the
     * owning shard's sends, destination pods only by its arrival
     * events, so per-shard granularity is race-free.
     */
    std::shared_ptr<const void> specSaveShard(unsigned shard,
                                              std::size_t &bytes);
    void specRestoreShard(unsigned shard, const void *snap);

    /**
     * Adaptive-window support: have every cross-shard send clamp the
     * sending queue's window stop to arrive_at + @p margin, where
     * @p margin is the machine's conservative lookahead (the earliest
     * a consequence of the send could re-enter the sender's shard).
     * Off by default; conservative lock-step windows never need it.
     */
    void
    setSendClampMargin(Tick margin)
    {
        clampSends_ = true;
        clampMargin_ = margin;
    }

    /** Record message flights with one tracer for every node. */
    void setTracer(obs::Tracer *t)
    {
        tracerOfNode_.assign(src_.size(), t);
    }

    /** Per-node tracers (sharded: each node's shard tracer). */
    void setTracers(const std::vector<obs::Tracer *> &per_node);

    stats::Group &statGroup() { return statGroup_; }

    /**
     * Fold the per-node stat pods into the published stats below.
     * Idempotent (reset + merge); called once threads are quiescent.
     */
    void syncStats();

    /** Zero the published stats and every per-node pod. */
    void resetStats();

    stats::Scalar statMessages{"messages", "messages delivered"};
    stats::Scalar statBytes{"bytes", "payload bytes delivered"};
    stats::Average statEgressWait{"egress_wait",
        "ticks waited for the source port"};
    stats::Average statIngressWait{"ingress_wait",
        "ticks waited for the destination port"};
    stats::Average statLatency{"latency",
        "total ticks from send to delivery"};

  private:
    /**
     * Source-side per-node state, touched only by the owning shard:
     * the egress port, the per-source arrival sequence counter, and
     * the egress-wait samples.
     */
    struct SrcPod
    {
        Tick egressFreeAt = 0;
        std::uint64_t egressSeq = 0;
        /**
         * Last natural arrival tick per destination. A later short
         * message re-serializes faster at the ingress and its arrival
         * event could otherwise fire before an earlier long one's;
         * clamping each pair's arrival tick to be non-decreasing
         * restores per-pair FIFO. The fault tap adjusts ticks after
         * the clamp, so injected reorders still happen.
         */
        std::vector<Tick> pairLastArrive;
        stats::Average egressWait{"", ""};
    };

    /**
     * Destination-side per-node state, touched only by the owning
     * shard's arrival events.
     */
    struct DstPod
    {
        Tick ingressFreeAt = 0;
        stats::Scalar messages{"", ""};
        stats::Scalar bytes{"", ""};
        stats::Average ingressWait{"", ""};
        stats::Average latency{"", ""};
    };

    /** A buffered cross-shard arrival (explicit key + closure). */
    struct MailboxEntry
    {
        std::function<void()> fn;
        Tick when = 0;
        Tick schedTick = 0;
        std::uint32_t ctx = 0;
        std::uint64_t seq = 0;
        unsigned dstNode = 0;
        const char *name = "net-arrival";
    };

    /** Value snapshot of one shard's pods (speculation). */
    struct ShardSnap
    {
        std::vector<std::pair<NodeId, SrcPod>> src;
        std::vector<std::pair<NodeId, DstPod>> dst;
    };

    void init();

    Tick serializeTicks(unsigned bytes) const;

    /**
     * Resolve the egress port and the tap on the source side.
     * @return false if the tap dropped the message; otherwise
     * @p arrive_at (and @p duplicate_at, if duplicated) hold the
     * ticks the arrival event(s) fire at the destination.
     */
    bool planEgress(NodeId src, NodeId dst, Tick ser, Tick &arrive_at,
                    Tick &duplicate_at);

    /**
     * Schedule the destination-side arrival event: directly when the
     * destination shares the source's queue, via the source shard's
     * mailbox otherwise.
     */
    template <typename F>
    void
    dispatchArrival(NodeId src, NodeId dst, unsigned bytes, Tick ser,
                    Tick send_tick, Tick arrive_at, F &&cb,
                    const char *name)
    {
        std::uint64_t seq = src_[src].egressSeq++;
        std::uint32_t ctx = map_->netCtx(src);
        auto arrival = [this, src, dst, bytes, ser, send_tick,
                        cb = std::forward<F>(cb)]() mutable {
            arrive(src, dst, bytes, ser, send_tick, std::move(cb));
        };
        if (!map_->sharded() ||
            map_->shardOf(src) == map_->shardOf(dst)) {
            map_->of(dst).scheduleExternal(
                std::move(arrival), arrive_at,
                Event::defaultPriority, name, send_tick, ctx, seq,
                map_->nodeCtx(dst));
        } else {
            // Adaptive windows: a cross-shard send is the one way
            // this shard can conjure future traffic back toward
            // itself (the destination wakes at arrive_at and may
            // reply, arriving no sooner than arrive_at + the
            // machine's lookahead margin). Clamp the sender's own
            // window there so its clock never outruns a possible
            // reply; the planner's quiet-shard widening relies on it.
            if (clampSends_) {
                map_->of(src).clampWindowStop(arrive_at +
                                              clampMargin_);
            }
            mailboxes_[map_->shardOf(src)].push_back(MailboxEntry{
                std::move(arrival), arrive_at, send_tick, ctx, seq,
                dst, name});
        }
    }

    /**
     * The arrival event body, firing on the destination's queue:
     * resolve the ingress port, account stats/tracing, and run (or
     * schedule, under ingress contention) the delivery callback.
     */
    template <typename F>
    void
    arrive(NodeId src, NodeId dst, unsigned bytes, Tick ser,
           Tick send_tick, F &&cb)
    {
        EventQueue &dq = map_->of(dst);
        Tick at = dq.curTick();
        Tick head = at - ser;
        DstPod &dp = dst_[dst];
        Tick ingress_start = std::max(head, dp.ingressFreeAt);
        Tick delivered = ingress_start + ser;
        dp.ingressFreeAt = delivered;
        ++dp.messages;
        dp.bytes += static_cast<double>(bytes);
        dp.ingressWait.sample(
            static_cast<double>(ingress_start - head));
        dp.latency.sample(static_cast<double>(delivered - send_tick));
        noteSpan(src, dst, bytes, send_tick, delivered);
        if (delivered == at) {
            cb();
            return;
        }
        // Ingress contention: finish delivery later, keeping the
        // arrival's own key (the seq has retired, so it stays
        // unique) so ordering is mode-independent.
        EventKey k = dq.currentKey();
        dq.scheduleExternal(
            [cb = std::forward<F>(cb)]() mutable { cb(); }, delivered,
            Event::defaultPriority, "net-delivery", k.schedTick,
            k.ctx, k.seq, map_->nodeCtx(dst));
    }

    /** Tracer hook for a completed flight (out-of-line). */
    void noteSpan(NodeId src, NodeId dst, unsigned bytes,
                  Tick send_tick, Tick delivered);

    std::string name_;
    /** Owned routing table for the single-queue constructor. */
    ShardMap ownMap_;
    const ShardMap *map_;
    NetworkParams params_;
    std::vector<SrcPod> src_;
    std::vector<DstPod> dst_;
    /** Per-source-shard buffers of cross-shard arrivals. */
    std::vector<std::vector<MailboxEntry>> mailboxes_;
    NetworkTap *tap_ = nullptr;
    /** Clamp senders' window stops on cross-shard sends (adaptive). */
    bool clampSends_ = false;
    Tick clampMargin_ = 0;
    std::vector<obs::Tracer *> tracerOfNode_;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NET_NETWORK_HH
