#include "net/reliable.hh"

#include "obs/tracer.hh"
#include "protocol/retry.hh"
#include "sim/logging.hh"

namespace ccnuma
{

ReliableTransport::ReliableTransport(const std::string &name,
                                     const ShardMap &map,
                                     Network &net,
                                     const ReliableParams &p,
                                     DeliverFn deliver)
    : name_(name), map_(&map), numNodes_(map.numNodes), net_(net),
      params_(p), deliver_(std::move(deliver)), statGroup_(name)
{
    init();
}

ReliableTransport::ReliableTransport(const std::string &name,
                                     EventQueue &eq, Network &net,
                                     const ReliableParams &p,
                                     DeliverFn deliver)
    : name_(name), ownMap_(ShardMap::single(eq, net.numNodes())),
      map_(&ownMap_), numNodes_(net.numNodes()), net_(net),
      params_(p), deliver_(std::move(deliver)), statGroup_(name)
{
    init();
}

void
ReliableTransport::init()
{
    if (params_.retransmitTimeout == 0)
        fatal("%s: retransmitTimeout must be nonzero", name_.c_str());
    ccnuma_assert(deliver_ != nullptr);

    tx_.resize(static_cast<std::size_t>(numNodes_) * numNodes_);
    rx_.resize(static_cast<std::size_t>(numNodes_) * numNodes_);
    tracerOfNode_.assign(numNodes_, nullptr);
    fenced_.assign(numNodes_, 0);
    dead_.assign(numNodes_, 0);

    statGroup_.add(&statDataFrames);
    statGroup_.add(&statAcks);
    statGroup_.add(&statRetransmits);
    statGroup_.add(&statTimeouts);
    statGroup_.add(&statDupsDropped);
    statGroup_.add(&statReordersHealed);
    statGroup_.add(&statBackoffTicks);
    statGroup_.add(&statCrcChecked);
    statGroup_.add(&statCrcDetected);
}

void
ReliableTransport::setTracers(const std::vector<obs::Tracer *> &per_node)
{
    ccnuma_assert(per_node.size() == numNodes_);
    tracerOfNode_ = per_node;
}

Tick
ReliableTransport::rtoFor(unsigned backoff_level) const
{
    return backoffDelay(params_.retransmitTimeout,
                        params_.retransmitTimeoutMax, backoff_level);
}

void
ReliableTransport::fenceNode(NodeId node, bool fenced)
{
    ccnuma_assert(node < numNodes_);
    fenced_[node] = fenced ? 1 : 0;
}

void
ReliableTransport::fenceNodeDead(NodeId node)
{
    ccnuma_assert(node < numNodes_);
    dead_[node] = 1;
    fenced_[node] = 0;
    // Drain every pair touching the dead node now; frames already in
    // flight are discarded on arrival, and armed timers find their
    // buffers empty.
    for (NodeId peer = 0; peer < numNodes_; ++peer) {
        for (std::size_t i :
             {pairIdx(node, peer), pairIdx(peer, node)}) {
            PairTx &p = tx_[i];
            fenceDrops_ += p.unacked.size();
            p.unacked.clear();
            if (p.timerArmed) {
                p.timerArmed = false;
                ++p.timerGen;
            }
            rx_[i].held.clear();
        }
    }
}

void
ReliableTransport::send(const Msg &msg, unsigned bytes)
{
    if (dead_[msg.src] || dead_[msg.dst]) {
        // A pre-crash scheduled send firing after degraded-mode
        // migration; the line has a new home by now.
        ++fenceDrops_;
        return;
    }
    PairTx &p = tx_[pairIdx(msg.src, msg.dst)];
    std::uint64_t seq = ++p.nextSeq;
    ccnuma_trace(msg.lineAddr,
                 "%8llu xport send %s n%u->n%u seq=%llu",
                 (unsigned long long)map_->of(msg.src).curTick(),
                 msgTypeName(msg.type), msg.src, msg.dst,
                 (unsigned long long)seq);
    TxFrame f;
    f.msg = msg;
    f.bytes = bytes;
    f.firstSend = map_->of(msg.src).curTick();
    p.unacked.emplace(seq, f);
    ++p.dataFrames;
    transmit(msg.src, msg.dst, seq, f);
    if (!p.timerArmed)
        armTimer(msg.src, msg.dst);
}

void
ReliableTransport::transmit(NodeId src, NodeId dst,
                            std::uint64_t seq, const TxFrame &f)
{
    // The network tap (fault injector) sits inside Network::send:
    // this frame may be dropped, duplicated, or held back there.
    if (params_.crc) {
        // Carry the packed wire image. A retransmission packs the
        // pristine TxFrame afresh, so a corrupted original is healed
        // by the normal go-back-N path once the receiver refuses it.
        wire::FrameImage img = wire::packFrame(f.msg, seq);
        if (corruptHook_)
            corruptHook_(src, img);
        net_.send(src, dst, f.bytes, [this, src, dst, img] {
            onFrameArrive(src, dst, img);
        });
        return;
    }
    Msg msg = f.msg;
    net_.send(src, dst, f.bytes, [this, src, dst, seq, msg] {
        onDataArrive(src, dst, seq, msg);
    });
}

void
ReliableTransport::onFrameArrive(NodeId src, NodeId dst,
                                 const wire::FrameImage &frame)
{
    // The CRC check comes before *everything* — in particular before
    // the crash-fence check in onDataArrive — so a corrupted frame
    // aimed at a fenced node is still counted as detected, not
    // silently folded into the fence drops.
    PairRx &r = rx_[pairIdx(src, dst)];
    ++r.crcChecked;
    if (!wire::frameCrcOk(frame)) {
        ++r.crcDetected;
        ccnuma_trace(0, "%8llu xport crc-drop n%u->n%u",
                     (unsigned long long)map_->of(dst).curTick(),
                     src, dst);
        if (obs::Tracer *t = tracerOfNode_[dst]) {
            t->faultEvent(obs::FaultKind::CrcDrop, dst, 0,
                          map_->of(dst).curTick());
        }
        return; // no ack: the sender's timer re-delivers it
    }
    std::uint64_t seq = 0;
    Msg msg = wire::unpackFrame(frame, seq);
    onDataArrive(src, dst, seq, msg);
}

void
ReliableTransport::onDataArrive(NodeId src, NodeId dst,
                                std::uint64_t seq, const Msg &msg)
{
    if (fenced_[dst] || dead_[dst] || dead_[src]) {
        // The destination's receive logic is dark (crashed) or gone
        // (degraded). No processing, no ack: for a temporary fence
        // the sender's retransmission timer re-delivers everything
        // after restart.
        ccnuma_trace(msg.lineAddr,
                     "%8llu xport fence-drop %s n%u->n%u seq=%llu",
                     (unsigned long long)map_->of(dst).curTick(),
                     msgTypeName(msg.type), src, dst,
                     (unsigned long long)seq);
        ++fenceDrops_;
        return;
    }
    PairRx &r = rx_[pairIdx(src, dst)];
    if (seq < r.nextExpected || r.held.count(seq)) {
        // Retransmitted or injector-duplicated copy of a frame we
        // already have; discard it but re-ack so the sender's buffer
        // drains even when the original ack was lost.
        ccnuma_trace(msg.lineAddr,
                     "%8llu xport dup-drop %s n%u->n%u seq=%llu "
                     "(expect %llu)",
                     (unsigned long long)map_->of(dst).curTick(),
                     msgTypeName(msg.type), src, dst,
                     (unsigned long long)seq,
                     (unsigned long long)r.nextExpected);
        ++r.dupsDropped;
        scheduleAck(src, dst);
        return;
    }
    if (seq == r.nextExpected) {
        ccnuma_trace(msg.lineAddr,
                     "%8llu xport deliver %s n%u->n%u seq=%llu",
                     (unsigned long long)map_->of(dst).curTick(),
                     msgTypeName(msg.type), src, dst,
                     (unsigned long long)seq);
        deliver_(msg);
        ++r.nextExpected;
        // A previously buffered run may now be contiguous.
        while (!r.held.empty() &&
               r.held.begin()->first == r.nextExpected) {
            Msg next = r.held.begin()->second;
            r.held.erase(r.held.begin());
            deliver_(next);
            ++r.nextExpected;
        }
    } else {
        // Early arrival: a predecessor was dropped or overtaken.
        if (r.held.size() >= params_.reorderBufCap) {
            panic("%s: pair node%u->node%u reorder buffer exceeded "
                  "%u frames (expecting seq %llu, got %llu)",
                  name_.c_str(), src, dst, params_.reorderBufCap,
                  (unsigned long long)r.nextExpected,
                  (unsigned long long)seq);
        }
        r.held.emplace(seq, msg);
        ++r.reordersHealed;
    }
    scheduleAck(src, dst);
}

void
ReliableTransport::scheduleAck(NodeId src, NodeId dst)
{
    // Delayed cumulative ack: coalesce a burst of deliveries into
    // one ack frame. The cumulative value is read at fire time so
    // the ack covers everything delivered inside the window. Both
    // this call and the fire run on the receiver's (dst's) queue.
    PairRx &r = rx_[pairIdx(src, dst)];
    if (r.ackPending)
        return;
    r.ackPending = true;
    map_->of(dst).scheduleFunctionIn(
        [this, src, dst] {
            PairRx &rr = rx_[pairIdx(src, dst)];
            rr.ackPending = false;
            std::uint64_t cum = rr.nextExpected - 1;
            ++rr.acks;
            net_.send(dst, src, msgHeaderBytes,
                      [this, src, dst, cum] {
                          onAckArrive(src, dst, cum);
                      });
        },
        params_.ackDelay);
}

void
ReliableTransport::onAckArrive(NodeId src, NodeId dst,
                               std::uint64_t cum)
{
    // Acks are cumulative: duplicated or reordered ack frames are
    // harmless, and a stale one simply acknowledges nothing new.
    // Rides a dst->src network delivery, so runs on src's queue.
    PairTx &p = tx_[pairIdx(src, dst)];
    bool progress = false;
    while (!p.unacked.empty() && p.unacked.begin()->first <= cum) {
        p.unacked.erase(p.unacked.begin());
        progress = true;
    }
    if (progress)
        p.backoffLevel = 0;
    if (p.unacked.empty() && p.timerArmed) {
        // Nothing left to guard; invalidate the pending timer.
        p.timerArmed = false;
        ++p.timerGen;
    }
}

void
ReliableTransport::armTimer(NodeId src, NodeId dst)
{
    PairTx &p = tx_[pairIdx(src, dst)];
    p.timerArmed = true;
    std::uint64_t gen = ++p.timerGen;
    map_->of(src).scheduleFunctionIn(
        [this, src, dst, gen] { onTimeout(src, dst, gen); },
        rtoFor(p.backoffLevel));
}

void
ReliableTransport::onTimeout(NodeId src, NodeId dst,
                             std::uint64_t gen)
{
    PairTx &p = tx_[pairIdx(src, dst)];
    if (gen != p.timerGen)
        return; // superseded by a later arm or a full drain
    if (p.unacked.empty()) {
        p.timerArmed = false;
        return;
    }
    Tick now = map_->of(src).curTick();
    ++p.timeouts;
    p.backoffTicks += rtoFor(p.backoffLevel);
    if (obs::Tracer *t = tracerOfNode_[src])
        t->xportEvent(obs::SpanKind::XportTimeout, src, dst, now);
    // Go-back-N: retransmit every unacknowledged frame in sequence
    // order. The receiver discards the ones it already holds, so one
    // timeout heals any number of losses in the window.
    for (auto &[seq, f] : p.unacked) {
        ++f.attempts;
        if (params_.maxRetransmits != 0 &&
            f.attempts > params_.maxRetransmits &&
            pairDeadHook_ && pairDeadHook_(src, dst)) {
            // The destination is crash-fenced and a restart or
            // migration is coming: keep retransmitting instead of
            // declaring the pair dead.
            f.attempts = 0;
            ++pairDeadDeferrals_;
        }
        if (params_.maxRetransmits != 0 &&
            f.attempts > params_.maxRetransmits) {
            // Graceful degradation: the pair is unrecoverable (every
            // retransmission or its ack was lost). End the run with
            // a clean diagnostic instead of backing off forever.
            fatal("%s: pair node%u->node%u presumed dead: %s seq "
                  "%llu for line %#llx abandoned after %u "
                  "retransmissions (first sent at tick %llu, now "
                  "%llu; %zu frame(s) outstanding)",
                  name_.c_str(), src, dst, msgTypeName(f.msg.type),
                  (unsigned long long)seq,
                  (unsigned long long)f.msg.lineAddr, f.attempts - 1,
                  (unsigned long long)f.firstSend,
                  (unsigned long long)now, p.unacked.size());
        }
        ++p.retransmits;
        if (obs::Tracer *t = tracerOfNode_[src]) {
            t->xportEvent(obs::SpanKind::XportRetransmit, src, dst,
                          now);
        }
        transmit(src, dst, seq, f);
    }
    if (p.backoffLevel < 32)
        ++p.backoffLevel;
    armTimer(src, dst);
}

bool
ReliableTransport::idle() const
{
    for (const PairTx &p : tx_) {
        if (!p.unacked.empty())
            return false;
    }
    return true;
}

void
ReliableTransport::dumpState(std::ostream &os) const
{
    os << name_ << ":";
    bool any = false;
    for (std::size_t i = 0; i < tx_.size(); ++i) {
        const PairTx &p = tx_[i];
        if (p.unacked.empty())
            continue;
        any = true;
        os << " tx(node" << (i / numNodes_) << "->node"
           << (i % numNodes_) << ",unacked=" << p.unacked.size()
           << ",oldest=" << p.unacked.begin()->first << ",attempts="
           << p.unacked.begin()->second.attempts << ",backoff="
           << p.backoffLevel << ")";
    }
    for (std::size_t i = 0; i < rx_.size(); ++i) {
        const PairRx &r = rx_[i];
        if (r.held.empty())
            continue;
        any = true;
        os << " rx(node" << (i / numNodes_) << "->node"
           << (i % numNodes_) << ",held=" << r.held.size()
           << ",expecting=" << r.nextExpected << ")";
    }
    if (!any)
        os << " (all pairs drained)";
    os << "\n";
}

void
ReliableTransport::syncStats()
{
    statDataFrames.set(static_cast<double>(dataFrames()));
    statAcks.set(static_cast<double>(acksSent()));
    statRetransmits.set(static_cast<double>(retransmits()));
    statTimeouts.set(static_cast<double>(timeouts()));
    statDupsDropped.set(static_cast<double>(dupsDropped()));
    statReordersHealed.set(static_cast<double>(reordersHealed()));
    statBackoffTicks.set(static_cast<double>(backoffTicks()));
    statCrcChecked.set(static_cast<double>(crcChecked()));
    statCrcDetected.set(static_cast<double>(crcDetected()));
}

void
ReliableTransport::resetStats()
{
    statGroup_.resetAll();
    for (PairTx &p : tx_) {
        p.dataFrames = 0;
        p.retransmits = 0;
        p.timeouts = 0;
        p.backoffTicks = 0;
    }
    for (PairRx &r : rx_) {
        r.acks = 0;
        r.dupsDropped = 0;
        r.reordersHealed = 0;
        r.crcChecked = 0;
        r.crcDetected = 0;
    }
}

std::uint64_t
ReliableTransport::dataFrames() const
{
    std::uint64_t total = 0;
    for (const PairTx &p : tx_)
        total += p.dataFrames;
    return total;
}

std::uint64_t
ReliableTransport::acksSent() const
{
    std::uint64_t total = 0;
    for (const PairRx &r : rx_)
        total += r.acks;
    return total;
}

std::uint64_t
ReliableTransport::retransmits() const
{
    std::uint64_t total = 0;
    for (const PairTx &p : tx_)
        total += p.retransmits;
    return total;
}

std::uint64_t
ReliableTransport::timeouts() const
{
    std::uint64_t total = 0;
    for (const PairTx &p : tx_)
        total += p.timeouts;
    return total;
}

std::uint64_t
ReliableTransport::dupsDropped() const
{
    std::uint64_t total = 0;
    for (const PairRx &r : rx_)
        total += r.dupsDropped;
    return total;
}

std::uint64_t
ReliableTransport::reordersHealed() const
{
    std::uint64_t total = 0;
    for (const PairRx &r : rx_)
        total += r.reordersHealed;
    return total;
}

std::uint64_t
ReliableTransport::crcChecked() const
{
    std::uint64_t total = 0;
    for (const PairRx &r : rx_)
        total += r.crcChecked;
    return total;
}

std::uint64_t
ReliableTransport::crcDetected() const
{
    std::uint64_t total = 0;
    for (const PairRx &r : rx_)
        total += r.crcDetected;
    return total;
}

Tick
ReliableTransport::backoffTicks() const
{
    std::uint64_t total = 0;
    for (const PairTx &p : tx_)
        total += p.backoffTicks;
    return static_cast<Tick>(total);
}

} // namespace ccnuma
