/**
 * @file
 * Reliable transport sublayer over the point-to-point network.
 *
 * The coherence protocol relies on the network delivering every
 * message exactly once, in per-pair FIFO order (see network.hh).
 * The fault injector can violate all three properties (drops,
 * duplicates, reorders). This sublayer restores them end to end, the
 * way a real coherence controller's network interface would:
 *
 *  - the sender stamps each protocol message with a per-(src,dst)
 *    transport sequence number and keeps it buffered until the
 *    receiver acknowledges it;
 *  - the receiver delivers frames strictly in sequence order,
 *    holding early arrivals in a reorder buffer and discarding
 *    duplicates, then acknowledges with a delayed cumulative ack;
 *  - an unacknowledged frame is retransmitted on a per-pair timer
 *    with capped exponential backoff; after maxRetransmits attempts
 *    the pair is declared dead and the run ends with a clean
 *    FatalError diagnostic instead of livelocking.
 *
 * Ack frames themselves ride the same lossy network; because acks
 * are cumulative, a lost or duplicated ack is harmless (the data
 * retransmission path covers it). The sublayer is off by default
 * and adds zero cost to the modeled timing when disabled; enabled,
 * data frames keep their natural delivery timing and only the
 * ack/retransmit traffic is added on top.
 *
 * Sharding: per-pair state divides cleanly by side. A pair's sender
 * state (send, ack arrival, retransmission timer) is touched only by
 * events on the source node's queue; its receiver state (data
 * arrival, delayed ack) only by events on the destination's. State
 * lives in flat per-pair arrays so no container ever rehashes under
 * concurrent access, and counters live in the per-pair pods, folded
 * into the published stats once threads are quiescent.
 */

#ifndef CCNUMA_NET_RELIABLE_HH
#define CCNUMA_NET_RELIABLE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "net/network.hh"
#include "protocol/messages.hh"
#include "protocol/wire.hh"
#include "sim/event_queue.hh"
#include "sim/sharded.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Reliable-transport knobs (CCNUMA_RELIABLE force-enables). */
struct ReliableParams
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;
    /**
     * Base retransmission timeout (ticks). Must comfortably exceed
     * one data+ack round trip (~80 ticks on the base network) so a
     * healthy pair never retransmits.
     */
    Tick retransmitTimeout = 400;
    /** Ceiling of the exponential timeout backoff (ticks). */
    Tick retransmitTimeoutMax = 12'800;
    /**
     * Retransmissions of one frame before the pair is declared dead
     * and the run ends with a FatalError diagnostic.
     */
    unsigned maxRetransmits = 16;
    /** Cumulative-ack coalescing window (ticks). */
    Tick ackDelay = 8;
    /** Receive reorder-buffer cap per pair (sanity backstop). */
    unsigned reorderBufCap = 4096;
    /**
     * Carry each data frame as a packed wire image with a CRC-32
     * (PR 7 integrity). A receiver that sees a CRC mismatch treats
     * the frame as lost — no processing, no ack — and go-back-N
     * re-delivers a pristine copy from the sender's unacked buffer.
     * The modeled wire size is unchanged, so timing is identical.
     */
    bool crc = false;
};

/**
 * The reliable transport. One instance serves the whole machine: it
 * owns per-(src,dst) sender and receiver state for every pair and
 * hands cleaned (exactly-once, in-order) messages to the delivery
 * callback — the same Machine::deliverMsg the controllers would
 * otherwise be wired to directly.
 */
class ReliableTransport
{
  public:
    using DeliverFn = std::function<void(const Msg &)>;

    ReliableTransport(const std::string &name, const ShardMap &map,
                      Network &net, const ReliableParams &p,
                      DeliverFn deliver);

    /** Single-queue convenience constructor (unit tests). */
    ReliableTransport(const std::string &name, EventQueue &eq,
                      Network &net, const ReliableParams &p,
                      DeliverFn deliver);

    const ReliableParams &params() const { return params_; }

    /**
     * Send @p msg (wire size @p bytes) reliably from msg.src to
     * msg.dst. Called at the instant the message enters the network.
     */
    void send(const Msg &msg, unsigned bytes);

    /** True when no frame awaits acknowledgement on any pair. */
    bool idle() const;

    // --- crash-recovery hooks (PR 6) ---

    /**
     * Receive-fence @p node: while fenced, data frames arriving at it
     * are dropped without processing or acknowledgement, exactly as
     * if the crashed controller's receive logic were dark. Senders
     * keep retransmitting on their timers, so everything dropped is
     * re-delivered (in order, exactly once) after the fence lifts —
     * this is why crash faults require the reliable transport.
     */
    void fenceNode(NodeId node, bool fenced);

    /**
     * Permanently fence a dead node: frames to or from it are
     * discarded and its pairs' unacked buffers drain on their next
     * timer instead of retransmitting. Used by degraded mode once the
     * node's pages have been migrated to a successor.
     */
    void fenceNodeDead(NodeId node);

    /**
     * Called when a frame exhausts maxRetransmits. Return true to
     * defer the pair-dead escalation (the destination is known to be
     * crash-fenced and will be restarted or migrated): the frame's
     * attempt count resets and retransmission continues. Returning
     * false keeps the PR 2 behavior — FatalError.
     */
    using PairDeadHook = std::function<bool(NodeId src, NodeId dst)>;
    void setPairDeadHook(PairDeadHook fn)
    {
        pairDeadHook_ = std::move(fn);
    }

    /** Frames dropped at a fence (tests). */
    std::uint64_t fenceDrops() const { return fenceDrops_; }

    // --- integrity hooks (PR 7) ---

    /**
     * Corruption hook, wired to the fault injector when CRC frames
     * are on: called with every packed frame image at transmit time
     * (original sends and retransmissions alike) and may flip bits in
     * place. Returns the number of bits it flipped.
     */
    using CorruptFn =
        std::function<unsigned(NodeId src, wire::FrameImage &)>;
    void setCorruptHook(CorruptFn fn) { corruptHook_ = std::move(fn); }

    /** Frames whose CRC was verified at the receiver. */
    std::uint64_t crcChecked() const;
    /** Frames discarded for a CRC mismatch (treated as losses). */
    std::uint64_t crcDetected() const;

    /** Pair-dead escalations deferred by the hook (tests). */
    std::uint64_t pairDeadDeferrals() const
    {
        return pairDeadDeferrals_;
    }

    /** Record timeouts/retransmits with one tracer for all nodes. */
    void setTracer(obs::Tracer *t)
    {
        tracerOfNode_.assign(numNodes_, t);
    }

    /** Per-node tracers (sharded: each node's shard tracer). */
    void setTracers(const std::vector<obs::Tracer *> &per_node);

    /** Dump per-pair transport state for deadlock diagnosis. */
    void dumpState(std::ostream &os) const;

    stats::Group &statGroup() { return statGroup_; }

    /**
     * Fold the per-pair counters into the published stats below.
     * Idempotent; called once shard threads are quiescent.
     */
    void syncStats();

    /**
     * Zero the published stats and the per-pair counters (warm-up
     * exclusion). Sequence numbers, unacked buffers, and timers are
     * live protocol state and are left untouched.
     */
    void resetStats();

    // --- counters (tests and the recovery scorecard) ---
    std::uint64_t dataFrames() const;
    std::uint64_t acksSent() const;
    std::uint64_t retransmits() const;
    std::uint64_t timeouts() const;
    std::uint64_t dupsDropped() const;
    std::uint64_t reordersHealed() const;
    Tick backoffTicks() const;

    stats::Scalar statDataFrames{"data_frames",
        "protocol messages sent through the transport"};
    stats::Scalar statAcks{"acks", "cumulative ack frames sent"};
    stats::Scalar statRetransmits{"retransmits",
        "data frames retransmitted"};
    stats::Scalar statTimeouts{"timeouts",
        "retransmission timer expirations"};
    stats::Scalar statDupsDropped{"dups_dropped",
        "duplicate frames discarded at the receiver"};
    stats::Scalar statReordersHealed{"reorders_healed",
        "early frames held until the sequence gap closed"};
    stats::Scalar statBackoffTicks{"backoff_ticks",
        "total ticks spent in retransmission backoff"};
    stats::Scalar statCrcChecked{"crc_checked",
        "frames whose CRC was verified at the receiver"};
    stats::Scalar statCrcDetected{"crc_detected",
        "frames discarded for a CRC mismatch"};

  private:
    /** A sent-but-unacknowledged data frame. */
    struct TxFrame
    {
        Msg msg;
        unsigned bytes = 0;
        unsigned attempts = 0; ///< retransmissions so far
        Tick firstSend = 0;
    };

    /**
     * Sender-side state of one (src,dst) pair; touched only by
     * events on the source node's queue.
     */
    struct PairTx
    {
        std::uint64_t nextSeq = 0; ///< last assigned
        std::map<std::uint64_t, TxFrame> unacked;
        bool timerArmed = false;
        std::uint64_t timerGen = 0; ///< invalidates stale timers
        unsigned backoffLevel = 0;
        std::uint64_t dataFrames = 0;
        std::uint64_t retransmits = 0;
        std::uint64_t timeouts = 0;
        Tick backoffTicks = 0;
    };

    /**
     * Receiver-side state of one (src,dst) pair; touched only by
     * events on the destination node's queue.
     */
    struct PairRx
    {
        std::uint64_t nextExpected = 1;
        std::map<std::uint64_t, Msg> held; ///< early arrivals
        bool ackPending = false;
        std::uint64_t acks = 0;
        std::uint64_t dupsDropped = 0;
        std::uint64_t reordersHealed = 0;
        std::uint64_t crcChecked = 0;
        std::uint64_t crcDetected = 0;
    };

    std::size_t
    pairIdx(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * numNodes_ + dst;
    }

    void init();
    void transmit(NodeId src, NodeId dst, std::uint64_t seq,
                  const TxFrame &f);
    void onFrameArrive(NodeId src, NodeId dst,
                       const wire::FrameImage &frame);
    void onDataArrive(NodeId src, NodeId dst, std::uint64_t seq,
                      const Msg &msg);
    void scheduleAck(NodeId src, NodeId dst);
    void onAckArrive(NodeId src, NodeId dst, std::uint64_t cum);
    void armTimer(NodeId src, NodeId dst);
    void onTimeout(NodeId src, NodeId dst, std::uint64_t gen);
    Tick rtoFor(unsigned backoff_level) const;

    std::string name_;
    ShardMap ownMap_;
    const ShardMap *map_;
    unsigned numNodes_;
    Network &net_;
    ReliableParams params_;
    DeliverFn deliver_;
    std::vector<PairTx> tx_;
    std::vector<PairRx> rx_;
    std::vector<obs::Tracer *> tracerOfNode_;
    std::vector<char> fenced_;   ///< receive-fenced (crashed) nodes
    std::vector<char> dead_;     ///< permanently fenced nodes
    PairDeadHook pairDeadHook_;
    CorruptFn corruptHook_;
    std::uint64_t fenceDrops_ = 0;
    std::uint64_t pairDeadDeferrals_ = 0;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NET_RELIABLE_HH
