/**
 * @file
 * Reliable transport sublayer over the point-to-point network.
 *
 * The coherence protocol relies on the network delivering every
 * message exactly once, in per-pair FIFO order (see network.hh).
 * The fault injector can violate all three properties (drops,
 * duplicates, reorders). This sublayer restores them end to end, the
 * way a real coherence controller's network interface would:
 *
 *  - the sender stamps each protocol message with a per-(src,dst)
 *    transport sequence number and keeps it buffered until the
 *    receiver acknowledges it;
 *  - the receiver delivers frames strictly in sequence order,
 *    holding early arrivals in a reorder buffer and discarding
 *    duplicates, then acknowledges with a delayed cumulative ack;
 *  - an unacknowledged frame is retransmitted on a per-pair timer
 *    with capped exponential backoff; after maxRetransmits attempts
 *    the pair is declared dead and the run ends with a clean
 *    FatalError diagnostic instead of livelocking.
 *
 * Ack frames themselves ride the same lossy network; because acks
 * are cumulative, a lost or duplicated ack is harmless (the data
 * retransmission path covers it). The sublayer is off by default
 * and adds zero cost to the modeled timing when disabled; enabled,
 * data frames keep their natural delivery timing and only the
 * ack/retransmit traffic is added on top.
 */

#ifndef CCNUMA_NET_RELIABLE_HH
#define CCNUMA_NET_RELIABLE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>

#include "net/network.hh"
#include "protocol/messages.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Reliable-transport knobs (CCNUMA_RELIABLE force-enables). */
struct ReliableParams
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;
    /**
     * Base retransmission timeout (ticks). Must comfortably exceed
     * one data+ack round trip (~80 ticks on the base network) so a
     * healthy pair never retransmits.
     */
    Tick retransmitTimeout = 400;
    /** Ceiling of the exponential timeout backoff (ticks). */
    Tick retransmitTimeoutMax = 12'800;
    /**
     * Retransmissions of one frame before the pair is declared dead
     * and the run ends with a FatalError diagnostic.
     */
    unsigned maxRetransmits = 16;
    /** Cumulative-ack coalescing window (ticks). */
    Tick ackDelay = 8;
    /** Receive reorder-buffer cap per pair (sanity backstop). */
    unsigned reorderBufCap = 4096;
};

/**
 * The reliable transport. One instance serves the whole machine: it
 * owns per-(src,dst) sender and receiver state for every pair and
 * hands cleaned (exactly-once, in-order) messages to the delivery
 * callback — the same Machine::deliverMsg the controllers would
 * otherwise be wired to directly.
 */
class ReliableTransport
{
  public:
    using DeliverFn = std::function<void(const Msg &)>;

    ReliableTransport(const std::string &name, EventQueue &eq,
                      Network &net, const ReliableParams &p,
                      DeliverFn deliver);

    const ReliableParams &params() const { return params_; }

    /**
     * Send @p msg (wire size @p bytes) reliably from msg.src to
     * msg.dst. Called at the instant the message enters the network.
     */
    void send(const Msg &msg, unsigned bytes);

    /** True when no frame awaits acknowledgement on any pair. */
    bool idle() const;

    /** Record timeouts/retransmits with the tracer (null = off). */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    /** Dump per-pair transport state for deadlock diagnosis. */
    void dumpState(std::ostream &os) const;

    stats::Group &statGroup() { return statGroup_; }

    // --- counters (tests and the recovery scorecard) ---
    std::uint64_t dataFrames() const
    {
        return asCount(statDataFrames);
    }
    std::uint64_t acksSent() const { return asCount(statAcks); }
    std::uint64_t retransmits() const
    {
        return asCount(statRetransmits);
    }
    std::uint64_t timeouts() const { return asCount(statTimeouts); }
    std::uint64_t dupsDropped() const
    {
        return asCount(statDupsDropped);
    }
    std::uint64_t reordersHealed() const
    {
        return asCount(statReordersHealed);
    }
    Tick backoffTicks() const
    {
        return static_cast<Tick>(statBackoffTicks.value());
    }

    stats::Scalar statDataFrames{"data_frames",
        "protocol messages sent through the transport"};
    stats::Scalar statAcks{"acks", "cumulative ack frames sent"};
    stats::Scalar statRetransmits{"retransmits",
        "data frames retransmitted"};
    stats::Scalar statTimeouts{"timeouts",
        "retransmission timer expirations"};
    stats::Scalar statDupsDropped{"dups_dropped",
        "duplicate frames discarded at the receiver"};
    stats::Scalar statReordersHealed{"reorders_healed",
        "early frames held until the sequence gap closed"};
    stats::Scalar statBackoffTicks{"backoff_ticks",
        "total ticks spent in retransmission backoff"};

  private:
    /** A sent-but-unacknowledged data frame. */
    struct TxFrame
    {
        Msg msg;
        unsigned bytes = 0;
        unsigned attempts = 0; ///< retransmissions so far
        Tick firstSend = 0;
    };

    /** Sender-side state of one (src,dst) pair. */
    struct PairTx
    {
        std::uint64_t nextSeq = 0; ///< last assigned
        std::map<std::uint64_t, TxFrame> unacked;
        bool timerArmed = false;
        std::uint64_t timerGen = 0; ///< invalidates stale timers
        unsigned backoffLevel = 0;
    };

    /** Receiver-side state of one (src,dst) pair. */
    struct PairRx
    {
        std::uint64_t nextExpected = 1;
        std::map<std::uint64_t, Msg> held; ///< early arrivals
        bool ackPending = false;
    };

    static std::uint64_t
    pairKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    static std::uint64_t asCount(const stats::Scalar &s)
    {
        return static_cast<std::uint64_t>(s.value());
    }

    void transmit(NodeId src, NodeId dst, std::uint64_t seq,
                  const TxFrame &f);
    void onDataArrive(NodeId src, NodeId dst, std::uint64_t seq,
                      const Msg &msg);
    void scheduleAck(NodeId src, NodeId dst);
    void onAckArrive(NodeId src, NodeId dst, std::uint64_t cum);
    void armTimer(NodeId src, NodeId dst);
    void onTimeout(NodeId src, NodeId dst, std::uint64_t gen);
    Tick rtoFor(unsigned backoff_level) const;

    std::string name_;
    EventQueue &eq_;
    Network &net_;
    ReliableParams params_;
    DeliverFn deliver_;
    std::unordered_map<std::uint64_t, PairTx> tx_;
    std::unordered_map<std::uint64_t, PairRx> rx_;
    obs::Tracer *tracer_ = nullptr;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NET_RELIABLE_HH
