#include "net/network.hh"

#include <algorithm>

#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace ccnuma
{

Network::Network(const std::string &name, EventQueue &eq,
                 unsigned num_nodes, const NetworkParams &p)
    : name_(name), eq_(eq), params_(p), statGroup_(name)
{
    if (num_nodes == 0)
        fatal("network %s: need at least one node", name.c_str());
    egressFreeAt_.assign(num_nodes, 0);
    ingressFreeAt_.assign(num_nodes, 0);

    statGroup_.add(&statMessages);
    statGroup_.add(&statBytes);
    statGroup_.add(&statEgressWait);
    statGroup_.add(&statIngressWait);
    statGroup_.add(&statLatency);
}

Tick
Network::serializeTicks(unsigned bytes) const
{
    unsigned flits =
        (bytes + params_.portWidthBytes - 1) / params_.portWidthBytes;
    return static_cast<Tick>(std::max(1u, flits)) * params_.portCycle;
}

void
Network::send(NodeId src, NodeId dst, unsigned bytes,
              std::function<void()> on_delivered)
{
    ccnuma_assert(src < egressFreeAt_.size());
    ccnuma_assert(dst < ingressFreeAt_.size());
    if (src == dst)
        panic("network %s: node %u sending to itself", name_.c_str(),
              src);

    Tick now = eq_.curTick();
    Tick ser = serializeTicks(bytes);

    Tick egress_start = std::max(now, egressFreeAt_[src]);
    statEgressWait.sample(static_cast<double>(egress_start - now));
    egressFreeAt_[src] = egress_start + ser;

    Tick head_arrives = egress_start + ser + params_.flightLatency;
    Tick ingress_start = std::max(head_arrives, ingressFreeAt_[dst]);
    statIngressWait.sample(
        static_cast<double>(ingress_start - head_arrives));
    Tick delivered = ingress_start + ser;
    ingressFreeAt_[dst] = delivered;

    if (tap_ != nullptr) {
        // Fault injection: the tap may delay, duplicate, or drop the
        // delivery. Port bookkeeping above stays untouched — the
        // injected perturbation is on top of the modeled timing.
        Tick duplicate_at = 0;
        if (!tap_->onDelivery(src, dst, delivered, duplicate_at))
            return;
        ccnuma_assert(delivered >= now);
        if (duplicate_at != 0)
            eq_.scheduleFunction(on_delivered, duplicate_at);
    }

    ++statMessages;
    statBytes += static_cast<double>(bytes);
    statLatency.sample(static_cast<double>(delivered - now));
    if (tracer_)
        tracer_->netSpan(src, dst, bytes, now, delivered);

    eq_.scheduleFunction(std::move(on_delivered), delivered);
}

} // namespace ccnuma
