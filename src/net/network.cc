#include "net/network.hh"

#include <algorithm>

#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace ccnuma
{

void
Network::init()
{
    if (map_->numNodes == 0)
        fatal("network %s: need at least one node", name_.c_str());
    src_.resize(map_->numNodes);
    for (SrcPod &sp : src_)
        sp.pairLastArrive.assign(map_->numNodes, 0);
    dst_.resize(map_->numNodes);
    mailboxes_.resize(map_->numShards);
    tracerOfNode_.assign(map_->numNodes, nullptr);

    statGroup_.add(&statMessages);
    statGroup_.add(&statBytes);
    statGroup_.add(&statEgressWait);
    statGroup_.add(&statIngressWait);
    statGroup_.add(&statLatency);
}

Network::Network(const std::string &name, const ShardMap &map,
                 const NetworkParams &p)
    : name_(name), map_(&map), params_(p), statGroup_(name)
{
    init();
}

Network::Network(const std::string &name, EventQueue &eq,
                 unsigned num_nodes, const NetworkParams &p)
    : name_(name), ownMap_(ShardMap::single(eq, num_nodes)),
      map_(&ownMap_), params_(p), statGroup_(name)
{
    init();
}

Tick
Network::serializeTicks(unsigned bytes) const
{
    unsigned flits =
        (bytes + params_.portWidthBytes - 1) / params_.portWidthBytes;
    return static_cast<Tick>(std::max(1u, flits)) * params_.portCycle;
}

bool
Network::planEgress(NodeId src, NodeId dst, Tick ser, Tick &arrive_at,
                    Tick &duplicate_at)
{
    ccnuma_assert(src < src_.size());
    ccnuma_assert(dst < dst_.size());
    if (src == dst)
        panic("network %s: node %u sending to itself", name_.c_str(),
              src);

    EventQueue &sq = map_->of(src);
    Tick now = sq.curTick();

    SrcPod &sp = src_[src];
    Tick egress_start = std::max(now, sp.egressFreeAt);
    sp.egressWait.sample(static_cast<double>(egress_start - now));
    sp.egressFreeAt = egress_start + ser;

    // The arrival event fires once the whole message could have
    // crossed an idle ingress port; the destination side re-derives
    // the head-arrival tick and resolves its own port contention.
    arrive_at = egress_start + ser + params_.flightLatency + ser;

    // Per-pair FIFO: a short message must not overtake an earlier
    // long one between the same endpoints.
    Tick &last = sp.pairLastArrive[dst];
    arrive_at = std::max(arrive_at, last);
    last = arrive_at;

    duplicate_at = 0;
    if (tap_ != nullptr) {
        // Fault injection: the tap may delay, duplicate, or drop the
        // delivery. Port bookkeeping above stays untouched — the
        // injected perturbation is on top of the modeled timing.
        if (!tap_->onDelivery(src, dst, arrive_at, duplicate_at))
            return false;
        ccnuma_assert(arrive_at >= now);
    }
    return true;
}

void
Network::noteSpan(NodeId src, NodeId dst, unsigned bytes,
                  Tick send_tick, Tick delivered)
{
    if (tracerOfNode_[dst])
        tracerOfNode_[dst]->netSpan(src, dst, bytes, send_tick,
                                    delivered);
}

void
Network::drainMailboxes()
{
    for (auto &box : mailboxes_) {
        for (MailboxEntry &e : box) {
            map_->of(e.dstNode).scheduleExternal(
                std::move(e.fn), e.when, Event::defaultPriority,
                e.name, e.schedTick, e.ctx, e.seq,
                map_->nodeCtx(e.dstNode));
        }
        box.clear();
    }
}

bool
Network::mailboxesEmpty() const
{
    for (const auto &box : mailboxes_) {
        if (!box.empty())
            return false;
    }
    return true;
}

Tick
Network::mailboxMinArrival() const
{
    Tick m = maxTick;
    for (const auto &box : mailboxes_) {
        for (const MailboxEntry &e : box)
            m = std::min(m, e.when);
    }
    return m;
}

std::uint64_t
Network::squashSends(unsigned src_shard, Tick from_tick)
{
    auto &box = mailboxes_[src_shard];
    auto keep = std::remove_if(
        box.begin(), box.end(), [from_tick](const MailboxEntry &e) {
            return e.schedTick >= from_tick;
        });
    auto n = static_cast<std::uint64_t>(box.end() - keep);
    box.erase(keep, box.end());
    return n;
}

void
Network::drainMailboxesCommitted(Tick send_bound)
{
    for (auto &box : mailboxes_) {
        std::size_t kept = 0;
        for (MailboxEntry &e : box) {
            if (e.schedTick < send_bound) {
                map_->of(e.dstNode).scheduleExternal(
                    std::move(e.fn), e.when, Event::defaultPriority,
                    e.name, e.schedTick, e.ctx, e.seq,
                    map_->nodeCtx(e.dstNode));
            } else {
                box[kept++] = std::move(e);
            }
        }
        box.resize(kept);
    }
}

std::shared_ptr<const void>
Network::specSaveShard(unsigned shard, std::size_t &bytes)
{
    auto s = std::make_shared<ShardSnap>();
    for (NodeId n = 0; n < static_cast<NodeId>(src_.size()); ++n) {
        if (map_->shardOf(n) != shard)
            continue;
        s->src.emplace_back(n, src_[n]);
        s->dst.emplace_back(n, dst_[n]);
        bytes += sizeof(SrcPod) + sizeof(DstPod) +
                 src_[n].pairLastArrive.size() * sizeof(Tick);
    }
    return s;
}

void
Network::specRestoreShard(unsigned shard, const void *snap)
{
    (void)shard;
    const ShardSnap *s = static_cast<const ShardSnap *>(snap);
    for (const auto &[n, pod] : s->src)
        src_[n] = pod;
    for (const auto &[n, pod] : s->dst)
        dst_[n] = pod;
}

void
Network::setTracers(const std::vector<obs::Tracer *> &per_node)
{
    ccnuma_assert(per_node.size() == src_.size());
    tracerOfNode_ = per_node;
}

void
Network::syncStats()
{
    statMessages.reset();
    statBytes.reset();
    statEgressWait.reset();
    statIngressWait.reset();
    statLatency.reset();
    for (const SrcPod &sp : src_)
        statEgressWait.merge(sp.egressWait);
    for (const DstPod &dp : dst_) {
        statMessages.merge(dp.messages);
        statBytes.merge(dp.bytes);
        statIngressWait.merge(dp.ingressWait);
        statLatency.merge(dp.latency);
    }
}

void
Network::resetStats()
{
    statGroup_.resetAll();
    for (SrcPod &sp : src_)
        sp.egressWait.reset();
    for (DstPod &dp : dst_) {
        dp.messages.reset();
        dp.bytes.reset();
        dp.ingressWait.reset();
        dp.latency.reset();
    }
}

} // namespace ccnuma
