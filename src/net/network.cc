#include "net/network.hh"

#include <algorithm>

#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace ccnuma
{

Network::Network(const std::string &name, EventQueue &eq,
                 unsigned num_nodes, const NetworkParams &p)
    : name_(name), eq_(eq), params_(p), statGroup_(name)
{
    if (num_nodes == 0)
        fatal("network %s: need at least one node", name.c_str());
    egressFreeAt_.assign(num_nodes, 0);
    ingressFreeAt_.assign(num_nodes, 0);

    statGroup_.add(&statMessages);
    statGroup_.add(&statBytes);
    statGroup_.add(&statEgressWait);
    statGroup_.add(&statIngressWait);
    statGroup_.add(&statLatency);
}

Tick
Network::serializeTicks(unsigned bytes) const
{
    unsigned flits =
        (bytes + params_.portWidthBytes - 1) / params_.portWidthBytes;
    return static_cast<Tick>(std::max(1u, flits)) * params_.portCycle;
}

bool
Network::planSend(NodeId src, NodeId dst, unsigned bytes,
                  Tick &delivered, Tick &duplicate_at)
{
    ccnuma_assert(src < egressFreeAt_.size());
    ccnuma_assert(dst < ingressFreeAt_.size());
    if (src == dst)
        panic("network %s: node %u sending to itself", name_.c_str(),
              src);

    Tick now = eq_.curTick();
    Tick ser = serializeTicks(bytes);

    Tick egress_start = std::max(now, egressFreeAt_[src]);
    statEgressWait.sample(static_cast<double>(egress_start - now));
    egressFreeAt_[src] = egress_start + ser;

    Tick head_arrives = egress_start + ser + params_.flightLatency;
    Tick ingress_start = std::max(head_arrives, ingressFreeAt_[dst]);
    statIngressWait.sample(
        static_cast<double>(ingress_start - head_arrives));
    delivered = ingress_start + ser;
    ingressFreeAt_[dst] = delivered;

    duplicate_at = 0;
    if (tap_ != nullptr) {
        // Fault injection: the tap may delay, duplicate, or drop the
        // delivery. Port bookkeeping above stays untouched — the
        // injected perturbation is on top of the modeled timing.
        if (!tap_->onDelivery(src, dst, delivered, duplicate_at))
            return false;
        ccnuma_assert(delivered >= now);
    }
    return true;
}

void
Network::recordSend(NodeId src, NodeId dst, unsigned bytes,
                    Tick delivered)
{
    ++statMessages;
    statBytes += static_cast<double>(bytes);
    statLatency.sample(
        static_cast<double>(delivered - eq_.curTick()));
    if (tracer_)
        tracer_->netSpan(src, dst, bytes, eq_.curTick(), delivered);
}

} // namespace ccnuma
