/**
 * @file
 * Worker-thread pool for parallel bench sweeps.
 *
 * The simulator itself is strictly single-threaded and deterministic:
 * one Machine owns one EventQueue and never shares mutable state with
 * another. That isolation is what makes sweep-level parallelism free —
 * each (architecture × workload) point builds its own Machine, so N
 * points can run on N threads with bit-identical per-point results.
 *
 * ThreadPool is a plain fixed-size pool (condition-variable queue);
 * parallelMap() is the deterministic-order helper the benches use:
 * results come back indexed by input position regardless of which
 * worker finished first, and the first exception (if any) is rethrown
 * in the caller after all workers drain.
 */

#ifndef CCNUMA_SIM_PARALLEL_HH
#define CCNUMA_SIM_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ccnuma
{

/** Fixed-size worker pool. Tasks are plain closures. */
class ThreadPool
{
  public:
    /**
     * @param jobs worker count; 0 selects the hardware concurrency.
     */
    explicit ThreadPool(unsigned jobs = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned jobs() const { return jobs_; }

    /** Enqueue @p task for execution on some worker. */
    void post(std::function<void()> task);

    /** Block until every posted task has finished running. */
    void wait();

    /** @return the machine's hardware concurrency (at least 1). */
    static unsigned hardwareJobs();

  private:
    void workerLoop();

    unsigned jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cvWork_;
    std::condition_variable cvIdle_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
};

/**
 * Apply @p fn to every index in [0, n) using @p jobs workers.
 * Index order of execution is unspecified; completion is awaited.
 * jobs <= 1 runs inline (no threads), preserving exact serial
 * behavior for the default bench configuration.
 */
template <typename Fn>
void
parallelForIndex(unsigned jobs, std::size_t n, Fn &&fn)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(jobs);
    std::atomic<std::size_t> next{0};
    std::mutex emu;
    std::exception_ptr first;
    unsigned spawn = static_cast<unsigned>(
        std::min<std::size_t>(pool.jobs(), n));
    for (unsigned w = 0; w < spawn; ++w) {
        pool.post([&] {
            while (true) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> g(emu);
                    if (!first)
                        first = std::current_exception();
                }
            }
        });
    }
    pool.wait();
    if (first)
        std::rethrow_exception(first);
}

/**
 * Map @p fn over @p items on @p jobs workers and return the results
 * in input order — the deterministic-collection primitive for bench
 * sweeps. @p fn must be callable concurrently from multiple threads.
 */
template <typename T, typename Fn>
auto
parallelMap(unsigned jobs, const std::vector<T> &items, Fn &&fn)
    -> std::vector<std::decay_t<decltype(fn(items[0]))>>
{
    using R = std::decay_t<decltype(fn(items[0]))>;
    std::vector<R> results(items.size());
    parallelForIndex(jobs, items.size(),
                     [&](std::size_t i) { results[i] = fn(items[i]); });
    return results;
}

} // namespace ccnuma

#endif // CCNUMA_SIM_PARALLEL_HH
