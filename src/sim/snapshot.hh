/**
 * @file
 * Checkpointable component state for speculative (Time-Warp) shards.
 *
 * Two capture strategies, one interface:
 *
 *  - Small transient state (controller engines, MSHRs, bus grants,
 *    processor counters, network port pods) is captured by full copy:
 *    specSave() returns a type-erased value snapshot and
 *    specRestore() assigns it back.
 *
 *  - Big stores (the L1/L2 line arrays, the directory line map and
 *    its cache, the memory version map) keep an undo journal instead:
 *    every mutation while speculation is armed appends the old value,
 *    specSave() returns only the journal position, and specRestore()
 *    replays the log backwards to that position. A snapshot is then a
 *    few bytes regardless of store size.
 *
 * The global-virtual-time sweep calls specCommit() with the oldest
 * snapshot any shard still retains, letting journals drop the
 * committed prefix. specBegin()/specEnd() bracket the speculative
 * session (journaled stores arm and disarm their logs there).
 */

#ifndef CCNUMA_SIM_SNAPSHOT_HH
#define CCNUMA_SIM_SNAPSHOT_HH

#include <cstddef>
#include <memory>
#include <vector>

namespace ccnuma
{

/** Checkpoint/rollback interface over one component's state. */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    /** Arm speculative capture (journaled stores start logging). */
    virtual void specBegin() {}

    /**
     * Capture the component's current state. @p bytes is incremented
     * by the snapshot's approximate footprint (RunResult accounting).
     */
    virtual std::shared_ptr<const void> specSave(std::size_t &bytes) = 0;

    /** Roll the component back to a snapshot from specSave(). */
    virtual void specRestore(const void *snap) = 0;

    /**
     * Everything older than @p oldest (the oldest snapshot any
     * checkpoint still references) is committed; journaled stores
     * trim their logs, tape-backed streams drop replayed prefixes.
     */
    virtual void specCommit(const void *oldest) { (void)oldest; }

    /** Disarm speculative capture and drop journal storage. */
    virtual void specEnd() {}
};

/**
 * Reverse-replay undo log for a journaled store. @p Rec holds one
 * mutation's pre-image; the owner supplies the undo application.
 * Positions are absolute (monotone across trims), so checkpoint marks
 * stay valid after the committed prefix is dropped.
 */
template <typename Rec>
class UndoLog
{
  public:
    bool armed() const { return armed_; }
    void arm() { armed_ = true; }

    void
    disarm()
    {
        armed_ = false;
        recs_.clear();
        base_ += 0;
        recs_.shrink_to_fit();
    }

    /** Append a pre-image (call only when armed). */
    void push(Rec r) { recs_.push_back(std::move(r)); }

    /** Absolute position marking "now". */
    std::size_t mark() const { return base_ + recs_.size(); }

    /**
     * Undo every record at or past @p mark, newest first, through
     * @p apply(const Rec &).
     */
    template <typename F>
    void
    undoTo(std::size_t mark, F &&apply)
    {
        while (base_ + recs_.size() > mark) {
            apply(recs_.back());
            recs_.pop_back();
        }
    }

    /** Records before @p mark are committed; drop them. */
    void
    trimBelow(std::size_t mark)
    {
        if (mark <= base_)
            return;
        std::size_t n = mark - base_;
        if (n >= recs_.size()) {
            base_ += recs_.size();
            recs_.clear();
            return;
        }
        recs_.erase(recs_.begin(),
                    recs_.begin() + static_cast<std::ptrdiff_t>(n));
        base_ = mark;
    }

    std::size_t sizeRecs() const { return recs_.size(); }

  private:
    bool armed_ = false;
    std::vector<Rec> recs_;
    std::size_t base_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_SIM_SNAPSHOT_HH
