/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar
 * counters, sample averages, and bucketed distributions, grouped per
 * component and dumpable as a formatted report. All stats support
 * reset() so measurements can exclude warm-up (the paper reports the
 * parallel phase only).
 */

#ifndef CCNUMA_SIM_STATS_HH
#define CCNUMA_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{
namespace stats
{

/** Base class for all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Zero the statistic (used to discard warm-up). */
    virtual void reset() = 0;

    /** Print one or more "name value # desc" lines. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /**
     * Flatten the statistic's raw accumulators onto @p out, and the
     * inverse. Speculative (Time-Warp) shards checkpoint every stat a
     * shard can touch and roll it back on straggler-triggered squash,
     * so the final report stays bit-identical to a serial run.
     */
    virtual void appendValues(std::vector<double> &out) const = 0;
    /** Restore from values written by appendValues; advances @p pos. */
    virtual void restoreValues(const std::vector<double> &v,
                               std::size_t &pos) = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple additive counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }

    double value() const { return value_; }
    void set(double v) { value_ = v; }

    /** Fold another counter in (sharded per-shard stat folding). */
    void merge(const Scalar &o) { value_ += o.value_; }

    void reset() override { value_ = 0.0; }
    void print(std::ostream &os,
               const std::string &prefix) const override;

    void
    appendValues(std::vector<double> &out) const override
    {
        out.push_back(value_);
    }

    void
    restoreValues(const std::vector<double> &v,
                  std::size_t &pos) override
    {
        value_ = v[pos++];
    }

  private:
    double value_ = 0.0;
};

/** Mean/min/max over samples (e.g. queuing delays, latencies). */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    /**
     * Fold another sample set in. All sampled values in the simulator
     * are integer tick/byte counts well under 2^53, so the merged sum
     * is exact and independent of merge order — per-shard samples
     * fold to bit-identical aggregates.
     */
    void
    merge(const Average &o)
    {
        sum_ += o.sum_;
        count_ += o.count_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    void reset() override;
    void print(std::ostream &os,
               const std::string &prefix) const override;

    void
    appendValues(std::vector<double> &out) const override
    {
        out.push_back(sum_);
        out.push_back(static_cast<double>(count_));
        out.push_back(min_);
        out.push_back(max_);
    }

    void
    restoreValues(const std::vector<double> &v,
                  std::size_t &pos) override
    {
        sum_ = v[pos++];
        count_ = static_cast<std::uint64_t>(v[pos++]);
        min_ = v[pos++];
        max_ = v[pos++];
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Fixed-width bucketed histogram. */
class Distribution : public Stat
{
  public:
    /**
     * @param bucket_size width of each bucket
     * @param num_buckets number of regular buckets; samples beyond
     *        the last bucket land in an overflow bucket.
     */
    Distribution(std::string name, std::string desc,
                 double bucket_size, std::size_t num_buckets)
        : Stat(std::move(name), std::move(desc)),
          bucketSize_(bucket_size), buckets_(num_buckets, 0)
    {}

    void
    sample(double v)
    {
        avg_.sample(v);
        if (v < 0) {
            // Casting a negative double to an unsigned index is UB;
            // negative samples get their own bucket instead.
            ++underflow_;
            return;
        }
        auto idx = static_cast<std::size_t>(v / bucketSize_);
        if (idx >= buckets_.size())
            ++overflow_;
        else
            ++buckets_[idx];
    }

    std::uint64_t count() const { return avg_.count(); }
    double mean() const { return avg_.mean(); }
    double minValue() const { return avg_.minValue(); }
    double maxValue() const { return avg_.maxValue(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketSize() const { return bucketSize_; }

    /**
     * Estimate the @p q quantile (0 <= q <= 1) by linear
     * interpolation within the fixed-width buckets. Samples in the
     * underflow bucket are treated as sitting at the recorded
     * minimum; the overflow bucket spans from the last bucket edge to
     * the recorded maximum. Returns 0 when empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }

    /** Fold another distribution in (bucket-wise; same geometry). */
    void
    merge(const Distribution &o)
    {
        ccnuma_assert(bucketSize_ == o.bucketSize_ &&
                      buckets_.size() == o.buckets_.size());
        avg_.merge(o.avg_);
        underflow_ += o.underflow_;
        overflow_ += o.overflow_;
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += o.buckets_[i];
    }

    void reset() override;
    void print(std::ostream &os,
               const std::string &prefix) const override;

    void
    appendValues(std::vector<double> &out) const override
    {
        avg_.appendValues(out);
        out.push_back(static_cast<double>(underflow_));
        out.push_back(static_cast<double>(overflow_));
        for (std::uint64_t b : buckets_)
            out.push_back(static_cast<double>(b));
    }

    void
    restoreValues(const std::vector<double> &v,
                  std::size_t &pos) override
    {
        avg_.restoreValues(v, pos);
        underflow_ = static_cast<std::uint64_t>(v[pos++]);
        overflow_ = static_cast<std::uint64_t>(v[pos++]);
        for (std::uint64_t &b : buckets_)
            b = static_cast<std::uint64_t>(v[pos++]);
    }

  private:
    Average avg_{"", ""};
    double bucketSize_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * A named collection of statistics belonging to one component.
 * Groups do not own the stats they reference; components declare
 * stats as members and register them.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void add(Stat *s) { stats_.push_back(s); }

    const std::string &name() const { return name_; }
    const std::vector<Stat *> &stats() const { return stats_; }

    void resetAll();
    void print(std::ostream &os) const;

  private:
    std::string name_;
    std::vector<Stat *> stats_;
};

/** Registry of groups for whole-machine dumps. */
class Registry
{
  public:
    void add(Group *g) { groups_.push_back(g); }

    void resetAll();
    void print(std::ostream &os) const;

  private:
    std::vector<Group *> groups_;
};

} // namespace stats
} // namespace ccnuma

#endif // CCNUMA_SIM_STATS_HH
