/**
 * @file
 * Fundamental simulator types and clock conversions.
 *
 * The simulator counts time in ticks, where one tick is one compute
 * processor cycle of the modeled 200 MHz PowerPC (5 ns), matching the
 * unit used throughout the ISCA'97 paper's tables. The SMP bus and the
 * coherence controller logic run at 100 MHz, i.e. one bus cycle is two
 * ticks.
 */

#ifndef CCNUMA_SIM_TYPES_HH
#define CCNUMA_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace ccnuma
{

/** Simulated time in compute-processor cycles (5 ns each). */
using Tick = std::uint64_t;

/** Physical byte address in the simulated global address space. */
using Addr = std::uint64_t;

/** Node (SMP board) identifier, 0-based. */
using NodeId = std::uint32_t;

/** Global processor identifier, 0-based across the whole machine. */
using ProcId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Nanoseconds per tick (200 MHz compute processor). */
constexpr double nsPerTick = 5.0;

/** Compute-processor cycles per SMP bus / controller cycle (100 MHz). */
constexpr Tick ticksPerBusCycle = 2;

/** Convert bus cycles to ticks. */
constexpr Tick
busCycles(Tick n)
{
    return n * ticksPerBusCycle;
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) * nsPerTick;
}

/** Convert nanoseconds to ticks, rounding up. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>((ns + nsPerTick - 1.0) / nsPerTick);
}

} // namespace ccnuma

#endif // CCNUMA_SIM_TYPES_HH
