#include "sim/parallel.hh"

#include <algorithm>

namespace ccnuma
{

unsigned
ThreadPool::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? hardwareJobs() : jobs)
{
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cvWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    cvWork_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cvWork_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and nothing left to run
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                cvIdle_.notify_all();
        }
    }
}

} // namespace ccnuma
