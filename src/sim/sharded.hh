/**
 * @file
 * Intra-machine sharded simulation support.
 *
 * A Machine can run on one event queue (serial) or on several, one
 * per shard of SMP nodes, advanced in lock-step conservative windows:
 * nodes interact only through the point-to-point network, whose
 * minimum end-to-end latency (serialization + flight) bounds how far
 * any shard can safely run ahead of the others. ShardMap is the
 * routing table from node to owning queue plus the deterministic
 * context numbering shared by the serial and sharded paths; ShardTeam
 * is the pool of persistent worker threads that execute one window
 * per shard between barriers. Windows are ~16 ticks, so the handoff
 * uses a spin-then-yield epoch barrier rather than a mutex/condvar
 * queue — the wake latency of the latter would dominate the window.
 */

#ifndef CCNUMA_SIM_SHARDED_HH
#define CCNUMA_SIM_SHARDED_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{

/**
 * Node-to-queue routing plus the machine-wide scheduling-context
 * numbering. Contexts are what make event ordering independent of
 * the queue layout (see EventKey): node n owns context n, the network
 * egress port of source node s owns context numNodes + s, the sync
 * manager owns context 2*numNodes, and machine start-up/teardown uses
 * context 2*numNodes + 1.
 */
struct ShardMap
{
    unsigned numNodes = 0;
    unsigned numShards = 1;
    /** Owning queue per shard. */
    std::vector<EventQueue *> queueOfShard;
    /** Shard index per node (contiguous blocks). */
    std::vector<unsigned> shardOfNode;

    EventQueue &
    of(unsigned node) const
    {
        return *queueOfShard[shardOfNode[node]];
    }

    unsigned shardOf(unsigned node) const { return shardOfNode[node]; }
    bool sharded() const { return numShards > 1; }

    std::uint32_t nodeCtx(unsigned node) const { return node; }
    std::uint32_t netCtx(unsigned src) const { return numNodes + src; }
    std::uint32_t syncCtx() const { return 2 * numNodes; }
    std::uint32_t externalCtx() const { return 2 * numNodes + 1; }
    std::uint32_t numContexts() const { return 2 * numNodes + 2; }

    /** Serial layout: every node on one queue. */
    static ShardMap single(EventQueue &eq, unsigned num_nodes);

    /**
     * Block partition of @p num_nodes nodes over the given queues
     * (num_nodes must be a multiple of the queue count).
     */
    static ShardMap partition(const std::vector<EventQueue *> &queues,
                              unsigned num_nodes);
};

/**
 * Persistent worker team for the sharded window loop. Shard 0 runs on
 * the coordinating thread itself; shards 1..n-1 each get a dedicated
 * worker parked on a spin-then-yield epoch barrier. run() executes
 * fn(shard) for every shard and returns when all are done, rethrowing
 * the lowest-shard exception if any shard threw.
 */
class ShardTeam
{
  public:
    explicit ShardTeam(unsigned shards);
    ~ShardTeam();

    ShardTeam(const ShardTeam &) = delete;
    ShardTeam &operator=(const ShardTeam &) = delete;

    void run(const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned shard);
    /** Spin briefly, then yield, until @p ready returns true. */
    static void spinUntil(const std::function<bool()> &ready);

    unsigned shards_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *fn_ = nullptr;
    std::vector<std::exception_ptr> errors_;
    std::vector<std::thread> workers_;
};

} // namespace ccnuma

#endif // CCNUMA_SIM_SHARDED_HH
