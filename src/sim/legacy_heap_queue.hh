/**
 * @file
 * The simulator's original binary-heap event queue, retained as a
 * test oracle for the timing-wheel EventQueue.
 *
 * This is the classic priority_queue + lazy-cancellation design the
 * wheel replaced: entries are heap-ordered by (tick, priority,
 * insertion seq), and deschedule() marks the entry's handle in a
 * cancelled set that the pop path consults and drains. The production
 * queue no longer needs that set at all (intrusive in-place unlink),
 * but the differential fuzz test drives both implementations with the
 * same operation stream and requires identical firing orders, which
 * makes this ~100-line oracle worth keeping.
 *
 * The pop path here also carries the fix for the seed's subtle bug:
 * the cancelled-set check must be skipped entirely while the set is
 * empty. The original guard evaluated `cancelled_.count(...)` first,
 * paying a hash lookup per pop even in the common no-cancellation
 * case — and, worse, an early-out that tested only the set (not the
 * heap top) could let a stale top entry survive a drain check.
 */

#ifndef CCNUMA_SIM_LEGACY_HEAP_QUEUE_HH
#define CCNUMA_SIM_LEGACY_HEAP_QUEUE_HH

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{

/**
 * Handle-based heap queue with the pre-wheel semantics: same
 * (tick, priority, seq) ordering contract as EventQueue.
 */
class LegacyHeapQueue
{
  public:
    using Handle = std::uint64_t;

    /** What fired, as reported by step(). */
    struct Fired
    {
        Handle handle = 0;
        Tick when = 0;
        int priority = 0;
        std::uint64_t seq = 0;
    };

    Tick curTick() const { return curTick_; }
    bool empty() const { return live_ == 0; }
    std::uint64_t numPending() const { return live_; }

    /** Schedule an entry; @return its handle (for deschedule). */
    Handle
    schedule(Tick when, int priority)
    {
        ccnuma_assert(when >= curTick_);
        Handle h = nextHandle_++;
        heap_.push(Entry{when, priority, nextSeq_++, h});
        ++live_;
        return h;
    }

    /** Lazy-cancel @p h; the heap entry dies when it surfaces. */
    void
    deschedule(Handle h)
    {
        ccnuma_assert(live_ > 0);
        cancelled_.insert(h);
        --live_;
    }

    /** Tick of the earliest live entry (maxTick when none). */
    Tick
    nextWhen()
    {
        prune();
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    /**
     * Pop the earliest live entry and advance the clock to it.
     * @return false if nothing live remains.
     */
    bool
    step(Fired &out)
    {
        prune();
        if (heap_.empty())
            return false;
        const Entry &e = heap_.top();
        ccnuma_assert(e.when >= curTick_);
        curTick_ = e.when;
        out = Fired{e.handle, e.when, e.priority, e.seq};
        heap_.pop();
        --live_;
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Handle handle;
    };

    /** Min-heap order on (when, priority, seq). */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Discard cancelled entries sitting on top of the heap. */
    void
    prune()
    {
        // Guard on the set first: while it is empty no top entry can
        // be stale, so the common path is a single branch with no
        // hash lookup (the seed's pop guard got this wrong).
        while (!cancelled_.empty() && !heap_.empty()) {
            auto it = cancelled_.find(heap_.top().handle);
            if (it == cancelled_.end())
                return;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<Handle> cancelled_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    Handle nextHandle_ = 1;
    std::uint64_t live_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_SIM_LEGACY_HEAP_QUEUE_HH
