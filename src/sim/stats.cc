#include "sim/stats.hh"

#include <iomanip>

namespace ccnuma
{
namespace stats
{

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << value_
       << "  # " << desc() << "\n";
}

void
Average::reset()
{
    sum_ = 0.0;
    count_ = 0;
    min_ = 1e300;
    max_ = -1e300;
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + ".mean")
       << std::right << std::setw(16) << mean()
       << "  # " << desc() << " (n=" << count_ << ", min="
       << minValue() << ", max=" << maxValue() << ")\n";
}

void
Distribution::reset()
{
    avg_.reset();
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + ".mean")
       << std::right << std::setw(16) << mean()
       << "  # " << desc() << " (n=" << count() << ")\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        os << std::left << std::setw(44)
           << (prefix + name() + ".bucket" + std::to_string(i))
           << std::right << std::setw(16) << buckets_[i]
           << "  # [" << i * bucketSize_ << ", "
           << (i + 1) * bucketSize_ << ")\n";
    }
    if (overflow_) {
        os << std::left << std::setw(44)
           << (prefix + name() + ".overflow")
           << std::right << std::setw(16) << overflow_ << "\n";
    }
}

void
Group::resetAll()
{
    for (auto *s : stats_)
        s->reset();
}

void
Group::print(std::ostream &os) const
{
    for (const auto *s : stats_)
        s->print(os, name_ + ".");
}

void
Registry::resetAll()
{
    for (auto *g : groups_)
        g->resetAll();
}

void
Registry::print(std::ostream &os) const
{
    for (const auto *g : groups_)
        g->print(os);
}

} // namespace stats
} // namespace ccnuma
