#include "sim/stats.hh"

#include <iomanip>

namespace ccnuma
{
namespace stats
{

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << value_
       << "  # " << desc() << "\n";
}

void
Average::reset()
{
    sum_ = 0.0;
    count_ = 0;
    min_ = 1e300;
    max_ = -1e300;
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + ".mean")
       << std::right << std::setw(16) << mean()
       << "  # " << desc() << " (n=" << count_ << ", min="
       << minValue() << ", max=" << maxValue() << ")\n";
}

void
Distribution::reset()
{
    avg_.reset();
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
}

double
Distribution::quantile(double q) const
{
    std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the requested quantile among the sorted samples
    // (midpoint convention keeps q=0.5 of a single sample exact).
    double target = q * static_cast<double>(total);
    double cum = static_cast<double>(underflow_);
    if (target <= cum)
        return minValue();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        double next = cum + static_cast<double>(buckets_[i]);
        if (target <= next) {
            double frac = (target - cum) /
                          static_cast<double>(buckets_[i]);
            return (static_cast<double>(i) + frac) * bucketSize_;
        }
        cum = next;
    }
    // Landed in the overflow bucket: interpolate from the last bucket
    // edge up to the recorded maximum.
    if (overflow_) {
        double lo = static_cast<double>(buckets_.size()) * bucketSize_;
        double hi = std::max(maxValue(), lo);
        double frac = (target - cum) / static_cast<double>(overflow_);
        return lo + frac * (hi - lo);
    }
    return maxValue();
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + ".mean")
       << std::right << std::setw(16) << mean()
       << "  # " << desc() << " (n=" << count() << ")\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        os << std::left << std::setw(44)
           << (prefix + name() + ".bucket" + std::to_string(i))
           << std::right << std::setw(16) << buckets_[i]
           << "  # [" << i * bucketSize_ << ", "
           << (i + 1) * bucketSize_ << ")\n";
    }
    if (underflow_) {
        os << std::left << std::setw(44)
           << (prefix + name() + ".underflow")
           << std::right << std::setw(16) << underflow_ << "\n";
    }
    if (overflow_) {
        os << std::left << std::setw(44)
           << (prefix + name() + ".overflow")
           << std::right << std::setw(16) << overflow_ << "\n";
    }
}

void
Group::resetAll()
{
    for (auto *s : stats_)
        s->reset();
}

void
Group::print(std::ostream &os) const
{
    for (const auto *s : stats_)
        s->print(os, name_ + ".");
}

void
Registry::resetAll()
{
    for (auto *g : groups_)
        g->resetAll();
}

void
Registry::print(std::ostream &os) const
{
    for (const auto *g : groups_)
        g->print(os);
}

} // namespace stats
} // namespace ccnuma
