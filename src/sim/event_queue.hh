/**
 * @file
 * Discrete-event simulation kernel: events and the global event queue.
 *
 * Events scheduled for the same tick are ordered first by priority and
 * then by insertion order, making every simulation fully deterministic.
 *
 * The queue is a timing wheel rather than a binary heap: near-horizon
 * events (the bus, memory, directory, and network latencies that
 * dominate a coherence simulation are all small constants) live in
 * per-tick intrusive bucket lists with O(1) schedule/fire/cancel, and
 * far-future events (watchdog budgets, retransmission timeouts) sit in
 * an intrusive overflow list that is migrated into the wheel when the
 * window advances. Cancellation unlinks in place, so there is no
 * lazy-cancel set to consult on the pop path. One-shot callbacks are
 * served from a slab-backed free list of pooled events whose callback
 * storage is inline, so steady-state simulation performs zero heap
 * allocations per event.
 */

#ifndef CCNUMA_SIM_EVENT_QUEUE_HH
#define CCNUMA_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{

class EventQueue;

/**
 * The full deterministic ordering key of an event. Events at the same
 * tick fire in (priority, schedTick, ctx, seq) order, where schedTick
 * is the tick the event was scheduled at, ctx identifies the
 * scheduling context (a deterministic small integer: one per SMP
 * node, one per network egress port, one for the sync manager, one
 * for everything else), and seq is a per-context insertion counter.
 *
 * Because every component of the key is computed from the scheduling
 * context rather than from global insertion order, the key is
 * identical whether the machine runs on one event queue or on many
 * sharded queues — which is what makes sharded execution bit-identical
 * to serial. The sub counter disambiguates multiple side-effect
 * records (e.g. sync operations) emitted while one event fires.
 */
struct EventKey
{
    Tick when = 0;
    int priority = 0;
    Tick schedTick = 0;
    std::uint32_t ctx = 0;
    std::uint64_t seq = 0;
    std::uint32_t sub = 0;

    friend bool
    operator<(const EventKey &a, const EventKey &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        if (a.schedTick != b.schedTick)
            return a.schedTick < b.schedTick;
        if (a.ctx != b.ctx)
            return a.ctx < b.ctx;
        if (a.seq != b.seq)
            return a.seq < b.seq;
        return a.sub < b.sub;
    }
};

/**
 * Base class for schedulable events. Derived classes implement
 * process(). An event may be rescheduled after it has fired, but it
 * must not be scheduled while already pending.
 */
class Event
{
  public:
    /** Default priority; lower values fire first within a tick. */
    static constexpr int defaultPriority = 100;

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event();

    /** Called by the event queue when the event fires. */
    virtual void process() = 0;

    /** Human-readable description used in error messages. */
    virtual const char *name() const { return "anonymous event"; }

    /** @return true while the event sits in an event queue. */
    bool scheduled() const { return scheduled_; }

    /** @return the tick this event is (or was last) scheduled for. */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    /** Intrusive links: wheel bucket list or overflow list. */
    Event *prev_ = nullptr;
    Event *next_ = nullptr;
    Tick when_ = 0;
    /** Tick at which the event was scheduled (part of the key). */
    Tick schedTick_ = 0;
    std::uint64_t seq_ = 0;
    int priority_;
    /** Scheduling context the key's seq counter belongs to. */
    std::uint32_t ctx_ = 0;
    /** Context that becomes current while the event fires. */
    std::uint32_t fireCtx_ = 0;
    bool scheduled_ = false;
    bool pooled_ = false;
    /** Queue the event is scheduled on (for dtor cancellation). */
    EventQueue *queue_ = nullptr;
};

/**
 * Fixed-footprint type-erased callback: callables up to inlineBytes
 * are stored in place; larger ones fall back to the heap (counted by
 * the owning queue so the allocation-free tests can assert the hot
 * path never takes the fallback).
 */
class SmallCallback
{
  public:
    /**
     * Sized so that a captured DispatchItem-by-value plus a couple of
     * pointers — the largest hot-path capture in the simulator —
     * still fits in place.
     */
    static constexpr std::size_t inlineBytes = 112;

    SmallCallback() = default;
    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;
    ~SmallCallback() { reset(); }

    /**
     * Install @p fn. @return true if the callable had to be
     * heap-allocated (capture larger than inlineBytes).
     */
    template <typename F>
    bool
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        ccnuma_assert(invoke_ == nullptr);
        bool heap;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_))
                Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            if constexpr (!std::is_trivially_destructible_v<Fn>) {
                destroy_ = [](void *p) {
                    static_cast<Fn *>(p)->~Fn();
                };
            }
            heap = false;
        } else {
            Fn *obj = new Fn(std::forward<F>(fn));
            heap_ = obj;
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<Fn *>(p); };
            heap = true;
        }
        if constexpr (std::is_copy_constructible_v<Fn>) {
            copy_ = [](const void *src, SmallCallback &dst) {
                dst.emplace(*static_cast<const Fn *>(src));
            };
        }
        return heap;
    }

    void
    operator()()
    {
        ccnuma_assert(invoke_ != nullptr);
        invoke_(heap_ ? heap_ : static_cast<void *>(buf_));
    }

    void
    reset()
    {
        if (destroy_ != nullptr)
            destroy_(heap_ ? heap_ : static_cast<void *>(buf_));
        invoke_ = nullptr;
        destroy_ = nullptr;
        copy_ = nullptr;
        heap_ = nullptr;
    }

    /**
     * Whether the stored callable can be duplicated. Speculative
     * checkpoints copy every pending one-shot's pre-fire bytes, so
     * hot-path captures must stay copy-constructible; the speculative
     * scheduler asserts this per event rather than silently skipping.
     */
    bool copyable() const { return invoke_ == nullptr || copy_ != nullptr; }

    /** Duplicate the stored callable into @p dst (empty). */
    void
    copyTo(SmallCallback &dst) const
    {
        ccnuma_assert(invoke_ != nullptr && copy_ != nullptr);
        copy_(heap_ ? heap_ : static_cast<const void *>(buf_), dst);
    }

  private:
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    void (*copy_)(const void *, SmallCallback &) = nullptr;
    void *heap_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
};

/**
 * Convenience event wrapping a std::function callback, for
 * caller-owned (typically stack- or member-) events. One-shot
 * callbacks passed to EventQueue::scheduleFunction do NOT use this
 * class; they are served from the queue's internal pool.
 */
class EventFunction : public Event
{
  public:
    explicit EventFunction(std::function<void()> fn,
                           const char *name = "function event",
                           int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn)), name_(name)
    {}

    void process() override { fn_(); }
    const char *name() const override { return name_; }

  private:
    std::function<void()> fn_;
    const char *name_;
};

/**
 * The global event queue. One instance drives a whole simulated
 * machine; all simulation components hold a reference to it.
 */
class EventQueue
{
  public:
    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Declare the number of scheduling contexts this queue will key
     * events by. Must be called before any event is scheduled. A
     * fresh queue has a single context (0), which reproduces the
     * classic global-insertion-order tie-break exactly.
     */
    void
    setNumContexts(std::uint32_t n)
    {
        ccnuma_assert(n >= 1 && pending_ == 0);
        ctxSeq_.assign(n, 0);
    }

    /**
     * Grow the context table to at least @p n entries, preserving
     * existing sequence counters. Safe mid-run; used by the
     * single-queue convenience constructors (ShardMap::single) so
     * components built on a shared test queue never index past it.
     */
    void
    ensureContexts(std::uint32_t n)
    {
        if (n > ctxSeq_.size())
            ctxSeq_.resize(n, 0);
    }

    /**
     * Set the context that subsequent schedule() calls are attributed
     * to. The queue switches this automatically to each firing
     * event's fire-context; explicit calls are only needed for
     * scheduling done outside event processing (machine start-up).
     */
    void
    setContext(std::uint32_t c)
    {
        ccnuma_assert(c < ctxSeq_.size());
        curCtx_ = c;
    }

    std::uint32_t context() const { return curCtx_; }

    /**
     * Full deterministic key of the event currently firing (valid
     * only while step() is inside process()), with sub = 0.
     */
    EventKey
    currentKey() const
    {
        return EventKey{curTick_, curPriority_, curSchedTick_,
                        curKeyCtx_, curSeq_, 0};
    }

    /**
     * Monotone per-firing-event counter for ordering side-effect
     * records emitted while one event processes.
     */
    std::uint32_t nextSub() { return curSub_++; }

    /**
     * Schedule @p ev to fire at absolute tick @p when.
     * @pre when >= curTick() and the event is not already scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev to fire @p delta ticks from now. */
    void scheduleIn(Event *ev, Tick delta)
    {
        schedule(ev, curTick_ + delta);
    }

    /**
     * Schedule a one-shot callback at absolute tick @p when. The
     * underlying event comes from the queue's pool and returns to it
     * after firing: no allocation as long as the capture fits the
     * SmallCallback inline buffer and the pool is warm. @p name must
     * be a literal (or otherwise outlive the event).
     */
    template <typename F>
    void
    scheduleFunction(F &&fn, Tick when,
                     int priority = Event::defaultPriority,
                     const char *name = "one-shot")
    {
        PoolEvent *ev = acquirePoolEvent();
        if (ev->cb_.emplace(std::forward<F>(fn)))
            ++callbackHeapFallbacks_;
        ev->name_ = name;
        ev->priority_ = priority;
        // schedule() can panic (e.g. tick in the past); reclaim the
        // pool slot so the failed call does not leak it.
        try {
            schedule(ev, when);
        } catch (...) {
            releasePoolEvent(ev);
            throw;
        }
    }

    /** Schedule a one-shot callback @p delta ticks from now. */
    template <typename F>
    void
    scheduleFunctionIn(F &&fn, Tick delta,
                       int priority = Event::defaultPriority,
                       const char *name = "one-shot")
    {
        scheduleFunction(std::forward<F>(fn), curTick_ + delta,
                         priority, name);
    }

    /**
     * Schedule a one-shot callback with an explicitly supplied
     * ordering key instead of the implicit (curTick, curCtx,
     * next-seq) one. This is how cross-queue work — network arrivals
     * and sync grants — is injected so that its position among
     * same-tick events is identical no matter which queue (serial or
     * shard) it lands on. @p fire_ctx becomes the current context
     * while the callback runs.
     */
    template <typename F>
    void
    scheduleExternal(F &&fn, Tick when, int priority,
                     const char *name, Tick sched_tick,
                     std::uint32_t ctx, std::uint64_t seq,
                     std::uint32_t fire_ctx)
    {
        PoolEvent *ev = acquirePoolEvent();
        if (ev->cb_.emplace(std::forward<F>(fn)))
            ++callbackHeapFallbacks_;
        ev->name_ = name;
        ev->priority_ = priority;
        ev->schedTick_ = sched_tick;
        ev->ctx_ = ctx;
        ev->seq_ = seq;
        ev->fireCtx_ = fire_ctx;
        if (ledgerOn_) {
            // Committed-injection ledger (speculative shards): barrier
            // deliveries must survive a later rollback below their
            // injection point, so a copy is kept until the frontier
            // passes them. All barrier-time injectors use copyable
            // callables (std::function mailbox entries, sync grants).
            if constexpr (std::is_copy_constructible_v<std::decay_t<F>>) {
                ledger_.push_back(LedgerEntry{
                    specEpoch_, std::function<void()>(fn), name, when,
                    sched_tick, seq, priority, ctx, fire_ctx});
            } else {
                panic("non-copyable callable injected while the "
                      "speculation ledger is recording");
            }
        }
        try {
            insertScheduled(ev, when);
        } catch (...) {
            releasePoolEvent(ev);
            throw;
        }
    }

    /** Remove a pending event from the queue without firing it. */
    void deschedule(Event *ev);

    /**
     * Cancel the queue entry of a still-scheduled event whose object
     * is being destroyed during exception unwinding (called only by
     * Event::~Event). The event is unlinked in place and never
     * touched again.
     */
    void forgetDestroyed(Event *ev);

    /** @return true when no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Number of events still pending. */
    std::uint64_t numPending() const { return pending_; }

    /**
     * High-water mark of pending events over the queue's lifetime
     * (an event-population gauge for the observability export).
     */
    std::uint64_t maxPending() const { return maxPending_; }

    /** Total number of events processed so far. */
    std::uint64_t numProcessed() const { return processed_; }

    /**
     * One-shot callbacks whose capture exceeded the SmallCallback
     * inline buffer and paid a heap allocation. Hot paths keep their
     * captures small; the allocation-free test asserts this stays 0.
     */
    std::uint64_t callbackHeapFallbacks() const
    {
        return callbackHeapFallbacks_;
    }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick nextWhen() const;

    /**
     * Fire the single earliest pending event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains or curTick() exceeds @p limit. */
    void run(Tick limit = maxTick);

    /**
     * Window helper for the sharded scheduler: fire every pending
     * event strictly before tick @p end — or before the window-stop
     * tick if a clampWindowStop() call during the window lowered it —
     * then return (later events stay pending). The stop is re-read
     * after every event, so a sync post can cut its own window short
     * the moment it happens.
     */
    void runWindow(Tick end);

    /**
     * Lower the current window's stop tick (see runWindow). Used by
     * the sync manager in sharded mode: a shard that posts a sync
     * operation at tick t must not run past t + handoff, because the
     * operation's grant — scheduled at a later window barrier — may
     * land back on this very queue at that tick. Counted, never
     * silent: windowClamps() reports how often windows were cut.
     */
    void
    clampWindowStop(Tick t)
    {
        if (t < windowStop_) {
            windowStop_ = t;
            ++windowClamps_;
        }
    }

    /** Number of windows cut short by clampWindowStop(). */
    std::uint64_t windowClamps() const { return windowClamps_; }

    /**
     * Run until @p done returns true, the queue drains, or @p limit
     * is exceeded. @return true iff @p done became true.
     */
    bool runUntil(const std::function<bool()> &done,
                  Tick limit = maxTick);

    /**
     * Inlinable variant of runUntil for hot serial loops: @p done is
     * a template callable (no std::function indirection), and each
     * iteration peeks the earliest event exactly once instead of the
     * nextWhen() + step() double scan.
     */
    template <typename Done>
    bool
    runUntilFast(Done done, Tick limit = maxTick)
    {
        while (!done()) {
            Event *ev = peekWheel();
            if (ev == nullptr) {
                if (overflowCount_ == 0)
                    return false;
                advanceWheelTo(overflowMin());
                ev = peekWheel();
            }
            if (ev->when_ > limit)
                return false;
            fire(ev);
        }
        return true;
    }

    // --- speculative (Time-Warp) checkpoint support ---

    /**
     * Value snapshot of the queue's pending set and key counters.
     * Pooled one-shots are captured as pre-fire callback copies;
     * caller-owned member events are captured by pointer plus key
     * fields (their owners snapshot their own state separately).
     */
    struct QueueSnap
    {
        struct Rec
        {
            Event *member = nullptr;
            std::unique_ptr<SmallCallback> cb;
            const char *name = "one-shot";
            Tick when = 0;
            Tick schedTick = 0;
            std::uint64_t seq = 0;
            int priority = 0;
            std::uint32_t ctx = 0;
            std::uint32_t fireCtx = 0;
        };
        std::vector<Rec> recs;
        std::vector<std::uint64_t> ctxSeq;
        Tick curTick = 0;
        std::uint64_t processed = 0;
        /** Ledger entries with epoch >= this replay on restore. */
        std::uint64_t ledgerEpoch = 0;
    };

    /**
     * While on, scheduleExternal() keeps a replayable copy of every
     * injection (the committed-injection ledger). The speculative
     * barrier turns this on around mailbox drains and sync grants.
     */
    void specLedgerRecording(bool on) { ledgerOn_ = on; }

    /** Capture the pending set; @p bytes += approximate footprint. */
    std::shared_ptr<const QueueSnap> specSave(std::size_t &bytes);

    /**
     * Roll the queue back to @p s: wipe the pending set, reinsert the
     * snapshot's events (pooled ones from fresh callback copies), and
     * re-inject every ledger entry recorded after the snapshot.
     */
    void specRestore(const QueueSnap &s);

    /** Drop ledger entries committed by the frontier (when < f). */
    void specLedgerGC(Tick f);

    /** End of the speculative session: drop the ledger outright. */
    void specSessionEnd();

    // --- wheel geometry (exposed for tests/benches) ---
    // 1024 one-tick buckets: every hot latency constant in the
    // simulator (bus, memory, directory, network — all < 100 ticks)
    // lands in the window directly, while keeping the bucket array
    // small enough (16 KB) that constructing a Machine stays cheap.
    // Longer delays (watchdog budgets, retransmission timers) park in
    // the overflow tier and migrate as the window advances.
    static constexpr unsigned wheelBits = 10;
    static constexpr Tick wheelTicks = Tick(1) << wheelBits;

  private:
    /** Internal pooled one-shot event (see scheduleFunction). */
    class PoolEvent : public Event
    {
      public:
        void process() override { cb_(); }
        const char *name() const override { return name_; }

      private:
        friend class EventQueue;
        SmallCallback cb_;
        const char *name_ = "one-shot";
    };

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    static constexpr Tick wheelMask = wheelTicks - 1;
    static constexpr unsigned bitmapWords =
        static_cast<unsigned>(wheelTicks / 64);
    /** Epoch-ring geometry (overflow level 2; see epochs_). */
    static constexpr unsigned overflowEpochs = 64;
    static constexpr Tick horizonTicks =
        wheelTicks * overflowEpochs;

    bool
    inWheel(Tick when) const
    {
        return when - wheelBase_ < wheelTicks;
    }

    /** Within the epoch ring's coverage (but maybe in the wheel). */
    bool
    inHorizon(Tick when) const
    {
        return when - wheelBase_ < horizonTicks;
    }

    std::size_t
    epochSlot(Tick when) const
    {
        return static_cast<std::size_t>((when >> wheelBits) &
                                        (overflowEpochs - 1));
    }

    void insertSorted(Bucket &b, Event *ev);
    /** Insert @p ev at @p when with its key fields already set. */
    void insertScheduled(Event *ev, Tick when);
    void unlink(Event *ev);
    /** Earliest pending event, or nullptr. Never mutates the wheel. */
    Event *peekWheel() const;
    /** Exact minimum tick over the overflow tier (non-empty). */
    Tick overflowMin() const;
    /** Exact minimum tick over the far list (empty -> maxTick). */
    Tick farMin() const;
    /**
     * Re-base the wheel window so that @p target falls inside it and
     * migrate the destination epoch's overflow bucket into the wheel.
     * Cost is O(events actually migrating); parked populations in
     * later epochs are never touched, and a cached lower bound lets
     * an advance below every parked event return without even the
     * bucket lookup.
     * @pre the wheel is empty and target >= curTick_.
     */
    void advanceWheelTo(Tick target);
    /** Pop bookkeeping + process() for an already-peeked event. */
    void fire(Event *ev);

    PoolEvent *acquirePoolEvent();
    void releasePoolEvent(PoolEvent *ev);

    /**
     * Recyclable allocation backbone of a queue: the bucket array and
     * the one-shot pool slabs. Machines are constructed once per
     * sweep point, so destroyed queues donate these (cleaned) to a
     * thread-local cache the next queue on the thread draws from,
     * making EventQueue construction allocation-free in the steady
     * state of a parallel sweep.
     */
    struct Core
    {
        std::vector<Bucket> buckets;
        std::vector<std::unique_ptr<PoolEvent[]>> slabs;
        PoolEvent *freeList = nullptr;
    };
    static std::vector<Core> &coreCache();

    std::vector<Bucket> buckets_;
    std::uint64_t bitmap_[bitmapWords] = {};
    /** First tick of the wheel window (aligned to wheelTicks). */
    Tick wheelBase_ = 0;
    std::uint64_t nearCount_ = 0;

    /**
     * Overflow level 2: a fixed ring of 64 epoch slots, one per
     * future wheel window (epoch = when >> wheelBits; slot = epoch
     * mod 64), covering the next 64 windows (65536 ticks). Each slot
     * is the head of an unsorted intrusive list. Window advancement
     * migrates exactly the one slot whose epoch the wheel is opening
     * — O(events actually migrating) — so a parked population of
     * watchdog/retransmission timers costs nothing per wrap, where a
     * flat overflow list forces a full walk on every wrap. The ring
     * is a plain member array and the lists are intrusive, so
     * far-future scheduling stays allocation-free in the steady
     * state (the repo's counting-allocator tests enforce this).
     *
     * Events beyond the 64-epoch horizon park in level 3, the far
     * list, and are swept into ring slots when the advancing horizon
     * reaches them; farMinLB_ (same stale-lower-bound protocol as
     * overflowMinLB_) makes the "nothing to sweep" check O(1), so a
     * population parked eons out is never walked at all.
     */
    std::array<Event *, 64> epochs_ = {};
    /** Total far-future events: ring slots + far list. */
    std::uint64_t overflowCount_ = 0;
    /** Level 3: events beyond the epoch ring's horizon, unsorted. */
    Event *farHead_ = nullptr;
    std::uint64_t farCount_ = 0;
    mutable Tick farMinLB_ = maxTick;
    mutable bool farMinExact_ = true;
    /**
     * Cached lower bound on the overflow ticks: exact while
     * overflowMinExact_, and always <= the true minimum (removing an
     * event can only raise the minimum, so a stale bound stays a
     * bound). Keeps nextWhen() and window advancement O(1) instead of
     * walking the overflow list — a per-window cost in the sharded
     * scheduler, whose GVT computation polls every shard's horizon.
     */
    mutable Tick overflowMinLB_ = maxTick;
    mutable bool overflowMinExact_ = true;

    /** Stop tick of the window in progress (see runWindow). */
    Tick windowStop_ = maxTick;
    std::uint64_t windowClamps_ = 0;

    Tick curTick_ = 0;
    /** Per-context insertion counters (single context by default). */
    std::vector<std::uint64_t> ctxSeq_ = {0};
    std::uint32_t curCtx_ = 0;
    /** Key of the event currently firing (see currentKey()). */
    int curPriority_ = 0;
    Tick curSchedTick_ = 0;
    std::uint32_t curKeyCtx_ = 0;
    std::uint64_t curSeq_ = 0;
    std::uint32_t curSub_ = 0;
    std::uint64_t pending_ = 0;
    std::uint64_t maxPending_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t callbackHeapFallbacks_ = 0;

    /** Pool of one-shot events: slab chunks + intrusive free list. */
    std::vector<std::unique_ptr<PoolEvent[]>> slabs_;
    PoolEvent *freeList_ = nullptr;

    /** One committed-injection ledger record (see specLedgerRecording). */
    struct LedgerEntry
    {
        std::uint64_t epoch;
        std::function<void()> fn;
        const char *name;
        Tick when;
        Tick schedTick;
        std::uint64_t seq;
        int priority;
        std::uint32_t ctx;
        std::uint32_t fireCtx;
    };

    /** Unlink every pending event (pooled ones return to the pool). */
    void specClear();

    std::vector<LedgerEntry> ledger_;
    bool ledgerOn_ = false;
    /** Monotone snapshot counter tagging ledger entries. */
    std::uint64_t specEpoch_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_SIM_EVENT_QUEUE_HH
