/**
 * @file
 * Discrete-event simulation kernel: events and the global event queue.
 *
 * Events scheduled for the same tick are ordered first by priority and
 * then by insertion order, making every simulation fully deterministic.
 */

#ifndef CCNUMA_SIM_EVENT_QUEUE_HH
#define CCNUMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{

class EventQueue;

/**
 * Base class for schedulable events. Derived classes implement
 * process(). An event may be rescheduled after it has fired, but it
 * must not be scheduled while already pending.
 */
class Event
{
  public:
    /** Default priority; lower values fire first within a tick. */
    static constexpr int defaultPriority = 100;

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event();

    /** Called by the event queue when the event fires. */
    virtual void process() = 0;

    /** Human-readable description used in error messages. */
    virtual std::string name() const { return "anonymous event"; }

    /** @return true while the event sits in an event queue. */
    bool scheduled() const { return scheduled_; }

    /** @return the tick this event is (or was last) scheduled for. */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    int priority_;
    bool scheduled_ = false;
    bool autoDelete_ = false;
    /** Queue the event is scheduled on (for dtor cancellation). */
    EventQueue *queue_ = nullptr;
};

/** Convenience event wrapping a std::function callback. */
class EventFunction : public Event
{
  public:
    explicit EventFunction(std::function<void()> fn,
                           const std::string &name = "function event",
                           int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn)), name_(name)
    {}

    void process() override { fn_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/**
 * The global event queue. One instance drives a whole simulated
 * machine; all simulation components hold a reference to it.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p ev to fire at absolute tick @p when.
     * @pre when >= curTick() and the event is not already scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev to fire @p delta ticks from now. */
    void scheduleIn(Event *ev, Tick delta)
    {
        schedule(ev, curTick_ + delta);
    }

    /**
     * Schedule a one-shot callback at absolute tick @p when. The
     * underlying event is heap-allocated and freed after firing.
     */
    void scheduleFunction(std::function<void()> fn, Tick when,
                          int priority = Event::defaultPriority);

    /** Schedule a one-shot callback @p delta ticks from now. */
    void
    scheduleFunctionIn(std::function<void()> fn, Tick delta,
                       int priority = Event::defaultPriority)
    {
        scheduleFunction(std::move(fn), curTick_ + delta, priority);
    }

    /** Remove a pending event from the queue without firing it. */
    void deschedule(Event *ev);

    /**
     * Cancel the queue entry of a still-scheduled event whose object
     * is being destroyed during exception unwinding (called only by
     * Event::~Event). The entry is lazily dropped; the event object
     * is never touched again.
     */
    void forgetDestroyed(Event *ev);

    /** @return true when no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Number of events still pending. */
    std::uint64_t numPending() const { return pending_; }

    /**
     * High-water mark of pending events over the queue's lifetime
     * (an event-population gauge for the observability export).
     */
    std::uint64_t maxPending() const { return maxPending_; }

    /** Total number of events processed so far. */
    std::uint64_t numProcessed() const { return processed_; }

    /**
     * Fire the single earliest pending event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains or curTick() exceeds @p limit. */
    void run(Tick limit = maxTick);

    /**
     * Run until @p done returns true, the queue drains, or @p limit
     * is exceeded. @return true iff @p done became true.
     */
    bool runUntil(const std::function<bool()> &done,
                  Tick limit = maxTick);

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> q_;
    /** Sequence numbers of lazily cancelled entries. */
    std::unordered_set<std::uint64_t> cancelled_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t pending_ = 0;
    std::uint64_t maxPending_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_SIM_EVENT_QUEUE_HH
