#include "sim/sharded.hh"

namespace ccnuma
{

ShardMap
ShardMap::single(EventQueue &eq, unsigned num_nodes)
{
    ShardMap m;
    m.numNodes = num_nodes;
    m.numShards = 1;
    m.queueOfShard = {&eq};
    m.shardOfNode.assign(num_nodes, 0);
    eq.ensureContexts(m.numContexts());
    return m;
}

ShardMap
ShardMap::partition(const std::vector<EventQueue *> &queues,
                    unsigned num_nodes)
{
    ccnuma_assert(!queues.empty());
    ccnuma_assert(num_nodes % queues.size() == 0);
    ShardMap m;
    m.numNodes = num_nodes;
    m.numShards = static_cast<unsigned>(queues.size());
    m.queueOfShard = queues;
    m.shardOfNode.resize(num_nodes);
    unsigned per = num_nodes / m.numShards;
    for (unsigned n = 0; n < num_nodes; ++n)
        m.shardOfNode[n] = n / per;
    return m;
}

ShardTeam::ShardTeam(unsigned shards)
    : shards_(shards), errors_(shards)
{
    ccnuma_assert(shards >= 1);
    workers_.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

ShardTeam::~ShardTeam()
{
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto &w : workers_)
        w.join();
}

void
ShardTeam::spinUntil(const std::function<bool()> &ready)
{
    while (true) {
        for (int i = 0; i < 4096; ++i) {
            if (ready())
                return;
        }
        std::this_thread::yield();
    }
}

void
ShardTeam::workerLoop(unsigned shard)
{
    std::uint64_t seen = 0;
    while (true) {
        spinUntil([&] {
            return epoch_.load(std::memory_order_acquire) != seen;
        });
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        try {
            (*fn_)(shard);
        } catch (...) {
            errors_[shard] = std::current_exception();
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ShardTeam::run(const std::function<void(unsigned)> &fn)
{
    for (auto &e : errors_)
        e = nullptr;
    fn_ = &fn;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    try {
        fn(0);
    } catch (...) {
        errors_[0] = std::current_exception();
    }
    spinUntil([&] {
        return done_.load(std::memory_order_acquire) == shards_ - 1;
    });
    for (auto &e : errors_) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace ccnuma
