#include "sim/logging.hh"

#include <cstdarg>
#include <vector>

namespace ccnuma
{
namespace logging_detail
{

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace logging_detail

bool
traceLineEnabled(std::uint64_t line_addr)
{
    static const std::uint64_t traced = [] {
        const char *env = std::getenv("CCNUMA_TRACE_LINE");
        return env ? std::strtoull(env, nullptr, 16) : 0ull;
    }();
    return traced != 0 && traced == line_addr;
}

} // namespace ccnuma
