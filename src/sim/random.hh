/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 * Every stochastic choice in the simulator draws from an explicitly
 * seeded Random instance so whole-machine runs are reproducible.
 */

#ifndef CCNUMA_SIM_RANDOM_HH
#define CCNUMA_SIM_RANDOM_HH

#include <cstdint>

namespace ccnuma
{

/** xoshiro256** generator with splitmix64 seeding. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 to spread the seed across the state.
        std::uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (slight bias is
        // irrelevant at simulation scales).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace ccnuma

#endif // CCNUMA_SIM_RANDOM_HH
