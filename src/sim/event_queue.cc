#include "sim/event_queue.hh"

namespace ccnuma
{

Event::~Event()
{
    // Destroying a still-scheduled event would leave a dangling
    // pointer in the queue; that is always a simulator bug.
    if (scheduled_) {
        // Cannot throw from a destructor; print and abort instead.
        std::fprintf(stderr,
                     "panic: event '%s' destroyed while scheduled\n",
                     name().c_str());
        std::abort();
    }
}

EventQueue::~EventQueue()
{
    // Drop remaining entries, freeing auto-delete events that never
    // fired so that tear-down does not leak.
    while (!q_.empty()) {
        Entry e = q_.top();
        q_.pop();
        if (cancelled_.erase(e.seq))
            continue;
        e.ev->scheduled_ = false;
        if (e.ev->autoDelete_)
            delete e.ev;
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    ccnuma_assert(ev != nullptr);
    if (when < curTick_) {
        panic("scheduling event '%s' at tick %llu in the past "
              "(now %llu)", ev->name().c_str(),
              (unsigned long long)when, (unsigned long long)curTick_);
    }
    if (ev->scheduled_) {
        panic("event '%s' scheduled while already pending",
              ev->name().c_str());
    }
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    q_.push(Entry{when, ev->priority(), ev->seq_, ev});
    ++pending_;
}

void
EventQueue::scheduleFunction(std::function<void()> fn, Tick when,
                             int priority)
{
    auto *ev = new EventFunction(std::move(fn), "one-shot", priority);
    ev->autoDelete_ = true;
    schedule(ev, when);
}

void
EventQueue::deschedule(Event *ev)
{
    ccnuma_assert(ev != nullptr);
    if (!ev->scheduled_)
        panic("descheduling event '%s' that is not pending",
              ev->name().c_str());
    ev->scheduled_ = false;
    cancelled_.insert(ev->seq_);
    --pending_;
    // If the event owned itself, nobody else will free it.
    if (ev->autoDelete_)
        delete ev;
}

bool
EventQueue::step()
{
    while (!q_.empty()) {
        Entry e = q_.top();
        q_.pop();
        if (cancelled_.erase(e.seq))
            continue; // lazily removed entry
        ccnuma_assert(e.when >= curTick_);
        curTick_ = e.when;
        Event *ev = e.ev;
        ev->scheduled_ = false;
        --pending_;
        ++processed_;
        bool auto_delete = ev->autoDelete_;
        ev->process();
        // process() may have rescheduled the event; only delete
        // self-owned events that are not pending again.
        if (auto_delete && !ev->scheduled_)
            delete ev;
        return true;
    }
    return false;
}

void
EventQueue::run(Tick limit)
{
    while (!q_.empty()) {
        if (q_.top().when > limit)
            return;
        step();
    }
}

bool
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    while (!done()) {
        if (q_.empty() || q_.top().when > limit)
            return false;
        step();
    }
    return true;
}

} // namespace ccnuma
