#include "sim/event_queue.hh"

#include <cstdio>
#include <exception>
#include <memory>

namespace ccnuma
{

Event::~Event()
{
    if (!scheduled_)
        return;
    // Destroying a still-scheduled event leaves a dangling pointer
    // in the queue; normally that is a simulator bug worth dying
    // for. During exception unwinding, though, aborting here would
    // mask the original error (a PanicError thrown from deep inside
    // a handler unwinds through component owners whose events are
    // still pending), so tolerate it: cancel the queue entry and let
    // the original exception propagate.
    if (std::uncaught_exceptions() > 0 && queue_ != nullptr) {
        std::fprintf(stderr,
                     "warn: event '%s' destroyed while scheduled "
                     "(exception unwinding); entry cancelled\n",
                     name().c_str());
        queue_->forgetDestroyed(this);
        return;
    }
    // Cannot throw from a destructor; print and abort instead.
    std::fprintf(stderr,
                 "panic: event '%s' destroyed while scheduled\n",
                 name().c_str());
    std::abort();
}

EventQueue::~EventQueue()
{
    // Drop remaining entries, freeing auto-delete events that never
    // fired so that tear-down does not leak.
    while (!q_.empty()) {
        Entry e = q_.top();
        q_.pop();
        if (cancelled_.erase(e.seq))
            continue;
        e.ev->scheduled_ = false;
        if (e.ev->autoDelete_)
            delete e.ev;
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    ccnuma_assert(ev != nullptr);
    if (when < curTick_) {
        panic("scheduling event '%s' at tick %llu in the past "
              "(now %llu)", ev->name().c_str(),
              (unsigned long long)when, (unsigned long long)curTick_);
    }
    if (ev->scheduled_) {
        panic("event '%s' scheduled while already pending",
              ev->name().c_str());
    }
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    ev->queue_ = this;
    q_.push(Entry{when, ev->priority(), ev->seq_, ev});
    ++pending_;
    if (pending_ > maxPending_)
        maxPending_ = pending_;
}

void
EventQueue::forgetDestroyed(Event *ev)
{
    ccnuma_assert(ev != nullptr && ev->scheduled_);
    ev->scheduled_ = false;
    cancelled_.insert(ev->seq_);
    --pending_;
}

void
EventQueue::scheduleFunction(std::function<void()> fn, Tick when,
                             int priority)
{
    auto ev = std::make_unique<EventFunction>(std::move(fn),
                                              "one-shot", priority);
    ev->autoDelete_ = true;
    // schedule() can panic (e.g. tick in the past); only hand
    // ownership to the queue once the event is actually enqueued.
    schedule(ev.get(), when);
    ev.release();
}

void
EventQueue::deschedule(Event *ev)
{
    ccnuma_assert(ev != nullptr);
    if (!ev->scheduled_)
        panic("descheduling event '%s' that is not pending",
              ev->name().c_str());
    ev->scheduled_ = false;
    cancelled_.insert(ev->seq_);
    --pending_;
    // If the event owned itself, nobody else will free it.
    if (ev->autoDelete_)
        delete ev;
}

bool
EventQueue::step()
{
    while (!q_.empty()) {
        Entry e = q_.top();
        q_.pop();
        if (cancelled_.erase(e.seq))
            continue; // lazily removed entry
        ccnuma_assert(e.when >= curTick_);
        curTick_ = e.when;
        Event *ev = e.ev;
        ev->scheduled_ = false;
        --pending_;
        ++processed_;
        // process() may have rescheduled the event; only delete
        // self-owned events that are not pending again. A scope
        // guard keeps that true when process() throws (fatal/panic
        // from a handler), so the one-shot does not leak.
        struct Reaper
        {
            Event *ev;
            bool autoDelete;
            ~Reaper()
            {
                if (autoDelete && !ev->scheduled_)
                    delete ev;
            }
        } reaper{ev, ev->autoDelete_};
        ev->process();
        return true;
    }
    return false;
}

void
EventQueue::run(Tick limit)
{
    while (!q_.empty()) {
        if (q_.top().when > limit)
            return;
        step();
    }
}

bool
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    while (!done()) {
        if (q_.empty() || q_.top().when > limit)
            return false;
        step();
    }
    return true;
}

} // namespace ccnuma
