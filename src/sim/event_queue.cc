#include "sim/event_queue.hh"

#include <bit>
#include <cstdio>
#include <exception>

namespace ccnuma
{

Event::~Event()
{
    if (!scheduled_)
        return;
    // Destroying a still-scheduled event leaves a dangling pointer
    // in the queue; normally that is a simulator bug worth dying
    // for. During exception unwinding, though, aborting here would
    // mask the original error (a PanicError thrown from deep inside
    // a handler unwinds through component owners whose events are
    // still pending), so tolerate it: unlink the entry and let the
    // original exception propagate.
    if (std::uncaught_exceptions() > 0 && queue_ != nullptr) {
        std::fprintf(stderr,
                     "warn: event '%s' destroyed while scheduled "
                     "(exception unwinding); entry cancelled\n",
                     name());
        queue_->forgetDestroyed(this);
        return;
    }
    // Cannot throw from a destructor; print and abort instead.
    std::fprintf(stderr,
                 "panic: event '%s' destroyed while scheduled\n",
                 name());
    std::abort();
}

std::vector<EventQueue::Core> &
EventQueue::coreCache()
{
    static thread_local std::vector<Core> cache;
    return cache;
}

EventQueue::EventQueue()
{
    std::vector<Core> &cache = coreCache();
    if (!cache.empty()) {
        Core core = std::move(cache.back());
        cache.pop_back();
        buckets_ = std::move(core.buckets);
        slabs_ = std::move(core.slabs);
        freeList_ = core.freeList;
    } else {
        buckets_.resize(wheelTicks);
    }
}

EventQueue::~EventQueue()
{
    // Pending events must not see scheduled_ == true from their own
    // destructors after the queue is gone. Occupied buckets are found
    // through the bitmap so a drained queue's teardown touches
    // nothing; pooled events still in flight are reset and returned
    // to the free list so the core below is donated clean.
    for (unsigned w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = bitmap_[w];
        while (bits != 0) {
            std::size_t idx = (std::size_t(w) << 6) +
                              static_cast<std::size_t>(
                                  std::countr_zero(bits));
            bits &= bits - 1;
            Bucket &b = buckets_[idx];
            for (Event *ev = b.head; ev != nullptr;) {
                Event *next = ev->next_;
                ev->scheduled_ = false;
                ev->queue_ = nullptr;
                ev->prev_ = nullptr;
                ev->next_ = nullptr;
                if (ev->pooled_)
                    releasePoolEvent(static_cast<PoolEvent *>(ev));
                ev = next;
            }
            b.head = nullptr;
            b.tail = nullptr;
        }
    }
    auto drainList = [this](Event *head) {
        for (Event *ev = head; ev != nullptr;) {
            Event *next = ev->next_;
            ev->scheduled_ = false;
            ev->queue_ = nullptr;
            ev->prev_ = nullptr;
            ev->next_ = nullptr;
            if (ev->pooled_)
                releasePoolEvent(static_cast<PoolEvent *>(ev));
            ev = next;
        }
    };
    for (Event *&head : epochs_)
        drainList(head);
    drainList(farHead_);
    // Donate the cleaned bucket array and pool slabs to the next
    // queue constructed on this thread (bounded cache).
    std::vector<Core> &cache = coreCache();
    if (cache.size() < 4) {
        cache.push_back(
            Core{std::move(buckets_), std::move(slabs_), freeList_});
    }
}

void
EventQueue::insertSorted(Bucket &b, Event *ev)
{
    // Events in one bucket share a tick; keep the list ordered by
    // (priority, schedTick, ctx, seq). Locally scheduled events carry
    // the highest (schedTick, seq) so far within their context, so
    // scanning from the tail terminates almost immediately on the hot
    // path (uniform priorities, one context); overflow migration and
    // cross-queue injection walk further.
    auto after_fires_later = [](const Event *a, const Event *e) {
        if (a->priority_ != e->priority_)
            return a->priority_ > e->priority_;
        if (a->schedTick_ != e->schedTick_)
            return a->schedTick_ > e->schedTick_;
        if (a->ctx_ != e->ctx_)
            return a->ctx_ > e->ctx_;
        return a->seq_ > e->seq_;
    };
    Event *after = b.tail;
    while (after != nullptr && after_fires_later(after, ev)) {
        after = after->prev_;
    }
    ev->prev_ = after;
    if (after != nullptr) {
        ev->next_ = after->next_;
        after->next_ = ev;
    } else {
        ev->next_ = b.head;
        b.head = ev;
    }
    if (ev->next_ != nullptr)
        ev->next_->prev_ = ev;
    else
        b.tail = ev;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    ccnuma_assert(ev != nullptr);
    ev->schedTick_ = curTick_;
    ev->ctx_ = curCtx_;
    ev->seq_ = ctxSeq_[curCtx_]++;
    ev->fireCtx_ = curCtx_;
    insertScheduled(ev, when);
}

void
EventQueue::insertScheduled(Event *ev, Tick when)
{
    if (when < curTick_) {
        panic("scheduling event '%s' at tick %llu in the past "
              "(now %llu)", ev->name(),
              (unsigned long long)when, (unsigned long long)curTick_);
    }
    if (ev->scheduled_) {
        panic("event '%s' scheduled while already pending",
              ev->name());
    }
    ev->when_ = when;
    ev->scheduled_ = true;
    ev->queue_ = this;
    if (inWheel(when)) {
        std::size_t idx = static_cast<std::size_t>(when & wheelMask);
        insertSorted(buckets_[idx], ev);
        bitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        ++nearCount_;
    } else if (inHorizon(when)) {
        // Within one ring revolution of the window: intrusive list in
        // the event's epoch slot, so window advances only ever touch
        // the one slot they open. The ring is a fixed array — this
        // path never allocates, which the steady-state pooled
        // one-shot contract (tests/sim/test_alloc_free.cc) requires.
        Event *&head = epochs_[epochSlot(when)];
        ev->prev_ = nullptr;
        ev->next_ = head;
        if (head != nullptr)
            head->prev_ = ev;
        head = ev;
        ++overflowCount_;
        // A smaller tick tightens the cached bound whether or not it
        // is currently exact; an equal-or-larger one leaves an exact
        // bound exact.
        if (when < overflowMinLB_)
            overflowMinLB_ = when;
    } else {
        // Beyond the horizon (watchdog-scale timers): unsorted far
        // list with its own stale-lower-bound min cache. Advances
        // never walk it unless its cached bound proves something may
        // have entered the horizon.
        ev->prev_ = nullptr;
        ev->next_ = farHead_;
        if (farHead_ != nullptr)
            farHead_->prev_ = ev;
        farHead_ = ev;
        ++farCount_;
        ++overflowCount_;
        if (when < farMinLB_)
            farMinLB_ = when;
        if (when < overflowMinLB_)
            overflowMinLB_ = when;
    }
    ++pending_;
    if (pending_ > maxPending_)
        maxPending_ = pending_;
}

void
EventQueue::unlink(Event *ev)
{
    if (inWheel(ev->when_)) {
        std::size_t idx =
            static_cast<std::size_t>(ev->when_ & wheelMask);
        Bucket &b = buckets_[idx];
        if (ev->prev_ != nullptr)
            ev->prev_->next_ = ev->next_;
        else
            b.head = ev->next_;
        if (ev->next_ != nullptr)
            ev->next_->prev_ = ev->prev_;
        else
            b.tail = ev->prev_;
        if (b.head == nullptr)
            bitmap_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        --nearCount_;
    } else {
        // Ring slot or far list? After every advance all far events
        // are beyond the horizon (promotion runs before anything else
        // looks at the ring), so the event's own tick discriminates.
        const bool far = !inHorizon(ev->when_);
        if (ev->prev_ != nullptr) {
            ev->prev_->next_ = ev->next_;
        } else if (far) {
            ccnuma_assert(farHead_ == ev);
            farHead_ = ev->next_;
        } else {
            Event *&head = epochs_[epochSlot(ev->when_)];
            ccnuma_assert(head == ev);
            head = ev->next_;
        }
        if (ev->next_ != nullptr)
            ev->next_->prev_ = ev->prev_;
        if (far) {
            --farCount_;
            if (farCount_ == 0) {
                farMinLB_ = maxTick;
                farMinExact_ = true;
            } else if (ev->when_ == farMinLB_) {
                farMinExact_ = false;
            }
        }
        --overflowCount_;
        if (overflowCount_ == 0) {
            overflowMinLB_ = maxTick;
            overflowMinExact_ = true;
        } else if (ev->when_ == overflowMinLB_) {
            // The minimum may have left; the bound stays valid as a
            // lower bound and is recomputed lazily on demand.
            overflowMinExact_ = false;
        }
    }
    ev->prev_ = nullptr;
    ev->next_ = nullptr;
    ev->scheduled_ = false;
    --pending_;
}

void
EventQueue::forgetDestroyed(Event *ev)
{
    ccnuma_assert(ev != nullptr && ev->scheduled_);
    unlink(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    ccnuma_assert(ev != nullptr);
    if (!ev->scheduled_)
        panic("descheduling event '%s' that is not pending",
              ev->name());
    unlink(ev);
    if (ev->pooled_)
        releasePoolEvent(static_cast<PoolEvent *>(ev));
}

Event *
EventQueue::peekWheel() const
{
    if (nearCount_ == 0)
        return nullptr;
    // All wheel events are at or after curTick_, so scanning the
    // occupancy bitmap from curTick_'s slot (or the window start if
    // the window was advanced past curTick_) finds the earliest one.
    Tick from = curTick_ > wheelBase_ ? curTick_ : wheelBase_;
    std::size_t idx = static_cast<std::size_t>(from & wheelMask);
    unsigned word = static_cast<unsigned>(idx >> 6);
    std::uint64_t bits = bitmap_[word] >> (idx & 63);
    if (bits != 0) {
        return buckets_[idx + std::countr_zero(bits)].head;
    }
    for (unsigned w = word + 1; w < bitmapWords; ++w) {
        if (bitmap_[w] != 0) {
            return buckets_[(std::size_t(w) << 6) +
                            std::countr_zero(bitmap_[w])]
                .head;
        }
    }
    return nullptr;
}

Tick
EventQueue::overflowMin() const
{
    ccnuma_assert(overflowCount_ != 0);
    if (overflowMinExact_)
        return overflowMinLB_;
    Tick min = maxTick;
    if (overflowCount_ != farCount_) {
        // Some events live in the epoch ring. Every ring event is
        // within one revolution of the window, so scanning slots in
        // ring order from the window's own epoch meets the earliest
        // occupied epoch first; the recompute walks that one slot,
        // never the whole tier.
        const std::size_t cur = epochSlot(wheelBase_);
        for (unsigned d = 0; d < overflowEpochs; ++d) {
            Event *head =
                epochs_[(cur + d) & (overflowEpochs - 1)];
            if (head == nullptr)
                continue;
            min = head->when_;
            for (Event *ev = head->next_; ev != nullptr;
                 ev = ev->next_) {
                if (ev->when_ < min)
                    min = ev->when_;
            }
            break;
        }
    }
    if (farCount_ != 0) {
        Tick fm = farMin();
        if (fm < min)
            min = fm;
    }
    overflowMinLB_ = min;
    overflowMinExact_ = true;
    return min;
}

Tick
EventQueue::farMin() const
{
    ccnuma_assert(farCount_ != 0);
    if (farMinExact_)
        return farMinLB_;
    Tick min = farHead_->when_;
    for (Event *ev = farHead_->next_; ev != nullptr; ev = ev->next_) {
        if (ev->when_ < min)
            min = ev->when_;
    }
    farMinLB_ = min;
    farMinExact_ = true;
    return min;
}

void
EventQueue::advanceWheelTo(Tick target)
{
    ccnuma_assert(nearCount_ == 0);
    wheelBase_ = target & ~wheelMask;
    // Nothing parked, nothing to migrate: re-basing an empty window
    // is a pure pointer update (the common case when a serial run
    // hops across an idle stretch).
    if (overflowCount_ == 0)
        return;
    // The horizon moved with the window: far events that now fall
    // within one ring revolution are promoted into their epoch slots
    // first, so the membership invariant (far events are always
    // beyond the horizon) holds before anything else classifies by
    // tick. The far list's cached bound gates the walk — parked
    // watchdog-scale timers are not touched until the window provably
    // approaches them — and the walk doubles as an exact far-minimum
    // recompute.
    if (farCount_ != 0 && farMinLB_ < wheelBase_ + horizonTicks) {
        Tick min = maxTick;
        for (Event *ev = farHead_; ev != nullptr;) {
            Event *next = ev->next_;
            if (inHorizon(ev->when_)) {
                if (ev->prev_ != nullptr)
                    ev->prev_->next_ = ev->next_;
                else
                    farHead_ = ev->next_;
                if (ev->next_ != nullptr)
                    ev->next_->prev_ = ev->prev_;
                Event *&head = epochs_[epochSlot(ev->when_)];
                ev->prev_ = nullptr;
                ev->next_ = head;
                if (head != nullptr)
                    head->prev_ = ev;
                head = ev;
                --farCount_;
            } else if (ev->when_ < min) {
                min = ev->when_;
            }
            ev = next;
        }
        farMinLB_ = min;
        farMinExact_ = true;
    }
    // If even the smallest parked tick lies beyond the new window,
    // nothing can migrate — and a stale lower bound is still a
    // bound, so this O(1) test rejects the entire parked population
    // without a recompute or slot lookup.
    if (overflowMinLB_ >= wheelBase_ + wheelTicks)
        return;
    // Migrate exactly the destination epoch's slot into the wheel.
    // The advance target is always the earliest pending tick, so no
    // slot holds events from an epoch before the new base and the
    // slot's ring mapping is unambiguous. Migrating events keep
    // their original seq, so the (tick, priority, seq) ordering
    // contract is untouched by living in the overflow tier; every
    // other epoch's parked population is never walked.
    Event *&slot = epochs_[epochSlot(wheelBase_)];
    for (Event *ev = slot; ev != nullptr;) {
        Event *next = ev->next_;
        std::size_t idx =
            static_cast<std::size_t>(ev->when_ & wheelMask);
        ev->prev_ = nullptr;
        ev->next_ = nullptr;
        insertSorted(buckets_[idx], ev);
        bitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        ++nearCount_;
        --overflowCount_;
        ev = next;
    }
    slot = nullptr;
    if (overflowCount_ == 0) {
        overflowMinLB_ = maxTick;
        overflowMinExact_ = true;
    } else {
        // Everything still parked sits in a later ring epoch or
        // beyond the horizon, so the next window base is a valid
        // lower bound; the exact minimum is recomputed lazily.
        overflowMinLB_ = wheelBase_ + wheelTicks;
        overflowMinExact_ = false;
    }
}

Tick
EventQueue::nextWhen() const
{
    const Event *ev = peekWheel();
    if (ev != nullptr)
        return ev->when_;
    if (overflowCount_ != 0)
        return overflowMin();
    return maxTick;
}

EventQueue::PoolEvent *
EventQueue::acquirePoolEvent()
{
    if (freeList_ == nullptr) {
        constexpr std::size_t slabEvents = 64;
        slabs_.push_back(std::make_unique<PoolEvent[]>(slabEvents));
        PoolEvent *slab = slabs_.back().get();
        for (std::size_t i = 0; i < slabEvents; ++i) {
            slab[i].pooled_ = true;
            slab[i].next_ = freeList_;
            freeList_ = &slab[i];
        }
    }
    PoolEvent *ev = freeList_;
    freeList_ = static_cast<PoolEvent *>(ev->next_);
    ev->next_ = nullptr;
    return ev;
}

void
EventQueue::releasePoolEvent(PoolEvent *ev)
{
    ev->cb_.reset();
    ev->next_ = freeList_;
    freeList_ = ev;
}

void
EventQueue::fire(Event *ev)
{
    ccnuma_assert(ev->when_ >= curTick_);
    curTick_ = ev->when_;
    unlink(ev);
    ++processed_;
    // Make the firing event's context current so everything it
    // schedules is attributed to it, and latch its key so sync
    // operations it performs can be replayed in deterministic order.
    curCtx_ = ev->fireCtx_;
    curPriority_ = ev->priority_;
    curSchedTick_ = ev->schedTick_;
    curKeyCtx_ = ev->ctx_;
    curSeq_ = ev->seq_;
    curSub_ = 0;
    // process() may reschedule the event; only return pool-owned
    // one-shots that are not pending again. A scope guard keeps that
    // true when process() throws (fatal/panic from a handler), so
    // the one-shot's captured state does not leak.
    struct Reaper
    {
        EventQueue *q;
        Event *ev;
        ~Reaper()
        {
            if (ev->pooled_ && !ev->scheduled_)
                q->releasePoolEvent(static_cast<PoolEvent *>(ev));
        }
    } reaper{this, ev};
    ev->process();
}

bool
EventQueue::step()
{
    Event *ev = peekWheel();
    if (ev == nullptr) {
        if (overflowCount_ == 0)
            return false;
        // Only far-future events remain: fast-forward the window to
        // the earliest of them and retry.
        advanceWheelTo(overflowMin());
        ev = peekWheel();
        ccnuma_assert(ev != nullptr);
    }
    fire(ev);
    return true;
}

void
EventQueue::run(Tick limit)
{
    // Each iteration peeks the earliest event exactly once; the old
    // nextWhen() pre-check repeated the same bitmap scan step() was
    // about to do.
    while (pending_ != 0) {
        Event *ev = peekWheel();
        if (ev == nullptr) {
            advanceWheelTo(overflowMin());
            ev = peekWheel();
        }
        if (ev->when_ > limit)
            return;
        fire(ev);
    }
}

void
EventQueue::runWindow(Tick end)
{
    windowStop_ = maxTick;
    while (pending_ != 0) {
        Tick stop = end < windowStop_ ? end : windowStop_;
        Event *ev = peekWheel();
        if (ev == nullptr) {
            if (overflowMin() >= stop)
                return;
            advanceWheelTo(overflowMin());
            ev = peekWheel();
        }
        if (ev->when_ >= stop)
            return;
        fire(ev);
    }
}

bool
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    return runUntilFast([&done] { return done(); }, limit);
}

std::shared_ptr<const EventQueue::QueueSnap>
EventQueue::specSave(std::size_t &bytes)
{
    auto snap = std::make_shared<QueueSnap>();
    snap->recs.reserve(static_cast<std::size_t>(pending_));
    auto capture = [&](Event *ev) {
        QueueSnap::Rec rec;
        if (ev->pooled_) {
            PoolEvent *pe = static_cast<PoolEvent *>(ev);
            if (!pe->cb_.copyable()) {
                panic("speculative checkpoint: pending one-shot '%s' "
                      "has a non-copyable capture", pe->name());
            }
            rec.cb = std::make_unique<SmallCallback>();
            pe->cb_.copyTo(*rec.cb);
            rec.name = pe->name_;
            bytes += sizeof(SmallCallback);
        } else {
            rec.member = ev;
        }
        rec.when = ev->when_;
        rec.schedTick = ev->schedTick_;
        rec.seq = ev->seq_;
        rec.priority = ev->priority_;
        rec.ctx = ev->ctx_;
        rec.fireCtx = ev->fireCtx_;
        snap->recs.push_back(std::move(rec));
    };
    for (unsigned w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = bitmap_[w];
        while (bits != 0) {
            std::size_t idx = (std::size_t(w) << 6) +
                              static_cast<std::size_t>(
                                  std::countr_zero(bits));
            bits &= bits - 1;
            for (Event *ev = buckets_[idx].head; ev != nullptr;
                 ev = ev->next_)
                capture(ev);
        }
    }
    for (Event *head : epochs_) {
        for (Event *ev = head; ev != nullptr; ev = ev->next_)
            capture(ev);
    }
    for (Event *ev = farHead_; ev != nullptr; ev = ev->next_)
        capture(ev);
    snap->ctxSeq = ctxSeq_;
    snap->curTick = curTick_;
    snap->processed = processed_;
    snap->ledgerEpoch = ++specEpoch_;
    bytes += sizeof(QueueSnap) +
             snap->recs.size() * sizeof(QueueSnap::Rec) +
             snap->ctxSeq.size() * sizeof(std::uint64_t);
    return snap;
}

void
EventQueue::specClear()
{
    auto drop = [this](Event *ev) {
        ev->scheduled_ = false;
        ev->queue_ = nullptr;
        ev->prev_ = nullptr;
        ev->next_ = nullptr;
        if (ev->pooled_)
            releasePoolEvent(static_cast<PoolEvent *>(ev));
    };
    for (unsigned w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = bitmap_[w];
        bitmap_[w] = 0;
        while (bits != 0) {
            std::size_t idx = (std::size_t(w) << 6) +
                              static_cast<std::size_t>(
                                  std::countr_zero(bits));
            bits &= bits - 1;
            Bucket &b = buckets_[idx];
            for (Event *ev = b.head; ev != nullptr;) {
                Event *next = ev->next_;
                drop(ev);
                ev = next;
            }
            b.head = nullptr;
            b.tail = nullptr;
        }
    }
    for (Event *&head : epochs_) {
        for (Event *ev = head; ev != nullptr;) {
            Event *next = ev->next_;
            drop(ev);
            ev = next;
        }
        head = nullptr;
    }
    for (Event *ev = farHead_; ev != nullptr;) {
        Event *next = ev->next_;
        drop(ev);
        ev = next;
    }
    farHead_ = nullptr;
    nearCount_ = 0;
    overflowCount_ = 0;
    farCount_ = 0;
    farMinLB_ = maxTick;
    farMinExact_ = true;
    overflowMinLB_ = maxTick;
    overflowMinExact_ = true;
    pending_ = 0;
}

void
EventQueue::specRestore(const QueueSnap &s)
{
    specClear();
    curTick_ = s.curTick;
    wheelBase_ = s.curTick & ~wheelMask;
    ctxSeq_ = s.ctxSeq;
    processed_ = s.processed;
    windowStop_ = maxTick;
    auto place = [this](Event *ev, const QueueSnap::Rec &rec) {
        ev->schedTick_ = rec.schedTick;
        ev->seq_ = rec.seq;
        ev->priority_ = rec.priority;
        ev->ctx_ = rec.ctx;
        ev->fireCtx_ = rec.fireCtx;
        insertScheduled(ev, rec.when);
    };
    for (const QueueSnap::Rec &rec : s.recs) {
        if (rec.member != nullptr) {
            place(rec.member, rec);
        } else {
            PoolEvent *pe = acquirePoolEvent();
            rec.cb->copyTo(pe->cb_);
            pe->name_ = rec.name;
            place(pe, rec);
        }
    }
    // Injections committed after this snapshot was taken (mailbox
    // deliveries, sync grants from later barriers) are not in the
    // snapshot but must survive the rollback: replay them from the
    // ledger. Recording is suppressed — they are already recorded.
    const bool wasOn = ledgerOn_;
    ledgerOn_ = false;
    for (const LedgerEntry &e : ledger_) {
        if (e.epoch < s.ledgerEpoch)
            continue;
        scheduleExternal(std::function<void()>(e.fn), e.when,
                         e.priority, e.name, e.schedTick, e.ctx,
                         e.seq, e.fireCtx);
    }
    ledgerOn_ = wasOn;
}

void
EventQueue::specLedgerGC(Tick f)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ledger_.size(); ++i) {
        if (ledger_[i].when >= f) {
            if (keep != i)
                ledger_[keep] = std::move(ledger_[i]);
            ++keep;
        }
    }
    ledger_.resize(keep);
}

void
EventQueue::specSessionEnd()
{
    ledger_.clear();
    ledger_.shrink_to_fit();
    ledgerOn_ = false;
}

} // namespace ccnuma
