#include "sim/event_queue.hh"

#include <bit>
#include <cstdio>
#include <exception>

namespace ccnuma
{

Event::~Event()
{
    if (!scheduled_)
        return;
    // Destroying a still-scheduled event leaves a dangling pointer
    // in the queue; normally that is a simulator bug worth dying
    // for. During exception unwinding, though, aborting here would
    // mask the original error (a PanicError thrown from deep inside
    // a handler unwinds through component owners whose events are
    // still pending), so tolerate it: unlink the entry and let the
    // original exception propagate.
    if (std::uncaught_exceptions() > 0 && queue_ != nullptr) {
        std::fprintf(stderr,
                     "warn: event '%s' destroyed while scheduled "
                     "(exception unwinding); entry cancelled\n",
                     name());
        queue_->forgetDestroyed(this);
        return;
    }
    // Cannot throw from a destructor; print and abort instead.
    std::fprintf(stderr,
                 "panic: event '%s' destroyed while scheduled\n",
                 name());
    std::abort();
}

std::vector<EventQueue::Core> &
EventQueue::coreCache()
{
    static thread_local std::vector<Core> cache;
    return cache;
}

EventQueue::EventQueue()
{
    std::vector<Core> &cache = coreCache();
    if (!cache.empty()) {
        Core core = std::move(cache.back());
        cache.pop_back();
        buckets_ = std::move(core.buckets);
        slabs_ = std::move(core.slabs);
        freeList_ = core.freeList;
    } else {
        buckets_.resize(wheelTicks);
    }
}

EventQueue::~EventQueue()
{
    // Pending events must not see scheduled_ == true from their own
    // destructors after the queue is gone. Occupied buckets are found
    // through the bitmap so a drained queue's teardown touches
    // nothing; pooled events still in flight are reset and returned
    // to the free list so the core below is donated clean.
    for (unsigned w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = bitmap_[w];
        while (bits != 0) {
            std::size_t idx = (std::size_t(w) << 6) +
                              static_cast<std::size_t>(
                                  std::countr_zero(bits));
            bits &= bits - 1;
            Bucket &b = buckets_[idx];
            for (Event *ev = b.head; ev != nullptr;) {
                Event *next = ev->next_;
                ev->scheduled_ = false;
                ev->queue_ = nullptr;
                ev->prev_ = nullptr;
                ev->next_ = nullptr;
                if (ev->pooled_)
                    releasePoolEvent(static_cast<PoolEvent *>(ev));
                ev = next;
            }
            b.head = nullptr;
            b.tail = nullptr;
        }
    }
    for (Event *ev = overflowHead_; ev != nullptr;) {
        Event *next = ev->next_;
        ev->scheduled_ = false;
        ev->queue_ = nullptr;
        ev->prev_ = nullptr;
        ev->next_ = nullptr;
        if (ev->pooled_)
            releasePoolEvent(static_cast<PoolEvent *>(ev));
        ev = next;
    }
    // Donate the cleaned bucket array and pool slabs to the next
    // queue constructed on this thread (bounded cache).
    std::vector<Core> &cache = coreCache();
    if (cache.size() < 4) {
        cache.push_back(
            Core{std::move(buckets_), std::move(slabs_), freeList_});
    }
}

void
EventQueue::insertSorted(Bucket &b, Event *ev)
{
    // Events in one bucket share a tick; keep the list ordered by
    // (priority, schedTick, ctx, seq). Locally scheduled events carry
    // the highest (schedTick, seq) so far within their context, so
    // scanning from the tail terminates almost immediately on the hot
    // path (uniform priorities, one context); overflow migration and
    // cross-queue injection walk further.
    auto after_fires_later = [](const Event *a, const Event *e) {
        if (a->priority_ != e->priority_)
            return a->priority_ > e->priority_;
        if (a->schedTick_ != e->schedTick_)
            return a->schedTick_ > e->schedTick_;
        if (a->ctx_ != e->ctx_)
            return a->ctx_ > e->ctx_;
        return a->seq_ > e->seq_;
    };
    Event *after = b.tail;
    while (after != nullptr && after_fires_later(after, ev)) {
        after = after->prev_;
    }
    ev->prev_ = after;
    if (after != nullptr) {
        ev->next_ = after->next_;
        after->next_ = ev;
    } else {
        ev->next_ = b.head;
        b.head = ev;
    }
    if (ev->next_ != nullptr)
        ev->next_->prev_ = ev;
    else
        b.tail = ev;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    ccnuma_assert(ev != nullptr);
    ev->schedTick_ = curTick_;
    ev->ctx_ = curCtx_;
    ev->seq_ = ctxSeq_[curCtx_]++;
    ev->fireCtx_ = curCtx_;
    insertScheduled(ev, when);
}

void
EventQueue::insertScheduled(Event *ev, Tick when)
{
    if (when < curTick_) {
        panic("scheduling event '%s' at tick %llu in the past "
              "(now %llu)", ev->name(),
              (unsigned long long)when, (unsigned long long)curTick_);
    }
    if (ev->scheduled_) {
        panic("event '%s' scheduled while already pending",
              ev->name());
    }
    ev->when_ = when;
    ev->scheduled_ = true;
    ev->queue_ = this;
    if (inWheel(when)) {
        std::size_t idx = static_cast<std::size_t>(when & wheelMask);
        insertSorted(buckets_[idx], ev);
        bitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        ++nearCount_;
    } else {
        // Far future: unsorted intrusive overflow list.
        ev->prev_ = nullptr;
        ev->next_ = overflowHead_;
        if (overflowHead_ != nullptr)
            overflowHead_->prev_ = ev;
        overflowHead_ = ev;
        ++overflowCount_;
    }
    ++pending_;
    if (pending_ > maxPending_)
        maxPending_ = pending_;
}

void
EventQueue::unlink(Event *ev)
{
    if (inWheel(ev->when_)) {
        std::size_t idx =
            static_cast<std::size_t>(ev->when_ & wheelMask);
        Bucket &b = buckets_[idx];
        if (ev->prev_ != nullptr)
            ev->prev_->next_ = ev->next_;
        else
            b.head = ev->next_;
        if (ev->next_ != nullptr)
            ev->next_->prev_ = ev->prev_;
        else
            b.tail = ev->prev_;
        if (b.head == nullptr)
            bitmap_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        --nearCount_;
    } else {
        if (ev->prev_ != nullptr)
            ev->prev_->next_ = ev->next_;
        else
            overflowHead_ = ev->next_;
        if (ev->next_ != nullptr)
            ev->next_->prev_ = ev->prev_;
        --overflowCount_;
    }
    ev->prev_ = nullptr;
    ev->next_ = nullptr;
    ev->scheduled_ = false;
    --pending_;
}

void
EventQueue::forgetDestroyed(Event *ev)
{
    ccnuma_assert(ev != nullptr && ev->scheduled_);
    unlink(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    ccnuma_assert(ev != nullptr);
    if (!ev->scheduled_)
        panic("descheduling event '%s' that is not pending",
              ev->name());
    unlink(ev);
    if (ev->pooled_)
        releasePoolEvent(static_cast<PoolEvent *>(ev));
}

Event *
EventQueue::peekWheel() const
{
    if (nearCount_ == 0)
        return nullptr;
    // All wheel events are at or after curTick_, so scanning the
    // occupancy bitmap from curTick_'s slot (or the window start if
    // the window was advanced past curTick_) finds the earliest one.
    Tick from = curTick_ > wheelBase_ ? curTick_ : wheelBase_;
    std::size_t idx = static_cast<std::size_t>(from & wheelMask);
    unsigned word = static_cast<unsigned>(idx >> 6);
    std::uint64_t bits = bitmap_[word] >> (idx & 63);
    if (bits != 0) {
        return buckets_[idx + std::countr_zero(bits)].head;
    }
    for (unsigned w = word + 1; w < bitmapWords; ++w) {
        if (bitmap_[w] != 0) {
            return buckets_[(std::size_t(w) << 6) +
                            std::countr_zero(bitmap_[w])]
                .head;
        }
    }
    return nullptr;
}

Tick
EventQueue::overflowMin() const
{
    ccnuma_assert(overflowHead_ != nullptr);
    Tick min = overflowHead_->when_;
    for (Event *ev = overflowHead_->next_; ev != nullptr;
         ev = ev->next_) {
        if (ev->when_ < min)
            min = ev->when_;
    }
    return min;
}

void
EventQueue::advanceWheelTo(Tick target)
{
    ccnuma_assert(nearCount_ == 0);
    wheelBase_ = target & ~wheelMask;
    // Migrate newly-near overflow events into their buckets. They
    // keep their original seq, so the (tick, priority, seq) ordering
    // contract is untouched by living in the overflow tier.
    for (Event *ev = overflowHead_; ev != nullptr;) {
        Event *next = ev->next_;
        if (inWheel(ev->when_)) {
            if (ev->prev_ != nullptr)
                ev->prev_->next_ = ev->next_;
            else
                overflowHead_ = ev->next_;
            if (ev->next_ != nullptr)
                ev->next_->prev_ = ev->prev_;
            --overflowCount_;
            std::size_t idx =
                static_cast<std::size_t>(ev->when_ & wheelMask);
            ev->prev_ = nullptr;
            ev->next_ = nullptr;
            insertSorted(buckets_[idx], ev);
            bitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
            ++nearCount_;
        }
        ev = next;
    }
}

Tick
EventQueue::nextWhen() const
{
    const Event *ev = peekWheel();
    if (ev != nullptr)
        return ev->when_;
    if (overflowCount_ != 0)
        return overflowMin();
    return maxTick;
}

EventQueue::PoolEvent *
EventQueue::acquirePoolEvent()
{
    if (freeList_ == nullptr) {
        constexpr std::size_t slabEvents = 64;
        slabs_.push_back(std::make_unique<PoolEvent[]>(slabEvents));
        PoolEvent *slab = slabs_.back().get();
        for (std::size_t i = 0; i < slabEvents; ++i) {
            slab[i].pooled_ = true;
            slab[i].next_ = freeList_;
            freeList_ = &slab[i];
        }
    }
    PoolEvent *ev = freeList_;
    freeList_ = static_cast<PoolEvent *>(ev->next_);
    ev->next_ = nullptr;
    return ev;
}

void
EventQueue::releasePoolEvent(PoolEvent *ev)
{
    ev->cb_.reset();
    ev->next_ = freeList_;
    freeList_ = ev;
}

bool
EventQueue::step()
{
    Event *ev = peekWheel();
    if (ev == nullptr) {
        if (overflowCount_ == 0)
            return false;
        // Only far-future events remain: fast-forward the window to
        // the earliest of them and retry.
        advanceWheelTo(overflowMin());
        ev = peekWheel();
        ccnuma_assert(ev != nullptr);
    }
    ccnuma_assert(ev->when_ >= curTick_);
    curTick_ = ev->when_;
    unlink(ev);
    ++processed_;
    // Make the firing event's context current so everything it
    // schedules is attributed to it, and latch its key so sync
    // operations it performs can be replayed in deterministic order.
    curCtx_ = ev->fireCtx_;
    curPriority_ = ev->priority_;
    curSchedTick_ = ev->schedTick_;
    curKeyCtx_ = ev->ctx_;
    curSeq_ = ev->seq_;
    curSub_ = 0;
    // process() may reschedule the event; only return pool-owned
    // one-shots that are not pending again. A scope guard keeps that
    // true when process() throws (fatal/panic from a handler), so
    // the one-shot's captured state does not leak.
    struct Reaper
    {
        EventQueue *q;
        Event *ev;
        ~Reaper()
        {
            if (ev->pooled_ && !ev->scheduled_)
                q->releasePoolEvent(static_cast<PoolEvent *>(ev));
        }
    } reaper{this, ev};
    ev->process();
    return true;
}

void
EventQueue::run(Tick limit)
{
    if (limit == maxTick) {
        // Drain-to-empty fast path: step() already finds the minimum,
        // so the extra nextWhen() scan per event would be pure waste.
        while (step()) {
        }
        return;
    }
    while (pending_ != 0) {
        if (nextWhen() > limit)
            return;
        step();
    }
}

bool
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    while (!done()) {
        if (pending_ == 0 || nextWhen() > limit)
            return false;
        step();
    }
    return true;
}

} // namespace ccnuma
