/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic distinction:
 * panic() flags a simulator bug and aborts; fatal() flags a user error
 * (bad configuration) and exits cleanly; warn()/inform() report status.
 */

#ifndef CCNUMA_SIM_LOGGING_HH
#define CCNUMA_SIM_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ccnuma
{

/** Thrown by panic(); tests can catch it instead of aborting. */
struct PanicError : std::logic_error
{
    using std::logic_error::logic_error;
};

/** Thrown by fatal(); indicates a configuration/user error. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

namespace logging_detail
{
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace logging_detail

/**
 * Report an internal simulator bug. Never returns.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    throw PanicError("panic: " + logging_detail::format(fmt, args...));
}

/**
 * Report an unrecoverable user/configuration error. Never returns.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    throw FatalError("fatal: " + logging_detail::format(fmt, args...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::fprintf(stderr, "warn: %s\n",
                 logging_detail::format(fmt, args...).c_str());
}

/** Print a normal informational status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::fprintf(stdout, "info: %s\n",
                 logging_detail::format(fmt, args...).c_str());
}

/**
 * Line-granular protocol tracing: returns true when @p line_addr
 * matches the CCNUMA_TRACE_LINE environment variable (hex). Used by
 * protocol components to emit debug traces for one cache line.
 */
bool traceLineEnabled(std::uint64_t line_addr);

/** Emit a trace record for a traced line. */
#define ccnuma_trace(line, ...)                                      \
    do {                                                             \
        if (::ccnuma::traceLineEnabled(line)) {                      \
            std::fprintf(stderr, "trace: %s\n",                      \
                         ::ccnuma::logging_detail::format(           \
                             __VA_ARGS__)                            \
                             .c_str());                              \
        }                                                            \
    } while (0)

/** panic() unless the condition holds. */
#define ccnuma_assert(cond, ...)                                         \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::ccnuma::panic("assertion '%s' failed at %s:%d",            \
                            #cond, __FILE__, __LINE__);                  \
        }                                                                \
    } while (0)

} // namespace ccnuma

#endif // CCNUMA_SIM_LOGGING_HH
