#include "report/recovery.hh"

#include <algorithm>

#include "report/table.hh"

namespace ccnuma
{
namespace report
{

namespace
{

std::vector<std::string>
toCells(const RecoveryRow &r)
{
    return {
        r.workload,
        fmt("%llu", static_cast<unsigned long long>(r.instructions)),
        fmt("%llu", static_cast<unsigned long long>(r.faultsInjected)),
        fmt("%llu", static_cast<unsigned long long>(r.retransmits)),
        fmt("%llu", static_cast<unsigned long long>(r.timeouts)),
        fmt("%llu", static_cast<unsigned long long>(r.dupsDropped)),
        fmt("%llu", static_cast<unsigned long long>(r.reordersHealed)),
        fmt("%llu", static_cast<unsigned long long>(r.nackRetries)),
        fmt("%llu", static_cast<unsigned long long>(r.backoffTicks)),
        r.completed ? "yes" : "NO",
    };
}

} // namespace

void
RecoveryScorecard::print(std::ostream &os) const
{
    Table table({"workload", "instrs", "faults", "rexmit", "timeout",
                 "dup-drop", "reorder", "nack-retry", "backoff-tk",
                 "done"});

    RecoveryRow total;
    total.workload = "TOTAL";
    total.completed = true;
    for (const RecoveryRow &r : rows_) {
        table.addRow(toCells(r));
        total.instructions += r.instructions;
        total.faultsInjected += r.faultsInjected;
        total.retransmits += r.retransmits;
        total.timeouts += r.timeouts;
        total.dupsDropped += r.dupsDropped;
        total.reordersHealed += r.reordersHealed;
        total.nackRetries += r.nackRetries;
        total.backoffTicks += r.backoffTicks;
        total.completed = total.completed && r.completed;
    }
    if (rows_.size() > 1)
        table.addRow(toCells(total));
    table.print(os);
}

namespace
{

std::vector<std::string>
toCells(const CrashRow &r)
{
    return {
        r.workload,
        r.arch,
        fmt("%llu", static_cast<unsigned long long>(r.crashTick)),
        fmt("%llu", static_cast<unsigned long long>(r.instructions)),
        fmt("%llu", static_cast<unsigned long long>(r.crashes)),
        fmt("%llu", static_cast<unsigned long long>(r.dirRebuilds)),
        fmt("%llu", static_cast<unsigned long long>(r.rebuildLines)),
        fmt("%llu", static_cast<unsigned long long>(
                        r.reconstructionTicksMax)),
        fmt("%llu", static_cast<unsigned long long>(r.recoveryNacks)),
        fmt("%llu", static_cast<unsigned long long>(r.missTimeouts)),
        fmt("%llu",
            static_cast<unsigned long long>(r.timeoutResends)),
        fmt("%llu",
            static_cast<unsigned long long>(r.recoveryProbes)),
        fmt("%llu",
            static_cast<unsigned long long>(r.degradedEntries)),
        fmt("%llu", static_cast<unsigned long long>(r.migrations)),
        r.instructionsMatch ? "yes" : "NO",
        r.completed ? "yes" : "NO",
    };
}

} // namespace

void
CrashScorecard::print(std::ostream &os) const
{
    toTable().print(os);
}

Table
CrashScorecard::toTable() const
{
    Table table({"workload", "arch", "crash-tk", "instrs", "crashes",
                 "rebuilds", "lines", "rebuild-tk", "nacks",
                 "timeouts", "resends", "probes", "degraded",
                 "migrations", "instr-ok", "done"});

    CrashRow total;
    total.workload = "TOTAL";
    total.arch = "-";
    total.instructionsMatch = true;
    total.completed = true;
    for (const CrashRow &r : rows_) {
        table.addRow(toCells(r));
        total.instructions += r.instructions;
        total.crashes += r.crashes;
        total.dirRebuilds += r.dirRebuilds;
        total.rebuildLines += r.rebuildLines;
        total.reconstructionTicksMax =
            std::max(total.reconstructionTicksMax,
                     r.reconstructionTicksMax);
        total.recoveryNacks += r.recoveryNacks;
        total.missTimeouts += r.missTimeouts;
        total.timeoutResends += r.timeoutResends;
        total.recoveryProbes += r.recoveryProbes;
        total.degradedEntries += r.degradedEntries;
        total.migrations += r.migrations;
        total.instructionsMatch =
            total.instructionsMatch && r.instructionsMatch;
        total.completed = total.completed && r.completed;
    }
    if (rows_.size() > 1)
        table.addRow(toCells(total));
    return table;
}

} // namespace report
} // namespace ccnuma
