#include "report/recovery.hh"

#include "report/table.hh"

namespace ccnuma
{
namespace report
{

namespace
{

std::vector<std::string>
toCells(const RecoveryRow &r)
{
    return {
        r.workload,
        fmt("%llu", static_cast<unsigned long long>(r.instructions)),
        fmt("%llu", static_cast<unsigned long long>(r.faultsInjected)),
        fmt("%llu", static_cast<unsigned long long>(r.retransmits)),
        fmt("%llu", static_cast<unsigned long long>(r.timeouts)),
        fmt("%llu", static_cast<unsigned long long>(r.dupsDropped)),
        fmt("%llu", static_cast<unsigned long long>(r.reordersHealed)),
        fmt("%llu", static_cast<unsigned long long>(r.nackRetries)),
        fmt("%llu", static_cast<unsigned long long>(r.backoffTicks)),
        r.completed ? "yes" : "NO",
    };
}

} // namespace

void
RecoveryScorecard::print(std::ostream &os) const
{
    Table table({"workload", "instrs", "faults", "rexmit", "timeout",
                 "dup-drop", "reorder", "nack-retry", "backoff-tk",
                 "done"});

    RecoveryRow total;
    total.workload = "TOTAL";
    total.completed = true;
    for (const RecoveryRow &r : rows_) {
        table.addRow(toCells(r));
        total.instructions += r.instructions;
        total.faultsInjected += r.faultsInjected;
        total.retransmits += r.retransmits;
        total.timeouts += r.timeouts;
        total.dupsDropped += r.dupsDropped;
        total.reordersHealed += r.reordersHealed;
        total.nackRetries += r.nackRetries;
        total.backoffTicks += r.backoffTicks;
        total.completed = total.completed && r.completed;
    }
    if (rows_.size() > 1)
        table.addRow(toCells(total));
    table.print(os);
}

} // namespace report
} // namespace ccnuma
