#include "report/table.hh"

#include <cstdarg>
#include <vector>

namespace ccnuma
{
namespace report
{

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto hline = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << "+" << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto prow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell =
                c < row.size() ? row[c] : std::string();
            os << "| " << cell
               << std::string(widths[c] - cell.size() + 1, ' ');
        }
        os << "|\n";
    };
    hline();
    prow(headers_);
    hline();
    for (const auto &row : rows_)
        prow(row);
    hline();
}

std::string
fmt(const char *f, ...)
{
    std::va_list ap;
    va_start(ap, f);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, f, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return f;
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), f, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string
pct(double ratio, int decimals)
{
    return fmt("%.*f%%", decimals, ratio * 100.0);
}

} // namespace report
} // namespace ccnuma
