/**
 * @file
 * Small fixed-width table formatter used by the bench harnesses to
 * print paper-style tables (with optional "paper says" reference
 * columns for side-by-side comparison).
 */

#ifndef CCNUMA_REPORT_TABLE_HH
#define CCNUMA_REPORT_TABLE_HH

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace ccnuma
{
namespace report
{

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Append a row (must match the header count). */
    void addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void print(std::ostream &os) const;

    const std::vector<std::string> &headers() const
    {
        return headers_;
    }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style helper returning std::string. */
std::string fmt(const char *f, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a ratio as a percentage string ("93.2%"). */
std::string pct(double ratio, int decimals = 1);

} // namespace report
} // namespace ccnuma

#endif // CCNUMA_REPORT_TABLE_HH
