#include "report/json.hh"

#include <cmath>
#include <cstdio>

namespace ccnuma
{
namespace report
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (afterKey_)
        return; // the key already emitted its comma and colon
    if (!hasValue_.empty() && hasValue_.back())
        os_ << ',';
}

void
JsonWriter::emitted()
{
    afterKey_ = false;
    if (!hasValue_.empty())
        hasValue_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    afterKey_ = false;
    os_ << '{';
    hasValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    os_ << '}';
    hasValue_.pop_back();
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    afterKey_ = false;
    os_ << '[';
    hasValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    os_ << ']';
    hasValue_.pop_back();
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (!hasValue_.empty() && hasValue_.back())
        os_ << ',';
    os_ << '"' << jsonEscape(k) << "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << '"' << jsonEscape(v) << '"';
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; export as null.
        os_ << "null";
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        os_ << buf;
    }
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::valueFull(double v)
{
    separate();
    if (!std::isfinite(v)) {
        os_ << "null";
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
    }
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
    emitted();
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    emitted();
    return *this;
}

} // namespace report
} // namespace ccnuma
