/**
 * @file
 * Recovery scorecard: per-workload accounting of what the reliable
 * transport and the bounded NACK-retry policy had to do to finish a
 * run under injected faults.  One row per workload; print() renders a
 * paper-style table with a totals line so a fault campaign's cost is
 * visible at a glance.
 *
 * This lives in report/ (which depends only on sim/) so both the
 * bench harnesses and the tests can build scorecards from plain
 * numbers without dragging in the whole system layer.
 */

#ifndef CCNUMA_REPORT_RECOVERY_HH
#define CCNUMA_REPORT_RECOVERY_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ccnuma
{
namespace report
{

/** One workload's recovery accounting. */
struct RecoveryRow
{
    std::string workload;

    /** Retired instructions (for cross-checking against a clean run). */
    std::uint64_t instructions = 0;

    /** Faults the injector actually fired (drops + dups + reorders). */
    std::uint64_t faultsInjected = 0;

    /** Transport-level recovery work. */
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t dupsDropped = 0;
    std::uint64_t reordersHealed = 0;

    /** Protocol-level recovery work. */
    std::uint64_t nackRetries = 0;
    std::uint64_t backoffTicks = 0;

    /** Did the run retire its full instruction budget? */
    bool completed = false;
};

/** Accumulates RecoveryRows and prints them as a table. */
class RecoveryScorecard
{
  public:
    void addRow(RecoveryRow row) { rows_.push_back(std::move(row)); }

    bool empty() const { return rows_.empty(); }
    const std::vector<RecoveryRow> &rows() const { return rows_; }

    /** Render the table (plus a totals row when >1 workload). */
    void print(std::ostream &os) const;

  private:
    std::vector<RecoveryRow> rows_;
};

} // namespace report
} // namespace ccnuma

#endif // CCNUMA_REPORT_RECOVERY_HH
