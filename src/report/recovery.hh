/**
 * @file
 * Recovery scorecard: per-workload accounting of what the reliable
 * transport and the bounded NACK-retry policy had to do to finish a
 * run under injected faults.  One row per workload; print() renders a
 * paper-style table with a totals line so a fault campaign's cost is
 * visible at a glance.
 *
 * This lives in report/ (which depends only on sim/) so both the
 * bench harnesses and the tests can build scorecards from plain
 * numbers without dragging in the whole system layer.
 */

#ifndef CCNUMA_REPORT_RECOVERY_HH
#define CCNUMA_REPORT_RECOVERY_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "report/table.hh"

namespace ccnuma
{
namespace report
{

/** One workload's recovery accounting. */
struct RecoveryRow
{
    std::string workload;

    /** Retired instructions (for cross-checking against a clean run). */
    std::uint64_t instructions = 0;

    /** Faults the injector actually fired (drops + dups + reorders). */
    std::uint64_t faultsInjected = 0;

    /** Transport-level recovery work. */
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t dupsDropped = 0;
    std::uint64_t reordersHealed = 0;

    /** Protocol-level recovery work. */
    std::uint64_t nackRetries = 0;
    std::uint64_t backoffTicks = 0;

    /** Did the run retire its full instruction budget? */
    bool completed = false;
};

/** Accumulates RecoveryRows and prints them as a table. */
class RecoveryScorecard
{
  public:
    void addRow(RecoveryRow row) { rows_.push_back(std::move(row)); }

    bool empty() const { return rows_.empty(); }
    const std::vector<RecoveryRow> &rows() const { return rows_; }

    /** Render the table (plus a totals row when >1 workload). */
    void print(std::ostream &os) const;

  private:
    std::vector<RecoveryRow> rows_;
};

/**
 * One crash-campaign configuration's accounting: what the fail-stop
 * recovery subsystem (PR 6) did to survive an injected controller
 * crash and still retire the same instructions as a clean run.
 */
struct CrashRow
{
    std::string workload;
    std::string arch;
    std::uint64_t crashTick = 0;    ///< injection point (0 = clean)

    std::uint64_t instructions = 0;
    std::uint64_t crashes = 0;      ///< fail-stop kills fired
    std::uint64_t dirRebuilds = 0;  ///< DirProbe reconstructions
    std::uint64_t rebuildLines = 0; ///< directory lines rebuilt
    std::uint64_t reconstructionTicksMax = 0; ///< worst rebuild time
    std::uint64_t recoveryNacks = 0;
    std::uint64_t missTimeouts = 0;
    std::uint64_t timeoutResends = 0;
    std::uint64_t recoveryProbes = 0;
    std::uint64_t degradedEntries = 0;
    std::uint64_t migrations = 0;

    /** Retired the same instruction count as the clean baseline? */
    bool instructionsMatch = false;
    bool completed = false;
};

/** Accumulates CrashRows and prints them as a table. */
class CrashScorecard
{
  public:
    void addRow(CrashRow row) { rows_.push_back(std::move(row)); }

    bool empty() const { return rows_.empty(); }
    const std::vector<CrashRow> &rows() const { return rows_; }

    /** Render the table (plus a totals row when >1 row). */
    void print(std::ostream &os) const;

    /** The rendered table (for JSON capture by the benches). */
    Table toTable() const;

  private:
    std::vector<CrashRow> rows_;
};

} // namespace report
} // namespace ccnuma

#endif // CCNUMA_REPORT_RECOVERY_HH
