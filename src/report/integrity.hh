/**
 * @file
 * Corruption-campaign scorecard (PR 7): per-configuration accounting
 * of what the integrity defenses (frame CRC, SECDED ECC + scrubbing,
 * line poisoning) did with each injected bit flip.  The headline
 * column is `escaped`, which must be zero on every row: a corruption
 * that is neither detected, corrected, contained, nor escalated has
 * silently reached computation.
 *
 * Lives in report/ (depends only on sim/) so the bench harness and
 * the tests can build scorecards from plain numbers without the
 * system layer.
 */

#ifndef CCNUMA_REPORT_INTEGRITY_HH
#define CCNUMA_REPORT_INTEGRITY_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "report/table.hh"

namespace ccnuma
{
namespace report
{

/** One corruption-campaign configuration's accounting. */
struct CorruptionRow
{
    std::string workload;
    std::string arch;
    std::string domain;  ///< message | directory | cache
    unsigned bits = 0;   ///< 1 (CE) or 2 (UE)

    std::uint64_t instructions = 0;
    std::uint64_t flipsInjected = 0;  ///< corruptions applied
    std::uint64_t flipsSkipped = 0;   ///< armed, found no victim
    std::uint64_t crcDetected = 0;    ///< frames dropped by CRC
    std::uint64_t eccCorrected = 0;   ///< words fixed (access+scrub)
    std::uint64_t scrubCorrections = 0;
    std::uint64_t containedDiscards = 0;
    std::uint64_t linesPoisoned = 0;
    std::uint64_t escalations = 0;    ///< directory-UE rebuilds
    std::int64_t escaped = 0;         ///< MUST be zero

    /** Retired the same instruction count as the clean baseline? */
    bool instructionsMatch = false;
    bool completed = false;
};

/** Accumulates CorruptionRows and prints them as a table. */
class CorruptionScorecard
{
  public:
    void addRow(CorruptionRow row) { rows_.push_back(std::move(row)); }

    bool empty() const { return rows_.empty(); }
    const std::vector<CorruptionRow> &rows() const { return rows_; }

    /** Render the table (plus a totals row when >1 row). */
    void print(std::ostream &os) const;

    /** The rendered table (for JSON capture by the benches). */
    Table toTable() const;

  private:
    std::vector<CorruptionRow> rows_;
};

} // namespace report
} // namespace ccnuma

#endif // CCNUMA_REPORT_INTEGRITY_HH
