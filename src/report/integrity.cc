#include "report/integrity.hh"

#include "report/table.hh"

namespace ccnuma
{
namespace report
{

namespace
{

std::vector<std::string>
toCells(const CorruptionRow &r)
{
    return {
        r.workload,
        r.arch,
        r.domain,
        fmt("%u", r.bits),
        fmt("%llu", static_cast<unsigned long long>(r.instructions)),
        fmt("%llu", static_cast<unsigned long long>(r.flipsInjected)),
        fmt("%llu", static_cast<unsigned long long>(r.flipsSkipped)),
        fmt("%llu", static_cast<unsigned long long>(r.crcDetected)),
        fmt("%llu", static_cast<unsigned long long>(r.eccCorrected)),
        fmt("%llu",
            static_cast<unsigned long long>(r.scrubCorrections)),
        fmt("%llu",
            static_cast<unsigned long long>(r.containedDiscards)),
        fmt("%llu", static_cast<unsigned long long>(r.linesPoisoned)),
        fmt("%llu", static_cast<unsigned long long>(r.escalations)),
        fmt("%lld", static_cast<long long>(r.escaped)),
        r.instructionsMatch ? "yes" : "NO",
        r.completed ? "yes" : "NO",
    };
}

} // namespace

void
CorruptionScorecard::print(std::ostream &os) const
{
    toTable().print(os);
}

Table
CorruptionScorecard::toTable() const
{
    Table table({"workload", "arch", "domain", "bits", "instrs",
                 "flips", "skipped", "crc-det", "ecc-fix", "scrubbed",
                 "discards", "poisoned", "escalated", "escaped",
                 "instr-ok", "done"});

    CorruptionRow total;
    total.workload = "TOTAL";
    total.arch = "-";
    total.domain = "-";
    total.instructionsMatch = true;
    total.completed = true;
    for (const CorruptionRow &r : rows_) {
        table.addRow(toCells(r));
        total.instructions += r.instructions;
        total.flipsInjected += r.flipsInjected;
        total.flipsSkipped += r.flipsSkipped;
        total.crcDetected += r.crcDetected;
        total.eccCorrected += r.eccCorrected;
        total.scrubCorrections += r.scrubCorrections;
        total.containedDiscards += r.containedDiscards;
        total.linesPoisoned += r.linesPoisoned;
        total.escalations += r.escalations;
        total.escaped += r.escaped;
        total.instructionsMatch =
            total.instructionsMatch && r.instructionsMatch;
        total.completed = total.completed && r.completed;
    }
    if (rows_.size() > 1)
        table.addRow(toCells(total));
    return table;
}

} // namespace report
} // namespace ccnuma
