/**
 * @file
 * Minimal streaming JSON writer shared by the observability sinks
 * (Chrome trace / metrics export) and the bench JSON reports. It
 * handles comma placement and string escaping; the caller provides
 * structure. No reading, no DOM — the simulator only ever emits.
 */

#ifndef CCNUMA_REPORT_JSON_HH
#define CCNUMA_REPORT_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ccnuma
{
namespace report
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Usage:
 *
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.key("name").value("fft");
 *   j.key("rows").beginArray();
 *   j.value(1.5);
 *   j.endArray();
 *   j.endObject();
 *
 * The writer asserts nothing; malformed call sequences produce
 * malformed JSON. Keep call sites simple.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or begin*. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    /**
     * Emit @p v with enough digits (%.17g) that strtod recovers the
     * exact bit pattern — for values that must survive a round trip
     * (the campaign service's cached results), where value(double)'s
     * %.6g display precision would silently truncate.
     */
    JsonWriter &valueFull(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

  private:
    /** Emit a separating comma if a sibling value precedes us. */
    void separate();
    /** Note that a value has been emitted at the current depth. */
    void emitted();

    std::ostream &os_;
    /** One entry per open container: true once it holds a value. */
    std::vector<bool> hasValue_;
    /** A key was just written; the next value follows a colon. */
    bool afterKey_ = false;
};

} // namespace report
} // namespace ccnuma

#endif // CCNUMA_REPORT_JSON_HH
