#include "bus/bus.hh"

#include <algorithm>

#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace ccnuma
{

const char *
busCmdName(BusCmd cmd)
{
    switch (cmd) {
      case BusCmd::Read: return "Read";
      case BusCmd::ReadExcl: return "ReadExcl";
      case BusCmd::Inval: return "Inval";
      case BusCmd::WriteBack: return "WriteBack";
    }
    return "?";
}

Bus::Bus(const std::string &name, EventQueue &eq, const BusParams &p)
    : name_(name), eq_(eq), params_(p), statGroup_(name)
{
    statGroup_.add(&statTxns);
    statGroup_.add(&statDeferred);
    statGroup_.add(&statC2C);
    statGroup_.add(&statRetries);
    statGroup_.add(&statArbWait);
    statGroup_.add(&statAddrBusy);
    statGroup_.add(&statDataBusy);
}

Bus::~Bus()
{
    if (kickEvent_.scheduled())
        eq_.deschedule(&kickEvent_);
}

int
Bus::addAgent(BusAgent *agent)
{
    agents_.push_back(agent);
    return static_cast<int>(agents_.size()) - 1;
}

std::uint64_t
Bus::request(BusCmd cmd, Addr line_addr, int requester,
             std::uint64_t data_version, bool from_cc)
{
    ccnuma_assert(requester >= 0 &&
                  requester < static_cast<int>(agents_.size()));
    std::uint64_t id = nextId_++;
    BusTxn txn;
    txn.id = id;
    txn.cmd = cmd;
    txn.lineAddr = line_addr;
    txn.requester = requester;
    txn.fromCC = from_cc;
    txn.dataVersion = data_version;
    txn.issueTick = eq_.curTick();
    ccnuma_trace(line_addr,
                 "%8llu %s open txn=%llu %s req=%d fromCC=%d",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 (unsigned long long)id, busCmdName(cmd), requester,
                 (int)from_cc);
    open_.emplace(id, txn);
    pendingGrants_.push_back(id);
    if (!kickEvent_.scheduled())
        eq_.scheduleIn(&kickEvent_, 0);
    return id;
}

void
Bus::kick()
{
    while (!pendingGrants_.empty() && granted_ < params_.maxOutstanding) {
        std::uint64_t id = pendingGrants_.front();
        pendingGrants_.pop_front();
        Tick strobe = std::max(eq_.curTick() + params_.arbLatency,
                               nextStrobeAllowed_);
        nextStrobeAllowed_ = strobe + params_.strobeSpacing;
        ++granted_;
        eq_.scheduleFunction([this, id] { addressPhase(id); }, strobe);
    }
}

void
Bus::addressPhase(std::uint64_t txn_id)
{
    auto it = open_.find(txn_id);
    ccnuma_assert(it != open_.end());
    BusTxn &txn = it->second;

    // First pass: a conflicting in-flight exclusive fill forces a
    // retry before anyone changes state.
    for (int i = 0; i < static_cast<int>(agents_.size()); ++i) {
        if (i == txn.requester)
            continue;
        if (agents_[i]->busRetryCheck(txn)) {
            ++statRetries;
            eq_.scheduleFunction(
                [this, txn_id] { addressPhase(txn_id); },
                eq_.curTick() + 2 * params_.strobeSpacing);
            return;
        }
    }

    txn.strobeTick = eq_.curTick();
    ++statTxns;
    statAddrBusy += static_cast<double>(params_.strobeSpacing);
    statArbWait.sample(
        static_cast<double>(txn.strobeTick - txn.issueTick));

    // Snoop every other agent; remember the strongest response.
    SnoopResult combined = SnoopResult::None;
    for (int i = 0; i < static_cast<int>(agents_.size()); ++i) {
        if (i == txn.requester)
            continue;
        SnoopResult r = agents_[i]->busSnoop(txn);
        if (static_cast<int>(r) > static_cast<int>(combined))
            combined = r;
    }
    txn.sharedSeen = combined != SnoopResult::None;
    txn.dirtySupplied = combined == SnoopResult::DirtySupply;

    ccnuma_assert(hook_ != nullptr);
    SupplyDecision decision = hook_->busObserve(txn, combined);
    txn.supply = decision;

    Tick snoop_done = txn.strobeTick + params_.snoopLatency;

    switch (txn.cmd) {
      case BusCmd::Read:
      case BusCmd::ReadExcl:
        switch (decision) {
          case SupplyDecision::Memory: {
            ccnuma_assert(memory_ != nullptr);
            Tick ready = memory_->scheduleRead(txn.lineAddr,
                                               txn.strobeTick);
            txn.dataVersion = memory_->version(txn.lineAddr);
            Tick first_beat = scheduleData(txn, ready);
            deliver(txn_id, first_beat);
            break;
          }
          case SupplyDecision::Cache:
          case SupplyDecision::CacheReflect: {
            ++statC2C;
            Tick ready = txn.strobeTick + params_.c2cDataLatency;
            Tick first_beat = scheduleData(txn, ready);
            if (decision == SupplyDecision::CacheReflect &&
                memory_ != nullptr) {
                memory_->scheduleWrite(txn.lineAddr, first_beat);
                memory_->setVersion(txn.lineAddr, txn.dataVersion);
            }
            deliver(txn_id, first_beat);
            break;
          }
          case SupplyDecision::Deferred:
            ++statDeferred;
            ccnuma_trace(txn.lineAddr,
                         "%8llu %s defer txn=%llu req=%d fromCC=%d",
                         (unsigned long long)eq_.curTick(),
                         name_.c_str(), (unsigned long long)txn_id,
                         txn.requester, (int)txn.fromCC);
            // The coherence controller calls deferredRespond later.
            break;
          case SupplyDecision::NoData:
            // A controller-issued fetch may fail (stale owner); the
            // controller handles it. For anyone else it is a bug.
            if (txn.fromCC) {
                deliver(txn_id, snoop_done);
            } else {
                panic("bus %s: NoData decision for %s of line %#llx",
                      name_.c_str(), busCmdName(txn.cmd),
                      (unsigned long long)txn.lineAddr);
            }
        }
        break;

      case BusCmd::Inval:
        // Address-only transaction; complete after the snoop phase.
        deliver(txn_id, snoop_done);
        break;

      case BusCmd::WriteBack: {
        // Data rides the data bus to memory or to the coherence
        // controller's direct network data path.
        Tick first_beat = scheduleData(txn, snoop_done);
        Tick data_end = first_beat - params_.beatTicks +
                        beatsPerLine() * params_.beatTicks;
        if (decision == SupplyDecision::Memory && memory_ != nullptr) {
            memory_->scheduleWrite(txn.lineAddr, data_end);
            memory_->setVersion(txn.lineAddr, txn.dataVersion);
        }
        if (decision == SupplyDecision::NoData)
            hook_->busCaptureWriteBack(txn, data_end);
        deliver(txn_id, first_beat);
        break;
      }
    }
}

Tick
Bus::scheduleData(BusTxn &txn, Tick earliest)
{
    txn.fillScheduled = true;
    Tick start = std::max({earliest, dataBusFreeAt_, eq_.curTick()});
    Tick occupancy =
        static_cast<Tick>(beatsPerLine()) * params_.beatTicks;
    dataBusFreeAt_ = start + occupancy;
    statDataBusy += static_cast<double>(occupancy);
    txn.dataTick = start + params_.beatTicks;
    return txn.dataTick;
}

void
Bus::deliver(std::uint64_t txn_id, Tick when)
{
    eq_.scheduleFunction(
        [this, txn_id] {
            auto it = open_.find(txn_id);
            ccnuma_assert(it != open_.end());
            BusTxn txn = it->second;
            ccnuma_trace(txn.lineAddr,
                         "%8llu %s done txn=%llu %s req=%d",
                         (unsigned long long)eq_.curTick(),
                         name_.c_str(), (unsigned long long)txn_id,
                         busCmdName(txn.cmd), txn.requester);
            open_.erase(it);
            --granted_;
            agents_[txn.requester]->busDone(txn);
            if (completionTap_)
                completionTap_(txn);
            if (tracer_) {
                tracer_->busSpan(tracerNode_, busCmdName(txn.cmd),
                                 static_cast<std::uint8_t>(txn.cmd),
                                 txn.lineAddr, txn.issueTick,
                                 eq_.curTick());
            }
            if (!pendingGrants_.empty() && !kickEvent_.scheduled())
                eq_.scheduleIn(&kickEvent_, 0);
        },
        when);
}

void
Bus::deferredRespond(std::uint64_t txn_id, std::uint64_t data_version,
                     Tick earliest)
{
    auto it = open_.find(txn_id);
    if (it == open_.end())
        panic("bus %s: deferred response for unknown txn %llu",
              name_.c_str(), (unsigned long long)txn_id);
    BusTxn &txn = it->second;
    ccnuma_trace(txn.lineAddr,
                 "%8llu %s defresp txn=%llu req=%d",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 (unsigned long long)txn_id, txn.requester);
    txn.dataVersion = data_version;
    Tick first_beat = scheduleData(txn, earliest);
    deliver(txn_id, first_beat);
}

} // namespace ccnuma
