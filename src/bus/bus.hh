/**
 * @file
 * Split-transaction SMP bus model.
 *
 * Models the paper's 100 MHz, 16-byte, fully pipelined
 * split-transaction bus with separate address and data paths:
 *
 *  - one address strobe per two bus cycles (4 ticks);
 *  - snooping caches respond to each address phase and may supply
 *    data cache-to-cache;
 *  - the memory controller supplies local lines when no cache or
 *    coherence action intervenes;
 *  - the coherence controller may DEFER a transaction and supply the
 *    reply later through the data bus (split transaction), which is
 *    how remote misses and remote-dirty local lines are served;
 *  - data transfers move a 128-byte line in 8 bus cycles and drive
 *    the critical quad-word first, so the requester restarts after
 *    the first beat while the data bus stays busy for the full line.
 */

#ifndef CCNUMA_BUS_BUS_HH
#define CCNUMA_BUS_BUS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/memory_controller.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

namespace obs
{
class Tracer;
} // namespace obs

/** Bus transaction commands. */
enum class BusCmd : std::uint8_t
{
    Read,      ///< read a line (fill Shared/Exclusive)
    ReadExcl,  ///< read with intent to modify (fill Modified)
    Inval,     ///< invalidate copies, no data transfer
    WriteBack, ///< write a dirty line to memory / home
};

const char *busCmdName(BusCmd cmd);

/** Result a snooping cache reports for an address phase. */
enum class SnoopResult : std::uint8_t
{
    None,         ///< no copy
    Shared,       ///< holds a copy, cannot/need not supply
    SharedSupply, ///< holds a Shared copy of a remote line; can supply
    DirtySupply,  ///< holds Modified copy; will supply and transition
};

/** How a transaction's data gets supplied. */
enum class SupplyDecision : std::uint8_t
{
    Memory,        ///< local memory supplies
    Cache,         ///< snooping cache supplies cache-to-cache
    CacheReflect,  ///< cache supplies; memory is updated in parallel
    Deferred,      ///< coherence controller replies later
    NoData,        ///< no data movement needed (Inval)
};

/** An in-flight bus transaction. */
struct BusTxn
{
    std::uint64_t id = 0;
    BusCmd cmd = BusCmd::Read;
    Addr lineAddr = 0;
    int requester = -1;      ///< agent id on this bus
    bool fromCC = false;     ///< issued by the coherence controller
    bool sharedSeen = false; ///< another cache holds a copy
    /** A Modified copy supplied the data (and was demoted). */
    bool dirtySupplied = false;
    /** Data delivery has been scheduled (fill is imminent). */
    bool fillScheduled = false;
    /**
     * Set by the coherence hook when the bus-side directory shows no
     * remote copies, allowing a local read to fill Exclusive.
     */
    bool exclusiveOk = false;
    SupplyDecision supply = SupplyDecision::Memory;
    std::uint64_t dataVersion = 0; ///< checker payload riding the data
    Tick issueTick = 0;
    Tick strobeTick = 0;
    Tick dataTick = 0;       ///< first data beat (requester restart)
};

/** Interface for snooping bus agents (cache units). */
class BusAgent
{
  public:
    virtual ~BusAgent() = default;

    /**
     * First snoop pass: may this transaction proceed? An agent with
     * a conflicting write miss in flight (its exclusive fill is bus-
     * ordered but not yet installed) answers true and the bus
     * retries the address phase later — the split-transaction bus's
     * standard conflict-resolution mechanism. No state may change.
     */
    virtual bool busRetryCheck(const BusTxn &txn) const
    {
        (void)txn;
        return false;
    }

    /**
     * Observe an address phase for a transaction issued by another
     * agent. State transitions are applied immediately; a supplier
     * fills txn.dataVersion.
     */
    virtual SnoopResult busSnoop(BusTxn &txn) = 0;

    /**
     * Requester notification: data delivered (first beat) or, for
     * non-data commands, transaction complete.
     */
    virtual void busDone(BusTxn &txn) = 0;
};

/**
 * Hook through which the node's coherence controller participates in
 * every address phase (it holds the bus-side directory copy).
 */
class BusCoherenceHook
{
  public:
    virtual ~BusCoherenceHook() = default;

    /**
     * Decide how the transaction is supplied, after cache snoops.
     * @param txn the transaction (may be annotated)
     * @param combined strongest cache snoop result
     * @return supply decision; Deferred means the controller will
     *         call Bus::deferredRespond() later.
     */
    virtual SupplyDecision busObserve(BusTxn &txn,
                                      SnoopResult combined) = 0;

    /**
     * Notification that a WriteBack the hook claimed (by returning
     * NoData from busObserve) has finished its data transfer and is
     * now in the controller's hands (direct bus-to-network path).
     */
    virtual void busCaptureWriteBack(BusTxn &txn, Tick data_ready)
    {
        (void)txn;
        (void)data_ready;
    }
};

/** Bus timing parameters (ticks = compute-processor cycles). */
struct BusParams
{
    Tick arbLatency = 4;        ///< request to earliest strobe
    Tick strobeSpacing = 4;     ///< Table 1: strobe to next strobe
    Tick snoopLatency = 4;      ///< strobe to snoop result
    Tick memDataLatency = 20;   ///< Table 1: strobe to memory data
    Tick c2cDataLatency = 16;   ///< strobe to cache-to-cache data
    Tick beatTicks = 2;         ///< one 16-byte beat per bus cycle
    unsigned busWidthBytes = 16;
    unsigned lineBytes = 128;
    unsigned maxOutstanding = 16;
};

/**
 * The split-transaction bus. All callbacks (snoop, busDone, the
 * coherence hook) execute inside bus events in deterministic agent
 * order.
 */
class Bus : public Snapshottable
{
  public:
    Bus(const std::string &name, EventQueue &eq, const BusParams &p);
    ~Bus();

    /** Register a snooping agent. @return its agent id. */
    int addAgent(BusAgent *agent);

    void setCoherenceHook(BusCoherenceHook *hook) { hook_ = hook; }
    void setMemory(MemoryController *mem) { memory_ = mem; }

    const BusParams &params() const { return params_; }

    /**
     * Issue a transaction. The requester's busDone() fires when data
     * is delivered (or when a non-data command completes).
     * @param data_version checker payload for WriteBack data
     * @param from_cc transaction issued by the coherence controller
     *        itself (never deferred; may complete with NoData)
     * @return transaction id
     */
    std::uint64_t request(BusCmd cmd, Addr line_addr, int requester,
                          std::uint64_t data_version = 0,
                          bool from_cc = false);

    /**
     * Complete a previously deferred transaction: the coherence
     * controller supplies data (arriving from the network or from a
     * local fetch) no earlier than @p earliest.
     */
    void deferredRespond(std::uint64_t txn_id,
                         std::uint64_t data_version, Tick earliest);

    /** Number of transactions currently open. */
    std::size_t numOutstanding() const { return open_.size(); }

    /** @return true while any open transaction targets @p line. */
    bool
    lineBusy(Addr line_addr) const
    {
        for (const auto &kv : open_) {
            if (kv.second.lineAddr == line_addr)
                return true;
        }
        return false;
    }

    /**
     * Observation tap invoked after each transaction completes (the
     * requester's busDone has run). Used by the invariant checker;
     * null when disabled.
     */
    void
    setCompletionTap(std::function<void(const BusTxn &)> tap)
    {
        completionTap_ = std::move(tap);
    }

    /**
     * Record completed transactions with the observability tracer.
     * The bus does not know which node it belongs to, so the machine
     * passes the owning node id alongside (null tracer = off).
     */
    void
    setTracer(obs::Tracer *t, NodeId node)
    {
        tracer_ = t;
        tracerNode_ = node;
    }

    /**
     * @return true if @p txn_id is open and its data delivery is
     * already scheduled (its fill will complete independently).
     */
    bool
    fillScheduled(std::uint64_t txn_id) const
    {
        auto it = open_.find(txn_id);
        return it != open_.end() && it->second.fillScheduled;
    }

    /** @return true while @p txn_id has not completed. */
    bool isOpen(std::uint64_t txn_id) const
    {
        return open_.count(txn_id) != 0;
    }

    stats::Group &statGroup() { return statGroup_; }

    // --- speculative checkpointing (full copy: all state is small
    // and transient — open transactions, grant queue, timers) ---

    std::shared_ptr<const void>
    specSave(std::size_t &bytes) override
    {
        auto s = std::make_shared<Snap>(
            Snap{pendingGrants_, open_, nextId_, granted_,
                 nextStrobeAllowed_, dataBusFreeAt_});
        bytes += sizeof(Snap) + s->open.size() * sizeof(BusTxn) +
                 s->pendingGrants.size() * sizeof(std::uint64_t);
        return s;
    }

    void
    specRestore(const void *snap) override
    {
        const Snap *s = static_cast<const Snap *>(snap);
        pendingGrants_ = s->pendingGrants;
        open_ = s->open;
        nextId_ = s->nextId;
        granted_ = s->granted;
        nextStrobeAllowed_ = s->nextStrobeAllowed;
        dataBusFreeAt_ = s->dataBusFreeAt;
    }

    stats::Scalar statTxns{"transactions", "address phases issued"};
    stats::Scalar statDeferred{"deferred",
        "transactions deferred by the coherence controller"};
    stats::Scalar statC2C{"cache_to_cache",
        "transactions supplied cache-to-cache"};
    stats::Scalar statRetries{"retries",
        "address phases retried due to a conflicting write miss"};
    stats::Average statArbWait{"arb_wait",
        "ticks from request to address strobe"};
    stats::Scalar statAddrBusy{"addr_busy_ticks",
        "ticks the address bus was occupied"};
    stats::Scalar statDataBusy{"data_busy_ticks",
        "ticks the data bus was occupied"};

  private:
    /** Value snapshot of the bus's transient state. */
    struct Snap
    {
        std::deque<std::uint64_t> pendingGrants;
        std::unordered_map<std::uint64_t, BusTxn> open;
        std::uint64_t nextId;
        unsigned granted;
        Tick nextStrobeAllowed;
        Tick dataBusFreeAt;
    };

    void kick();
    void addressPhase(std::uint64_t txn_id);
    /** Schedule the data phase; @return first-beat tick. */
    Tick scheduleData(BusTxn &txn, Tick earliest);
    /** Notify the requester and retire the transaction at @p when. */
    void deliver(std::uint64_t txn_id, Tick when);

    unsigned beatsPerLine() const
    {
        return (params_.lineBytes + params_.busWidthBytes - 1) /
               params_.busWidthBytes;
    }

    std::string name_;
    EventQueue &eq_;
    BusParams params_;
    std::vector<BusAgent *> agents_;
    BusCoherenceHook *hook_ = nullptr;
    MemoryController *memory_ = nullptr;

    std::deque<std::uint64_t> pendingGrants_;
    std::function<void(const BusTxn &)> completionTap_;
    obs::Tracer *tracer_ = nullptr;
    NodeId tracerNode_ = 0;
    std::unordered_map<std::uint64_t, BusTxn> open_;
    std::uint64_t nextId_ = 1;
    unsigned granted_ = 0;
    Tick nextStrobeAllowed_ = 0;
    Tick dataBusFreeAt_ = 0;

    /**
     * Reusable arbitration event: request() and deliver() fire one
     * kick per tick at most, with no per-kick allocation. The event's
     * scheduled() bit replaces the old kickScheduled_ flag.
     */
    class KickEvent : public Event
    {
      public:
        explicit KickEvent(Bus &bus) : bus_(bus) {}
        void process() override { bus_.kick(); }
        const char *name() const override { return "bus kick"; }

      private:
        Bus &bus_;
    };
    KickEvent kickEvent_{*this};

    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_BUS_BUS_HH
