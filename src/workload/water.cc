#include <algorithm>

#include "workload/splash.hh"

namespace ccnuma
{

// ---------------------------------------------------------------------
// Water-Nsq: O(n^2) all-pairs force computation with per-molecule
// locks on the force accumulation (the SPLASH-2 pair assignment:
// each owner interacts its molecules with the following n/2).
// ---------------------------------------------------------------------

WaterNsqWorkload::WaterNsqWorkload(const WorkloadParams &p)
    : Workload(p)
{
    nmol_ = static_cast<unsigned>(
        std::max<std::uint64_t>(scaled(512), 2 * p.numThreads));
    steps_ = static_cast<unsigned>(
        std::max<std::uint64_t>(1, scaled(3)));
    mols_ = alloc(static_cast<std::uint64_t>(nmol_) * molBytes);
}

Addr
WaterNsqWorkload::molAddr(unsigned m) const
{
    return mols_ + static_cast<Addr>(m) * molBytes;
}

OpStream
WaterNsqWorkload::thread(unsigned tid)
{
    const unsigned P = params_.numThreads;
    const unsigned lo = tid * nmol_ / P;
    const unsigned hi = (tid + 1) * nmol_ / P;
    const unsigned line = params_.lineBytes;
    const unsigned lines_per_mol = molBytes / line ? molBytes / line
                                                   : 1;
    std::uint32_t bar = 0;

    for (unsigned s = 0; s < steps_; ++s) {
        // Intra-molecular forces: own molecules only.
        for (unsigned m = lo; m < hi; ++m) {
            for (unsigned l = 0; l < lines_per_mol; ++l)
                co_yield ThreadOp::load(molAddr(m) + l * line);
            co_yield ThreadOp::compute(60);
            co_yield ThreadOp::store(molAddr(m));
        }
        co_yield ThreadOp::barrier(bar++);

        // Inter-molecular: each of our molecules interacts with the
        // next n/2. As in the original, partner data is loaded once
        // and reused across all of our molecules pairing with it,
        // and its force accumulator is updated once under its lock
        // after the batch of interactions.
        {
            const unsigned span = hi - lo;
            for (unsigned d = 1; d < span + nmol_ / 2; ++d) {
                unsigned j = (lo + d) % nmol_;
                // How many of our molecules pair with j.
                unsigned first =
                    d > nmol_ / 2 ? lo + d - nmol_ / 2 : lo;
                unsigned last = std::min(hi, lo + d);
                if (first >= last)
                    continue;
                unsigned count = last - first;
                co_yield ThreadOp::load(molAddr(j));
                co_yield ThreadOp::load(molAddr(j) + 64);
                co_yield ThreadOp::compute(count * 700);
                for (unsigned m = first; m < last; ++m)
                    co_yield ThreadOp::store(molAddr(m) + line);
                // Apply the batched contribution to j under its
                // lock.
                co_yield ThreadOp::lock(j % numLocks);
                co_yield ThreadOp::load(molAddr(j) + line);
                co_yield ThreadOp::store(molAddr(j) + line);
                co_yield ThreadOp::unlock(j % numLocks);
            }
        }
        co_yield ThreadOp::barrier(bar++);

        // Position update: own molecules.
        for (unsigned m = lo; m < hi; ++m) {
            co_yield ThreadOp::load(molAddr(m));
            co_yield ThreadOp::compute(30);
            co_yield ThreadOp::store(molAddr(m));
        }
        co_yield ThreadOp::barrier(bar++);
    }
}

// ---------------------------------------------------------------------
// Water-Spatial: the same molecules sorted into a 3-D cell grid;
// forces involve only molecules in neighboring cells, so most reads
// are local with a modest boundary-sharing component.
// ---------------------------------------------------------------------

WaterSpWorkload::WaterSpWorkload(const WorkloadParams &p)
    : Workload(p)
{
    nmol_ = static_cast<unsigned>(
        std::max<std::uint64_t>(scaled(512), 4 * p.numThreads));
    steps_ = static_cast<unsigned>(
        std::max<std::uint64_t>(2, scaled(8)));
    mols_ = alloc(static_cast<std::uint64_t>(nmol_) * molBytes);
}

Addr
WaterSpWorkload::molAddr(unsigned m) const
{
    return mols_ + static_cast<Addr>(m) * molBytes;
}

OpStream
WaterSpWorkload::thread(unsigned tid)
{
    const unsigned P = params_.numThreads;
    const unsigned lo = tid * nmol_ / P;
    const unsigned hi = (tid + 1) * nmol_ / P;
    const unsigned span = std::max(1u, hi - lo);
    std::uint32_t bar = 0;
    Random rng(params_.seed * 77 + tid);

    for (unsigned s = 0; s < steps_; ++s) {
        for (unsigned m = lo; m < hi; ++m) {
            // Own molecule state.
            co_yield ThreadOp::load(molAddr(m));
            co_yield ThreadOp::load(molAddr(m) + 128);
            co_yield ThreadOp::compute(400);
            // Neighbor-cell molecules: almost entirely within our
            // own partition; only molecules in boundary cells (the
            // first of the partition) reach into the adjacent
            // processor's cells.
            for (unsigned v = 0; v < 8; ++v) {
                unsigned j;
                if (v == 7 && m == lo) {
                    unsigned neigh = (tid + 1) % P;
                    unsigned nlo = neigh * nmol_ / P;
                    unsigned nhi = (neigh + 1) * nmol_ / P;
                    j = nlo + static_cast<unsigned>(rng.below(
                            std::max(1u, nhi - nlo)));
                } else {
                    j = lo + static_cast<unsigned>(rng.below(span));
                }
                co_yield ThreadOp::load(molAddr(j));
                co_yield ThreadOp::compute(120);
            }
            co_yield ThreadOp::store(molAddr(m) + 128);
        }
        co_yield ThreadOp::barrier(bar++);

        for (unsigned m = lo; m < hi; ++m) {
            co_yield ThreadOp::load(molAddr(m));
            co_yield ThreadOp::compute(60);
            co_yield ThreadOp::store(molAddr(m));
        }
        co_yield ThreadOp::barrier(bar++);
    }
}

} // namespace ccnuma
