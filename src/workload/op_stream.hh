/**
 * @file
 * Lazily generated per-thread operation streams.
 *
 * The original study drove its simulator with Augmint-instrumented
 * PowerPC binaries. Here each application thread is a C++20 coroutine
 * that computes on real data and yields an operation stream (loads,
 * stores, compute gaps, and synchronization) into the simulated
 * processor, which consumes it with full timing feedback: the
 * coroutine is only resumed when the simulated processor has finished
 * the previous operation, so contention reshapes the interleaving
 * exactly as in execution-driven simulation.
 */

#ifndef CCNUMA_WORKLOAD_OP_STREAM_HH
#define CCNUMA_WORKLOAD_OP_STREAM_HH

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace ccnuma
{

/** One operation issued by an application thread. */
struct ThreadOp
{
    enum class Kind : std::uint8_t
    {
        Load,    ///< read @c addr
        Store,   ///< write @c addr
        Compute, ///< execute @c count ALU/FPU instructions
        Barrier, ///< global barrier @c count
        Lock,    ///< acquire lock @c count
        Unlock,  ///< release lock @c count
        End,     ///< thread finished
    };

    Kind kind = Kind::End;
    Addr addr = 0;
    std::uint32_t count = 0; ///< instructions, or sync identifier

    static ThreadOp load(Addr a) { return {Kind::Load, a, 0}; }
    static ThreadOp store(Addr a) { return {Kind::Store, a, 0}; }
    static ThreadOp
    compute(std::uint32_t n)
    {
        return {Kind::Compute, 0, n};
    }
    static ThreadOp
    barrier(std::uint32_t id)
    {
        return {Kind::Barrier, 0, id};
    }
    static ThreadOp lock(std::uint32_t id) { return {Kind::Lock, 0, id}; }
    static ThreadOp
    unlock(std::uint32_t id)
    {
        return {Kind::Unlock, 0, id};
    }
};

/**
 * Move-only generator of ThreadOps. A workload kernel is a function
 * returning OpStream and yielding ThreadOps from a coroutine.
 *
 * A stream can alternatively serve ops out of a pre-captured buffer
 * (fromBuffer): replayed sweeps walk the recorded vector with a bare
 * index, so next() performs no coroutine resume and no allocation.
 * The consumer cannot tell the difference — timing feedback only
 * controls *when* next() is called, never what it returns, so a
 * buffer recorded from one run replays bit-identically anywhere the
 * workload identity (kernel, thread count, scaling, seed) matches.
 */
class OpStream
{
  public:
    struct promise_type
    {
        ThreadOp current;

        OpStream
        get_return_object()
        {
            return OpStream(
                std::coroutine_handle<promise_type>::from_promise(
                    *this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }

        std::suspend_always
        yield_value(ThreadOp op) noexcept
        {
            current = op;
            return {};
        }

        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    OpStream() = default;

    explicit OpStream(std::coroutine_handle<promise_type> h)
        : handle_(h)
    {}

    OpStream(OpStream &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr)),
          buf_(std::move(o.buf_)), idx_(std::exchange(o.idx_, 0)),
          tape_(std::move(o.tape_)),
          tapeBase_(std::exchange(o.tapeBase_, 0)),
          tapeOn_(std::exchange(o.tapeOn_, false))
    {}

    OpStream &
    operator=(OpStream &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
            buf_ = std::move(o.buf_);
            idx_ = std::exchange(o.idx_, 0);
            tape_ = std::move(o.tape_);
            tapeBase_ = std::exchange(o.tapeBase_, 0);
            tapeOn_ = std::exchange(o.tapeOn_, false);
        }
        return *this;
    }

    OpStream(const OpStream &) = delete;
    OpStream &operator=(const OpStream &) = delete;

    ~OpStream() { destroy(); }

    /**
     * Build a stream that replays @p ops in order. The shared_ptr
     * keeps the owning replay buffer alive (typically via the
     * aliasing constructor into one of its per-thread vectors);
     * serving an op is an indexed read with no allocation.
     */
    static OpStream
    fromBuffer(std::shared_ptr<const std::vector<ThreadOp>> ops)
    {
        OpStream s;
        s.buf_ = std::move(ops);
        return s;
    }

    /** @return true iff the stream holds a coroutine or a buffer. */
    explicit operator bool() const
    {
        return handle_ != nullptr || buf_ != nullptr;
    }

    /**
     * Advance to the next operation.
     * @return false when the thread's program has ended.
     */
    bool
    next(ThreadOp &out)
    {
        if (buf_) {
            if (idx_ >= buf_->size())
                return false;
            out = (*buf_)[idx_++];
            return true;
        }
        if (idx_ < tapeBase_ + tape_.size()) {
            // Replaying after a speculative rewind: serve the tape.
            out = tape_[idx_ - tapeBase_];
            ++idx_;
            return true;
        }
        if (!handle_ || handle_.done())
            return false;
        handle_.resume();
        if (handle_.done())
            return false;
        out = handle_.promise().current;
        if (tapeOn_)
            tape_.push_back(out);
        ++idx_;
        return true;
    }

    // --- speculative rewind support ---
    //
    // A coroutine cannot be copied, but it does not need to be: the
    // stream contract above guarantees timing feedback only controls
    // *when* next() is called, never what it returns. So speculation
    // records served ops on a side tape and a rollback just rewinds
    // the absolute cursor; replayed ops come from the tape until it
    // catches back up to the coroutine.

    /** Start recording served ops (idempotent). */
    void specEnableTape() { tapeOn_ = true; }

    /** Absolute count of ops served so far. */
    std::size_t specCursor() const { return idx_; }

    /** Roll back to an earlier cursor from specCursor(). */
    void
    specRewind(std::size_t cursor)
    {
        idx_ = cursor;
    }

    /** Ops before @p cursor are committed; drop their tape prefix. */
    void
    specCommitTape(std::size_t cursor)
    {
        if (buf_ || tape_.empty() || cursor <= tapeBase_)
            return;
        std::size_t n = cursor - tapeBase_;
        if (n > tape_.size())
            n = tape_.size();
        tape_.erase(tape_.begin(),
                    tape_.begin() + static_cast<std::ptrdiff_t>(n));
        tapeBase_ += n;
    }

    /** Stop recording and drop the tape (end of speculation). */
    void
    specDisableTape()
    {
        tapeOn_ = false;
        tapeBase_ += tape_.size();
        tape_.clear();
        tape_.shrink_to_fit();
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
    /** Replay source; when set, next() never touches the coroutine. */
    std::shared_ptr<const std::vector<ThreadOp>> buf_;
    std::size_t idx_ = 0;
    /** Speculation tape: ops served while recording (see above). */
    std::vector<ThreadOp> tape_;
    std::size_t tapeBase_ = 0;
    bool tapeOn_ = false;
};

} // namespace ccnuma

#endif // CCNUMA_WORKLOAD_OP_STREAM_HH
