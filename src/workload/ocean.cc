#include <algorithm>

#include "workload/splash.hh"

namespace ccnuma
{

OceanWorkload::OceanWorkload(const WorkloadParams &p)
    : Workload(p)
{
    // 258x258 at scale 1; the Figure 9 large grid is 514x514
    // (dataFactor ~2).
    std::uint64_t n = scaled(256, params_.dataFactor) + 2;
    n_ = static_cast<unsigned>(
        std::max<std::uint64_t>(n, p.numThreads + 2));
    steps_ = static_cast<unsigned>(
        std::max<std::uint64_t>(2, scaled(6)));
    std::uint64_t bytes =
        static_cast<std::uint64_t>(n_) * n_ * elemBytes;
    gridA_ = alloc(bytes, 4096);
    gridB_ = alloc(bytes, 4096);
    nc_ = n_ / 2 + 1;
    std::uint64_t cbytes =
        static_cast<std::uint64_t>(nc_) * nc_ * elemBytes;
    coarseA_ = alloc(cbytes, 4096);
    coarseB_ = alloc(cbytes, 4096);
}

std::string
OceanWorkload::name() const
{
    return "Ocean-" + std::to_string(n_);
}

Addr
OceanWorkload::cell(Addr grid, unsigned r, unsigned c) const
{
    return grid + (static_cast<Addr>(r) * n_ + c) * elemBytes;
}

Addr
OceanWorkload::coarseCell(Addr grid, unsigned r, unsigned c) const
{
    return grid + (static_cast<Addr>(r) * nc_ + c) * elemBytes;
}

OpStream
OceanWorkload::thread(unsigned tid)
{
    const unsigned P = params_.numThreads;
    const unsigned interior = n_ - 2;
    const unsigned lo = 1 + tid * interior / P;
    const unsigned hi = 1 + (tid + 1) * interior / P;
    std::uint32_t bar = 0;

    const unsigned cinterior = nc_ - 2;
    const unsigned clo = 1 + tid * cinterior / P;
    const unsigned chi = 1 + (tid + 1) * cinterior / P;

    for (unsigned s = 0; s < steps_; ++s) {
        // Two fine-grid Jacobi sweeps per timestep, ping-ponging the
        // grids. Reading rows lo-1 and hi touches the neighboring
        // processors' freshly written strips: nearest-neighbor
        // communication every sweep.
        for (int sweep = 0; sweep < 2; ++sweep) {
            Addr src = sweep ? gridB_ : gridA_;
            Addr dst = sweep ? gridA_ : gridB_;
            for (unsigned r = lo; r < hi; ++r) {
                for (unsigned c = 1; c < n_ - 1; ++c) {
                    co_yield ThreadOp::load(cell(src, r - 1, c));
                    co_yield ThreadOp::load(cell(src, r + 1, c));
                    co_yield ThreadOp::load(cell(src, r, c - 1));
                    co_yield ThreadOp::load(cell(src, r, c + 1));
                    co_yield ThreadOp::load(cell(src, r, c));
                    co_yield ThreadOp::compute(6);
                    co_yield ThreadOp::store(cell(dst, r, c));
                }
            }
            co_yield ThreadOp::barrier(bar++);
        }
        // Multigrid coarse-level sweeps: half the rows per
        // processor, so the boundary (communication) fraction
        // doubles — these phases dominate Ocean's controller load.
        for (int sweep = 0; sweep < 2 && chi > clo; ++sweep) {
            Addr src = sweep ? coarseB_ : coarseA_;
            Addr dst = sweep ? coarseA_ : coarseB_;
            for (unsigned r = clo; r < chi; ++r) {
                for (unsigned c = 1; c < nc_ - 1; ++c) {
                    co_yield ThreadOp::load(
                        coarseCell(src, r - 1, c));
                    co_yield ThreadOp::load(
                        coarseCell(src, r + 1, c));
                    co_yield ThreadOp::load(
                        coarseCell(src, r, c));
                    co_yield ThreadOp::compute(6);
                    co_yield ThreadOp::store(
                        coarseCell(dst, r, c));
                }
            }
            co_yield ThreadOp::barrier(bar++);
        }
        if (chi <= clo) {
            // Degenerate tiny grids: keep the barrier count uniform.
            co_yield ThreadOp::barrier(bar++);
            co_yield ThreadOp::barrier(bar++);
        }
        // Global error reduction under a lock (hot line at its
        // home), as in Ocean's convergence tests.
        co_yield ThreadOp::lock(0);
        co_yield ThreadOp::load(cell(gridA_, 0, 0));
        co_yield ThreadOp::store(cell(gridA_, 0, 0));
        co_yield ThreadOp::unlock(0);
        co_yield ThreadOp::barrier(bar++);
    }
}

} // namespace ccnuma
