#include "workload/synthetic.hh"

namespace ccnuma
{

OpStream
UniformWorkload::thread(unsigned tid)
{
    Random rng(params_.seed * 1000003 + tid);
    const Knobs k = knobs_;
    const Addr shared_base = sharedBase_;
    const Addr private_base = privateBase_.at(tid);
    std::uint32_t barrier_id = 0;

    for (std::uint64_t i = 0; i < k.refsPerThread; ++i) {
        if (k.computeGap)
            co_yield ThreadOp::compute(k.computeGap);
        Addr a;
        if (rng.chance(k.sharedFraction)) {
            a = shared_base +
                (rng.below(k.sharedBytes / 8) * 8);
        } else {
            a = private_base + (rng.below(k.privateBytes / 8) * 8);
        }
        if (rng.chance(k.writeFraction))
            co_yield ThreadOp::store(a);
        else
            co_yield ThreadOp::load(a);
        if (k.barrierEvery && (i + 1) % k.barrierEvery == 0)
            co_yield ThreadOp::barrier(barrier_id++);
    }
}

OpStream
ScriptWorkload::thread(unsigned tid)
{
    // Copy: the coroutine may outlive calls into the workload, but
    // not the workload itself; the copy keeps iteration simple.
    std::vector<ThreadOp> ops = scripts_.at(tid);
    for (const ThreadOp &op : ops)
        co_yield op;
}

} // namespace ccnuma
