#include <algorithm>
#include <bit>
#include <cmath>

#include "workload/splash.hh"

namespace ccnuma
{

FftWorkload::FftWorkload(const WorkloadParams &p)
    : Workload(p)
{
    // 64K complex doubles = a 256x256 matrix at scale 1; the
    // Figure 9 large data set (256K) doubles the dimension.
    double dim = 256.0 * params_.scale *
                 std::sqrt(params_.dataFactor);
    unsigned d = static_cast<unsigned>(
        std::bit_ceil(static_cast<unsigned>(std::max(8.0, dim))));
    // Rows must divide evenly among threads.
    while (d % params_.numThreads != 0)
        d *= 2;
    dim_ = d;
    // Pad each row by one cache line, as the SPLASH-2 FFT does:
    // without padding, power-of-two row strides make the transpose's
    // column walks collide in a handful of cache sets and thrash.
    rowStride_ = dim_ + params_.lineBytes / elemBytes;
    std::uint64_t bytes =
        static_cast<std::uint64_t>(dim_) * rowStride_ * elemBytes;
    x_ = alloc(bytes, 4096);
    trans_ = alloc(bytes, 4096);
    roots_ = alloc(static_cast<std::uint64_t>(dim_) * elemBytes,
                   4096);
}

std::string
FftWorkload::name() const
{
    std::uint64_t pts = points();
    if (pts >= 1024)
        return "FFT-" + std::to_string(pts / 1024) + "K";
    return "FFT-" + std::to_string(pts);
}

Addr
FftWorkload::elemAddr(Addr base, unsigned r, unsigned c) const
{
    return base +
           (static_cast<Addr>(r) * rowStride_ + c) * elemBytes;
}

void
FftWorkload::place(AddressMap &map)
{
    // The paper's FFT uses programmer hints for optimal placement:
    // each processor's partition of both matrices lives on its node.
    unsigned P = params_.numThreads;
    unsigned rpp = dim_ / P;
    for (unsigned t = 0; t < P; ++t) {
        NodeId node = static_cast<NodeId>(
            static_cast<std::uint64_t>(t) * map.numNodes() / P);
        std::uint64_t bytes =
            static_cast<std::uint64_t>(rpp) * rowStride_ * elemBytes;
        map.placeRange(elemAddr(x_, t * rpp, 0), bytes, node);
        map.placeRange(elemAddr(trans_, t * rpp, 0), bytes, node);
    }
}

OpStream
FftWorkload::thread(unsigned tid)
{
    const unsigned P = params_.numThreads;
    const unsigned rpp = dim_ / P;
    const unsigned lo = tid * rpp;
    const unsigned hi = lo + rpp;
    const unsigned passes =
        static_cast<unsigned>(std::countr_zero(dim_));
    std::uint32_t bar = 0;

    // Helper lambdas would not be coroutines; inline the phases.
    for (int phase = 0; phase < 5; ++phase) {
        if (phase == 0 || phase == 2 || phase == 4) {
            // Transpose: writing our rows of dst reads a column of
            // src whose elements are spread over every processor's
            // partition — the all-to-all burst.
            Addr src = (phase == 2) ? trans_ : x_;
            Addr dst = (phase == 2) ? x_ : trans_;
            for (unsigned r = lo; r < hi; ++r) {
                for (unsigned c = 0; c < dim_; ++c) {
                    co_yield ThreadOp::load(elemAddr(src, c, r));
                    co_yield ThreadOp::compute(10);
                    co_yield ThreadOp::store(elemAddr(dst, r, c));
                }
            }
        } else {
            // 1-D FFTs over our rows of the working matrix.
            Addr work = (phase == 1) ? trans_ : x_;
            for (unsigned r = lo; r < hi; ++r) {
                for (unsigned pass = 0; pass < passes; ++pass) {
                    for (unsigned c = 0; c < dim_; c += 2) {
                        co_yield ThreadOp::load(
                            elemAddr(work, r, c));
                        co_yield ThreadOp::load(
                            elemAddr(work, r, c + 1));
                        if ((c & 7) == 0) {
                            co_yield ThreadOp::load(
                                roots_ + (c % dim_) * elemBytes);
                        }
                        co_yield ThreadOp::compute(18);
                        co_yield ThreadOp::store(
                            elemAddr(work, r, c));
                    }
                }
            }
        }
        co_yield ThreadOp::barrier(bar++);
    }
}

} // namespace ccnuma
