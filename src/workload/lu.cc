#include <cmath>

#include "workload/splash.hh"

namespace ccnuma
{

LuWorkload::LuWorkload(const WorkloadParams &p)
    : Workload(p)
{
    // 512x512 matrix with 16x16 blocks at scale 1 (Table 5).
    std::uint64_t n = scaled(512);
    n = ((n + blockDim - 1) / blockDim) * blockDim;
    if (n < 2 * blockDim)
        n = 2 * blockDim;
    n_ = static_cast<unsigned>(n);
    nb_ = n_ / blockDim;

    // Near-square processor grid (owner-computes block scatter).
    unsigned P = params_.numThreads;
    pr_ = static_cast<unsigned>(std::sqrt(static_cast<double>(P)));
    while (P % pr_ != 0)
        --pr_;
    pc_ = P / pr_;

    // Block-major allocation, as in the SPLASH-2 contiguous-blocks
    // LU: each 16x16 block is 2 KB of consecutive memory.
    a_ = alloc(static_cast<std::uint64_t>(n_) * n_ * 8);
}

unsigned
LuWorkload::owner(unsigned bi, unsigned bj) const
{
    return (bi % pr_) * pc_ + (bj % pc_);
}

Addr
LuWorkload::blockAddr(unsigned bi, unsigned bj) const
{
    return a_ + static_cast<Addr>(bi * nb_ + bj) * blockDim *
                    blockDim * 8;
}

OpStream
LuWorkload::thread(unsigned tid)
{
    constexpr unsigned be = blockDim * blockDim; // elements per block
    std::uint32_t bar = 0;

    for (unsigned k = 0; k < nb_; ++k) {
        // Factorize the diagonal block.
        if (owner(k, k) == tid) {
            Addr diag = blockAddr(k, k);
            for (unsigned e = 0; e < be; ++e) {
                co_yield ThreadOp::load(diag + e * 8);
                co_yield ThreadOp::compute(24);
                co_yield ThreadOp::store(diag + e * 8);
            }
        }
        co_yield ThreadOp::barrier(bar++);

        // Perimeter blocks in row k and column k.
        for (unsigned t = k + 1; t < nb_; ++t) {
            for (int which = 0; which < 2; ++which) {
                unsigned bi = which ? t : k;
                unsigned bj = which ? k : t;
                if (owner(bi, bj) != tid)
                    continue;
                Addr diag = blockAddr(k, k);
                Addr blk = blockAddr(bi, bj);
                for (unsigned e = 0; e < be; ++e) {
                    co_yield ThreadOp::load(diag + e * 8);
                    co_yield ThreadOp::compute(4);
                }
                for (unsigned e = 0; e < be; ++e) {
                    // Triangular solve: ~blockDim flops/element.
                    co_yield ThreadOp::load(blk + e * 8);
                    co_yield ThreadOp::compute(3 * blockDim);
                    co_yield ThreadOp::store(blk + e * 8);
                }
            }
        }
        co_yield ThreadOp::barrier(bar++);

        // Interior updates: A(i,j) -= A(i,k) * A(k,j).
        for (unsigned i = k + 1; i < nb_; ++i) {
            for (unsigned j = k + 1; j < nb_; ++j) {
                if (owner(i, j) != tid)
                    continue;
                Addr aik = blockAddr(i, k);
                Addr akj = blockAddr(k, j);
                Addr aij = blockAddr(i, j);
                for (unsigned e = 0; e < be; ++e) {
                    co_yield ThreadOp::load(aik + e * 8);
                    co_yield ThreadOp::compute(4);
                }
                for (unsigned e = 0; e < be; ++e) {
                    co_yield ThreadOp::load(akj + e * 8);
                    co_yield ThreadOp::compute(4);
                }
                for (unsigned e = 0; e < be; ++e) {
                    // 2*blockDim flops + loop overhead per element.
                    co_yield ThreadOp::load(aij + e * 8);
                    co_yield ThreadOp::compute(6 * blockDim);
                    co_yield ThreadOp::store(aij + e * 8);
                }
            }
        }
        co_yield ThreadOp::barrier(bar++);
    }
}

} // namespace ccnuma
