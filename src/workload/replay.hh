/**
 * @file
 * Trace-replay fast path for repeated-identity sweeps.
 *
 * Figure sweeps (fig6-fig12) run the same eight kernels dozens of
 * times while varying only *machine* parameters — protocol, occupancy,
 * network latency, shard count. The reference stream a kernel feeds
 * the simulated processors depends on none of those: it is fully
 * determined by the workload identity (kernel name plus every
 * WorkloadParams field). Generating it from the data-computing
 * coroutines again for every sweep point is pure waste.
 *
 * This module captures each identity's per-thread operation vectors
 * once into a ReplayBuffer and replays them allocation-free through
 * OpStream::fromBuffer for every later point with the same identity.
 * Replay is *provably* bit-identical: the consumer pulls ops one at a
 * time and timing feedback only decides when the next op is pulled,
 * never which op arrives, so a buffer and the coroutine it was
 * recorded from are observationally equivalent streams.
 *
 * The identity key is a caller-supplied canonical text (the campaign
 * layer passes serve::canonicalWorkload(app, params), which renders
 * every WorkloadParams field). Keys are compared as full strings —
 * hashes only name disk files, and a loaded file whose embedded
 * identity text differs from the request is a counted stale reject,
 * never a silent wrong-trace replay.
 *
 * Cache behavior mirrors serve::ResultCache: byte-capped in-memory
 * LRU, single-flight capture dedup, optional disk persistence with
 * atomic tmp+rename publish. Every outcome is counted.
 *
 * Environment knobs (read once, at first globalReplayCache() use):
 *  - CCNUMA_REPLAY=0       disable replay entirely (always generate)
 *  - CCNUMA_REPLAY_BYTES=N in-memory cap in bytes (default 256 MiB)
 *  - CCNUMA_REPLAY_DIR=D   persist captured traces under D
 */

#ifndef CCNUMA_WORKLOAD_REPLAY_HH
#define CCNUMA_WORKLOAD_REPLAY_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/workload.hh"

namespace ccnuma
{

/** A captured reference stream: one op vector per workload thread. */
struct ReplayBuffer
{
    /** Canonical workload identity this trace was captured from. */
    std::string identity;
    std::vector<std::vector<ThreadOp>> threads;

    /** Resident payload size (ops only; identity text is noise). */
    std::uint64_t
    bytes() const
    {
        std::uint64_t n = 0;
        for (const auto &t : threads)
            n += t.size() * sizeof(ThreadOp);
        return n;
    }

    std::uint64_t
    ops() const
    {
        std::uint64_t n = 0;
        for (const auto &t : threads)
            n += t.size();
        return n;
    }
};

/**
 * Capture @p w's complete reference stream by running every thread
 * coroutine to exhaustion. The workload is consumed — callers must
 * construct a fresh instance for anything that runs after capture.
 */
std::shared_ptr<const ReplayBuffer>
captureWorkload(Workload &w, std::string identity);

/** Monotonic counters for every replay-cache outcome. */
struct ReplayStats
{
    std::uint64_t captures = 0;     ///< traces generated (compute ran)
    std::uint64_t hits = 0;         ///< served from memory
    std::uint64_t diskHits = 0;     ///< served from the persist dir
    std::uint64_t staleRejects = 0; ///< disk identity mismatch
    std::uint64_t dedupWaits = 0;   ///< waited on an in-flight capture
    std::uint64_t evictions = 0;    ///< LRU entries dropped at the cap
    std::uint64_t bytes = 0;        ///< current resident payload bytes
    std::uint64_t entries = 0;      ///< current resident trace count

    /** replayed / (replayed + captured); 0 when nothing was asked. */
    double
    hitRate() const
    {
        std::uint64_t served = hits + diskHits + dedupWaits;
        std::uint64_t total = served + captures;
        return total ? static_cast<double>(served) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Byte-capped, single-flight, optionally persistent cache of captured
 * reference streams, keyed by canonical workload identity text.
 */
class ReplayCache
{
  public:
    /**
     * @param byte_cap    resident ceiling; 0 disables the memory LRU
     *                    (captures still dedup while in flight).
     * @param persist_dir disk write-through directory; "" disables
     *                    persistence. Created on first store.
     */
    explicit ReplayCache(std::uint64_t byte_cap,
                         std::string persist_dir = "");

    ReplayCache(const ReplayCache &) = delete;
    ReplayCache &operator=(const ReplayCache &) = delete;

    /**
     * Return the trace for @p identity, capturing it with a workload
     * from @p make on the first request. Concurrent requests for the
     * same identity share one capture (single-flight). The returned
     * buffer is immutable and safe to replay from any thread.
     */
    std::shared_ptr<const ReplayBuffer>
    acquire(const std::string &identity,
            const std::function<std::unique_ptr<Workload>()> &make);

    ReplayStats stats() const;

  private:
    struct Entry
    {
        std::shared_ptr<const ReplayBuffer> buf;
        std::list<std::string>::iterator lruPos;
    };

    struct Flight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::shared_ptr<const ReplayBuffer> buf;
    };

    void insertLocked(const std::string &identity,
                      std::shared_ptr<const ReplayBuffer> buf);
    void evictLocked();
    std::string pathFor(const std::string &identity) const;
    /** nullptr on miss; sets @p stale on an identity-text mismatch. */
    std::shared_ptr<const ReplayBuffer>
    loadFromDisk(const std::string &identity, bool &stale) const;
    void storeToDisk(const ReplayBuffer &b) const;

    mutable std::mutex mutex_;
    std::uint64_t byteCap_;
    std::string persistDir_;
    std::unordered_map<std::string, Entry> entries_;
    /** Identity texts, least-recently-used first. */
    std::list<std::string> lru_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inFlight_;
    ReplayStats stats_;
};

/**
 * Wrap a captured trace as a Workload: thread(tid) replays the
 * recorded vector allocation-free; name()/place()/params() delegate
 * to a fresh @p inner instance of the same identity (placement hints
 * are machine-facing, cheap, and must still run per machine).
 */
class ReplayWorkload : public Workload
{
  public:
    ReplayWorkload(std::unique_ptr<Workload> inner,
                   std::shared_ptr<const ReplayBuffer> buf)
        : Workload(inner->params()), inner_(std::move(inner)),
          buf_(std::move(buf))
    {
        ccnuma_assert(buf_ != nullptr);
        ccnuma_assert(buf_->threads.size() == numThreads());
    }

    std::string name() const override { return inner_->name(); }

    OpStream
    thread(unsigned tid) override
    {
        // Aliasing shared_ptr: the stream keeps the whole buffer
        // alive while indexing one thread's vector.
        return OpStream::fromBuffer(
            std::shared_ptr<const std::vector<ThreadOp>>(
                buf_, &buf_->threads.at(tid)));
    }

    void place(AddressMap &map) override { inner_->place(map); }

  private:
    std::unique_ptr<Workload> inner_;
    std::shared_ptr<const ReplayBuffer> buf_;
};

/**
 * Process-wide replay cache, configured from the environment on first
 * use. nullptr when CCNUMA_REPLAY=0 — callers fall back to generating
 * every stream.
 */
ReplayCache *globalReplayCache();

} // namespace ccnuma

#endif // CCNUMA_WORKLOAD_REPLAY_HH
