/**
 * @file
 * Workload abstraction: a parallel program expressed as one lazily
 * generated operation stream per thread, plus optional page-placement
 * hints. The eight SPLASH-2 kernel re-implementations and the
 * synthetic traffic generators all derive from Workload.
 */

#ifndef CCNUMA_WORKLOAD_WORKLOAD_HH
#define CCNUMA_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_map.hh"
#include "sim/logging.hh"
#include "workload/op_stream.hh"

namespace ccnuma
{

/** Parameters shared by all workloads. */
struct WorkloadParams
{
    unsigned numThreads = 64;
    /**
     * Linear problem-scale factor. 1.0 reproduces the paper's data
     * set (Table 5); smaller values shrink data and iteration counts
     * proportionally so full sweeps run on small machines.
     */
    double scale = 1.0;
    /** Extra multiplier for the Figure 9 large-data variants. */
    double dataFactor = 1.0;
    unsigned lineBytes = 128;
    /** First heap address handed out by the bump allocator. */
    Addr heapBase = 0x10'0000;
    /** Seed for workloads with pseudo-random structure. */
    std::uint64_t seed = 12345;
};

/** Base class for all workloads. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &p)
        : params_(p), nextAddr_(p.heapBase)
    {}

    virtual ~Workload() = default;

    /** Workload name as reported in tables (e.g. "Ocean-258"). */
    virtual std::string name() const = 0;

    unsigned numThreads() const { return params_.numThreads; }

    /** Generate thread @p tid's operation stream. */
    virtual OpStream thread(unsigned tid) = 0;

    /**
     * Apply page-placement hints before the run (the paper's FFT
     * uses programmer-optimal placement; everything else relies on
     * the default round-robin policy).
     */
    virtual void place(AddressMap &map) { (void)map; }

    const WorkloadParams &params() const { return params_; }

  protected:
    /** Bump-allocate a shared array. */
    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = 0)
    {
        if (align == 0)
            align = params_.lineBytes;
        nextAddr_ = (nextAddr_ + align - 1) & ~(align - 1);
        Addr a = nextAddr_;
        nextAddr_ += bytes;
        return a;
    }

    /** Scale a dimension by the problem-scale factor (min 1). */
    std::uint64_t
    scaled(std::uint64_t n, double factor = 1.0) const
    {
        double v = static_cast<double>(n) * params_.scale * factor;
        return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
    }

    WorkloadParams params_;
    Addr nextAddr_;
};

/**
 * Instantiate a workload by its table name: "LU", "Cholesky",
 * "Water-Nsq", "Water-Sp", "Barnes", "FFT", "Radix", "Ocean",
 * or "Uniform" (the synthetic generator).
 * @throws FatalError for unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &p);

/** The eight SPLASH-2 application names in the paper's table order. */
const std::vector<std::string> &splashNames();

} // namespace ccnuma

#endif // CCNUMA_WORKLOAD_WORKLOAD_HH
