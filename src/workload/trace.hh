/**
 * @file
 * Trace-driven workloads: replay per-thread reference traces from a
 * text file through the simulator, for users who want to drive the
 * machine with their own captured address streams rather than the
 * built-in kernels.
 *
 * Format: one operation per line, lines starting with '#' ignored.
 *
 *   T <tid>            switch to thread <tid> (initially 0)
 *   L <hex-addr>       load
 *   S <hex-addr>       store
 *   C <count>          compute <count> instructions
 *   B <id>             barrier
 *   A <id>             lock acquire
 *   R <id>             lock release
 *
 * Threads not mentioned in the trace produce empty streams (they
 * still participate in barriers via the machine's barrier count, so
 * traces using barriers should cover every thread).
 */

#ifndef CCNUMA_WORKLOAD_TRACE_HH
#define CCNUMA_WORKLOAD_TRACE_HH

#include <istream>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace ccnuma
{

/** A workload replaying a parsed text trace. */
class TraceWorkload : public Workload
{
  public:
    /**
     * Parse @p in into per-thread operation lists.
     * @throws FatalError on malformed input or an out-of-range
     *         thread id.
     */
    TraceWorkload(const WorkloadParams &p, std::istream &in);

    /** Convenience: parse a trace from a string. */
    static std::unique_ptr<TraceWorkload>
    fromString(const WorkloadParams &p, const std::string &text);

    /** Convenience: parse a trace file. */
    static std::unique_ptr<TraceWorkload>
    fromFile(const WorkloadParams &p, const std::string &path);

    std::string name() const override { return "Trace"; }

    OpStream thread(unsigned tid) override;

    /** Number of operations parsed for @p tid. */
    std::size_t
    opsForThread(unsigned tid) const
    {
        return ops_.at(tid).size();
    }

  private:
    std::vector<std::vector<ThreadOp>> ops_;
};

} // namespace ccnuma

#endif // CCNUMA_WORKLOAD_TRACE_HH
