#include <algorithm>

#include "workload/splash.hh"

namespace ccnuma
{

BarnesWorkload::BarnesWorkload(const WorkloadParams &p)
    : Workload(p)
{
    npart_ = static_cast<unsigned>(
        std::max<std::uint64_t>(scaled(8192), 2 * p.numThreads));
    ncell_ = std::max(64u, npart_ / 2);
    steps_ = static_cast<unsigned>(
        std::max<std::uint64_t>(2, scaled(4)));
    parts_ = alloc(static_cast<std::uint64_t>(npart_) * partBytes);
    cells_ = alloc(static_cast<std::uint64_t>(ncell_) * cellBytes);
}

OpStream
BarnesWorkload::thread(unsigned tid)
{
    const unsigned P = params_.numThreads;
    const unsigned lo = tid * npart_ / P;
    const unsigned hi = (tid + 1) * npart_ / P;
    std::uint32_t bar = 0;

    for (unsigned s = 0; s < steps_; ++s) {
        // Tree build: walk from the root, lock the leaf cell and
        // insert. Cell indices derive from particle identity so the
        // tree shape is deterministic and shared across processors.
        Random walk(params_.seed * 31 + s);
        for (unsigned m = lo; m < hi; ++m) {
            co_yield ThreadOp::load(parts_ + Addr(m) * partBytes);
            Random path(params_.seed ^ (std::uint64_t(s) << 32) ^ m);
            unsigned depth = 4 + static_cast<unsigned>(path.below(4));
            unsigned cell = 0;
            for (unsigned d = 0; d < depth; ++d) {
                std::uint64_t u = path.below(ncell_);
                cell = static_cast<unsigned>(u * u / ncell_);
                co_yield ThreadOp::load(cells_ +
                                        Addr(cell) * cellBytes);
                co_yield ThreadOp::compute(12);
            }
            co_yield ThreadOp::lock(cell % numLocks);
            co_yield ThreadOp::load(cells_ + Addr(cell) * cellBytes);
            co_yield ThreadOp::store(cells_ + Addr(cell) * cellBytes);
            co_yield ThreadOp::unlock(cell % numLocks);
        }
        co_yield ThreadOp::barrier(bar++);

        // Force computation: irregular read-only traversal of the
        // (now stable) cell array, heavy on compute. Tree traversals
        // revisit the upper levels constantly, so cell choice is
        // skewed quadratically toward the low-index (upper-tree)
        // cells, which stay cache-resident.
        for (unsigned m = lo; m < hi; ++m) {
            co_yield ThreadOp::load(parts_ + Addr(m) * partBytes);
            Random path(params_.seed ^ 0xF0F0 ^
                        (std::uint64_t(s) << 32) ^ m);
            unsigned visits =
                24 + static_cast<unsigned>(path.below(16));
            for (unsigned v = 0; v < visits; ++v) {
                std::uint64_t u = path.below(ncell_);
                unsigned cell = static_cast<unsigned>(
                    u * u / ncell_ * u / ncell_);
                co_yield ThreadOp::load(cells_ +
                                        Addr(cell) * cellBytes);
                co_yield ThreadOp::compute(180);
            }
            co_yield ThreadOp::store(parts_ + Addr(m) * partBytes);
            co_yield ThreadOp::store(parts_ + Addr(m) * partBytes +
                                     64);
        }
        co_yield ThreadOp::barrier(bar++);

        // Position update.
        for (unsigned m = lo; m < hi; ++m) {
            co_yield ThreadOp::load(parts_ + Addr(m) * partBytes);
            co_yield ThreadOp::compute(20);
            co_yield ThreadOp::store(parts_ + Addr(m) * partBytes);
        }
        co_yield ThreadOp::barrier(bar++);
    }
}

} // namespace ccnuma
