#include "workload/replay.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <type_traits>

#include "sim/logging.hh"

namespace ccnuma
{

// Traces persist as raw ThreadOp records; the format is only sound
// for a POD op struct (same-platform reload, no pointers to chase).
static_assert(std::is_trivially_copyable_v<ThreadOp>,
              "replay files store ThreadOp verbatim");

namespace
{

/**
 * On-disk trace layout (host-endian, same-platform cache only — the
 * embedded identity check rejects anything else that slips through):
 *
 *   magic "CCNREPL1"            8 bytes
 *   identityLen                 u64
 *   identity text               identityLen bytes
 *   numThreads                  u64
 *   per-thread op count         numThreads x u64
 *   per-thread ThreadOp records concatenated, in thread order
 */
constexpr char kMagic[8] = {'C', 'C', 'N', 'R', 'E', 'P', 'L', '1'};

/** FNV-1a; names disk files only, identity text is the real key. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
readU64(std::istream &is, std::uint64_t &v)
{
    return static_cast<bool>(
        is.read(reinterpret_cast<char *>(&v), sizeof(v)));
}

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

} // namespace

std::shared_ptr<const ReplayBuffer>
captureWorkload(Workload &w, std::string identity)
{
    auto b = std::make_shared<ReplayBuffer>();
    b->identity = std::move(identity);
    b->threads.resize(w.numThreads());
    for (unsigned t = 0; t < w.numThreads(); ++t) {
        OpStream s = w.thread(t);
        ThreadOp op;
        while (s.next(op))
            b->threads[t].push_back(op);
        b->threads[t].shrink_to_fit();
    }
    return b;
}

ReplayCache::ReplayCache(std::uint64_t byte_cap,
                         std::string persist_dir)
    : byteCap_(byte_cap), persistDir_(std::move(persist_dir))
{}

void
ReplayCache::insertLocked(const std::string &identity,
                          std::shared_ptr<const ReplayBuffer> buf)
{
    if (byteCap_ == 0)
        return;
    auto it = entries_.find(identity);
    if (it != entries_.end()) {
        lru_.splice(lru_.end(), lru_, it->second.lruPos);
        return;
    }
    Entry e;
    e.buf = std::move(buf);
    lru_.push_back(identity);
    e.lruPos = std::prev(lru_.end());
    stats_.bytes += e.buf->bytes();
    entries_.emplace(identity, std::move(e));
    stats_.entries = entries_.size();
    evictLocked();
}

void
ReplayCache::evictLocked()
{
    while (stats_.bytes > byteCap_ && !lru_.empty()) {
        auto it = entries_.find(lru_.front());
        stats_.bytes -= it->second.buf->bytes();
        lru_.pop_front();
        entries_.erase(it);
        ++stats_.evictions;
    }
    stats_.entries = entries_.size();
}

std::string
ReplayCache::pathFor(const std::string &identity) const
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(identity)));
    return persistDir_ + "/" + buf + ".replay";
}

std::shared_ptr<const ReplayBuffer>
ReplayCache::loadFromDisk(const std::string &identity,
                          bool &stale) const
{
    stale = false;
    if (persistDir_.empty())
        return nullptr;
    std::ifstream is(pathFor(identity), std::ios::binary);
    if (!is)
        return nullptr;
    char magic[sizeof(kMagic)];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        stale = true; // wrong or torn format == stale
        return nullptr;
    }
    std::uint64_t id_len = 0;
    if (!readU64(is, id_len) || id_len > (1u << 20)) {
        stale = true;
        return nullptr;
    }
    std::string id(id_len, '\0');
    if (!is.read(id.data(), static_cast<std::streamsize>(id_len)))
        return nullptr;
    if (id != identity) {
        // Hash-named file holds a different identity (collision or a
        // trace captured under older workload parameters): reject it
        // and recapture rather than replaying the wrong stream.
        stale = true;
        return nullptr;
    }
    std::uint64_t nthreads = 0;
    if (!readU64(is, nthreads) || nthreads > (1u << 20))
        return nullptr;
    std::vector<std::uint64_t> counts(nthreads);
    for (auto &c : counts) {
        if (!readU64(is, c))
            return nullptr;
    }
    auto b = std::make_shared<ReplayBuffer>();
    b->identity = identity;
    b->threads.resize(nthreads);
    for (std::uint64_t t = 0; t < nthreads; ++t) {
        b->threads[t].resize(counts[t]);
        auto bytes = static_cast<std::streamsize>(
            counts[t] * sizeof(ThreadOp));
        if (!is.read(reinterpret_cast<char *>(b->threads[t].data()),
                     bytes))
            return nullptr; // truncated == miss; will be rewritten
    }
    return b;
}

void
ReplayCache::storeToDisk(const ReplayBuffer &b) const
{
    if (persistDir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(persistDir_, ec);
    if (ec)
        return;
    std::string path = pathFor(b.identity);
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            return;
        os.write(kMagic, sizeof(kMagic));
        writeU64(os, b.identity.size());
        os.write(b.identity.data(),
                 static_cast<std::streamsize>(b.identity.size()));
        writeU64(os, b.threads.size());
        for (const auto &t : b.threads)
            writeU64(os, t.size());
        for (const auto &t : b.threads) {
            os.write(reinterpret_cast<const char *>(t.data()),
                     static_cast<std::streamsize>(
                         t.size() * sizeof(ThreadOp)));
        }
        if (!os)
            return;
    }
    // Atomic publish: a concurrent reader sees the old file or the
    // new one, never a torn write.
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

std::shared_ptr<const ReplayBuffer>
ReplayCache::acquire(
    const std::string &identity,
    const std::function<std::unique_ptr<Workload>()> &make)
{
    while (true) {
        std::shared_ptr<Flight> flight;
        bool owner = false;
        {
            std::lock_guard<std::mutex> g(mutex_);
            auto it = entries_.find(identity);
            if (it != entries_.end()) {
                ++stats_.hits;
                lru_.splice(lru_.end(), lru_, it->second.lruPos);
                return it->second.buf;
            }
            auto fit = inFlight_.find(identity);
            if (fit != inFlight_.end()) {
                flight = fit->second;
            } else {
                flight = std::make_shared<Flight>();
                inFlight_.emplace(identity, flight);
                owner = true;
            }
        }

        if (!owner) {
            // Single-flight rendezvous: share the owner's capture.
            std::unique_lock<std::mutex> fl(flight->m);
            flight->cv.wait(fl, [&] { return flight->done; });
            if (!flight->failed) {
                std::lock_guard<std::mutex> g(mutex_);
                ++stats_.dedupWaits;
                return flight->buf;
            }
            continue; // owner's capture threw; retry (maybe as owner)
        }

        std::shared_ptr<const ReplayBuffer> buf;
        bool from_disk = false;
        bool stale = false;
        try {
            buf = loadFromDisk(identity, stale);
            from_disk = buf != nullptr;
            if (!from_disk) {
                auto w = make();
                buf = captureWorkload(*w, identity);
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> g(mutex_);
                inFlight_.erase(identity);
            }
            {
                std::lock_guard<std::mutex> fl(flight->m);
                flight->failed = true;
                flight->done = true;
            }
            flight->cv.notify_all();
            throw;
        }

        {
            std::lock_guard<std::mutex> g(mutex_);
            if (stale)
                ++stats_.staleRejects;
            if (from_disk)
                ++stats_.diskHits;
            else
                ++stats_.captures;
            insertLocked(identity, buf);
            inFlight_.erase(identity);
        }
        if (!from_disk)
            storeToDisk(*buf);
        {
            std::lock_guard<std::mutex> fl(flight->m);
            flight->buf = buf;
            flight->done = true;
        }
        flight->cv.notify_all();
        return buf;
    }
}

ReplayStats
ReplayCache::stats() const
{
    std::lock_guard<std::mutex> g(mutex_);
    return stats_;
}

ReplayCache *
globalReplayCache()
{
    static ReplayCache *cache = []() -> ReplayCache * {
        const char *onoff = std::getenv("CCNUMA_REPLAY");
        if (onoff != nullptr && std::string(onoff) == "0")
            return nullptr;
        std::uint64_t cap = 256ull << 20;
        if (const char *b = std::getenv("CCNUMA_REPLAY_BYTES"))
            cap = std::strtoull(b, nullptr, 10);
        std::string dir;
        if (const char *d = std::getenv("CCNUMA_REPLAY_DIR"))
            dir = d;
        return new ReplayCache(cap, std::move(dir));
    }();
    return cache;
}

} // namespace ccnuma
