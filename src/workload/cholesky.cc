#include <algorithm>

#include "workload/splash.hh"

namespace ccnuma
{

CholeskyWorkload::CholeskyWorkload(const WorkloadParams &p)
    : Workload(p)
{
    // Synthetic supernodal elimination DAG sized after tk15: a few
    // hundred supernodes of growing size, each consuming up to three
    // earlier supernodes. Growing sizes concentrate work late in the
    // factorization, reproducing Cholesky's characteristic load
    // imbalance (the paper notes its penalty is deflated by it).
    Random rng(params_.seed ^ 0xC401);
    unsigned ntasks = static_cast<unsigned>(
        std::max<std::uint64_t>(params_.numThreads * 4,
                                scaled(800)));
    tasks_.reserve(ntasks);
    for (unsigned i = 0; i < ntasks; ++i) {
        Task t;
        unsigned grow = 2 + (i * 24) / ntasks; // later => bigger
        t.lines = 2 + static_cast<unsigned>(rng.below(grow * 4));
        t.base = alloc(static_cast<std::uint64_t>(t.lines) *
                       params_.lineBytes);
        if (i > 0) {
            t.numParents =
                1 + static_cast<unsigned>(rng.below(3));
            for (unsigned s = 0; s < t.numParents; ++s) {
                t.parents[s] =
                    static_cast<unsigned>(rng.below(i));
            }
        }
        tasks_.push_back(t);
    }
    // Shared task-queue counter lives behind lock 0.
    queueLock_ = 0;
    counterAddr_ = alloc(params_.lineBytes);
}

OpStream
CholeskyWorkload::thread(unsigned tid)
{
    (void)tid;
    // Host-side shared cursor: because the simulator resumes each
    // coroutine in simulated-time order, reading it after the lock
    // is granted yields the true dynamic task schedule.
    const unsigned line = params_.lineBytes;
    Addr counter_line = counterAddr_;

    while (true) {
        co_yield ThreadOp::lock(queueLock_);
        co_yield ThreadOp::load(counter_line);
        unsigned idx = nextTask_++;
        co_yield ThreadOp::store(counter_line);
        co_yield ThreadOp::unlock(queueLock_);
        if (idx >= tasks_.size())
            break;
        const Task &t = tasks_[idx];
        // Consume parent supernodes (remote reads, with the update
        // arithmetic they feed).
        for (unsigned s = 0; s < t.numParents; ++s) {
            const Task &par = tasks_[t.parents[s]];
            for (unsigned l = 0; l < par.lines; ++l) {
                co_yield ThreadOp::load(par.base + l * line);
                co_yield ThreadOp::compute(16);
                co_yield ThreadOp::load(par.base + l * line + 64);
                co_yield ThreadOp::compute(16);
            }
        }
        // Factor the supernode (dense kernels: flop-rich).
        for (unsigned l = 0; l < t.lines; ++l) {
            for (unsigned e = 0; e < line; e += 8) {
                co_yield ThreadOp::load(t.base + l * line + e);
                co_yield ThreadOp::compute(80);
                co_yield ThreadOp::store(t.base + l * line + e);
            }
        }
    }
    co_yield ThreadOp::barrier(0);
}

} // namespace ccnuma
