/**
 * @file
 * Synthetic traffic workloads.
 *
 * Uniform: every thread issues a stream of loads/stores to a shared
 * region spread over all nodes, with a configurable remote fraction,
 * write fraction, and compute gap. Used by unit/property tests and by
 * the Figure 11/12 RCCPI sweeps, which need points covering a range
 * of communication rates (the paper's own methodology suggestion:
 * predict large-application behavior from simple workloads spanning
 * the same communication range).
 */

#ifndef CCNUMA_WORKLOAD_SYNTHETIC_HH
#define CCNUMA_WORKLOAD_SYNTHETIC_HH

#include "sim/random.hh"
#include "workload/workload.hh"

namespace ccnuma
{

/** Tunable uniform random-traffic generator. */
class UniformWorkload : public Workload
{
  public:
    struct Knobs
    {
        /** Memory references per thread. */
        std::uint64_t refsPerThread = 2000;
        /** Probability a reference targets the shared region. */
        double sharedFraction = 0.5;
        /** Probability a reference is a store. */
        double writeFraction = 0.3;
        /** Compute instructions between references. */
        unsigned computeGap = 4;
        /** Shared region size in bytes. */
        std::uint64_t sharedBytes = 1 << 20;
        /** Private region size per thread. */
        std::uint64_t privateBytes = 64 << 10;
        /** Barrier every this many references (0 = never). */
        std::uint64_t barrierEvery = 0;
    };

    UniformWorkload(const WorkloadParams &p, const Knobs &k)
        : Workload(p), knobs_(k)
    {
        sharedBase_ = alloc(knobs_.sharedBytes);
        for (unsigned t = 0; t < p.numThreads; ++t)
            privateBase_.push_back(alloc(knobs_.privateBytes));
    }

    std::string name() const override { return "Uniform"; }

    OpStream thread(unsigned tid) override;

    const Knobs &knobs() const { return knobs_; }

  private:
    Knobs knobs_;
    Addr sharedBase_ = 0;
    std::vector<Addr> privateBase_;
};

/**
 * Fully scripted workload: each thread executes an explicit ThreadOp
 * list. Used by directed protocol tests and the Table 3 latency
 * probe, where exact per-operation control matters.
 */
class ScriptWorkload : public Workload
{
  public:
    ScriptWorkload(const WorkloadParams &p,
                   std::vector<std::vector<ThreadOp>> scripts)
        : Workload(p), scripts_(std::move(scripts))
    {
        ccnuma_assert(scripts_.size() == p.numThreads);
    }

    std::string name() const override { return "Script"; }

    OpStream thread(unsigned tid) override;

  private:
    std::vector<std::vector<ThreadOp>> scripts_;
};

} // namespace ccnuma

#endif // CCNUMA_WORKLOAD_SYNTHETIC_HH
