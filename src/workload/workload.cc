#include "workload/workload.hh"

#include "workload/splash.hh"
#include "workload/synthetic.hh"

namespace ccnuma
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &p)
{
    if (name == "LU")
        return std::make_unique<LuWorkload>(p);
    if (name == "Cholesky")
        return std::make_unique<CholeskyWorkload>(p);
    if (name == "Water-Nsq")
        return std::make_unique<WaterNsqWorkload>(p);
    if (name == "Water-Sp")
        return std::make_unique<WaterSpWorkload>(p);
    if (name == "Barnes")
        return std::make_unique<BarnesWorkload>(p);
    if (name == "FFT")
        return std::make_unique<FftWorkload>(p);
    if (name == "Radix")
        return std::make_unique<RadixWorkload>(p);
    if (name == "Ocean")
        return std::make_unique<OceanWorkload>(p);
    if (name == "Uniform") {
        return std::make_unique<UniformWorkload>(
            p, UniformWorkload::Knobs{});
    }
    fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
splashNames()
{
    static const std::vector<std::string> names = {
        "LU",     "Water-Sp", "Barnes", "Cholesky",
        "Water-Nsq", "FFT",   "Radix",  "Ocean",
    };
    return names;
}

} // namespace ccnuma
