/**
 * @file
 * Re-implementations of the eight SPLASH-2 kernels the paper
 * evaluates (Table 5). Each class computes the application's real
 * parallel access pattern — block-owner dense LU, supernodal sparse
 * Cholesky with a dynamic task queue, all-pairs and spatial-grid
 * Water, tree-based Barnes-Hut, six-step FFT with all-to-all
 * transposes, two-pass Radix sort with scattered permutation writes,
 * and red-black Ocean relaxation with nearest-neighbor halos — and
 * yields it as per-thread operation streams.
 *
 * Problem sizes follow Table 5 at scale 1.0: LU 512x512 (16x16
 * blocks), 512 molecules for both Water codes, 8K particles for
 * Barnes, tk15-sized synthetic sparsity for Cholesky, 64K complex
 * doubles for FFT (256K with dataFactor 4), 256K keys radix 1K for
 * Radix, and a 258x258 ocean (514x514 with dataFactor ~2).
 */

#ifndef CCNUMA_WORKLOAD_SPLASH_HH
#define CCNUMA_WORKLOAD_SPLASH_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"
#include "workload/workload.hh"

namespace ccnuma
{

/** Blocked dense LU factorization (owner-computes, 16x16 blocks). */
class LuWorkload : public Workload
{
  public:
    explicit LuWorkload(const WorkloadParams &p);
    std::string name() const override { return "LU"; }
    OpStream thread(unsigned tid) override;

    unsigned matrixDim() const { return n_; }

  private:
    unsigned owner(unsigned bi, unsigned bj) const;
    Addr blockAddr(unsigned bi, unsigned bj) const;

    unsigned n_ = 0;       ///< matrix dimension
    unsigned nb_ = 0;      ///< blocks per dimension
    unsigned pr_ = 0, pc_ = 0; ///< processor grid
    Addr a_ = 0;
    static constexpr unsigned blockDim = 16;
};

/** Blocked sparse Cholesky with a lock-protected dynamic task queue. */
class CholeskyWorkload : public Workload
{
  public:
    explicit CholeskyWorkload(const WorkloadParams &p);
    std::string name() const override { return "Cholesky"; }
    OpStream thread(unsigned tid) override;

  private:
    struct Task
    {
        Addr base = 0;
        unsigned lines = 0;       ///< supernode size in lines
        unsigned parents[3] = {}; ///< indices of consumed tasks
        unsigned numParents = 0;
    };

    std::vector<Task> tasks_;
    Addr counterAddr_ = 0;   ///< shared task-queue cursor line
    unsigned nextTask_ = 0;  ///< host-side cursor (dynamic schedule)
    std::uint32_t queueLock_ = 0;
};

/** All-pairs Water (O(n^2) force interactions, per-molecule locks). */
class WaterNsqWorkload : public Workload
{
  public:
    explicit WaterNsqWorkload(const WorkloadParams &p);
    std::string name() const override { return "Water-Nsq"; }
    OpStream thread(unsigned tid) override;

  private:
    Addr molAddr(unsigned m) const;

    unsigned nmol_ = 0;
    unsigned steps_ = 0;
    Addr mols_ = 0;
    static constexpr unsigned molBytes = 512;
    static constexpr unsigned numLocks = 128;
};

/** Spatial-grid Water (forces with neighboring cells only). */
class WaterSpWorkload : public Workload
{
  public:
    explicit WaterSpWorkload(const WorkloadParams &p);
    std::string name() const override { return "Water-Sp"; }
    OpStream thread(unsigned tid) override;

  private:
    Addr molAddr(unsigned m) const;

    unsigned nmol_ = 0;
    unsigned steps_ = 0;
    Addr mols_ = 0;
    static constexpr unsigned molBytes = 512;
};

/** Barnes-Hut N-body (tree build with cell locks, force traversal). */
class BarnesWorkload : public Workload
{
  public:
    explicit BarnesWorkload(const WorkloadParams &p);
    std::string name() const override { return "Barnes"; }
    OpStream thread(unsigned tid) override;

  private:
    unsigned npart_ = 0;
    unsigned ncell_ = 0;
    unsigned steps_ = 0;
    Addr parts_ = 0;
    Addr cells_ = 0;
    static constexpr unsigned partBytes = 128;
    static constexpr unsigned cellBytes = 64;
    static constexpr unsigned numLocks = 1024;
};

/** Six-step FFT with all-to-all transposes and placement hints. */
class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(const WorkloadParams &p);
    std::string name() const override;
    OpStream thread(unsigned tid) override;
    void place(AddressMap &map) override;

    std::uint64_t points() const
    {
        return static_cast<std::uint64_t>(dim_) * dim_;
    }

  private:
    Addr elemAddr(Addr base, unsigned r, unsigned c) const;

    unsigned dim_ = 0; ///< sqrt(points): dim_ x dim_ matrix
    unsigned rowStride_ = 0; ///< padded row stride, in elements
    Addr x_ = 0, trans_ = 0, roots_ = 0;
    static constexpr unsigned elemBytes = 16; ///< complex double
};

/** Radix sort: histogram, parallel prefix, scattered permutation. */
class RadixWorkload : public Workload
{
  public:
    explicit RadixWorkload(const WorkloadParams &p);
    std::string name() const override;
    OpStream thread(unsigned tid) override;

  private:
    std::uint64_t nkeys_ = 0;
    unsigned passes_ = 0;
    Addr keys_ = 0, out_ = 0, hists_ = 0;
    std::vector<std::uint32_t> keyData_; ///< host-side real keys
    /** Per-pass digit of each key (precomputed). */
    std::vector<std::vector<std::uint16_t>> digits_;
    /** Per-pass stable-sort destination of each key. */
    std::vector<std::vector<std::uint32_t>> dests_;
    static constexpr unsigned radix = 1024;
    static constexpr unsigned keyBytes = 4;
};

/** Red-black Ocean relaxation with a lock-protected reduction. */
class OceanWorkload : public Workload
{
  public:
    explicit OceanWorkload(const WorkloadParams &p);
    std::string name() const override;
    OpStream thread(unsigned tid) override;

  private:
    Addr cell(Addr grid, unsigned r, unsigned c) const;
    Addr coarseCell(Addr grid, unsigned r, unsigned c) const;

    unsigned n_ = 0;     ///< grid dimension
    unsigned nc_ = 0;    ///< coarse (multigrid) dimension
    unsigned steps_ = 0; ///< timesteps
    Addr gridA_ = 0, gridB_ = 0;
    Addr coarseA_ = 0, coarseB_ = 0;
    static constexpr unsigned elemBytes = 8;
};

} // namespace ccnuma

#endif // CCNUMA_WORKLOAD_SPLASH_HH
