#include <algorithm>
#include <bit>

#include "workload/splash.hh"

namespace ccnuma
{

RadixWorkload::RadixWorkload(const WorkloadParams &p)
    : Workload(p)
{
    nkeys_ = std::max<std::uint64_t>(
        scaled(262144, params_.dataFactor),
        static_cast<std::uint64_t>(p.numThreads) * 64);
    // Two least-significant-digit passes (radix 1K covers 20 bits);
    // the per-pass communication rate is size-independent, which is
    // exactly the property the paper highlights for Radix.
    passes_ = 2;
    keys_ = alloc(nkeys_ * keyBytes, 4096);
    out_ = alloc(nkeys_ * keyBytes, 4096);
    hists_ = alloc(static_cast<std::uint64_t>(p.numThreads) * radix *
                       keyBytes,
                   4096);

    // Generate the real keys; the permutation destinations are the
    // true stable-sort ranks, so the scattered-write pattern is the
    // genuine article. Ranks are precomputed once per pass and
    // shared by all thread generators.
    Random rng(params_.seed ^ 0x5D1C);
    keyData_.resize(nkeys_);
    for (auto &k : keyData_)
        k = static_cast<std::uint32_t>(rng.next());

    std::vector<std::uint32_t> cur = keyData_;
    digits_.resize(passes_);
    dests_.resize(passes_);
    for (unsigned pass = 0; pass < passes_; ++pass) {
        const unsigned shift = pass * 10;
        std::vector<std::uint64_t> base(radix, 0);
        {
            std::vector<std::uint64_t> count(radix, 0);
            for (std::uint64_t i = 0; i < nkeys_; ++i)
                ++count[(cur[i] >> shift) & (radix - 1)];
            std::uint64_t acc = 0;
            for (unsigned d = 0; d < radix; ++d) {
                base[d] = acc;
                acc += count[d];
            }
        }
        digits_[pass].resize(nkeys_);
        dests_[pass].resize(nkeys_);
        std::vector<std::uint64_t> rank(radix, 0);
        for (std::uint64_t i = 0; i < nkeys_; ++i) {
            unsigned d = (cur[i] >> shift) & (radix - 1);
            digits_[pass][i] = static_cast<std::uint16_t>(d);
            dests_[pass][i] =
                static_cast<std::uint32_t>(base[d] + rank[d]++);
        }
        std::vector<std::uint32_t> next(nkeys_);
        for (std::uint64_t i = 0; i < nkeys_; ++i)
            next[dests_[pass][i]] = cur[i];
        cur = std::move(next);
    }
}

std::string
RadixWorkload::name() const
{
    if (nkeys_ >= 1024)
        return "Radix-" + std::to_string(nkeys_ / 1024) + "K";
    return "Radix-" + std::to_string(nkeys_);
}

OpStream
RadixWorkload::thread(unsigned tid)
{
    const unsigned P = params_.numThreads;
    const std::uint64_t lo = tid * nkeys_ / P;
    const std::uint64_t hi = (tid + 1) * nkeys_ / P;
    std::uint32_t bar = 0;
    const unsigned rounds = static_cast<unsigned>(
        std::countr_zero(std::bit_ceil(static_cast<unsigned>(P))));

    for (unsigned pass = 0; pass < passes_; ++pass) {
        Addr src = (pass % 2 == 0) ? keys_ : out_;
        Addr dst = (pass % 2 == 0) ? out_ : keys_;

        // Local histogram over our keys (digit extraction, local
        // rank bookkeeping: a few tens of instructions per key in
        // the original).
        for (std::uint64_t i = lo; i < hi; ++i) {
            co_yield ThreadOp::load(src + i * keyBytes);
            unsigned d = digits_[pass][i];
            Addr slot =
                hists_ + (static_cast<Addr>(tid) * radix + d) *
                             keyBytes;
            co_yield ThreadOp::load(slot);
            co_yield ThreadOp::store(slot);
            co_yield ThreadOp::compute(90);
        }
        co_yield ThreadOp::barrier(bar++);

        // Tree-structured parallel prefix over the histograms.
        for (unsigned r = 0; r < rounds; ++r) {
            unsigned partner = (tid ^ (1u << r)) % P;
            for (unsigned b = 0; b < radix; b += 4) {
                co_yield ThreadOp::load(
                    hists_ + (static_cast<Addr>(partner) * radix +
                              b) *
                                 keyBytes);
                co_yield ThreadOp::compute(4);
            }
            co_yield ThreadOp::barrier(bar++);
        }

        // Permutation: scattered writes to the true stable ranks
        // (rank lookup + increment + store in the original).
        for (std::uint64_t i = lo; i < hi; ++i) {
            co_yield ThreadOp::load(src + i * keyBytes);
            co_yield ThreadOp::compute(130);
            co_yield ThreadOp::store(
                dst + static_cast<Addr>(dests_[pass][i]) * keyBytes);
        }
        co_yield ThreadOp::barrier(bar++);
    }
}

} // namespace ccnuma
