#include "workload/trace.hh"

#include <fstream>
#include <sstream>

namespace ccnuma
{

TraceWorkload::TraceWorkload(const WorkloadParams &p,
                             std::istream &in)
    : Workload(p)
{
    ops_.resize(p.numThreads);
    unsigned cur = 0;
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and blank lines.
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag.size() != 1)
            fatal("trace line %u: bad tag '%s'", lineno,
                  tag.c_str());
        std::uint64_t arg = 0;
        bool hex = tag == "L" || tag == "S";
        if (hex)
            ls >> std::hex >> arg;
        else
            ls >> std::dec >> arg;
        if (ls.fail())
            fatal("trace line %u: missing argument", lineno);
        switch (tag[0]) {
          case 'T':
            if (arg >= p.numThreads)
                fatal("trace line %u: thread %llu out of range",
                      lineno, (unsigned long long)arg);
            cur = static_cast<unsigned>(arg);
            break;
          case 'L':
            ops_[cur].push_back(ThreadOp::load(arg));
            break;
          case 'S':
            ops_[cur].push_back(ThreadOp::store(arg));
            break;
          case 'C':
            ops_[cur].push_back(ThreadOp::compute(
                static_cast<std::uint32_t>(arg)));
            break;
          case 'B':
            ops_[cur].push_back(ThreadOp::barrier(
                static_cast<std::uint32_t>(arg)));
            break;
          case 'A':
            ops_[cur].push_back(ThreadOp::lock(
                static_cast<std::uint32_t>(arg)));
            break;
          case 'R':
            ops_[cur].push_back(ThreadOp::unlock(
                static_cast<std::uint32_t>(arg)));
            break;
          default:
            fatal("trace line %u: unknown tag '%c'", lineno,
                  tag[0]);
        }
    }
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromString(const WorkloadParams &p,
                          const std::string &text)
{
    std::istringstream in(text);
    return std::make_unique<TraceWorkload>(p, in);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromFile(const WorkloadParams &p,
                        const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return std::make_unique<TraceWorkload>(p, in);
}

OpStream
TraceWorkload::thread(unsigned tid)
{
    // Copy the per-thread list so the coroutine frame owns its data.
    std::vector<ThreadOp> ops = ops_.at(tid);
    for (const ThreadOp &op : ops)
        co_yield op;
}

} // namespace ccnuma
