/**
 * @file
 * Open-addressed line-address map for the directory store.
 *
 * The directory's authoritative entry table is the hottest associative
 * container in the simulator: every home-side handler looks a line up,
 * and entries are created once and never erased. std::unordered_map
 * pays a node allocation per entry and two dependent loads per lookup
 * (bucket array, then node). LineMap exploits the no-erase usage:
 *
 *  - lookups probe a flat open-addressed table of (key, index) slots
 *    with linear probing — one cache line covers four slots;
 *  - entries live in a std::deque, so a DirEntry reference stays valid
 *    across growth (matching unordered_map's reference stability,
 *    which coherence_controller.cc relies on within a handler);
 *  - no tombstones are ever needed because nothing is erased.
 *
 * Iteration (forEach) walks the deque in insertion order, which is
 * deterministic across runs and platforms.
 */

#ifndef CCNUMA_DIRECTORY_LINE_MAP_HH
#define CCNUMA_DIRECTORY_LINE_MAP_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Flat find-or-create map from line address to @p Value, no erase. */
template <typename Value>
class LineMap
{
  public:
    /** @param expected pre-size for this many entries (no rehash). */
    explicit LineMap(std::size_t expected = 0)
    {
        std::size_t cap = kMinCapacity;
        while (cap < expected * 2)
            cap <<= 1;
        table_.assign(cap, Slot{});
        mask_ = cap - 1;
    }

    /** Find or create the entry for @p key. References are stable. */
    Value &
    operator[](Addr key)
    {
        ccnuma_assert(key != kEmpty);
        std::size_t i = probeStart(key);
        while (true) {
            Slot &s = table_[i];
            if (s.key == key)
                return store_[s.idx].second;
            if (s.key == kEmpty)
                break;
            i = (i + 1) & mask_;
        }
        if ((store_.size() + 1) * 2 > table_.size()) {
            grow();
            i = probeStart(key);
            while (table_[i].key != kEmpty)
                i = (i + 1) & mask_;
        }
        table_[i].key = key;
        table_[i].idx = static_cast<std::uint32_t>(store_.size());
        store_.emplace_back(key, Value{});
        return store_.back().second;
    }

    /** @return the entry for @p key, or nullptr if never created. */
    const Value *
    find(Addr key) const
    {
        std::size_t i = probeStart(key);
        while (true) {
            const Slot &s = table_[i];
            if (s.key == key)
                return &store_[s.idx].second;
            if (s.key == kEmpty)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    std::size_t size() const { return store_.size(); }
    std::size_t capacity() const { return table_.size(); }

    /** Drop every entry, keeping the table capacity. */
    void
    clear()
    {
        table_.assign(table_.size(), Slot{});
        store_.clear();
    }

    /**
     * Remove the most recently inserted entry, which must be @p key
     * (speculative rollback undoes insertions in strict reverse
     * insertion order). Clearing the newest entry's slot cannot break
     * an older entry's probe chain: no erase ever happens otherwise,
     * so every slot an older key probed through when it was placed is
     * still occupied — none of them can be the slot being cleared,
     * which stayed empty until this (newest) insertion.
     */
    void
    undoInsert(Addr key)
    {
        ccnuma_assert(!store_.empty() && store_.back().first == key);
        std::size_t i = probeStart(key);
        while (table_[i].key != key)
            i = (i + 1) & mask_;
        table_[i] = Slot{};
        store_.pop_back();
    }

    /** Visit (key, value) pairs in insertion order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const auto &kv : store_)
            f(kv.first, kv.second);
    }

  private:
    /** Reserved key: never a valid line-aligned address. */
    static constexpr Addr kEmpty = ~static_cast<Addr>(0);
    static constexpr std::size_t kMinCapacity = 64;

    struct Slot
    {
        Addr key = kEmpty;
        std::uint32_t idx = 0;
    };

    std::size_t
    probeStart(Addr key) const
    {
        // Fibonacci hashing: line addresses differ only in a narrow
        // band of middle bits, so mix before masking.
        std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> 32) & mask_;
    }

    void
    grow()
    {
        std::vector<Slot> fresh(table_.size() * 2);
        mask_ = fresh.size() - 1;
        table_.swap(fresh);
        for (std::uint32_t idx = 0;
             idx < static_cast<std::uint32_t>(store_.size()); ++idx) {
            std::size_t i = probeStart(store_[idx].first);
            while (table_[i].key != kEmpty)
                i = (i + 1) & mask_;
            table_[i].key = store_[idx].first;
            table_[i].idx = idx;
        }
    }

    std::vector<Slot> table_;
    std::size_t mask_ = 0;
    std::deque<std::pair<Addr, Value>> store_;
};

} // namespace ccnuma

#endif // CCNUMA_DIRECTORY_LINE_MAP_HH
