/**
 * @file
 * Directory state for a home node.
 *
 * Both controller designs in the paper keep two copies of the
 * directory: a full-bit-map controller-side copy in DRAM and an
 * abbreviated 2-bit-per-line bus-side copy in fast SRAM that lets the
 * bus-side logic answer snoops at full bus rate. A write-through
 * directory cache (8K full-map entries) hides controller-side DRAM
 * read latency.
 *
 * Functionally we keep one authoritative entry per line; the bus-side
 * copy is the derived 2-bit summary (kept consistent by construction,
 * mirroring the custom directory access controller both designs
 * include). Timing-wise, the directory DRAM is a contended resource
 * with a busy-until model, and the directory cache decides whether an
 * engine's directory read pays the DRAM latency.
 */

#ifndef CCNUMA_DIRECTORY_DIRECTORY_HH
#define CCNUMA_DIRECTORY_DIRECTORY_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "directory/line_map.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "verify/ecc.hh"

namespace ccnuma
{

/** Stable directory states for a local line. */
enum class DirState : std::uint8_t
{
    Home,         ///< no remote copies
    SharedRemote, ///< clean copies at the nodes in the sharer bitmap
    DirtyRemote,  ///< exclusive/modified copy at owner node
};

const char *dirStateName(DirState s);

/** The bus-side abbreviated (2-bit) state of a local line. */
enum class BusSideDirState : std::uint8_t
{
    NoRemote,
    SharedRemote,
    DirtyRemote,
};

/** Full-bit-map directory entry. */
struct DirEntry
{
    DirState state = DirState::Home;
    std::uint64_t sharers = 0; ///< bitmap of remote sharer nodes
    NodeId owner = 0;          ///< valid when state == DirtyRemote

    unsigned
    numSharers() const
    {
        return static_cast<unsigned>(std::popcount(sharers));
    }

    bool
    isSharer(NodeId n) const
    {
        return (sharers >> n) & 1ull;
    }

    void addSharer(NodeId n) { sharers |= 1ull << n; }
    void removeSharer(NodeId n) { sharers &= ~(1ull << n); }
};

/** Directory timing parameters. */
struct DirectoryParams
{
    /** Controller-side DRAM read latency in ticks. */
    Tick dramLatency = 16;
    /** DRAM occupied per access in ticks. */
    Tick dramBusy = 12;
    /** Directory cache capacity in entries (paper: 8K). */
    unsigned cacheEntries = 8192;
    unsigned cacheAssoc = 4;
    unsigned lineBytes = 128;
    /** Disable the directory cache entirely (ablation). */
    bool cacheEnabled = true;
};

/**
 * Write-through directory cache: tags only, used to decide whether a
 * controller-side directory read hits in the cache or pays the DRAM
 * round trip. Writes are write-through and posted.
 */
class DirectoryCache
{
  public:
    DirectoryCache(const DirectoryParams &p);

    /**
     * Look up @p line_addr, allocating it on a miss.
     * @return true on hit.
     */
    bool access(Addr line_addr);

    /** Invalidate all entries. */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    // --- speculative undo journal (driven by DirectoryStore) ---

    void jarm() { jlog_.arm(); }
    void jdisarm() { jlog_.disarm(); }
    std::size_t jmark() const { return jlog_.mark(); }

    void
    jundo(std::size_t mark)
    {
        jlog_.undoTo(mark, [this](const TagRec &r) {
            tags_[r.idx] = r.old;
        });
    }

    void jtrim(std::size_t mark) { jlog_.trimBelow(mark); }
    std::uint64_t useClock() const { return useClock_; }

    void
    restoreCounters(std::uint64_t use_clock, std::uint64_t hits,
                    std::uint64_t misses)
    {
        useClock_ = use_clock;
        hits_ = hits;
        misses_ = misses;
    }

  private:
    struct Tag
    {
        Addr line = ~static_cast<Addr>(0);
        std::uint64_t lastUse = 0;
    };

    /** Pre-image of one tag mutated while the journal is armed. */
    struct TagRec
    {
        std::uint32_t idx;
        Tag old;
    };

    void
    jrec(const Tag *t)
    {
        if (jlog_.armed()) {
            jlog_.push(TagRec{
                static_cast<std::uint32_t>(t - tags_.data()), *t});
        }
    }

    unsigned assoc_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Tag> tags_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    UndoLog<TagRec> jlog_;
};

/** Outcome of a directory bit-flip injection (PR 7 integrity). */
struct DirFlipResult
{
    bool applied = false;       ///< false = directory empty, no victim
    bool uncorrectable = false; ///< double flip: entry is lost
    Addr line = 0;              ///< the victim line
};

/**
 * The home node's directory: authoritative full-map entries plus the
 * DRAM timing model and the directory cache.
 *
 * Integrity model (PR 7): each entry is conceptually two SECDED(72,64)
 * codewords — word 0 the sharer bitmap, word 1 the state and owner.
 * Check bytes are pure functions of the stored words, so only flips
 * need materializing: a correctable (single-bit) flip corrupts the
 * live word and parks the corrupted check byte in a pending side
 * table, and *every* accessor resolves pending corrections before the
 * entry is observed — the corrupted value is never served. The
 * background scrubber resolves them the same way on its own clock.
 */
class DirectoryStore : public Snapshottable
{
  public:
    DirectoryStore(const std::string &name, const DirectoryParams &p);

    /** Get (creating on demand) the entry for a local line. */
    DirEntry &entry(Addr line_addr);

    /** Peek without creating; @return nullptr if never touched. */
    const DirEntry *peek(Addr line_addr) const;

    /** Derived bus-side 2-bit state. */
    BusSideDirState busSideState(Addr line_addr) const;

    /**
     * Account a controller-side directory read at @p earliest.
     * @param[out] hit whether the directory cache hit
     * @return the tick the directory data is available
     */
    Tick scheduleRead(Addr line_addr, Tick earliest, bool *hit);

    /** Account a (posted, write-through) directory write. */
    void scheduleWrite(Addr line_addr, Tick when);

    /**
     * Fail-stop SRAM/DRAM content loss: forget every full-map entry
     * and invalidate the directory cache. The recovering home
     * rebuilds the map from DirProbe responses.
     */
    void
    invalidateAll()
    {
        // Pending corrections die with the entries they would have
        // repaired; count them so the integrity ledger still closes.
        pendingDropped_ += pendingCe_.size();
        pendingCe_.clear();
        entries_.clear();
        cache_.reset();
    }

    const DirectoryParams &params() const { return params_; }

    /** Visit all entries (invariant checker). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        resolvePending();
        entries_.forEach(f);
    }

    // --- integrity (PR 7) ---

    /**
     * Inject a seeded bit flip into one existing entry: @p bits = 1
     * corrupts the live word and parks the correction in the pending
     * table; @p bits = 2 is uncorrectable — the entry is reported
     * lost for the caller to escalate (nothing is mutated, since the
     * escalation wipes the whole directory for a rebuild anyway).
     */
    DirFlipResult injectFlip(Random &rng, unsigned bits);

    /**
     * Background scrub pass: resolve every pending correction now.
     * @return the number of words corrected.
     */
    std::uint64_t
    scrubNow()
    {
        std::uint64_t before = eccCorrected_;
        resolvePending();
        return eccCorrected_ - before;
    }

    /** Single-bit flips corrected (at access or by scrub). */
    std::uint64_t eccCorrected() const { return eccCorrected_; }
    /** Pending corrections dropped by invalidateAll (rebuilds). */
    std::uint64_t pendingDropped() const { return pendingDropped_; }
    /** Corrections still latent (tests). */
    std::size_t pendingCount() const { return pendingCe_.size(); }

    stats::Group &statGroup() { return statGroup_; }

    // --- speculative checkpointing (undo journals) ---

    void specBegin() override;
    std::shared_ptr<const void> specSave(std::size_t &bytes) override;
    void specRestore(const void *snap) override;
    void specCommit(const void *oldest) override;
    void specEnd() override;

    stats::Scalar statReads{"reads", "controller-side reads"};
    stats::Scalar statWrites{"writes", "controller-side writes"};
    stats::Scalar statCacheHits{"cache_hits", "directory cache hits"};
    stats::Scalar statCacheMisses{"cache_misses",
        "directory cache misses"};

  private:
    /** One latent single-bit corruption awaiting correction. */
    struct PendingCe
    {
        Addr line = 0;
        unsigned word = 0;          ///< 0 = sharers, 1 = state/owner
        std::uint8_t check = 0;     ///< check byte seen by decode
        std::uint64_t shadow = 0;   ///< pristine word (cross-check)
        /**
         * The corrupted codeword as the SRAM would hold it. The live
         * entry only mirrors the flip as far as its packed fields
         * can represent it, so resolution decodes this saved image
         * (the entry cannot change in between: every access resolves
         * first).
         */
        std::uint64_t corrupted = 0;
    };

    /**
     * Apply every pending correction. Logically const: it restores
     * the semantic value the store already represents, so the const
     * accessors may call it before observing an entry. The inline
     * empty() test keeps the cost of a clean configuration to one
     * never-taken branch per directory access.
     */
    void
    resolvePending() const
    {
        if (!pendingCe_.empty())
            resolvePendingSlow();
    }

    void resolvePendingSlow() const;

    static std::uint64_t packWord(const DirEntry &e, unsigned w);
    static void unpackWord(DirEntry &e, unsigned w, std::uint64_t v);

    /**
     * Entry-journal pre-image: a mutated entry's prior value, or a
     * marker that the entry was created (undone via undoInsert).
     */
    struct JRec
    {
        Addr key;
        bool insert;
        DirEntry old;
    };

    /** Journal snapshot: log positions plus the small scalar state. */
    struct Snap
    {
        std::size_t markEntries;
        std::size_t markTags;
        std::uint64_t cacheUseClock;
        std::uint64_t cacheHits;
        std::uint64_t cacheMisses;
        Tick dramFreeAt;
    };

    DirectoryParams params_;
    UndoLog<JRec> jlog_;
    std::size_t lastSaveMark_ = 0;
    mutable LineMap<DirEntry> entries_;
    DirectoryCache cache_;
    Tick dramFreeAt_ = 0;
    mutable std::vector<PendingCe> pendingCe_;
    mutable std::uint64_t eccCorrected_ = 0;
    std::uint64_t pendingDropped_ = 0;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_DIRECTORY_DIRECTORY_HH
