#include "directory/directory.hh"

#include <algorithm>

namespace ccnuma
{

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Home: return "Home";
      case DirState::SharedRemote: return "SharedRemote";
      case DirState::DirtyRemote: return "DirtyRemote";
    }
    return "?";
}

DirectoryCache::DirectoryCache(const DirectoryParams &p)
    : assoc_(p.cacheAssoc)
{
    if (p.cacheEntries == 0 || p.cacheAssoc == 0 ||
        p.cacheEntries % p.cacheAssoc != 0) {
        fatal("directory cache: bad geometry (%u entries, %u-way)",
              p.cacheEntries, p.cacheAssoc);
    }
    numSets_ = p.cacheEntries / p.cacheAssoc;
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("directory cache: set count %u not a power of two",
              numSets_);
    lineShift_ = std::countr_zero(p.lineBytes);
    tags_.resize(p.cacheEntries);
}

bool
DirectoryCache::access(Addr line_addr)
{
    std::size_t set = (line_addr >> lineShift_) & (numSets_ - 1);
    std::size_t base = set * assoc_;
    Tag *victim = &tags_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Tag &t = tags_[base + w];
        if (t.line == line_addr) {
            t.lastUse = ++useClock_;
            ++hits_;
            return true;
        }
        if (t.lastUse < victim->lastUse)
            victim = &t;
    }
    victim->line = line_addr;
    victim->lastUse = ++useClock_;
    ++misses_;
    return false;
}

void
DirectoryCache::reset()
{
    for (auto &t : tags_)
        t = Tag{};
}

DirectoryStore::DirectoryStore(const std::string &name,
                               const DirectoryParams &p)
    // Pre-size the entry table past the directory cache's working
    // set so steady-state lookups never rehash.
    : params_(p), entries_(2 * p.cacheEntries), cache_(p),
      statGroup_(name)
{
    statGroup_.add(&statReads);
    statGroup_.add(&statWrites);
    statGroup_.add(&statCacheHits);
    statGroup_.add(&statCacheMisses);
}

DirEntry &
DirectoryStore::entry(Addr line_addr)
{
    return entries_[line_addr];
}

const DirEntry *
DirectoryStore::peek(Addr line_addr) const
{
    return entries_.find(line_addr);
}

BusSideDirState
DirectoryStore::busSideState(Addr line_addr) const
{
    const DirEntry *e = peek(line_addr);
    if (!e)
        return BusSideDirState::NoRemote;
    switch (e->state) {
      case DirState::Home:
        return BusSideDirState::NoRemote;
      case DirState::SharedRemote:
        return BusSideDirState::SharedRemote;
      case DirState::DirtyRemote:
        return BusSideDirState::DirtyRemote;
    }
    return BusSideDirState::NoRemote;
}

Tick
DirectoryStore::scheduleRead(Addr line_addr, Tick earliest, bool *hit)
{
    ++statReads;
    bool h = params_.cacheEnabled && cache_.access(line_addr);
    if (hit)
        *hit = h;
    if (h) {
        ++statCacheHits;
        return earliest;
    }
    ++statCacheMisses;
    Tick begin = std::max(earliest, dramFreeAt_);
    dramFreeAt_ = begin + params_.dramBusy;
    return begin + params_.dramLatency;
}

void
DirectoryStore::scheduleWrite(Addr line_addr, Tick when)
{
    ++statWrites;
    // Write-through and posted: occupy the DRAM, don't stall the
    // engine. The directory cache is updated in place (write-through
    // allocate keeps the hot entry resident).
    cache_.access(line_addr);
    Tick begin = std::max(when, dramFreeAt_);
    dramFreeAt_ = begin + params_.dramBusy;
}

} // namespace ccnuma
