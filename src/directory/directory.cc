#include "directory/directory.hh"

#include <algorithm>

namespace ccnuma
{

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Home: return "Home";
      case DirState::SharedRemote: return "SharedRemote";
      case DirState::DirtyRemote: return "DirtyRemote";
    }
    return "?";
}

DirectoryCache::DirectoryCache(const DirectoryParams &p)
    : assoc_(p.cacheAssoc)
{
    if (p.cacheEntries == 0 || p.cacheAssoc == 0 ||
        p.cacheEntries % p.cacheAssoc != 0) {
        fatal("directory cache: bad geometry (%u entries, %u-way)",
              p.cacheEntries, p.cacheAssoc);
    }
    numSets_ = p.cacheEntries / p.cacheAssoc;
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("directory cache: set count %u not a power of two",
              numSets_);
    lineShift_ = std::countr_zero(p.lineBytes);
    tags_.resize(p.cacheEntries);
}

bool
DirectoryCache::access(Addr line_addr)
{
    std::size_t set = (line_addr >> lineShift_) & (numSets_ - 1);
    std::size_t base = set * assoc_;
    Tag *victim = &tags_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Tag &t = tags_[base + w];
        if (t.line == line_addr) {
            jrec(&t);
            t.lastUse = ++useClock_;
            ++hits_;
            return true;
        }
        if (t.lastUse < victim->lastUse)
            victim = &t;
    }
    jrec(victim);
    victim->line = line_addr;
    victim->lastUse = ++useClock_;
    ++misses_;
    return false;
}

void
DirectoryCache::reset()
{
    for (auto &t : tags_)
        t = Tag{};
}

DirectoryStore::DirectoryStore(const std::string &name,
                               const DirectoryParams &p)
    // Pre-size the entry table past the directory cache's working
    // set so steady-state lookups never rehash.
    : params_(p), entries_(2 * p.cacheEntries), cache_(p),
      statGroup_(name)
{
    statGroup_.add(&statReads);
    statGroup_.add(&statWrites);
    statGroup_.add(&statCacheHits);
    statGroup_.add(&statCacheMisses);
}

DirEntry &
DirectoryStore::entry(Addr line_addr)
{
    // Every read-or-write path into an entry funnels through here or
    // peek(): resolving first guarantees no handler ever observes (or
    // builds on) a corrupted word.
    resolvePending();
    if (jlog_.armed()) {
        const DirEntry *e = entries_.find(line_addr);
        if (e != nullptr)
            jlog_.push(JRec{line_addr, false, *e});
        else
            jlog_.push(JRec{line_addr, true, DirEntry{}});
    }
    return entries_[line_addr];
}

const DirEntry *
DirectoryStore::peek(Addr line_addr) const
{
    resolvePending();
    return entries_.find(line_addr);
}

BusSideDirState
DirectoryStore::busSideState(Addr line_addr) const
{
    const DirEntry *e = peek(line_addr);
    if (!e)
        return BusSideDirState::NoRemote;
    switch (e->state) {
      case DirState::Home:
        return BusSideDirState::NoRemote;
      case DirState::SharedRemote:
        return BusSideDirState::SharedRemote;
      case DirState::DirtyRemote:
        return BusSideDirState::DirtyRemote;
    }
    return BusSideDirState::NoRemote;
}

Tick
DirectoryStore::scheduleRead(Addr line_addr, Tick earliest, bool *hit)
{
    ++statReads;
    bool h = params_.cacheEnabled && cache_.access(line_addr);
    if (hit)
        *hit = h;
    if (h) {
        ++statCacheHits;
        return earliest;
    }
    ++statCacheMisses;
    Tick begin = std::max(earliest, dramFreeAt_);
    dramFreeAt_ = begin + params_.dramBusy;
    return begin + params_.dramLatency;
}

std::uint64_t
DirectoryStore::packWord(const DirEntry &e, unsigned w)
{
    if (w == 0)
        return e.sharers;
    return static_cast<std::uint64_t>(e.state) |
           (static_cast<std::uint64_t>(e.owner) << 8);
}

void
DirectoryStore::unpackWord(DirEntry &e, unsigned w, std::uint64_t v)
{
    if (w == 0) {
        e.sharers = v;
    } else {
        e.state = static_cast<DirState>(v & 0xff);
        e.owner = static_cast<NodeId>(v >> 8);
    }
}

DirFlipResult
DirectoryStore::injectFlip(Random &rng, unsigned bits)
{
    DirFlipResult res;
    if (entries_.size() == 0)
        return res; // nothing at rest to corrupt
    std::size_t pick = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(entries_.size())));
    std::size_t i = 0;
    Addr victim = 0;
    entries_.forEach([&](Addr line, const DirEntry &) {
        if (i++ == pick)
            victim = line;
    });
    res.applied = true;
    res.line = victim;
    unsigned word = static_cast<unsigned>(rng.below(2));
    if (bits >= 2) {
        // Uncorrectable: SECDED detects it at the next access, and
        // the entry cannot be reconstructed from the codeword. The
        // caller escalates (crash + directory rebuild wipes the whole
        // map), so there is nothing useful to mutate here.
        res.uncorrectable = true;
        return res;
    }
    // Correctable: corrupt the live word, park the correction.
    DirEntry &e = entries_[victim];
    std::uint64_t data = packWord(e, word);
    PendingCe ce;
    ce.line = victim;
    ce.word = word;
    ce.shadow = data;
    std::uint8_t check = ecc::encode(data);
    unsigned k = static_cast<unsigned>(rng.below(ecc::codewordBits));
    ecc::flipBit(data, check, k);
    ce.check = check;
    ce.corrupted = data;
    unpackWord(e, word, data);
    pendingCe_.push_back(ce);
    return res;
}

void
DirectoryStore::resolvePendingSlow() const
{
    std::vector<PendingCe> pending;
    pending.swap(pendingCe_);
    for (const PendingCe &ce : pending) {
        DirEntry &e = entries_[ce.line];
        ecc::EccResult r = ecc::decode(ce.corrupted, ce.check);
        ccnuma_assert(r.status == ecc::EccStatus::CorrectedData ||
                      r.status == ecc::EccStatus::CorrectedCheck);
        ccnuma_assert(r.data == ce.shadow);
        unpackWord(e, ce.word, r.data);
        ++eccCorrected_;
    }
}

void
DirectoryStore::scheduleWrite(Addr line_addr, Tick when)
{
    ++statWrites;
    // Write-through and posted: occupy the DRAM, don't stall the
    // engine. The directory cache is updated in place (write-through
    // allocate keeps the hot entry resident).
    cache_.access(line_addr);
    Tick begin = std::max(when, dramFreeAt_);
    dramFreeAt_ = begin + params_.dramBusy;
}

void
DirectoryStore::specBegin()
{
    jlog_.arm();
    cache_.jarm();
}

std::shared_ptr<const void>
DirectoryStore::specSave(std::size_t &bytes)
{
    bytes += sizeof(Snap) +
             (jlog_.mark() - lastSaveMark_) * sizeof(JRec);
    lastSaveMark_ = jlog_.mark();
    return std::make_shared<Snap>(
        Snap{jlog_.mark(), cache_.jmark(), cache_.useClock(),
             cache_.hits(), cache_.misses(), dramFreeAt_});
}

void
DirectoryStore::specRestore(const void *snap)
{
    const Snap *s = static_cast<const Snap *>(snap);
    jlog_.undoTo(s->markEntries, [this](const JRec &r) {
        if (r.insert)
            entries_.undoInsert(r.key);
        else
            entries_[r.key] = r.old;
    });
    cache_.jundo(s->markTags);
    cache_.restoreCounters(s->cacheUseClock, s->cacheHits,
                           s->cacheMisses);
    dramFreeAt_ = s->dramFreeAt;
    if (lastSaveMark_ > jlog_.mark())
        lastSaveMark_ = jlog_.mark();
}

void
DirectoryStore::specCommit(const void *oldest)
{
    const Snap *s = static_cast<const Snap *>(oldest);
    jlog_.trimBelow(s->markEntries);
    cache_.jtrim(s->markTags);
}

void
DirectoryStore::specEnd()
{
    jlog_.disarm();
    cache_.jdisarm();
}

} // namespace ccnuma
