/**
 * @file
 * Configuration for the fail-stop fault-containment and recovery
 * subsystem (PR 6).
 *
 * A CrashFault kills one node's coherence controller at a chosen
 * tick: every in-flight handler, dispatch queue entry, and transient
 * protocol map on that controller is dropped on the floor, and
 * (optionally) the directory SRAM contents are lost too. The node's
 * processor caches, snooping bus, and network interface survive — the
 * fault models a controller card fail-stop, not a node power cut.
 *
 * RecoveryConfig arms the machinery that heals such a crash:
 * restart after repairTicks, a RECOVERING epoch with DirProbe-based
 * directory reconstruction when the SRAM was lost, per-miss request
 * timers at the cache units with a retry -> recovery-probe ->
 * degraded-mode escalation ladder, and (for permanent faults) page
 * remapping away from the dead home. Everything is off by default;
 * `MachineConfig::withCrashRecovery()` or CCNUMA_RECOVERY=1 turns it
 * on, matching the PR 1-3 opt-in convention.
 */

#ifndef CCNUMA_RECOVERY_RECOVERY_CONFIG_HH
#define CCNUMA_RECOVERY_RECOVERY_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace ccnuma
{

/** One seeded fail-stop fault against a coherence controller. */
struct CrashFault
{
    /** Node whose coherence controller fail-stops. */
    NodeId node = 0;

    /** Tick at which the controller dies. */
    Tick atTick = 0;

    /**
     * Lose the directory SRAM contents too: on restart the home
     * enters a RECOVERING epoch and rebuilds the full map from
     * DirProbe responses before serving requests again.
     */
    bool loseDirectory = false;

    /**
     * The controller never restarts. The timeout ladder at the
     * requesting cache units escalates to degraded mode: the dead
     * home is fenced off and its pages are remapped to a successor.
     */
    bool permanent = false;
};

/** Knobs for crash recovery. All off / inert by default. */
struct RecoveryConfig
{
    /** Master switch for the recovery machinery. */
    bool enabled = false;

    /** Ticks between a (non-permanent) crash and controller restart. */
    Tick repairTicks = 25'000;

    /**
     * Per-miss request timer at the requesting CacheUnit; 0 disables.
     * Must exceed the reliable transport's maximum RTO so a timeout
     * implies protocol-level loss, not a late retransmission.
     */
    Tick missTimeoutTicks = 200'000;

    /** Timeouts answered by re-sending the request (ladder rung 1). */
    unsigned timeoutRetries = 2;

    /** Further timeouts answered by RecoveryProbe (ladder rung 2). */
    unsigned probeRetries = 2;

    /**
     * DirProbe broadcast wave size during directory reconstruction;
     * 0 means probe all peers at once.
     */
    unsigned probeFanout = 0;
};

} // namespace ccnuma

#endif // CCNUMA_RECOVERY_RECOVERY_CONFIG_HH
