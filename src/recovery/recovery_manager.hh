/**
 * @file
 * Fail-stop crash orchestration (PR 6).
 *
 * The RecoveryManager turns the CrashFault list in the fault config
 * into scheduled events against the live machine:
 *
 *  - at each fault's tick it fail-stops the named coherence
 *    controller (CoherenceController::crash), dropping all in-flight
 *    handler state and optionally the directory SRAM;
 *  - repairTicks later it restarts a non-permanent crash
 *    (CoherenceController::restart), which replays parked work or —
 *    when the directory was lost — enters the RECOVERING epoch and
 *    rebuilds the full map from DirProbe responses;
 *  - when a *permanent* crash makes requesters exhaust their
 *    miss-timeout escalation ladder, the controllers' degraded hook
 *    lands here and the manager migrates the dead home: dirty data is
 *    flushed to the surviving memory images, the dead node's memory
 *    image and (cache-derived) directory move to a successor node,
 *    the dead node's processors are killed and its pairs fenced for
 *    good, and the address map remaps the dead pages so survivors
 *    finish the workload against the successor.
 *
 * The manager also wires the recovery hooks: the transport's
 * pair-dead deferral (a crashed destination is being repaired, keep
 * retransmitting), the controllers' degraded hook, and — when the
 * invariant checker is on — the line-by-line cross-check of every
 * rebuilt directory.
 */

#ifndef CCNUMA_RECOVERY_RECOVERY_MANAGER_HH
#define CCNUMA_RECOVERY_RECOVERY_MANAGER_HH

#include <cstdint>
#include <vector>

#include "mem/address_map.hh"
#include "node/smp_node.hh"
#include "recovery/recovery_config.hh"
#include "sim/event_queue.hh"

namespace ccnuma
{

class CoherenceChecker;
class FaultInjector;
class ReliableTransport;

/** Crash scheduling + degraded-mode migration (see file comment). */
class RecoveryManager
{
  public:
    /**
     * @param xport may be null only when no crash faults are armed
     * @param injector source of the CrashFault list (may be null:
     *        recovery machinery armed but no faults scheduled)
     * @param checker cross-checks rebuilt directories when non-null
     */
    RecoveryManager(EventQueue &eq, AddressMap &map,
                    std::vector<SmpNode *> nodes,
                    ReliableTransport *xport, FaultInjector *injector,
                    CoherenceChecker *checker,
                    const RecoveryConfig &cfg);

    /** Install the hooks and schedule every configured crash. */
    void arm();

    /** True once @p n has been migrated away from (degraded mode). */
    bool nodeDead(NodeId n) const { return dead_.at(n) != 0; }

    /** The node that inherited @p dead's pages. */
    NodeId successorOf(NodeId dead) const;

    // --- counters (RunResult / tests) ---
    std::uint64_t crashesFired() const { return crashesFired_; }
    std::uint64_t restartsFired() const { return restartsFired_; }
    std::uint64_t migrations() const { return migrations_; }

  private:
    void fireCrash(const CrashFault &f);
    void fireRestart(NodeId node);
    /** Degraded hook target: defer the migration to its own event. */
    void scheduleMigration(NodeId dead);
    void migrate(NodeId dead);

    EventQueue &eq_;
    AddressMap &map_;
    std::vector<SmpNode *> nodes_;
    ReliableTransport *xport_;
    FaultInjector *injector_;
    CoherenceChecker *checker_;
    RecoveryConfig cfg_;
    std::vector<char> dead_;
    std::vector<char> migrationPending_;
    std::uint64_t crashesFired_ = 0;
    std::uint64_t restartsFired_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_RECOVERY_RECOVERY_MANAGER_HH
