#include "recovery/recovery_manager.hh"

#include <unordered_map>

#include "net/reliable.hh"
#include "sim/logging.hh"
#include "verify/checker.hh"
#include "verify/fault_injector.hh"

namespace ccnuma
{

RecoveryManager::RecoveryManager(EventQueue &eq, AddressMap &map,
                                 std::vector<SmpNode *> nodes,
                                 ReliableTransport *xport,
                                 FaultInjector *injector,
                                 CoherenceChecker *checker,
                                 const RecoveryConfig &cfg)
    : eq_(eq), map_(map), nodes_(std::move(nodes)), xport_(xport),
      injector_(injector), checker_(checker), cfg_(cfg),
      dead_(nodes_.size(), 0), migrationPending_(nodes_.size(), 0)
{
    ccnuma_assert(!nodes_.empty());
}

void
RecoveryManager::arm()
{
    for (SmpNode *nd : nodes_) {
        nd->cc().setDegradedHook(
            [this](NodeId dead) { scheduleMigration(dead); });
        if (checker_ != nullptr) {
            nd->cc().setRebuildCheckHook([this](NodeId home) {
                checker_->verifyRebuiltDirectory(home);
            });
        }
    }
    if (xport_ != nullptr) {
        // A frame that exhausts its retransmission budget against a
        // crashed (repairing) destination is not a dead pair: keep
        // retransmitting until the restart lifts the fence or the
        // degraded migration drains the pair.
        xport_->setPairDeadHook([this](NodeId, NodeId dst) {
            return nodes_.at(dst)->cc().ccState() !=
                   CoherenceController::CcState::Normal;
        });
    }
    if (injector_ == nullptr)
        return;
    for (const CrashFault &f : injector_->crashes()) {
        eq_.scheduleFunction([this, f] { fireCrash(f); }, f.atTick,
                             Event::defaultPriority, "crash fault");
        if (!f.permanent) {
            eq_.scheduleFunction(
                [this, node = f.node] { fireRestart(node); },
                f.atTick + cfg_.repairTicks, Event::defaultPriority,
                "controller restart");
        }
    }
}

void
RecoveryManager::fireCrash(const CrashFault &f)
{
    if (dead_.at(f.node))
        return; // already migrated away from
    nodes_.at(f.node)->cc().crash(f.loseDirectory);
    if (injector_ != nullptr)
        injector_->noteCrashInjected();
    ++crashesFired_;
}

void
RecoveryManager::fireRestart(NodeId node)
{
    if (dead_.at(node))
        return;
    nodes_.at(node)->cc().restart();
    ++restartsFired_;
}

NodeId
RecoveryManager::successorOf(NodeId dead) const
{
    const unsigned n = static_cast<unsigned>(nodes_.size());
    for (unsigned i = 1; i < n; ++i) {
        NodeId c = static_cast<NodeId>((dead + i) % n);
        if (!dead_[c])
            return c;
    }
    panic("degraded mode: no surviving successor for node %u", dead);
}

void
RecoveryManager::scheduleMigration(NodeId dead)
{
    // The degraded hook fires inside a cache-unit timer event on the
    // requester; the migration mutates state machine-wide, so give it
    // its own event (same tick) instead of running reentrantly.
    if (dead_.at(dead) || migrationPending_.at(dead))
        return;
    migrationPending_[dead] = 1;
    eq_.scheduleFunction([this, dead] { migrate(dead); },
                         eq_.curTick(), Event::defaultPriority,
                         "degraded migration");
}

void
RecoveryManager::migrate(NodeId dead)
{
    if (dead_.at(dead))
        return;
    dead_[dead] = 1;
    ++migrations_;
    const NodeId succ = successorOf(dead);
    SmpNode &dn = *nodes_.at(dead);
    MemoryController &dmem = dn.memory();

    auto apply_max = [](MemoryController &m, Addr line,
                        std::uint64_t v) {
        if (v > m.version(line))
            m.setVersion(line, v);
    };

    // 1. Survivors' controller writeback buffers holding data homed
    //    at the dead node: their WriteBack messages would be dropped
    //    at the fence, so fold the data into the image being
    //    migrated.
    for (SmpNode *nd : nodes_) {
        if (nd->id() == dead)
            continue;
        for (auto &[line, ver] : nd->cc().drainWbHomedAt(dead))
            apply_max(dmem, line, ver);
    }

    // 2. Flush the dead node's own dirty data — Modified L2 lines,
    //    cache-level writeback buffers, and the dead controller's
    //    captured writebacks of remote-homed lines — to the lines'
    //    home memories, and release the dead node's directory claims
    //    at the surviving homes.
    std::unordered_map<Addr, std::uint64_t> dirty;
    std::unordered_map<Addr, char> clean;
    auto note_dirty = [&](Addr line, std::uint64_t ver) {
        auto [it, ins] = dirty.try_emplace(line, ver);
        if (!ins && ver > it->second)
            it->second = ver;
    };
    for (unsigned i = 0; i < dn.numProcs(); ++i) {
        dn.cacheUnit(i).l2().forEachLine([&](const CacheLine &l) {
            if (l.state == LineState::Modified)
                note_dirty(l.lineAddr, l.version);
            else
                clean.try_emplace(l.lineAddr, 1);
        });
        dn.cacheUnit(i).forEachWb(note_dirty);
    }
    for (NodeId h = 0; h < static_cast<NodeId>(nodes_.size()); ++h) {
        for (auto &[line, ver] : dn.cc().drainWbHomedAt(h))
            note_dirty(line, ver);
    }
    for (auto &[line, ver] : dirty) {
        const NodeId h = map_.homeOf(line);
        if (h == dead) {
            apply_max(dmem, line, ver);
            continue;
        }
        apply_max(nodes_.at(h)->memory(), line, ver);
        DirEntry &e = nodes_.at(h)->directory().entry(line);
        if (e.state == DirState::DirtyRemote && e.owner == dead) {
            e.state = DirState::Home;
            e.sharers = 0;
        }
    }
    for (auto &[line, unused] : clean) {
        (void)unused;
        const NodeId h = map_.homeOf(line);
        if (h == dead)
            continue;
        nodes_.at(h)->directory().entry(line).removeSharer(dead);
    }

    // 3. Migrate the home: memory image to the successor, and a
    //    directory for the dead-homed lines rebuilt from the actual
    //    surviving caches (the dead node's own map may be stale or
    //    lost with the crash). Copies held by the successor itself
    //    become home-local after the remap and are not tracked.
    MemoryController &smem = nodes_.at(succ)->memory();
    for (const auto &[line, ver] : dmem.versions())
        apply_max(smem, line, ver);
    DirectoryStore &sdir = nodes_.at(succ)->directory();
    for (SmpNode *nd : nodes_) {
        if (nd->id() == dead || nd->id() == succ)
            continue;
        const NodeId owner = nd->id();
        auto note_copy = [&](Addr line, bool dirty_copy) {
            if (map_.homeOf(line) != dead)
                return;
            DirEntry &e = sdir.entry(line);
            if (dirty_copy) {
                e.state = DirState::DirtyRemote;
                e.owner = owner;
                e.sharers = 0;
            } else if (e.state != DirState::DirtyRemote) {
                e.state = DirState::SharedRemote;
                e.addSharer(owner);
            }
        };
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->cacheUnit(i).l2().forEachLine(
                [&](const CacheLine &l) {
                    note_copy(l.lineAddr,
                              l.state == LineState::Modified);
                });
            nd->cacheUnit(i).forEachWb(
                [&](Addr line, std::uint64_t) {
                    note_copy(line, true);
                });
        }
    }

    // 4. The dead node itself: processors stop retiring, caches drop
    //    their (now migrated) contents, the controller goes dark for
    //    good, and its network pairs drain.
    for (unsigned i = 0; i < dn.numProcs(); ++i) {
        dn.proc(i).kill();
        dn.cacheUnit(i).shutdown();
    }
    dn.cc().shutdownPermanently();
    if (xport_ != nullptr)
        xport_->fenceNodeDead(dead);

    // 5. Survivors re-route: collect every pending request homed at
    //    the dead node (replays are scheduled for this tick), then
    //    flip the page remap so the replays dispatch against the
    //    successor.
    for (SmpNode *nd : nodes_) {
        if (nd->id() != dead)
            nd->cc().replayPendingHomedAt(dead);
    }
    map_.setNodeRemap(dead, succ);

    warn("degraded mode: node %u fenced at tick %llu; its pages "
         "remapped to node %u", dead,
         (unsigned long long)eq_.curTick(), succ);
}

} // namespace ccnuma
