#include "verify/checker.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "sim/logging.hh"

namespace ccnuma
{
namespace
{

/** Bounded per-line history depth. */
constexpr std::size_t historyDepth = 32;

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

} // namespace

CoherenceChecker::CoherenceChecker(EventQueue &eq, AddressMap &map,
                                   std::vector<SmpNode *> nodes,
                                   bool tolerate)
    : eq_(eq), map_(map), nodes_(std::move(nodes)),
      tolerate_(tolerate)
{
    ccnuma_assert(!nodes_.empty());
}

void
CoherenceChecker::record(Addr line, std::string event)
{
    LineTrack &t = lines_[line];
    if (t.history.size() >= historyDepth)
        t.history.pop_front();
    t.history.push_back(std::move(event));
}

std::string
CoherenceChecker::lineHistory(Addr line) const
{
    auto it = lines_.find(line);
    if (it == lines_.end() || it->second.history.empty())
        return "  (no recorded events)";
    std::string out;
    for (const std::string &e : it->second.history)
        out += "  " + e + "\n";
    out.pop_back();
    return out;
}

void
CoherenceChecker::violation(Addr line, const std::string &what)
{
    ++violations_;
    std::string msg =
        fmt("checker: line %#llx at tick %llu: ",
            (unsigned long long)line,
            (unsigned long long)eq_.curTick()) +
        what + "\nline history (oldest first):\n" +
        lineHistory(line);
    if (first_.empty())
        first_ = msg;
    if (!tolerate_)
        panic("%s", msg.c_str());
    warn("injected-fault detection: %s", msg.c_str());
    halt_ = true;
}

void
CoherenceChecker::stampSend(Msg &msg)
{
    PairState &ps = pairs_[pairKey(msg.src, msg.dst)];
    msg.seq = ++ps.nextSeq;
    ps.expected.push_back(msg.seq);
    ++lines_[msg.lineAddr].inflight;
    record(msg.lineAddr,
           fmt("%10llu send    %-18s node%u -> node%u req=%u "
               "ver=%llu seq=%llu",
               (unsigned long long)eq_.curTick(),
               msgTypeName(msg.type), msg.src, msg.dst,
               msg.requester, (unsigned long long)msg.version,
               (unsigned long long)msg.seq));
}

bool
CoherenceChecker::noteDeliver(const Msg &msg)
{
    ++deliveries_;
    record(msg.lineAddr,
           fmt("%10llu deliver %-18s node%u -> node%u req=%u "
               "ver=%llu seq=%llu",
               (unsigned long long)eq_.curTick(),
               msgTypeName(msg.type), msg.src, msg.dst,
               msg.requester, (unsigned long long)msg.version,
               (unsigned long long)msg.seq));

    PairState &ps = pairs_[pairKey(msg.src, msg.dst)];
    bool faulted = false;
    if (ps.expected.empty()) {
        violation(msg.lineAddr,
                  fmt("duplicate delivery of %s seq=%llu from "
                      "node%u to node%u (no send outstanding on the "
                      "pair)", msgTypeName(msg.type),
                      (unsigned long long)msg.seq, msg.src,
                      msg.dst));
        faulted = true;
    } else if (msg.seq == ps.expected.front()) {
        ps.expected.pop_front();
        --lines_[msg.lineAddr].inflight;
    } else {
        auto it = std::find(ps.expected.begin(), ps.expected.end(),
                            msg.seq);
        if (it != ps.expected.end()) {
            violation(
                msg.lineAddr,
                fmt("out-of-order delivery on pair node%u -> "
                    "node%u: got seq=%llu while seq=%llu was sent "
                    "first (per-pair FIFO violated)",
                    msg.src, msg.dst, (unsigned long long)msg.seq,
                    (unsigned long long)ps.expected.front()));
            ps.expected.erase(it);
            --lines_[msg.lineAddr].inflight;
        } else {
            violation(msg.lineAddr,
                      fmt("duplicate delivery of %s seq=%llu from "
                          "node%u to node%u (already delivered "
                          "once)", msgTypeName(msg.type),
                          (unsigned long long)msg.seq, msg.src,
                          msg.dst));
        }
        faulted = true;
    }

    if (faulted && tolerate_) {
        // The injected fault is detected; swallow the delivery so
        // the protocol (which asserts exactly-once, in-order
        // delivery) never sees the corrupted stream.
        return false;
    }
    checkLine(msg.lineAddr, "net-deliver");
    return true;
}

void
CoherenceChecker::noteBusComplete(NodeId node, const BusTxn &txn)
{
    record(txn.lineAddr,
           fmt("%10llu bus     %-18s node%u agent=%d ver=%llu",
               (unsigned long long)eq_.curTick(),
               busCmdName(txn.cmd), node, txn.requester,
               (unsigned long long)txn.dataVersion));
    checkLine(txn.lineAddr, "bus-complete");
}

void
CoherenceChecker::checkLine(Addr line, const char *ctx)
{
    if (halt_)
        return;

    // SWMR: at most one Modified copy system-wide, and a Modified
    // copy excludes every other copy.
    unsigned modified = 0;
    unsigned copies = 0;
    NodeId mod_node = 0;
    unsigned mod_unit = 0;
    for (SmpNode *nd : nodes_) {
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            const CacheLine *l =
                nd->cacheUnit(i).l2().findLine(line);
            if (l == nullptr)
                continue;
            ++copies;
            if (l->state == LineState::Modified) {
                ++modified;
                mod_node = nd->id();
                mod_unit = i;
            }
        }
    }
    if (modified > 1) {
        violation(line, fmt("%s: SWMR violated: %u Modified copies",
                            ctx, modified));
        return;
    }
    if (modified == 1 && copies > 1) {
        violation(line,
                  fmt("%s: SWMR violated: Modified at node%u/unit%u "
                      "alongside %u other copies",
                      ctx, mod_node, mod_unit, copies - 1));
        return;
    }

    // Home-memory data versions only ever move forward.
    const NodeId home = map_.homeOf(line);
    std::uint64_t mem_version = nodes_.at(home)->memory().version(line);
    LineTrack &t = lines_[line];
    if (t.memVersionValid && mem_version < t.memVersion) {
        violation(line,
                  fmt("%s: home memory version went backwards: "
                      "%llu -> %llu", ctx,
                      (unsigned long long)t.memVersion,
                      (unsigned long long)mem_version));
        return;
    }
    t.memVersion = mem_version;
    t.memVersionValid = true;

    // The full directory-agreement check is only meaningful once no
    // transient state references the line anywhere (directory
    // updates intentionally lag data replies).
    if (lineQuiescent(line))
        fullDirectoryCheck(line);
}

bool
CoherenceChecker::lineQuiescent(Addr line) const
{
    auto it = lines_.find(line);
    if (it != lines_.end() && it->second.inflight != 0)
        return false;
    for (SmpNode *nd : nodes_) {
        if (!nd->cc().lineQuiet(line))
            return false;
        if (nd->bus().lineBusy(line))
            return false;
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            if (nd->cacheUnit(i).missPendingOn(line))
                return false;
        }
    }
    return true;
}

void
CoherenceChecker::verifyRebuiltDirectory(NodeId home)
{
    ++rebuildChecks_;
    const DirectoryStore &dir = nodes_.at(home)->directory();
    for (SmpNode *nd : nodes_) {
        if (nd->id() == home)
            continue; // home-local copies are not directory-tracked
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->cacheUnit(i).l2().forEachLine(
                [&](const CacheLine &l) {
                    if (map_.homeOf(l.lineAddr) != home)
                        return;
                    const DirEntry *e = dir.peek(l.lineAddr);
                    if (l.state == LineState::Modified) {
                        if (e == nullptr ||
                            e->state != DirState::DirtyRemote ||
                            e->owner != nd->id()) {
                            violation(
                                l.lineAddr,
                                fmt("rebuilt directory at node%u "
                                    "misses Modified copy at node%u "
                                    "(entry: %s owner=%u)", home,
                                    nd->id(),
                                    e ? dirStateName(e->state)
                                      : "(none)",
                                    e ? e->owner : 0));
                        }
                        return;
                    }
                    if (e == nullptr ||
                        e->state == DirState::Home ||
                        (e->state == DirState::SharedRemote &&
                         !e->isSharer(nd->id())) ||
                        (e->state == DirState::DirtyRemote &&
                         e->owner != nd->id())) {
                        violation(
                            l.lineAddr,
                            fmt("rebuilt directory at node%u misses "
                                "clean copy at node%u (entry: %s)",
                                home, nd->id(),
                                e ? dirStateName(e->state)
                                  : "(none)"));
                    }
                });
        }
    }
}

void
CoherenceChecker::fullDirectoryCheck(Addr line)
{
    ++fullChecks_;
    const NodeId home = map_.homeOf(line);
    const DirectoryStore &dir = nodes_.at(home)->directory();
    const DirEntry *e = dir.peek(line);

    // Bus-side 2-bit state must agree with the full-map entry.
    BusSideDirState bs = dir.busSideState(line);
    BusSideDirState expect = BusSideDirState::NoRemote;
    if (e != nullptr) {
        switch (e->state) {
          case DirState::Home:
            expect = BusSideDirState::NoRemote;
            break;
          case DirState::SharedRemote:
            expect = e->sharers != 0 ? BusSideDirState::SharedRemote
                                     : BusSideDirState::NoRemote;
            break;
          case DirState::DirtyRemote:
            expect = BusSideDirState::DirtyRemote;
            break;
        }
    }
    if (bs != expect) {
        violation(line,
                  fmt("bus-side directory state %d disagrees with "
                      "full-map state %s (expected bus-side %d)",
                      (int)bs, e ? dirStateName(e->state) : "(none)",
                      (int)expect));
        return;
    }

    // Every actual holder must be covered by the directory, with the
    // right ownership; clean copies must match the home memory
    // version. (The sharer bitmap may over-approximate: silent
    // Shared evictions do not notify the home.)
    std::uint64_t mem_version = nodes_.at(home)->memory().version(line);
    for (SmpNode *nd : nodes_) {
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            const CacheLine *l =
                nd->cacheUnit(i).l2().findLine(line);
            if (l == nullptr)
                continue;
            const bool remote = nd->id() != home;
            if (l->state == LineState::Modified) {
                if (remote &&
                    (e == nullptr ||
                     e->state != DirState::DirtyRemote ||
                     e->owner != nd->id())) {
                    violation(
                        line,
                        fmt("Modified at node%u but directory says "
                            "%s owner=%u", nd->id(),
                            e ? dirStateName(e->state) : "(none)",
                            e ? e->owner : 0));
                    return;
                }
                if (!remote && e != nullptr &&
                    e->state != DirState::Home &&
                    !(e->state == DirState::SharedRemote &&
                      e->sharers == 0)) {
                    violation(
                        line,
                        fmt("Modified at home node%u but directory "
                            "records remote copies (%s)", nd->id(),
                            dirStateName(e->state)));
                    return;
                }
                continue;
            }
            // Clean copy.
            if (remote) {
                if (e == nullptr) {
                    violation(line,
                              fmt("cached at remote node%u but the "
                                  "line never entered the home "
                                  "directory", nd->id()));
                    return;
                }
                if (e->state == DirState::Home) {
                    violation(line,
                              fmt("cached at remote node%u but "
                                  "directory says Home", nd->id()));
                    return;
                }
                if (e->state == DirState::SharedRemote &&
                    !e->isSharer(nd->id())) {
                    violation(line,
                              fmt("Shared at node%u but missing "
                                  "from the sharer bitmap",
                                  nd->id()));
                    return;
                }
                if (e->state == DirState::DirtyRemote &&
                    e->owner != nd->id()) {
                    violation(line,
                              fmt("Shared at node%u under foreign "
                                  "owner %u", nd->id(), e->owner));
                    return;
                }
            }
            if (l->version != mem_version) {
                violation(line,
                          fmt("clean copy at node%u/unit%u holds "
                              "version %llu but home memory has "
                              "%llu", nd->id(), i,
                              (unsigned long long)l->version,
                              (unsigned long long)mem_version));
                return;
            }
        }
    }
}

} // namespace ccnuma
