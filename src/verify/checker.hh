/**
 * @file
 * Online coherence-invariant checker.
 *
 * The checker shadows the machine from outside the timing model: the
 * router reports every protocol message entering the network
 * (stampSend) and every delivery (noteDeliver), and each node's bus
 * reports every completed bus transaction (noteBusComplete). On each
 * event it asserts, for the affected line:
 *
 *  - per-pair FIFO, exactly-once network delivery (the property
 *    src/net/network.hh documents the protocol relies on), via
 *    per-(src,dst) send sequence numbers;
 *  - SWMR: at most one Modified copy system-wide, and never a
 *    Modified copy alongside other copies;
 *  - data-version monotonicity at the home memory.
 *
 * Whenever a line fully quiesces (no in-flight message, no open bus
 * transaction, no controller transient, no MSHR on it anywhere), the
 * checker additionally verifies directory/cache-state agreement: the
 * controller-side full map, the derived bus-side 2-bit state, and the
 * actual CacheUnit states must tell one consistent story.
 *
 * Violations panic() with a bounded per-line event history. In
 * tolerate mode (used when corrupting faults are deliberately
 * injected) a violation is instead recorded as a detection, the
 * offending delivery is swallowed, and the run halts cleanly.
 */

#ifndef CCNUMA_VERIFY_CHECKER_HH
#define CCNUMA_VERIFY_CHECKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/bus.hh"
#include "mem/address_map.hh"
#include "node/smp_node.hh"
#include "protocol/messages.hh"
#include "sim/event_queue.hh"

namespace ccnuma
{

/** The online invariant checker (see file comment). */
class CoherenceChecker
{
  public:
    /**
     * @param tolerate record violations as injected-fault detections
     *        and halt instead of panicking (set when corrupting
     *        faults are armed)
     */
    CoherenceChecker(EventQueue &eq, AddressMap &map,
                     std::vector<SmpNode *> nodes, bool tolerate);

    /** Stamp @p msg's per-pair seq and record the send (router). */
    void stampSend(Msg &msg);

    /**
     * Validate a delivery and run the per-event checks.
     * @return false when the delivery must be swallowed (tolerate
     *         mode caught an injected fault with this message).
     */
    [[nodiscard]] bool noteDeliver(const Msg &msg);

    /** Run the per-event checks after a bus transaction completes. */
    void noteBusComplete(NodeId node, const BusTxn &txn);

    /** True once a tolerated violation asks the run to halt. */
    bool shouldHalt() const { return halt_; }

    /** Violations seen (detections in tolerate mode). */
    std::uint64_t violations() const { return violations_; }

    /** First violation message (empty if none). */
    const std::string &firstViolation() const { return first_; }

    /** Full directory-agreement checks performed (liveness probe). */
    std::uint64_t fullChecks() const { return fullChecks_; }

    /**
     * Line-by-line cross-check of a reconstructed directory (PR 6):
     * after a crashed home finishes its DirProbe rebuild, every
     * actual cached copy of a line homed at @p home must be covered
     * by the rebuilt full map with the right ownership. Wired to the
     * controller's rebuild-check hook by the machine.
     */
    void verifyRebuiltDirectory(NodeId home);

    /** Rebuild cross-checks performed (tests). */
    std::uint64_t rebuildChecks() const { return rebuildChecks_; }

    /** Deliveries validated (liveness probe for tests). */
    std::uint64_t deliveries() const { return deliveries_; }

  private:
    struct PairState
    {
        /** Seqs sent but not yet delivered, in send order. */
        std::deque<std::uint64_t> expected;
        std::uint64_t nextSeq = 0;
    };

    struct LineTrack
    {
        std::uint64_t memVersion = 0;
        bool memVersionValid = false;
        long inflight = 0; ///< messages sent, not yet delivered
        std::deque<std::string> history;
    };

    static std::uint64_t
    pairKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    void record(Addr line, std::string event);
    /** Per-event checks for @p line; full check when quiescent. */
    void checkLine(Addr line, const char *ctx);
    void fullDirectoryCheck(Addr line);
    bool lineQuiescent(Addr line) const;
    /** Raise a violation: panic, or record-and-halt in tolerate. */
    void violation(Addr line, const std::string &what);
    std::string lineHistory(Addr line) const;

    EventQueue &eq_;
    AddressMap &map_;
    std::vector<SmpNode *> nodes_;
    bool tolerate_;
    bool halt_ = false;
    std::uint64_t violations_ = 0;
    std::uint64_t fullChecks_ = 0;
    std::uint64_t rebuildChecks_ = 0;
    std::uint64_t deliveries_ = 0;
    std::string first_;
    std::unordered_map<std::uint64_t, PairState> pairs_;
    std::unordered_map<Addr, LineTrack> lines_;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_CHECKER_HH
