/**
 * @file
 * SECDED (72,64) Hamming codec and CRC-32, the two detection codes of
 * the data-integrity subsystem (PR 7).
 *
 * The (72,64) code protects 64-bit words at rest (directory entries,
 * cache line metadata): 7 Hamming check bits plus one overall parity
 * bit correct any single flipped bit and detect — but cannot correct —
 * any double flip, exactly like the ECC SRAM/DRAM of the machines the
 * paper models. The CRC-32 (IEEE 802.3, reflected) protects frames in
 * flight on the interconnect: for frames far below the code's Hamming
 * distance horizon it detects every 1- and 2-bit error, so a failed
 * check can be treated as a frame loss and healed by the reliable
 * transport's go-back-N retransmission.
 *
 * Header-only and dependency-free so both the storage layers
 * (src/directory, src/mem) and the transport (src/net) can use it
 * without creating library cycles.
 */

#ifndef CCNUMA_VERIFY_ECC_HH
#define CCNUMA_VERIFY_ECC_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace ccnuma
{
namespace ecc
{

/** Total protected bits per word: 64 data + 8 check. */
constexpr unsigned codewordBits = 72;

/** Outcome of decoding a (data, check) pair. */
enum class EccStatus : std::uint8_t
{
    Ok,              ///< no error
    CorrectedData,   ///< single flip in a data bit, corrected
    CorrectedCheck,  ///< single flip in a check/parity bit, corrected
    Uncorrectable,   ///< double flip detected; data is poison
};

/** Decode result: status plus the corrected word. */
struct EccResult
{
    EccStatus status = EccStatus::Ok;
    std::uint64_t data = 0;
    std::uint8_t check = 0;
};

namespace detail
{

/**
 * Codeword positions run 1..71 with Hamming check bits at the powers
 * of two (1,2,4,8,16,32,64) and data bits at the remaining 64
 * positions in index order; check bit 7 is the overall parity over
 * positions 1..71 and itself.
 */
constexpr bool
isCheckPos(unsigned p)
{
    return (p & (p - 1)) == 0; // power of two
}

/** Position (1..71) of data bit @p i (0..63). */
constexpr std::array<unsigned, 64>
makeDataPos()
{
    std::array<unsigned, 64> a{};
    unsigned i = 0;
    for (unsigned p = 1; p <= 71; ++p) {
        if (!isCheckPos(p))
            a[i++] = p;
    }
    return a;
}

inline constexpr std::array<unsigned, 64> dataPos = makeDataPos();

/** Data bit index for position @p p, or 64 when @p p is a check pos. */
constexpr std::array<std::uint8_t, 72>
makePosData()
{
    std::array<std::uint8_t, 72> a{};
    for (auto &v : a)
        v = 64;
    for (unsigned i = 0; i < 64; ++i)
        a[dataPos[i]] = static_cast<std::uint8_t>(i);
    return a;
}

inline constexpr std::array<std::uint8_t, 72> posData = makePosData();

/** Check-bit slot (0..6) for check position @p p (1,2,4,...,64). */
constexpr unsigned
checkSlot(unsigned p)
{
    unsigned s = 0;
    while ((1u << (s + 1)) <= p)
        ++s;
    return s;
}

} // namespace detail

/** Compute the 8 check bits protecting @p data. */
inline std::uint8_t
encode(std::uint64_t data)
{
    // Syndrome contribution of the data bits: XOR of the positions of
    // every set bit. Check bit j (at position 2^j) then equals bit j
    // of that XOR, giving even parity over each position class.
    unsigned syn = 0;
    unsigned ones = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if ((data >> i) & 1) {
            syn ^= detail::dataPos[i];
            ++ones;
        }
    }
    std::uint8_t check = static_cast<std::uint8_t>(syn & 0x7f);
    // Overall parity (bit 7): even parity over all 72 bits, i.e. the
    // parity bit equals the parity of data + check bits.
    unsigned total = ones;
    for (unsigned j = 0; j < 7; ++j)
        total += (check >> j) & 1;
    if (total & 1)
        check |= 0x80;
    return check;
}

/**
 * Decode a possibly corrupted (data, check) pair. Single flips are
 * corrected in the returned copy; double flips report Uncorrectable
 * with the inputs returned untouched.
 */
inline EccResult
decode(std::uint64_t data, std::uint8_t check)
{
    EccResult r;
    r.data = data;
    r.check = check;

    unsigned syn = 0;
    unsigned total = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if ((data >> i) & 1) {
            syn ^= detail::dataPos[i];
            ++total;
        }
    }
    for (unsigned j = 0; j < 7; ++j) {
        if ((check >> j) & 1) {
            syn ^= 1u << j;
            ++total;
        }
    }
    total += (check >> 7) & 1;
    const bool parityOdd = (total & 1) != 0;

    if (syn == 0 && !parityOdd) {
        r.status = EccStatus::Ok;
        return r;
    }
    if (parityOdd) {
        // Odd number of flips: with the SECDED fault model that is a
        // single flip, located by the syndrome.
        if (syn == 0) {
            // The overall parity bit itself flipped.
            r.check ^= 0x80;
            r.status = EccStatus::CorrectedCheck;
        } else if (detail::isCheckPos(syn)) {
            r.check ^= static_cast<std::uint8_t>(
                1u << detail::checkSlot(syn));
            r.status = EccStatus::CorrectedCheck;
        } else if (syn <= 71) {
            r.data ^= 1ull << detail::posData[syn];
            r.status = EccStatus::CorrectedData;
        } else {
            r.status = EccStatus::Uncorrectable;
        }
        return r;
    }
    // Non-zero syndrome with even parity: two flips.
    r.status = EccStatus::Uncorrectable;
    return r;
}

/**
 * Flip logical codeword bit @p k (0..71): bits 0..63 are the data
 * word, 64..71 the check byte. The injector's unit of corruption.
 */
inline void
flipBit(std::uint64_t &data, std::uint8_t &check, unsigned k)
{
    if (k < 64)
        data ^= 1ull << k;
    else
        check ^= static_cast<std::uint8_t>(1u << (k - 64));
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

inline constexpr std::array<std::uint32_t, 256> crcTable =
    makeCrcTable();

} // namespace detail

/** CRC-32 over @p n bytes at @p p. */
inline std::uint32_t
crc32(const std::uint8_t *p, std::size_t n)
{
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = detail::crcTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace ecc
} // namespace ccnuma

#endif // CCNUMA_VERIFY_ECC_HH
