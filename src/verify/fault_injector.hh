/**
 * @file
 * Seeded fault injector. Hooks into Network::send (as a NetworkTap)
 * and into the coherence controllers' dispatch queues (via
 * CoherenceController::setStallHook) to perturb a run according to a
 * FaultConfig. All randomness comes from one private deterministic
 * RNG, so a (config, seed) pair replays exactly.
 */

#ifndef CCNUMA_VERIFY_FAULT_INJECTOR_HH
#define CCNUMA_VERIFY_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>

#include "net/network.hh"
#include "sim/random.hh"
#include "verify/fault_config.hh"

namespace ccnuma
{

/** Injects network and engine faults per a FaultConfig. */
class FaultInjector : public NetworkTap
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {}

    const FaultConfig &config() const { return cfg_; }

    // --- NetworkTap ---
    bool onDelivery(NodeId src, NodeId dst, Tick &delivered,
                    Tick &duplicate_at) override;

    /**
     * Engine-stall hook body (wired through
     * CoherenceController::setStallHook).
     * @return extra ticks the engine stays busy before dispatching,
     *         or 0 for no stall.
     */
    Tick engineStall();

    // --- injection counters (test assertions) ---
    std::uint64_t injectedDelays() const { return delays_; }
    std::uint64_t injectedStalls() const { return stalls_; }
    std::uint64_t injectedReorders() const { return reorders_; }
    std::uint64_t injectedDuplicates() const { return duplicates_; }
    std::uint64_t injectedDrops() const { return drops_; }

  private:
    static std::uint64_t
    pairKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    FaultConfig cfg_;
    Random rng_;
    /** Latest delivery tick scheduled per pair (FIFO clamp). */
    std::unordered_map<std::uint64_t, Tick> lastScheduled_;
    std::uint64_t msgCount_ = 0;
    std::uint64_t delays_ = 0;
    std::uint64_t stalls_ = 0;
    std::uint64_t reorders_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t drops_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_FAULT_INJECTOR_HH
