/**
 * @file
 * Seeded fault injector. Hooks into Network::send (as a NetworkTap)
 * and into the coherence controllers' dispatch queues (via
 * CoherenceController::setStallHook) to perturb a run according to a
 * FaultConfig. Randomness is partitioned into one deterministic
 * stream per source node (network faults) and per node (engine
 * stalls), each seeded from (config seed, node): a (config, seed)
 * pair replays exactly, and — because each stream is consumed only by
 * its own node's execution, whose operation order the event keys pin
 * down — the injected fault pattern is identical whether the machine
 * runs serial or sharded.
 */

#ifndef CCNUMA_VERIFY_FAULT_INJECTOR_HH
#define CCNUMA_VERIFY_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "net/network.hh"
#include "protocol/wire.hh"
#include "sim/random.hh"
#include "verify/fault_config.hh"

namespace ccnuma
{

/** Injects network and engine faults per a FaultConfig. */
class FaultInjector : public NetworkTap
{
  public:
    FaultInjector(const FaultConfig &cfg, unsigned num_nodes);

    const FaultConfig &config() const { return cfg_; }

    // --- NetworkTap ---
    bool onDelivery(NodeId src, NodeId dst, Tick &delivered,
                    Tick &duplicate_at) override;

    /**
     * Every perturbation this injector applies either drops a
     * message or moves its delivery later (delay jitter, reorder
     * holds, duplicate echoes); nothing is ever delivered earlier
     * than the network's natural tick. The sharded scheduler's
     * lookahead window therefore keeps its full size under fault
     * injection.
     */
    long long minExtraDelay() const override { return 0; }

    /**
     * Engine-stall hook body for @p node (wired through
     * CoherenceController::setStallHook).
     * @return extra ticks the engine stays busy before dispatching,
     *         or 0 for no stall.
     */
    Tick engineStall(NodeId node);

    // --- fail-stop crash faults (driven by the recovery manager) ---

    /** Scheduled controller crashes, in config order. */
    const std::vector<CrashFault> &crashes() const
    {
        return cfg_.crashes;
    }

    /** The recovery manager reports each crash it actually fired. */
    void noteCrashInjected() { ++crashesInjected_; }

    // --- bit-flip faults (driven by the integrity manager) ---

    /** Scheduled bit flips, in config order. */
    const std::vector<FlipFault> &flips() const { return cfg_.flips; }

    /**
     * Arm a message-domain flip: the next transport frame sent by
     * @p node has @p bits distinct payload bits flipped (chosen by a
     * Random stream over @p seed). One armed flip corrupts exactly
     * one frame; arming again replaces any still-pending flip.
     */
    void armMessageFlip(NodeId node, unsigned bits,
                        std::uint64_t seed);

    /**
     * Transport hook body: apply the pending flip for @p src to the
     * packed frame image, if one is armed.
     * @return the number of bits flipped (0 when nothing was armed).
     */
    unsigned corruptFrame(NodeId src, wire::FrameImage &frame);

    /** True while an armed message flip has not yet hit a frame. */
    bool messageFlipPending(NodeId node) const
    {
        return node < pendingFlip_.size() &&
               pendingFlip_[node].bits != 0;
    }

    /** Frames actually corrupted by armed message flips. */
    std::uint64_t framesCorrupted() const { return framesCorrupted_; }

    // --- injection counters (test assertions) ---
    std::uint64_t injectedDelays() const;
    std::uint64_t injectedStalls() const;
    std::uint64_t injectedReorders() const;
    std::uint64_t injectedDuplicates() const;
    std::uint64_t injectedDrops() const;
    std::uint64_t injectedCrashes() const { return crashesInjected_; }

  private:
    /**
     * Per-source-node fault state: the RNG stream, the send counter
     * the drop-every-Nth rule counts, the per-destination FIFO
     * clamps, and the injection counters. Touched only by the source
     * node's shard.
     */
    struct SrcState
    {
        Random rng{0};
        std::uint64_t msgCount = 0;
        /** Latest delivery tick scheduled per destination. */
        std::vector<Tick> lastScheduled;
        std::uint64_t delays = 0;
        std::uint64_t reorders = 0;
        std::uint64_t duplicates = 0;
        std::uint64_t drops = 0;
    };

    /** Per-node engine-stall state. */
    struct StallState
    {
        Random rng{0};
        std::uint64_t stalls = 0;
    };

    /** An armed-but-not-yet-applied message flip for one node. */
    struct PendingFlip
    {
        unsigned bits = 0; ///< 0 = nothing armed
        std::uint64_t seed = 0;
    };

    FaultConfig cfg_;
    std::vector<SrcState> src_;
    std::vector<StallState> stall_;
    std::vector<PendingFlip> pendingFlip_;
    std::uint64_t crashesInjected_ = 0;
    std::uint64_t framesCorrupted_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_FAULT_INJECTOR_HH
