/**
 * @file
 * Fault-injection configuration.
 *
 * Each knob arms one fault kind; all are off by default. Delay jitter
 * and engine stalls are *benign*: they perturb timing while
 * preserving every ordering property the protocol relies on, so any
 * run must survive them transparently. Reordering, duplication, and
 * drops are *corrupting*: they violate the network's per-pair FIFO /
 * exactly-once delivery contract and exist to prove the invariant
 * checker (and the hang watchdog) actually catch such violations.
 */

#ifndef CCNUMA_VERIFY_FAULT_CONFIG_HH
#define CCNUMA_VERIFY_FAULT_CONFIG_HH

#include <cstdint>
#include <vector>

#include "recovery/recovery_config.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Where a seeded bit flip lands (PR 7 integrity faults). */
enum class FlipDomain : std::uint8_t
{
    Message,   ///< a transport frame in flight from @c node
    Directory, ///< a directory entry at rest on @c node
    Cache,     ///< a cache line at rest on @c node
};

/**
 * One scheduled bit-flip fault: at @c atTick, flip @c bits bits of one
 * ECC-protected word (or one in-flight frame) in @c domain on
 * @c node. A single flip models a correctable error (CE) the SECDED
 * code repairs at the next access or scrub; a double flip models an
 * uncorrectable error (UE) that must be detected and contained or
 * escalated. Both flips of a UE land in the same protected word, as
 * the SECDED fault model requires.
 */
struct FlipFault
{
    FlipDomain domain = FlipDomain::Message;
    NodeId node = 0;
    Tick atTick = 1;
    /** Bits to flip in the victim word/frame: 1 (CE) or 2 (UE). */
    unsigned bits = 1;
    /** Private seed for victim/bit selection. */
    std::uint64_t seed = 1;
    /**
     * Cache-domain UEs only: restrict victim selection to clean
     * (non-Modified) lines so containment is a silent discard and no
     * processor has to die. Campaigns keep this on; the poisoning
     * tests turn it off to exercise the line-death path.
     */
    bool preferClean = true;
};

/** Seeded fault-injection knobs (see file comment). */
struct FaultConfig
{
    /** Seed for the injector's private RNG. */
    std::uint64_t seed = 1;

    // --- benign faults (must be survived transparently) ---

    /** Probability a message's delivery is delayed. */
    double delayJitterProb = 0.0;
    /** Maximum extra delivery delay (ticks, uniform in [0, max]). */
    Tick delayJitterMax = 0;
    /** Probability an engine dispatch attempt stalls. */
    double engineStallProb = 0.0;
    /** Maximum injected engine stall (ticks, uniform in [1, max]). */
    Tick engineStallMax = 0;

    // --- corrupting faults (must be *detected* by the checker) ---

    /**
     * Probability a message is held back without the per-pair FIFO
     * clamp, letting later messages of the same pair overtake it.
     */
    double reorderProb = 0.0;
    /** Maximum hold-back applied to a reordered message (ticks). */
    Tick reorderDelayMax = 0;
    /** Probability a message is delivered a second time. */
    double duplicateProb = 0.0;
    /** Delay of the duplicate after the original delivery (ticks). */
    Tick duplicateDelay = 64;
    /** Drop every Nth message (0 disables). */
    unsigned dropEveryN = 0;

    // --- fail-stop faults (healed by the recovery subsystem) ---

    /**
     * Scheduled coherence-controller crashes. Unlike the knobs above
     * these are not probabilistic: each entry fail-stops one named
     * controller at one tick, which keeps campaign points exactly
     * reproducible. Requires recovery.enabled and the reliable
     * transport (validate() enforces both).
     */
    std::vector<CrashFault> crashes;

    /**
     * Scheduled silent-data-corruption bit flips (PR 7). Like
     * crashes, each entry is a deterministic single fault event:
     * at one tick it flips 1 or 2 bits of one protected word in one
     * domain. Requires integrity.enabled (validate() enforces it);
     * the defenses (CRC, SECDED ECC, scrubbing, line poisoning) must
     * leave zero escaped corruptions.
     */
    std::vector<FlipFault> flips;

    bool
    anyEnabled() const
    {
        return delayJitterProb > 0.0 || engineStallProb > 0.0 ||
               corrupting() || !crashes.empty() || !flips.empty();
    }

    /** True when any fault that breaks protocol guarantees is armed. */
    bool
    corrupting() const
    {
        return reorderProb > 0.0 || duplicateProb > 0.0 ||
               dropEveryN != 0;
    }
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_FAULT_CONFIG_HH
