#include "verify/watchdog.hh"

#include <iostream>

#include "sim/logging.hh"

namespace ccnuma
{

HangWatchdog::HangWatchdog(EventQueue &eq, Tick budget,
                           std::function<std::uint64_t()> progress,
                           std::function<void(std::ostream &)> dump)
    : eq_(eq), budget_(budget), progress_(std::move(progress)),
      dump_(std::move(dump))
{
    if (budget_ == 0)
        fatal("hang watchdog: tick budget must be nonzero");
}

void
HangWatchdog::arm()
{
    ++epoch_;
    armed_ = true;
    last_ = progress_();
    std::uint64_t epoch = epoch_;
    eq_.scheduleFunctionIn([this, epoch] { check(epoch); }, budget_);
}

void
HangWatchdog::armPolled(Tick now)
{
    ++epoch_;
    armed_ = true;
    last_ = progress_();
    nextDeadline_ = now + budget_;
}

void
HangWatchdog::poll(Tick now)
{
    if (!armed_ || now < nextDeadline_)
        return;
    std::uint64_t cur = progress_();
    if (cur == last_)
        fire(now);
    last_ = cur;
    nextDeadline_ = now + budget_;
}

void
HangWatchdog::disarm()
{
    armed_ = false;
    ++epoch_;
}

void
HangWatchdog::check(std::uint64_t epoch)
{
    if (!armed_ || epoch != epoch_)
        return;
    std::uint64_t now = progress_();
    if (now == last_)
        fire(eq_.curTick());
    last_ = now;
    eq_.scheduleFunctionIn([this, epoch] { check(epoch); }, budget_);
}

void
HangWatchdog::fire(Tick now)
{
    std::cerr << "hang watchdog: no instruction retired in "
              << budget_ << " ticks\n";
    dump_(std::cerr);
    std::cerr.flush();
    fatal("hang watchdog: no instruction retired in %llu ticks "
          "(tick %llu); diagnostic state dumped to stderr",
          (unsigned long long)budget_, (unsigned long long)now);
}

} // namespace ccnuma
