#include "verify/integrity_manager.hh"

#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "verify/fault_injector.hh"

namespace ccnuma
{

IntegrityManager::IntegrityManager(EventQueue &eq, AddressMap &map,
                                   std::vector<SmpNode *> nodes,
                                   FaultInjector *injector,
                                   const IntegrityConfig &cfg,
                                   Tick repair_ticks)
    : eq_(eq), map_(map), nodes_(std::move(nodes)),
      injector_(injector), cfg_(cfg), repairTicks_(repair_ticks)
{
    ccnuma_assert(!nodes_.empty());
    ccnuma_assert(cfg_.scrubIntervalTicks > 0);
}

void
IntegrityManager::arm()
{
    if (injector_ == nullptr)
        return;
    for (const FlipFault &f : injector_->flips()) {
        eq_.scheduleFunction([this, f] { fireFlip(f); }, f.atTick,
                             Event::defaultPriority, "flip fault");
    }
}

void
IntegrityManager::fireFlip(const FlipFault &f)
{
    switch (f.domain) {
      case FlipDomain::Message:
        // Arm the transport hook: the node's next frame is corrupted
        // at transmit time. Whether the arm ever hits a frame is the
        // injector's framesCorrupted() count; the machine closes the
        // ledger from it.
        injector_->armMessageFlip(f.node, f.bits, f.seed);
        ++messageFlipsArmed_;
        if (tracer_) {
            tracer_->faultEvent(obs::FaultKind::FlipInjected, f.node,
                                0, eq_.curTick());
        }
        return;
      case FlipDomain::Directory:
        fireDirectoryFlip(f);
        return;
      case FlipDomain::Cache:
        fireCacheFlip(f);
        return;
    }
}

void
IntegrityManager::fireDirectoryFlip(const FlipFault &f)
{
    SmpNode &nd = *nodes_.at(f.node);
    if (nd.cc().ccState() != CoherenceController::CcState::Normal) {
        // The card is dark or rebuilding; its directory SRAM is not
        // live state a flip could corrupt meaningfully.
        ++flipsSkipped_;
        return;
    }
    Random rng(f.seed);
    DirFlipResult r = nd.directory().injectFlip(rng, f.bits);
    if (!r.applied) {
        ++flipsSkipped_;
        return;
    }
    ++flipsApplied_;
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::FlipInjected, f.node,
                            r.line, eq_.curTick());
    }
    if (!r.uncorrectable) {
        // CE: the live word is corrupted in place; any access
        // corrects it first, and the scheduled scrub pass repairs it
        // even if nothing ever looks.
        scheduleScrub();
        return;
    }
    // Directory UE: the entry is lost beyond ECC. Escalate through
    // the PR 6 machinery — fail-stop the home with its directory and
    // let the restart rebuild the full map from the surviving caches
    // (which hold the ground truth the SRAM no longer does).
    ++escalations_;
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::Escalation, f.node,
                            r.line, eq_.curTick());
    }
    nd.cc().crash(/*lose_directory=*/true);
    const NodeId node = f.node;
    eq_.scheduleFunction(
        [this, node] {
            CoherenceController &cc = nodes_.at(node)->cc();
            if (cc.ccState() == CoherenceController::CcState::Crashed)
                cc.restart();
        },
        eq_.curTick() + repairTicks_, Event::defaultPriority,
        "integrity escalation restart");
}

void
IntegrityManager::fireCacheFlip(const FlipFault &f)
{
    SmpNode &nd = *nodes_.at(f.node);
    Random rng(f.seed);
    const unsigned procs = nd.numProcs();

    if (f.bits < 2) {
        // CE: corrupt one word of one valid line in some cache unit;
        // the access path (or the scrub) corrects it exactly.
        unsigned start = static_cast<unsigned>(rng.below(procs));
        for (unsigned i = 0; i < procs; ++i) {
            unsigned u = (start + i) % procs;
            Addr victim = nd.cacheUnit(u).injectCeFlip(rng);
            if (victim == kNoLineTag)
                continue; // empty cache; try the next unit
            ++flipsApplied_;
            if (tracer_) {
                tracer_->faultEvent(obs::FaultKind::FlipInjected,
                                    f.node, victim, eq_.curTick());
            }
            scheduleScrub();
            return;
        }
        ++flipsSkipped_;
        return;
    }

    // UE: the copy is lost beyond ECC. Collect containment-eligible
    // victims: lines with no in-flight protocol traffic anywhere (a
    // UE racing an active transaction would need the full protocol
    // state machine poisoned too — real hardware bounds this the
    // same way, by scrubbing idle lines and crashing otherwise).
    struct Candidate
    {
        unsigned unit;
        Addr line;
        bool dirty;
    };
    std::vector<Candidate> cands;
    for (unsigned u = 0; u < procs; ++u) {
        nd.cacheUnit(u).l2().forEachLine([&](const CacheLine &l) {
            if (f.preferClean && l.state == LineState::Modified)
                return;
            if (!lineQuietEverywhere(l.lineAddr))
                return;
            cands.push_back(
                {u, l.lineAddr, l.state == LineState::Modified});
        });
    }
    if (cands.empty()) {
        ++flipsSkipped_;
        return;
    }
    const Candidate &c = cands.at(static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(cands.size()))));
    ++flipsApplied_;
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::FlipInjected, f.node,
                            c.line, eq_.curTick());
    }
    if (!c.dirty) {
        // Clean copy: memory (or the owner) still has the data, so
        // containment is a silent discard — indistinguishable from a
        // clean eviction, which the protocol already tolerates.
        nd.cacheUnit(c.unit).discardLine(c.line);
        ++containedDiscards_;
        return;
    }
    // Modified copy: the only up-to-date data is gone for good.
    // Poison the line at its home (every future requester is fenced
    // with PoisonNack) and kill only the owning processor — the rest
    // of the machine computes on.
    const NodeId home = map_.homeOf(c.line);
    nodes_.at(home)->cc().markLineDead(c.line);
    nd.cacheUnit(c.unit).discardLine(c.line);
    nd.proc(c.unit).kill();
    ++linesDead_;
    ++procsKilled_;
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::ProcKill, f.node, c.line,
                            eq_.curTick());
    }
}

bool
IntegrityManager::lineQuietEverywhere(Addr line) const
{
    for (SmpNode *nd : nodes_) {
        if (!nd->cc().lineQuiet(line))
            return false;
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            if (nd->cacheUnit(i).missPendingOn(line))
                return false;
        }
    }
    return true;
}

void
IntegrityManager::scheduleScrub()
{
    if (scrubScheduled_)
        return;
    scrubScheduled_ = true;
    const Tick now = eq_.curTick();
    const Tick next =
        (now / cfg_.scrubIntervalTicks + 1) * cfg_.scrubIntervalTicks;
    eq_.scheduleFunction(
        [this] {
            scrubScheduled_ = false;
            scrubPass();
        },
        next, Event::defaultPriority, "integrity scrub");
}

void
IntegrityManager::scrubPass()
{
    for (SmpNode *nd : nodes_) {
        std::uint64_t c = nd->directory().scrubNow();
        for (unsigned i = 0; i < nd->numProcs(); ++i)
            c += nd->cacheUnit(i).scrubL2();
        scrubCorrections_ += c;
        if (c && tracer_) {
            tracer_->faultEvent(obs::FaultKind::ScrubCorrection,
                                nd->id(), 0, eq_.curTick());
        }
    }
}

void
IntegrityManager::finalScrub()
{
    scrubPass();
}

} // namespace ccnuma
