/**
 * @file
 * Silent-data-corruption orchestration (PR 7).
 *
 * The IntegrityManager turns the FlipFault list in the fault config
 * into scheduled corruption events against the live machine and
 * drives the defense that answers each one:
 *
 *  - a *message* flip arms the fault injector's transport hook: the
 *    node's next outgoing frame is corrupted in flight, the
 *    receiver's CRC-32 check discards it as a loss, and go-back-N
 *    retransmission re-delivers a pristine copy;
 *  - a *directory* or *cache* single-bit flip (CE) corrupts one live
 *    SECDED word in place; the store's access path corrects it before
 *    any observation, and the manager schedules a one-shot background
 *    scrub pass at the next scrub-interval boundary to repair it even
 *    if nothing ever touches the word;
 *  - a *directory* double-bit flip (UE) loses the entry: the manager
 *    escalates by fail-stopping the home controller with its
 *    directory (PR 6 machinery), whose restart rebuilds the full map
 *    from the surviving caches;
 *  - a *cache* double-bit flip (UE) on a clean line is contained by
 *    silently discarding the copy (indistinguishable from a clean
 *    eviction); on a Modified line the data is gone for good, so the
 *    home poisons the line (PoisonNack fences every future requester)
 *    and only the owning processor is killed.
 *
 * The accounting ledger must close: every applied corruption is
 * detected, corrected, contained, or escalated — never silently
 * consumed. The corruption-campaign bench asserts zero escapes.
 */

#ifndef CCNUMA_VERIFY_INTEGRITY_MANAGER_HH
#define CCNUMA_VERIFY_INTEGRITY_MANAGER_HH

#include <cstdint>
#include <vector>

#include "node/smp_node.hh"
#include "sim/event_queue.hh"
#include "verify/fault_config.hh"
#include "verify/integrity_config.hh"

namespace ccnuma
{

class FaultInjector;

namespace obs
{
class Tracer;
} // namespace obs

/** Flip scheduling + containment policy (see file comment). */
class IntegrityManager
{
  public:
    /**
     * @param injector source of the FlipFault list (may be null:
     *        defenses armed but no faults scheduled)
     * @param repair_ticks restart delay for a directory-UE
     *        escalation (the recovery config's repairTicks)
     */
    IntegrityManager(EventQueue &eq, AddressMap &map,
                     std::vector<SmpNode *> nodes,
                     FaultInjector *injector,
                     const IntegrityConfig &cfg, Tick repair_ticks);

    /** Schedule every configured flip. */
    void arm();

    /** Record lifecycle events with the tracer (null = off). */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    /**
     * Run one scrub pass over every directory and cache now,
     * resolving any still-latent corrections. Called by the machine
     * after the end-of-run drain so the ledger closes even when a
     * flip lands after the last access and the last periodic pass.
     */
    void finalScrub();

    /** The machine's poison fence reports each processor it kills. */
    void notePoisonKill() { ++procsKilled_; }

    // --- ledger counters (RunResult / bench / tests) ---

    /** Flip events that landed on a victim (directory + cache). */
    std::uint64_t flipsApplied() const { return flipsApplied_; }
    /**
     * Message flips armed on the transport hook. The applied count
     * for this domain is the injector's framesCorrupted(); an arm
     * that never met a frame is a skip.
     */
    std::uint64_t messageFlipsArmed() const
    {
        return messageFlipsArmed_;
    }
    /** Flip events skipped because no victim existed. */
    std::uint64_t flipsSkipped() const { return flipsSkipped_; }
    /** Corrections applied by scheduled scrub passes. */
    std::uint64_t scrubCorrections() const
    {
        return scrubCorrections_;
    }
    /** Clean-line UEs contained by silent discard. */
    std::uint64_t containedDiscards() const
    {
        return containedDiscards_;
    }
    /** Dirty-line UEs contained by line poisoning. */
    std::uint64_t linesDead() const { return linesDead_; }
    /** Processors killed by the poison fence. */
    std::uint64_t procsKilled() const { return procsKilled_; }
    /** Directory UEs escalated to a crash-and-rebuild. */
    std::uint64_t escalations() const { return escalations_; }

  private:
    void fireFlip(const FlipFault &f);
    void fireDirectoryFlip(const FlipFault &f);
    void fireCacheFlip(const FlipFault &f);
    /** Schedule a one-shot scrub at the next interval boundary. */
    void scheduleScrub();
    void scrubPass();
    /** All-quiet test before mutating a line's only copy. */
    bool lineQuietEverywhere(Addr line) const;

    EventQueue &eq_;
    AddressMap &map_;
    std::vector<SmpNode *> nodes_;
    FaultInjector *injector_;
    IntegrityConfig cfg_;
    Tick repairTicks_;
    obs::Tracer *tracer_ = nullptr;
    bool scrubScheduled_ = false;

    std::uint64_t flipsApplied_ = 0;
    std::uint64_t messageFlipsArmed_ = 0;
    std::uint64_t flipsSkipped_ = 0;
    std::uint64_t scrubCorrections_ = 0;
    std::uint64_t containedDiscards_ = 0;
    std::uint64_t linesDead_ = 0;
    std::uint64_t procsKilled_ = 0;
    std::uint64_t escalations_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_INTEGRITY_MANAGER_HH
