/**
 * @file
 * Hang watchdog: a progress monitor armed around Machine::run's main
 * loop. If no instruction retires for a configurable tick budget, it
 * dumps the machine's diagnostic state (every controller's
 * dumpState, event-queue depth, stuck processors) to stderr and
 * raises FatalError — turning an infinite-loop failure mode into an
 * actionable report.
 */

#ifndef CCNUMA_VERIFY_WATCHDOG_HH
#define CCNUMA_VERIFY_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <ostream>

#include "sim/event_queue.hh"

namespace ccnuma
{

/** Simulated-time progress watchdog (see file comment). */
class HangWatchdog
{
  public:
    /**
     * @param progress returns a counter that advances whenever the
     *        machine makes forward progress (retired instructions)
     * @param dump writes the machine's diagnostic state
     */
    HangWatchdog(EventQueue &eq, Tick budget,
                 std::function<std::uint64_t()> progress,
                 std::function<void(std::ostream &)> dump);

    /** Start (or restart) monitoring from the current tick. */
    void arm();

    /**
     * Start monitoring in polled mode: no check events are
     * scheduled; the caller invokes poll() periodically instead.
     * The sharded scheduler uses this — its window barriers are a
     * natural polling point, and keeping the watchdog out of the
     * event queues keeps them bit-identical to a serial run.
     */
    void armPolled(Tick now);

    /**
     * Polled-mode check. Fires the hang diagnostic if a full budget
     * has elapsed since the last observed progress. @p now may
     * exceed the deadline by a window's length; that slack only
     * delays detection, never misses a hang.
     */
    void poll(Tick now);

    /** Stop monitoring; pending check events become no-ops. */
    void disarm();

    Tick budget() const { return budget_; }

  private:
    void check(std::uint64_t epoch);
    [[noreturn]] void fire(Tick now);

    EventQueue &eq_;
    Tick budget_;
    std::function<std::uint64_t()> progress_;
    std::function<void(std::ostream &)> dump_;
    /** Invalidates stale self-rescheduled check events. */
    std::uint64_t epoch_ = 0;
    std::uint64_t last_ = 0;
    bool armed_ = false;
    /** Polled mode only: earliest tick the next poll() may fire at. */
    Tick nextDeadline_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_WATCHDOG_HH
