/**
 * @file
 * Data-integrity subsystem knobs (PR 7).
 *
 * When enabled, the machine arms its silent-data-corruption defenses:
 * CRC-32 on every transport frame (corruption is treated as loss and
 * the reliable transport re-delivers a pristine copy), SECDED ECC on
 * directory entries and cache lines (single-bit flips corrected at
 * the next access or by the background scrubber, double-bit flips
 * detected and contained or escalated), and line poisoning for
 * uncorrectable errors that consume a line's only up-to-date copy.
 * Everything is off by default: a clean configuration's timing and
 * output are bit-identical with the subsystem compiled in.
 */

#ifndef CCNUMA_VERIFY_INTEGRITY_CONFIG_HH
#define CCNUMA_VERIFY_INTEGRITY_CONFIG_HH

#include "sim/types.hh"

namespace ccnuma
{

/** Integrity-subsystem configuration (CCNUMA_INTEGRITY enables). */
struct IntegrityConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /**
     * Background scrub period (ticks). A latent single-bit error
     * injected at tick T is repaired no later than the next multiple
     * of this interval — sooner if an access touches the word first.
     * Must be positive when the subsystem is enabled.
     */
    Tick scrubIntervalTicks = 10'000;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_INTEGRITY_CONFIG_HH
