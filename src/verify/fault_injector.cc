#include "verify/fault_injector.hh"

namespace ccnuma
{

bool
FaultInjector::onDelivery(NodeId src, NodeId dst, Tick &delivered,
                          Tick &duplicate_at)
{
    ++msgCount_;

    if (cfg_.dropEveryN != 0 && msgCount_ % cfg_.dropEveryN == 0) {
        ++drops_;
        return false;
    }

    if (cfg_.delayJitterProb > 0.0) {
        if (rng_.chance(cfg_.delayJitterProb)) {
            delivered += rng_.below(cfg_.delayJitterMax + 1);
            ++delays_;
        }
        // Benign jitter must preserve the per-pair FIFO order the
        // protocol relies on: clamp every message (jittered or not)
        // to no earlier than the pair's latest scheduled delivery.
        Tick &last = lastScheduled_[pairKey(src, dst)];
        if (delivered < last)
            delivered = last;
        last = delivered;
    }

    if (cfg_.reorderProb > 0.0 && rng_.chance(cfg_.reorderProb)) {
        // Corrupting: hold this message back with NO FIFO clamp, so
        // later messages of the same pair can overtake it.
        delivered += 1 + rng_.below(cfg_.reorderDelayMax);
        ++reorders_;
    }

    if (cfg_.duplicateProb > 0.0 &&
        rng_.chance(cfg_.duplicateProb)) {
        duplicate_at = delivered + cfg_.duplicateDelay;
        ++duplicates_;
    }

    return true;
}

Tick
FaultInjector::engineStall()
{
    if (cfg_.engineStallProb <= 0.0 ||
        !rng_.chance(cfg_.engineStallProb)) {
        return 0;
    }
    ++stalls_;
    return 1 + rng_.below(cfg_.engineStallMax);
}

} // namespace ccnuma
