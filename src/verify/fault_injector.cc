#include "verify/fault_injector.hh"

namespace ccnuma
{

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             unsigned num_nodes)
    : cfg_(cfg), src_(num_nodes), stall_(num_nodes),
      pendingFlip_(num_nodes)
{
    // Stream seeding: golden-ratio strides keep the per-node streams
    // decorrelated while staying a pure function of (seed, node).
    for (unsigned n = 0; n < num_nodes; ++n) {
        src_[n].rng = Random(cfg.seed +
                             0x9E3779B97F4A7C15ull * (n + 1));
        src_[n].lastScheduled.assign(num_nodes, 0);
        stall_[n].rng = Random(cfg.seed +
                               0xC2B2AE3D27D4EB4Full * (n + 1));
    }
}

bool
FaultInjector::onDelivery(NodeId src, NodeId dst, Tick &delivered,
                          Tick &duplicate_at)
{
    SrcState &s = src_[src];
    ++s.msgCount;

    if (cfg_.dropEveryN != 0 && s.msgCount % cfg_.dropEveryN == 0) {
        ++s.drops;
        return false;
    }

    if (cfg_.delayJitterProb > 0.0) {
        if (s.rng.chance(cfg_.delayJitterProb)) {
            delivered += s.rng.below(cfg_.delayJitterMax + 1);
            ++s.delays;
        }
        // Benign jitter must preserve the per-pair FIFO order the
        // protocol relies on: clamp every message (jittered or not)
        // to no earlier than the pair's latest scheduled delivery.
        Tick &last = s.lastScheduled[dst];
        if (delivered < last)
            delivered = last;
        last = delivered;
    }

    if (cfg_.reorderProb > 0.0 && s.rng.chance(cfg_.reorderProb)) {
        // Corrupting: hold this message back with NO FIFO clamp, so
        // later messages of the same pair can overtake it.
        delivered += 1 + s.rng.below(cfg_.reorderDelayMax);
        ++s.reorders;
    }

    if (cfg_.duplicateProb > 0.0 &&
        s.rng.chance(cfg_.duplicateProb)) {
        duplicate_at = delivered + cfg_.duplicateDelay;
        ++s.duplicates;
    }

    return true;
}

void
FaultInjector::armMessageFlip(NodeId node, unsigned bits,
                              std::uint64_t seed)
{
    if (node >= pendingFlip_.size())
        return;
    pendingFlip_[node] = PendingFlip{bits, seed};
}

unsigned
FaultInjector::corruptFrame(NodeId src, wire::FrameImage &frame)
{
    if (src >= pendingFlip_.size() || pendingFlip_[src].bits == 0)
        return 0;
    PendingFlip pf = pendingFlip_[src];
    pendingFlip_[src] = PendingFlip{};

    // Flip pf.bits *distinct* payload bits of the packed image: the
    // CRC must see exactly the modeled error weight.
    Random rng(pf.seed);
    const unsigned payload_bits = wire::framePayloadBytes * 8;
    std::vector<unsigned> picked;
    while (picked.size() < pf.bits) {
        unsigned k = static_cast<unsigned>(rng.below(payload_bits));
        bool dup = false;
        for (unsigned p : picked)
            dup = dup || (p == k);
        if (dup)
            continue;
        picked.push_back(k);
        wire::flipPayloadBit(frame, k);
    }
    ++framesCorrupted_;
    return pf.bits;
}

Tick
FaultInjector::engineStall(NodeId node)
{
    StallState &st = stall_[node];
    if (cfg_.engineStallProb <= 0.0 ||
        !st.rng.chance(cfg_.engineStallProb)) {
        return 0;
    }
    ++st.stalls;
    return 1 + st.rng.below(cfg_.engineStallMax);
}

std::uint64_t
FaultInjector::injectedDelays() const
{
    std::uint64_t total = 0;
    for (const SrcState &s : src_)
        total += s.delays;
    return total;
}

std::uint64_t
FaultInjector::injectedStalls() const
{
    std::uint64_t total = 0;
    for (const StallState &s : stall_)
        total += s.stalls;
    return total;
}

std::uint64_t
FaultInjector::injectedReorders() const
{
    std::uint64_t total = 0;
    for (const SrcState &s : src_)
        total += s.reorders;
    return total;
}

std::uint64_t
FaultInjector::injectedDuplicates() const
{
    std::uint64_t total = 0;
    for (const SrcState &s : src_)
        total += s.duplicates;
    return total;
}

std::uint64_t
FaultInjector::injectedDrops() const
{
    std::uint64_t total = 0;
    for (const SrcState &s : src_)
        total += s.drops;
    return total;
}

} // namespace ccnuma
