/**
 * @file
 * Verification subsystem configuration: invariant checker, fault
 * injector, and hang watchdog. Everything is off by default so
 * benches run at full speed; see DESIGN.md ("Verification
 * subsystem") for what each part does and how to enable it.
 */

#ifndef CCNUMA_VERIFY_VERIFY_CONFIG_HH
#define CCNUMA_VERIFY_VERIFY_CONFIG_HH

#include "sim/types.hh"
#include "verify/fault_config.hh"

namespace ccnuma
{

/** Machine-level verification knobs. */
struct VerifyConfig
{
    /**
     * Run the online CoherenceChecker: per-pair FIFO/duplicate
     * detection, SWMR, home-version monotonicity on every delivery
     * and bus completion, and full directory/cache agreement whenever
     * a line quiesces. (Also enabled by CCNUMA_VERIFY=checker|all.)
     */
    bool checker = false;

    /**
     * Arm the hang watchdog around Machine::run: if no instruction
     * retires for watchdogBudget ticks, dump diagnostics to stderr
     * and raise FatalError. (Also CCNUMA_VERIFY=watchdog|all.)
     */
    bool watchdog = false;

    /** Ticks without a retired instruction before the watchdog fires. */
    Tick watchdogBudget = 2'000'000;

    /** Seeded fault injection (off unless a knob is armed). */
    FaultConfig faults;
};

} // namespace ccnuma

#endif // CCNUMA_VERIFY_VERIFY_CONFIG_HH
