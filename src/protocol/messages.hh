/**
 * @file
 * Coherence protocol message types.
 *
 * The protocol is the paper's: full-map directory, invalidation-based,
 * write-back, sequentially consistent. Remote owners respond directly
 * to remote requesters with data; invalidation acknowledgements are
 * collected only at the home node. Writebacks ride the controllers'
 * direct bus-to-network data path and are acknowledged by the home so
 * the owner can retire its writeback buffer entry.
 */

#ifndef CCNUMA_PROTOCOL_MESSAGES_HH
#define CCNUMA_PROTOCOL_MESSAGES_HH

#include <cstdint>

#include "sim/types.hh"

namespace ccnuma
{

/** Network message types exchanged between coherence controllers. */
enum class MsgType : std::uint8_t
{
    // requester -> home
    ReadReq,        ///< read a line
    ReadExclReq,    ///< read exclusive (store miss / upgrade)

    // home -> owner
    FwdRead,        ///< fetch line for a (possibly remote) reader
    FwdReadExcl,    ///< fetch+invalidate for a (possibly remote) writer

    // home -> sharer
    InvalReq,       ///< invalidate your copy, ack the home

    // sharer -> home
    InvalAck,

    // home/owner -> requester
    DataReply,      ///< line data for a read (install Shared)
    DataExclReply,  ///< line data for a read-excl (install Modified)

    // owner -> home (closing a forwarded request)
    OwnerDataToHome,     ///< data for a local read at the home
    OwnerDataExclToHome, ///< data for a local read-excl at the home
    SharingWB,           ///< demotion writeback (read by remote req.)
    OwnershipAck,        ///< data went straight to remote requester
    OwnerNack,           ///< owner no longer has the line; retry

    // owner -> home
    WriteBack,      ///< eviction of a dirty remote line
    // home -> owner
    WriteBackAck,   ///< home absorbed the writeback

    // home -> requester
    HomeNack,       ///< you own this line; serve the request locally

    // recovery (PR 6) -- all header-only
    // home -> requester
    RecoveryNack,    ///< home is rebuilding its directory; back off
    // recovering home -> peer
    DirProbe,        ///< report every line of mine you hold
    // peer -> recovering home
    DirProbeResp,    ///< one cached/dirty line homed at the prober
    DirProbeDone,    ///< probe scan finished (version = line count)
    // requester -> home (timeout ladder)
    RecoveryProbe,   ///< are you alive? answer out-of-band
    // home -> requester
    RecoveryProbeAck,///< home is alive and serving

    // integrity (PR 7) -- header-only
    // home -> requester
    PoisonNack,      ///< line is dead (uncorrectable corruption ate
                     ///< its only copy); the requester must fence
};

const char *msgTypeName(MsgType t);

/** @return true for messages that carry a full cache line. */
bool msgCarriesData(MsgType t);

/** A coherence protocol message. */
struct Msg
{
    MsgType type = MsgType::ReadReq;
    Addr lineAddr = 0;
    NodeId src = 0;       ///< sending node
    NodeId dst = 0;       ///< destination node
    NodeId requester = 0; ///< original requesting node (for forwards)
    std::uint64_t version = 0; ///< checker payload riding with data
    /**
     * For owner responses (OwnerDataToHome, SharingWB): true when the
     * owner keeps a Shared copy after supplying, so the home should
     * record it as a sharer.
     */
    bool ownerRetains = false;
    /**
     * Per-(src,dst) send sequence number, stamped by the router when
     * the invariant checker is enabled (0 otherwise). Lets the
     * checker verify the per-pair FIFO delivery order the protocol
     * relies on and detect duplicated deliveries.
     */
    std::uint64_t seq = 0;
    /**
     * Set on requests re-issued by crash-replay or the miss-timeout
     * ladder. A home that already granted ownership to the sender
     * re-grants from memory instead of bouncing with HomeNack — the
     * original grant died with the crashed controller.
     */
    bool recoveryResend = false;
};

/** Network sizes in bytes. */
constexpr unsigned msgHeaderBytes = 16;

/** @return the wire size of a message given the line size. */
inline unsigned
msgBytes(MsgType t, unsigned line_bytes)
{
    return msgCarriesData(t) ? msgHeaderBytes + line_bytes
                             : msgHeaderBytes;
}

} // namespace ccnuma

#endif // CCNUMA_PROTOCOL_MESSAGES_HH
