#include "protocol/messages.hh"

namespace ccnuma
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq: return "ReadReq";
      case MsgType::ReadExclReq: return "ReadExclReq";
      case MsgType::FwdRead: return "FwdRead";
      case MsgType::FwdReadExcl: return "FwdReadExcl";
      case MsgType::InvalReq: return "InvalReq";
      case MsgType::InvalAck: return "InvalAck";
      case MsgType::DataReply: return "DataReply";
      case MsgType::DataExclReply: return "DataExclReply";
      case MsgType::OwnerDataToHome: return "OwnerDataToHome";
      case MsgType::OwnerDataExclToHome: return "OwnerDataExclToHome";
      case MsgType::SharingWB: return "SharingWB";
      case MsgType::OwnershipAck: return "OwnershipAck";
      case MsgType::OwnerNack: return "OwnerNack";
      case MsgType::WriteBack: return "WriteBack";
      case MsgType::WriteBackAck: return "WriteBackAck";
      case MsgType::HomeNack: return "HomeNack";
      case MsgType::RecoveryNack: return "RecoveryNack";
      case MsgType::DirProbe: return "DirProbe";
      case MsgType::DirProbeResp: return "DirProbeResp";
      case MsgType::DirProbeDone: return "DirProbeDone";
      case MsgType::RecoveryProbe: return "RecoveryProbe";
      case MsgType::RecoveryProbeAck: return "RecoveryProbeAck";
      case MsgType::PoisonNack: return "PoisonNack";
    }
    return "?";
}

bool
msgCarriesData(MsgType t)
{
    switch (t) {
      case MsgType::DataReply:
      case MsgType::DataExclReply:
      case MsgType::OwnerDataToHome:
      case MsgType::OwnerDataExclToHome:
      case MsgType::SharingWB:
      case MsgType::WriteBack:
        return true;
      default:
        return false;
    }
}

} // namespace ccnuma
