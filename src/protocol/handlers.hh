/**
 * @file
 * Protocol handler specifications (the paper's Table 4).
 *
 * Every handler is described as a sequence of sub-operations in three
 * phases:
 *
 *   pre      engine-occupying work up to the point where the handler
 *            either issues its local SMP-bus operation or (if none)
 *            sends its response;
 *   busOp    an optional local bus/memory operation whose duration is
 *            determined dynamically by the simulator (the engine stays
 *            occupied while it waits — handler occupancy includes SMP
 *            bus and local memory access times);
 *   post     work performed after the response is sent (e.g. the
 *            posted directory update the paper postpones until after
 *            issuing responses).
 *
 * perTarget lists sub-ops repeated for each additional message target
 * (e.g. one invalidation send per sharer).
 *
 * The 23 handlers of Table 4 appear first; the remaining entries are
 * the bookkeeping handlers any real implementation of this protocol
 * also needs (writeback absorption, writeback acks, owner nacks).
 */

#ifndef CCNUMA_PROTOCOL_HANDLERS_HH
#define CCNUMA_PROTOCOL_HANDLERS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "protocol/occupancy.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Identifiers for all protocol handlers. */
enum class HandlerId : std::uint8_t
{
    // --- the 23 handlers of Table 4 ---
    BusReadRemote,
    BusReadExclRemote,
    BusReadLocalDirtyRemote,
    BusReadExclLocalCachedRemote,
    RemoteReadToHomeClean,
    RemoteReadToHomeDirtyRemote,
    RemoteReadExclToHomeUncached,
    RemoteReadExclToHomeShared,
    RemoteReadExclToHomeDirty,
    ReadFromOwnerForHome,
    ReadFromOwnerForRemote,
    ReadExclFromOwnerForHome,
    ReadExclFromOwnerForRemote,
    OwnerDataToHomeRead,
    OwnerWriteBackToHomeRemoteRead,
    OwnerDataToHomeReadExcl,
    OwnerAckToHomeRemoteReadExcl,
    InvalRequestAtSharer,
    InvalAckMoreExpected,
    InvalAckLastLocal,
    InvalAckLastRemote,
    DataReplyForRemoteRead,
    DataReplyForRemoteReadExcl,
    // --- bookkeeping handlers (not separately listed in Table 4) ---
    WriteBackAtHome,
    SharingWriteBackAtHome,
    WriteBackAckAtOwner,
    OwnerNackAtHome,
    // --- recovery handlers (PR 6, Table 2 sub-op conventions) ---
    DirProbeAtSharer,   ///< scan caches, report lines homed at prober
    DirProbeRespAtHome, ///< fold one reported line into the rebuild
    NumHandlers,
};

constexpr unsigned numHandlers =
    static_cast<unsigned>(HandlerId::NumHandlers);

/** Number of handlers that appear in the paper's Table 4. */
constexpr unsigned numTable4Handlers = 23;

/** Local bus operation a handler performs while occupied. */
enum class CcBusOp : std::uint8_t
{
    None,          ///< no local bus operation
    FetchRead,     ///< read the line from local memory/caches
    FetchReadExcl, ///< read the line and invalidate local copies
    InvalOnly,     ///< invalidate local copies, no data
};

/** A counted sub-operation. */
using SubOpCount = std::pair<SubOp, int>;

/** Static description of one protocol handler. */
struct HandlerSpec
{
    HandlerId id;
    const char *name;       ///< Table 4 row label
    bool readsDirectory;    ///< adds dynamic DRAM wait on dir$ miss
    /**
     * The handler moves a cache line through the controller (fetch,
     * data reply, writeback absorption): the engine stays occupied
     * for the remainder of the line transfer after the critical
     * beat. This is the "SMP bus and local memory access times"
     * component of the paper's handler occupancies; it does not add
     * to the critical-word latency.
     */
    bool movesData = false;
    std::vector<SubOpCount> pre;
    CcBusOp busOp = CcBusOp::None;
    std::vector<SubOpCount> post;
    std::vector<SubOpCount> perTarget;

    /** Fixed pre-phase occupancy on @p m. */
    Tick preCost(const OccupancyModel &m, int extra_targets = 0) const;

    /** Fixed post-phase occupancy on @p m. */
    Tick postCost(const OccupancyModel &m) const;

    /**
     * Total no-contention occupancy for Table 4, assuming the given
     * fixed estimate for the bus operation (0 when busOp == None).
     */
    Tick nominalOccupancy(const OccupancyModel &m, Tick bus_estimate,
                          int extra_targets = 0) const;
};

/** Look up the static spec for @p id. */
const HandlerSpec &handlerSpec(HandlerId id);

/** All handler specs, Table 4 order first. */
const std::vector<HandlerSpec> &allHandlerSpecs();

const char *handlerName(HandlerId id);

} // namespace ccnuma

#endif // CCNUMA_PROTOCOL_HANDLERS_HH
