/**
 * @file
 * Wire image of a transport frame (PR 7 integrity).
 *
 * When the integrity subsystem is armed, the reliable transport packs
 * every message into this fixed little-endian byte image, stamps a
 * CRC-32 over the payload, and delivers from the unpacked image at
 * the receiver — so an injected bit flip in flight corrupts exactly
 * what a real link would corrupt, and the CRC check at the receiver
 * is the only thing standing between the flip and the protocol. The
 * timing model is unchanged: the frame's modeled wire size is still
 * msgBytes() (the CRC rides in reserved header space).
 *
 * Header-only; the transport (src/net) and the tests use it without
 * new library edges.
 */

#ifndef CCNUMA_PROTOCOL_WIRE_HH
#define CCNUMA_PROTOCOL_WIRE_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "protocol/messages.hh"
#include "verify/ecc.hh"

namespace ccnuma
{
namespace wire
{

/** CRC-protected payload bytes (message fields + transport seq). */
constexpr unsigned framePayloadBytes = 48;
/** Full frame image: payload + trailing CRC-32. */
constexpr unsigned frameBytes = framePayloadBytes + 4;

using FrameImage = std::array<std::uint8_t, frameBytes>;

namespace detail
{

inline void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void
put64(std::uint8_t *p, std::uint64_t v)
{
    put32(p, static_cast<std::uint32_t>(v));
    put32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t
get64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(get32(p)) |
           (static_cast<std::uint64_t>(get32(p + 4)) << 32);
}

} // namespace detail

/** Pack @p msg + transport seq @p xseq and stamp the CRC. */
inline FrameImage
packFrame(const Msg &msg, std::uint64_t xseq)
{
    FrameImage f{};
    f[0] = static_cast<std::uint8_t>(msg.type);
    f[1] = static_cast<std::uint8_t>((msg.ownerRetains ? 1 : 0) |
                                     (msg.recoveryResend ? 2 : 0));
    // f[2..3] reserved (zero)
    detail::put32(&f[4], msg.src);
    detail::put32(&f[8], msg.dst);
    detail::put32(&f[12], msg.requester);
    detail::put64(&f[16], msg.lineAddr);
    detail::put64(&f[24], msg.version);
    detail::put64(&f[32], msg.seq);
    detail::put64(&f[40], xseq);
    detail::put32(&f[framePayloadBytes],
                  ecc::crc32(f.data(), framePayloadBytes));
    return f;
}

/** @return true when the stored CRC matches the payload. */
inline bool
frameCrcOk(const FrameImage &f)
{
    return detail::get32(&f[framePayloadBytes]) ==
           ecc::crc32(f.data(), framePayloadBytes);
}

/** Unpack a frame whose CRC passed. */
inline Msg
unpackFrame(const FrameImage &f, std::uint64_t &xseq)
{
    Msg m;
    m.type = static_cast<MsgType>(f[0]);
    m.ownerRetains = (f[1] & 1) != 0;
    m.recoveryResend = (f[1] & 2) != 0;
    m.src = detail::get32(&f[4]);
    m.dst = detail::get32(&f[8]);
    m.requester = detail::get32(&f[12]);
    m.lineAddr = detail::get64(&f[16]);
    m.version = detail::get64(&f[24]);
    m.seq = detail::get64(&f[32]);
    xseq = detail::get64(&f[40]);
    return m;
}

/** Flip payload bit @p k (0 .. framePayloadBytes*8-1) of @p f. */
inline void
flipPayloadBit(FrameImage &f, unsigned k)
{
    f[k / 8] ^= static_cast<std::uint8_t>(1u << (k % 8));
}

} // namespace wire
} // namespace ccnuma

#endif // CCNUMA_PROTOCOL_WIRE_HH
