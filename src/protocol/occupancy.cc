#include "protocol/occupancy.hh"

#include "sim/logging.hh"

namespace ccnuma
{

const char *
engineTypeName(EngineType t)
{
    switch (t) {
      case EngineType::HWC: return "HWC";
      case EngineType::PP: return "PP";
      case EngineType::PPAccel: return "PP+HW";
    }
    return "?";
}

const char *
subOpName(SubOp op)
{
    switch (op) {
      case SubOp::DispatchHandler: return "dispatch handler";
      case SubOp::ReadRegister: return "read special register";
      case SubOp::ReadAssocRegs: return "search associative registers";
      case SubOp::WriteRegister: return "write special register";
      case SubOp::DirectoryRead: return "directory read (cache hit)";
      case SubOp::DirectoryWrite: return "directory write (posted)";
      case SubOp::BitFieldOp: return "bit field operation";
      case SubOp::Condition: return "decide condition";
      case SubOp::Compute: return "compute (1 instruction)";
      case SubOp::NumSubOps: break;
    }
    return "?";
}

OccupancyModel::OccupancyModel(EngineType t)
    : type_(t)
{
    auto set = [this](SubOp op, Tick v) {
        costs_[static_cast<unsigned>(op)] = v;
    };
    switch (t) {
      case EngineType::HWC:
        // All on-chip accesses take one 100 MHz system cycle
        // (2 CPU cycles); conditions and bit operations are folded
        // into other actions.
        set(SubOp::DispatchHandler, 2);
        set(SubOp::ReadRegister, 2);
        set(SubOp::ReadAssocRegs, 2);
        set(SubOp::WriteRegister, 2);
        set(SubOp::DirectoryRead, 2);
        set(SubOp::DirectoryWrite, 2);
        set(SubOp::BitFieldOp, 0);
        set(SubOp::Condition, 0);
        set(SubOp::Compute, 0);
        break;
      case EngineType::PP:
        // Off-chip register reads: 4 system cycles (8 CPU cycles);
        // +1 system cycle for associative search; writes 2 system
        // cycles (4 CPU cycles). Directory data hits in the PP's
        // on-chip write-through data cache. Bit-field, branch and
        // ALU costs follow compiled PowerPC instruction counts.
        set(SubOp::DispatchHandler, 8);
        set(SubOp::ReadRegister, 8);
        set(SubOp::ReadAssocRegs, 10);
        set(SubOp::WriteRegister, 4);
        set(SubOp::DirectoryRead, 2);
        set(SubOp::DirectoryWrite, 2);
        set(SubOp::BitFieldOp, 2);
        // compare + conditional branch on the PowerPC
        set(SubOp::Condition, 2);
        set(SubOp::Compute, 1);
        break;
      case EngineType::PPAccel:
        // Commodity PP plus the incremental custom hardware the
        // paper proposes: hardware dispatch, associative match unit,
        // and hardware bit-field assist; everything else stays at
        // commodity cost.
        set(SubOp::DispatchHandler, 2);
        set(SubOp::ReadRegister, 8);
        set(SubOp::ReadAssocRegs, 2);
        set(SubOp::WriteRegister, 4);
        set(SubOp::DirectoryRead, 2);
        set(SubOp::DirectoryWrite, 2);
        set(SubOp::BitFieldOp, 0);
        set(SubOp::Condition, 2);
        set(SubOp::Compute, 1);
        break;
    }
}

} // namespace ccnuma
