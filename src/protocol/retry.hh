/**
 * @file
 * Bounded retry with capped exponential backoff.
 *
 * The protocol retries transient conditions — a forward nacked by a
 * stale owner, a request bounced back by the home, an engine held by
 * an injected stall. The paper's model retries immediately and
 * without bound, which is faithful to the hardware but livelocks
 * under adversarial fault injection. RetryTracker centralizes the
 * alternative policy: each retry of a key waits base * 2^(n-1) ticks
 * (capped), and after maxRetries the caller escalates with a clean
 * diagnostic instead of spinning forever.
 *
 * The default-constructed policy (base 0, unbounded) reproduces the
 * paper's immediate-retry behavior exactly, so timing results are
 * unchanged unless a policy is explicitly configured.
 */

#ifndef CCNUMA_PROTOCOL_RETRY_HH
#define CCNUMA_PROTOCOL_RETRY_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace ccnuma
{

/** Retry/backoff policy knobs (defaults = the paper's behavior). */
struct RetryPolicyParams
{
    /** First-retry backoff (ticks); 0 retries immediately. */
    Tick backoffBase = 0;
    /** Ceiling on the exponential backoff (ticks); 0 = no cap. */
    Tick backoffMax = 0;
    /** Retries of one key before escalation; 0 = unbounded. */
    unsigned maxRetries = 0;

    /** True when the policy escalates instead of retrying forever. */
    bool bounded() const { return maxRetries != 0; }
};

/**
 * Per-key retry bookkeeping for one component. Keys are whatever
 * the caller retries on (the coherence controllers use line
 * addresses). clear() must be called when the operation finally
 * succeeds so an occasionally-nacked hot line never accumulates
 * toward escalation.
 */
class RetryTracker
{
  public:
    explicit RetryTracker(const RetryPolicyParams &p) : p_(p) {}

    struct Attempt
    {
        /** Ticks to wait before re-attempting. */
        Tick delay = 0;
        /** Retry budget exhausted: escalate, do not retry. */
        bool exhausted = false;
        /** Consecutive retries of this key, including this one. */
        unsigned count = 0;
    };

    /** Record a retry of @p key and compute its backoff. */
    Attempt next(std::uint64_t key);

    /** The operation succeeded: forget the key's retry history. */
    void clear(std::uint64_t key) { counts_.erase(key); }

    /** Fail-stop crash: all in-flight operations died with it. */
    void clearAll() { counts_.clear(); }

    const RetryPolicyParams &params() const { return p_; }

  private:
    RetryPolicyParams p_;
    std::unordered_map<std::uint64_t, unsigned> counts_;
};

/**
 * Capped exponential backoff: base * 2^level, saturated at @p max
 * (when nonzero) and guarded against shift overflow.
 */
Tick backoffDelay(Tick base, Tick max, unsigned level);

} // namespace ccnuma

#endif // CCNUMA_PROTOCOL_RETRY_HH
