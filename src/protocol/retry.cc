#include "protocol/retry.hh"

namespace ccnuma
{

Tick
backoffDelay(Tick base, Tick max, unsigned level)
{
    if (base == 0)
        return 0;
    // 2^63 ticks is far past any simulation horizon; saturate the
    // shift so a long retry streak cannot wrap around to a small
    // delay.
    if (level > 32)
        level = 32;
    Tick d = base << level;
    if (d < base)
        d = maxTick; // overflowed
    if (max != 0 && d > max)
        d = max;
    return d;
}

RetryTracker::Attempt
RetryTracker::next(std::uint64_t key)
{
    unsigned &c = counts_[key];
    ++c;
    Attempt a;
    a.count = c;
    if (p_.maxRetries != 0 && c > p_.maxRetries) {
        a.exhausted = true;
        return a;
    }
    a.delay = backoffDelay(p_.backoffBase, p_.backoffMax, c - 1);
    return a;
}

} // namespace ccnuma
