/**
 * @file
 * Protocol-engine sub-operation cost model (the paper's Table 2).
 *
 * A protocol handler is a sequence of sub-operations; the occupancy of
 * a handler on a given engine type is computed from this table plus
 * any dynamic waits (SMP bus / memory / directory DRAM) incurred while
 * the handler runs. The per-sub-op costs encode the paper's stated
 * assumptions:
 *
 *  - HWC on-chip register accesses take one 100 MHz system cycle
 *    (2 CPU cycles); HWC decides multiple conditions per cycle and
 *    folds bit operations into other actions (zero marginal cost);
 *  - PP reads of off-chip registers on the local controller bus take
 *    4 system cycles (8 CPU cycles), +1 system cycle when searching a
 *    set of associative registers; PP writes take 2 system cycles
 *    (4 CPU cycles) before the PP can proceed;
 *  - PP compute/bit-field/branch costs reflect compiled PowerPC
 *    instruction counts (the paper used IBM XLC output; we use
 *    per-sub-op estimates calibrated against the paper's readable
 *    anchors: the 142 vs 212 cycle read-miss totals and the ~2.5x
 *    total occupancy ratio).
 */

#ifndef CCNUMA_PROTOCOL_OCCUPANCY_HH
#define CCNUMA_PROTOCOL_OCCUPANCY_HH

#include <cstdint>

#include "sim/types.hh"

namespace ccnuma
{

/** Protocol engine implementation technology. */
enum class EngineType : std::uint8_t
{
    HWC, ///< custom hardware finite state machine @ 100 MHz
    PP,  ///< commodity 200 MHz protocol processor, off-chip registers
    /**
     * The hybrid the paper's conclusions propose: a commodity
     * protocol processor with incremental custom hardware
     * accelerating the common handler actions — hardware dispatch
     * (no off-chip dispatch-register read), an associative
     * pending-transaction match unit, and hardware transfer-
     * completion tracking. Compute, register writes, and general
     * register reads remain at commodity-PP cost.
     */
    PPAccel,
};

const char *engineTypeName(EngineType t);

/** Protocol handler sub-operations (Table 2 rows). */
enum class SubOp : std::uint8_t
{
    DispatchHandler, ///< read dispatch register, decode, branch
    ReadRegister,    ///< read a special register (bus IF / NI header)
    ReadAssocRegs,   ///< search an associative register set
    WriteRegister,   ///< write a special register (send msg, start DMA)
    DirectoryRead,   ///< directory read hitting the directory cache
    DirectoryWrite,  ///< posted write-through directory update
    BitFieldOp,      ///< extract/clear/set a directory bit field
    Condition,       ///< decide one condition
    Compute,         ///< one ALU instruction worth of work
    NumSubOps,
};

constexpr unsigned numSubOps =
    static_cast<unsigned>(SubOp::NumSubOps);

const char *subOpName(SubOp op);

/** Per-engine sub-operation occupancies in ticks (CPU cycles). */
class OccupancyModel
{
  public:
    explicit OccupancyModel(EngineType t);

    EngineType engineType() const { return type_; }

    /** Occupancy of one sub-operation. */
    Tick cost(SubOp op) const
    {
        return costs_[static_cast<unsigned>(op)];
    }

    /** Override a sub-op cost (ablation studies). */
    void setCost(SubOp op, Tick t)
    {
        costs_[static_cast<unsigned>(op)] = t;
    }

  private:
    EngineType type_;
    Tick costs_[numSubOps];
};

} // namespace ccnuma

#endif // CCNUMA_PROTOCOL_OCCUPANCY_HH
