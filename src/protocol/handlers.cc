#include "protocol/handlers.hh"

#include "sim/logging.hh"

namespace ccnuma
{

namespace
{

using SO = SubOp;

std::vector<HandlerSpec>
buildSpecs()
{
    std::vector<HandlerSpec> v;
    v.resize(numHandlers);

    auto def = [&v](HandlerId id, const char *name, bool reads_dir,
                    std::vector<SubOpCount> pre, CcBusOp bus_op,
                    std::vector<SubOpCount> post,
                    std::vector<SubOpCount> per_target = {}) {
        HandlerSpec &s = v[static_cast<unsigned>(id)];
        s.id = id;
        s.name = name;
        s.readsDirectory = reads_dir;
        s.pre = std::move(pre);
        s.busOp = bus_op;
        s.post = std::move(post);
        s.perTarget = std::move(per_target);
    };

    // ---- requester-side bus-request handlers ----
    def(HandlerId::BusReadRemote, "bus read remote", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 2},
         {SO::WriteRegister, 1}, {SO::Compute, 2}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::Compute, 1}});

    def(HandlerId::BusReadExclRemote, "bus read exclusive remote",
        false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 3},
         {SO::WriteRegister, 1}, {SO::Compute, 2}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::Compute, 1}});

    def(HandlerId::BusReadLocalDirtyRemote,
        "bus read local (dirty remote)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 1}, {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::Compute, 2}});

    def(HandlerId::BusReadExclLocalCachedRemote,
        "bus read excl. local (cached remote)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 2}},
        CcBusOp::FetchRead,
        {{SO::WriteRegister, 1}, {SO::Compute, 2}},
        {{SO::WriteRegister, 1}, {SO::BitFieldOp, 1}});

    // ---- home-side request handlers ----
    def(HandlerId::RemoteReadToHomeClean,
        "remote read to home (clean)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 1}},
        CcBusOp::FetchRead,
        {{SO::WriteRegister, 1}, {SO::DirectoryWrite, 1},
         {SO::BitFieldOp, 1}, {SO::Compute, 1}});

    def(HandlerId::RemoteReadToHomeDirtyRemote,
        "remote read to home (dirty remote)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 1}, {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::Compute, 2}});

    def(HandlerId::RemoteReadExclToHomeUncached,
        "remote read excl. to home (uncached remote)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 1}},
        CcBusOp::FetchReadExcl,
        {{SO::WriteRegister, 1}, {SO::DirectoryWrite, 1},
         {SO::BitFieldOp, 1}, {SO::Compute, 1}});

    def(HandlerId::RemoteReadExclToHomeShared,
        "remote read excl. to home (shared remote)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 2}},
        CcBusOp::FetchReadExcl,
        {{SO::WriteRegister, 1}, {SO::Compute, 2}},
        {{SO::WriteRegister, 1}, {SO::BitFieldOp, 1}});

    def(HandlerId::RemoteReadExclToHomeDirty,
        "remote read excl. to home (dirty remote)", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 2},
         {SO::BitFieldOp, 1}, {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::Compute, 2}});

    // ---- owner-side forwarded-request handlers ----
    def(HandlerId::ReadFromOwnerForHome,
        "read from remote owner (request from home)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1}},
        CcBusOp::FetchRead,
        {{SO::WriteRegister, 1}, {SO::Compute, 1}});

    def(HandlerId::ReadFromOwnerForRemote,
        "read from remote owner (remote requester)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 2}},
        CcBusOp::FetchRead,
        {{SO::WriteRegister, 2}, {SO::Compute, 1}});

    def(HandlerId::ReadExclFromOwnerForHome,
        "read excl. from remote owner (request from home)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1}},
        CcBusOp::FetchReadExcl,
        {{SO::WriteRegister, 1}, {SO::Compute, 1}});

    def(HandlerId::ReadExclFromOwnerForRemote,
        "read excl. from remote owner (remote requester)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 2}},
        CcBusOp::FetchReadExcl,
        {{SO::WriteRegister, 2}, {SO::Compute, 1}});

    // ---- home-side closing handlers ----
    def(HandlerId::OwnerDataToHomeRead,
        "data response from owner to a read request from home", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::DirectoryWrite, 1},
         {SO::BitFieldOp, 1}, {SO::Compute, 1}});

    def(HandlerId::OwnerWriteBackToHomeRemoteRead,
        "write back from owner to home in response to a read req. "
        "from remote node", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 1}, {SO::DirectoryWrite, 1},
         {SO::BitFieldOp, 2}, {SO::Compute, 1}});

    def(HandlerId::OwnerDataToHomeReadExcl,
        "data response from owner to a read excl. request from home",
        false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::DirectoryWrite, 1}, {SO::BitFieldOp, 1},
         {SO::Compute, 1}});

    def(HandlerId::OwnerAckToHomeRemoteReadExcl,
        "ack. from owner to home in response to a read excl. request "
        "from remote node", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::DirectoryWrite, 1}, {SO::BitFieldOp, 1},
         {SO::Compute, 1}});

    // ---- invalidation handlers ----
    def(HandlerId::InvalRequestAtSharer,
        "invalidation request from home to sharer", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::Condition, 1}},
        CcBusOp::InvalOnly,
        {{SO::WriteRegister, 1}, {SO::Compute, 1}});

    def(HandlerId::InvalAckMoreExpected,
        "inv. acknowledgment (more expected)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::Compute, 1}},
        CcBusOp::None,
        {{SO::Compute, 1}});

    def(HandlerId::InvalAckLastLocal,
        "inv. ack. (last ack, local request)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::DirectoryWrite, 1}, {SO::BitFieldOp, 1},
         {SO::Compute, 2}});

    def(HandlerId::InvalAckLastRemote,
        "inv. ack. (last ack, remote request)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::DirectoryWrite, 1}, {SO::BitFieldOp, 1},
         {SO::Compute, 2}});

    // ---- requester-side data-reply handlers ----
    def(HandlerId::DataReplyForRemoteRead,
        "data in response to a remote read request", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::Compute, 2}});

    def(HandlerId::DataReplyForRemoteReadExcl,
        "data in response to a remote read excl. request", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::WriteRegister, 1}},
        CcBusOp::None,
        {{SO::Compute, 2}});

    // ---- bookkeeping handlers ----
    def(HandlerId::WriteBackAtHome,
        "write back (eviction) received at home", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 2}, {SO::DirectoryWrite, 1},
         {SO::BitFieldOp, 1}, {SO::Compute, 1}});

    def(HandlerId::SharingWriteBackAtHome,
        "sharing write back received at home", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::WriteRegister, 2}, {SO::DirectoryWrite, 1},
         {SO::BitFieldOp, 2}, {SO::Compute, 1}});

    def(HandlerId::WriteBackAckAtOwner,
        "write back acknowledgment at owner", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::Compute, 1}});

    def(HandlerId::OwnerNackAtHome,
        "owner nack received at home (retry)", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1},
         {SO::Compute, 2}},
        CcBusOp::None,
        {{SO::Compute, 1}});

    // ---- recovery handlers ----
    // A peer scanning its caches for lines homed at the recovering
    // prober: the scan itself is off the engine (cache tag walk); the
    // handler cost covers decoding the probe and queueing one
    // response send per reported line.
    def(HandlerId::DirProbeAtSharer,
        "directory probe received at sharer", false,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::ReadAssocRegs, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::Compute, 1}},
        {{SO::WriteRegister, 1}, {SO::Compute, 1}});

    // The recovering home folding one reported line into the rebuilt
    // full-map entry: a directory read-modify-write plus bookkeeping.
    def(HandlerId::DirProbeRespAtHome,
        "directory probe response at recovering home", true,
        {{SO::DispatchHandler, 1}, {SO::ReadRegister, 1},
         {SO::DirectoryRead, 1}, {SO::Condition, 1}},
        CcBusOp::None,
        {{SO::DirectoryWrite, 1}, {SO::BitFieldOp, 1},
         {SO::Compute, 1}});

    // Handlers that move a full cache line through the controller.
    for (HandlerId id : {
             HandlerId::BusReadExclLocalCachedRemote,
             HandlerId::RemoteReadToHomeClean,
             HandlerId::RemoteReadExclToHomeUncached,
             HandlerId::RemoteReadExclToHomeShared,
             HandlerId::ReadFromOwnerForHome,
             HandlerId::ReadFromOwnerForRemote,
             HandlerId::ReadExclFromOwnerForHome,
             HandlerId::ReadExclFromOwnerForRemote,
             HandlerId::OwnerDataToHomeRead,
             HandlerId::OwnerWriteBackToHomeRemoteRead,
             HandlerId::OwnerDataToHomeReadExcl,
             HandlerId::InvalAckLastLocal,
             HandlerId::InvalAckLastRemote,
             HandlerId::DataReplyForRemoteRead,
             HandlerId::DataReplyForRemoteReadExcl,
             HandlerId::WriteBackAtHome,
             HandlerId::SharingWriteBackAtHome,
         }) {
        v[static_cast<unsigned>(id)].movesData = true;
    }

    for (unsigned i = 0; i < numHandlers; ++i) {
        if (v[i].name == nullptr)
            panic("handler %u has no specification", i);
    }
    return v;
}

} // anonymous namespace

Tick
HandlerSpec::preCost(const OccupancyModel &m, int extra_targets) const
{
    Tick t = 0;
    for (const auto &[op, n] : pre)
        t += m.cost(op) * static_cast<Tick>(n);
    for (const auto &[op, n] : perTarget)
        t += m.cost(op) * static_cast<Tick>(n) *
             static_cast<Tick>(extra_targets);
    return t;
}

Tick
HandlerSpec::postCost(const OccupancyModel &m) const
{
    Tick t = 0;
    for (const auto &[op, n] : post)
        t += m.cost(op) * static_cast<Tick>(n);
    return t;
}

Tick
HandlerSpec::nominalOccupancy(const OccupancyModel &m,
                              Tick bus_estimate,
                              int extra_targets) const
{
    Tick t = preCost(m, extra_targets) + postCost(m);
    if (busOp != CcBusOp::None)
        t += bus_estimate;
    return t;
}

const std::vector<HandlerSpec> &
allHandlerSpecs()
{
    static const std::vector<HandlerSpec> specs = buildSpecs();
    return specs;
}

const HandlerSpec &
handlerSpec(HandlerId id)
{
    return allHandlerSpecs()[static_cast<unsigned>(id)];
}

const char *
handlerName(HandlerId id)
{
    return handlerSpec(id).name;
}

} // namespace ccnuma
