#include "serve/campaign.hh"

#include <algorithm>

namespace ccnuma
{
namespace serve
{

namespace
{

const std::vector<std::string> &
knownApps()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v = splashNames();
        v.push_back("Uniform");
        return v;
    }();
    return names;
}

} // namespace

Arch
archFromName(const std::string &name)
{
    for (Arch a :
         {Arch::HWC, Arch::PPC, Arch::TwoHWC, Arch::TwoPPC}) {
        if (name == archName(a))
            return a;
    }
    throw CampaignError("unknown architecture '" + name +
                        "' (expected HWC, PPC, 2HWC, or 2PPC)");
}

CampaignSpec
parseCampaignSpec(const JsonValue &doc)
{
    if (!doc.isObject())
        throw CampaignError("campaign spec must be a JSON object");

    CampaignSpec s;
    try {
        s.name = doc.getString("name", s.name);

        const JsonValue *apps = doc.get("apps");
        if (!apps || !apps->isArray() || apps->arr.empty())
            throw CampaignError(
                "spec needs a non-empty \"apps\" array");
        for (const JsonValue &a : apps->arr) {
            const std::string &app = a.asString();
            if (std::find(knownApps().begin(), knownApps().end(),
                          app) == knownApps().end())
                throw CampaignError("unknown app '" + app + "'");
            s.apps.push_back(app);
        }

        if (const JsonValue *archs = doc.get("archs")) {
            if (!archs->isArray() || archs->arr.empty())
                throw CampaignError(
                    "\"archs\" must be a non-empty array");
            for (const JsonValue &a : archs->arr)
                s.archs.push_back(archFromName(a.asString()));
        } else {
            s.archs = {Arch::HWC, Arch::PPC, Arch::TwoHWC,
                       Arch::TwoPPC};
        }

        s.scale = doc.getDouble("scale", s.scale);
        if (s.scale <= 0.0 || s.scale > 4.0)
            throw CampaignError(
                "\"scale\" must be in (0, 4]");
        s.procs =
            static_cast<unsigned>(doc.getU64("procs", s.procs));
        if (s.procs == 0 || s.procs > 1024)
            throw CampaignError("\"procs\" must be in [1, 1024]");

        if (const JsonValue *seeds = doc.get("seeds")) {
            if (!seeds->isArray() || seeds->arr.empty())
                throw CampaignError(
                    "\"seeds\" must be a non-empty array");
            for (const JsonValue &v : seeds->arr)
                s.seeds.push_back(v.asU64());
        } else {
            s.seeds = {WorkloadParams{}.seed};
        }

        s.dataFactor = doc.getDouble("dataFactor", s.dataFactor);
        if (s.dataFactor <= 0.0)
            throw CampaignError("\"dataFactor\" must be positive");
        s.lineBytes = static_cast<unsigned>(
            doc.getU64("lineBytes", s.lineBytes));
        if (s.lineBytes != 0 &&
            (s.lineBytes & (s.lineBytes - 1)) != 0)
            throw CampaignError(
                "\"lineBytes\" must be a power of two");
        s.netLatencyTicks =
            doc.getU64("netLatencyTicks", s.netLatencyTicks);
        s.shards =
            static_cast<unsigned>(doc.getU64("shards", s.shards));
        if (s.shards == 0)
            s.shards = 1;
        s.priority = static_cast<unsigned>(
            doc.getU64("priority", s.priority));
        if (s.priority > 2)
            throw CampaignError("\"priority\" must be 0, 1, or 2");
    } catch (const JsonError &e) {
        throw CampaignError(std::string("malformed spec: ") +
                            e.what());
    }
    return s;
}

CampaignSpec
parseCampaignSpec(const std::string &json_text)
{
    JsonValue doc;
    try {
        doc = parseJson(json_text);
    } catch (const JsonError &e) {
        throw CampaignError(std::string("bad JSON: ") + e.what());
    }
    return parseCampaignSpec(doc);
}

std::vector<SimPoint>
expandCampaign(const CampaignSpec &spec)
{
    std::function<void(MachineConfig &)> tweak;
    if (spec.lineBytes != 0 || spec.netLatencyTicks != 0) {
        unsigned line = spec.lineBytes;
        Tick lat = spec.netLatencyTicks;
        tweak = [line, lat](MachineConfig &cfg) {
            if (line != 0)
                cfg.withLineBytes(line);
            if (lat != 0)
                cfg.withNetworkLatency(lat);
        };
    }

    std::vector<SimPoint> points;
    points.reserve(spec.numPoints());
    for (const std::string &app : spec.apps) {
        unsigned procs = procsForApp(app, spec.procs);
        for (Arch arch : spec.archs) {
            for (std::uint64_t seed : spec.seeds) {
                points.push_back(makeSimPoint(
                    app, arch, procs, spec.scale, spec.dataFactor,
                    tweak, spec.shards, seed));
            }
        }
    }
    return points;
}

} // namespace serve
} // namespace ccnuma
