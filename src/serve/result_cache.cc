#include "serve/result_cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "report/json.hh"
#include "serve/result_io.hh"

namespace ccnuma
{
namespace serve
{

ResultCache::ResultCache(std::uint64_t byte_cap,
                         std::string persist_dir)
    : byteCap_(byte_cap), persistDir_(std::move(persist_dir))
{}

bool
ResultCache::lookupLocked(const PointKey &key, RunResult &out)
{
    auto it = entries_.find(key.hash);
    if (it == entries_.end())
        return false;
    if (it->second.canonical != key.canonical) {
        // A genuine 64-bit collision: two distinct points share a
        // hash. Never merge them — the second point bypasses the
        // cache (counted, so a hot collision is visible in stats).
        ++stats_.collisions;
        return false;
    }
    lru_.splice(lru_.end(), lru_, it->second.lruPos);
    out = it->second.result;
    return true;
}

void
ResultCache::insertLocked(const PointKey &key, const RunResult &r)
{
    if (byteCap_ == 0)
        return;
    auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
        // Either a re-fill of the same point (keep the fresher
        // result) or a collision loser; the existing entry wins the
        // slot in the collision case.
        if (it->second.canonical != key.canonical)
            return;
        it->second.result = r;
        it->second.json = resultToJson(r);
        lru_.splice(lru_.end(), lru_, it->second.lruPos);
        return;
    }
    Entry e;
    e.canonical = key.canonical;
    e.json = resultToJson(r);
    e.result = r;
    lru_.push_back(key.hash);
    e.lruPos = std::prev(lru_.end());
    stats_.bytes += entryBytes(e);
    entries_.emplace(key.hash, std::move(e));
    ++stats_.insertions;
    stats_.entries = entries_.size();
    evictLocked();
}

void
ResultCache::evictLocked()
{
    while (stats_.bytes > byteCap_ && !lru_.empty()) {
        std::uint64_t victim = lru_.front();
        auto it = entries_.find(victim);
        stats_.bytes -= entryBytes(it->second);
        lru_.pop_front();
        entries_.erase(it);
        ++stats_.evictions;
    }
    stats_.entries = entries_.size();
}

std::string
ResultCache::pathFor(std::uint64_t hash) const
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return persistDir_ + "/" + buf + ".json";
}

bool
ResultCache::loadFromDisk(const PointKey &key, RunResult &out)
{
    if (persistDir_.empty())
        return false;
    std::ifstream is(pathFor(key.hash));
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        JsonValue doc = parseJson(buf.str());
        // The canonical text is persisted with the result; a stale
        // or colliding file whose canonical form differs from the
        // request is ignored, exactly like the in-memory guard.
        if (doc.getString("canonical", "") != key.canonical)
            return false;
        const JsonValue *r = doc.get("result");
        if (!r)
            return false;
        out = resultFromJson(*r);
        return true;
    } catch (const JsonError &) {
        return false; // corrupt file == miss; it will be rewritten
    }
}

void
ResultCache::storeToDisk(const PointKey &key, const RunResult &r)
{
    if (persistDir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(persistDir_, ec);
    if (ec)
        return;
    std::string path = pathFor(key.hash);
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            return;
        report::JsonWriter j(os);
        j.beginObject();
        j.key("canonical").value(key.canonical);
        j.key("result");
        writeRunResult(j, r);
        j.endObject();
        os << "\n";
    }
    // Atomic publish: a concurrent reader sees the old file or the
    // new one, never a torn write.
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

bool
ResultCache::lookup(const PointKey &key, RunResult &out)
{
    std::lock_guard<std::mutex> g(mutex_);
    return lookupLocked(key, out);
}

ResultCache::Outcome
ResultCache::fetch(const PointKey &key,
                   const std::function<RunResult()> &compute)
{
    while (true) {
        std::shared_ptr<Flight> flight;
        bool owner = false;
        {
            std::lock_guard<std::mutex> g(mutex_);
            Outcome o;
            if (lookupLocked(key, o.result)) {
                ++stats_.hits;
                o.source = Source::Memory;
                return o;
            }
            auto it = inFlight_.find(key.hash);
            if (it != inFlight_.end()) {
                flight = it->second;
            } else {
                flight = std::make_shared<Flight>();
                inFlight_.emplace(key.hash, flight);
                owner = true;
            }
        }

        if (!owner) {
            // Single-flight rendezvous: share the owner's result.
            std::unique_lock<std::mutex> fl(flight->m);
            flight->cv.wait(fl, [&] { return flight->done; });
            if (!flight->failed) {
                std::lock_guard<std::mutex> g(mutex_);
                ++stats_.dedupWaits;
                Outcome o;
                o.result = flight->result;
                o.source = Source::Deduped;
                return o;
            }
            // The owner's compute threw; retry the whole fetch (we
            // may become the new owner).
            continue;
        }

        Outcome o;
        bool from_disk = false;
        try {
            from_disk = loadFromDisk(key, o.result);
            if (!from_disk)
                o.result = compute();
        } catch (...) {
            {
                std::lock_guard<std::mutex> g(mutex_);
                inFlight_.erase(key.hash);
            }
            {
                std::lock_guard<std::mutex> fl(flight->m);
                flight->failed = true;
                flight->done = true;
            }
            flight->cv.notify_all();
            throw;
        }

        o.source = from_disk ? Source::Disk : Source::Computed;
        {
            std::lock_guard<std::mutex> g(mutex_);
            if (from_disk)
                ++stats_.diskHits;
            else
                ++stats_.misses;
            insertLocked(key, o.result);
            inFlight_.erase(key.hash);
        }
        if (!from_disk)
            storeToDisk(key, o.result);
        {
            std::lock_guard<std::mutex> fl(flight->m);
            flight->result = o.result;
            flight->done = true;
        }
        flight->cv.notify_all();
        return o;
    }
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> g(mutex_);
    return stats_;
}

} // namespace serve
} // namespace ccnuma
