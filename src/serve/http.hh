/**
 * @file
 * Minimal blocking-socket HTTP/1.1 layer for the campaign daemon.
 * No external dependencies: POSIX sockets, thread-per-connection,
 * Content-Length request bodies, plain or chunked responses. This is
 * deliberately a small subset of HTTP — enough for a JSON job API on
 * a trusted network, not a general web server: no keep-alive, no
 * TLS, 1 MiB request-body cap, header count/size caps.
 */

#ifndef CCNUMA_SERVE_HTTP_HH
#define CCNUMA_SERVE_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ccnuma
{
namespace serve
{

/** One parsed request. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ...
    std::string path;   ///< "/campaigns/c1" (no query parsing)
    std::map<std::string, std::string> headers; ///< lower-case keys
    std::string body;
};

/**
 * The server side of one connection, handed to the handler. Exactly
 * one of respond() / beginChunked()..endChunked() must be used.
 */
class HttpExchange
{
  public:
    explicit HttpExchange(int fd) : fd_(fd) {}

    /** Send a complete response. */
    void respond(int status, const std::string &body,
                 const std::string &content_type =
                     "application/json");

    /** Begin a chunked (streaming) response. */
    void beginChunked(int status,
                      const std::string &content_type =
                          "application/x-ndjson");
    /** Send one chunk (must be between begin/endChunked). */
    void writeChunk(const std::string &data);
    /** Finish the chunked response. */
    void endChunked();

    /** True once a response has been started. */
    bool responded() const { return responded_; }

  private:
    void writeAll(const char *data, std::size_t len);

    int fd_;
    bool responded_ = false;
    bool chunked_ = false;
};

/**
 * The listener: accept loop on its own thread, one worker thread per
 * connection (joined on stop). The handler runs on the connection
 * thread and may block (simulations do).
 */
class HttpServer
{
  public:
    using Handler =
        std::function<void(const HttpRequest &, HttpExchange &)>;

    /**
     * Bind 127.0.0.1:@p port (0 picks an ephemeral port, see
     * port()). Throws std::runtime_error when the bind fails.
     */
    HttpServer(std::uint16_t port, Handler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Start accepting (idempotent). */
    void start();

    /** Stop accepting, close the listener, join every worker. */
    void stop();

    /** The bound port (resolved even when constructed with 0). */
    std::uint16_t port() const { return port_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    Handler handler_;
    std::atomic<bool> running_{false};
    std::thread acceptor_;
    std::mutex workersMutex_;
    std::vector<std::thread> workers_;
};

/** A complete client-side response. */
struct HttpResponse
{
    int status = 0;
    std::map<std::string, std::string> headers; ///< lower-case keys
    std::string body; ///< chunked responses are de-chunked
};

/**
 * Blocking client request to 127.0.0.1:@p port. Throws
 * std::runtime_error on connect/IO failure.
 */
HttpResponse httpRequest(std::uint16_t port,
                         const std::string &method,
                         const std::string &path,
                         const std::string &body = "");

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_HTTP_HH
