/**
 * @file
 * RunResult <-> JSON round-trip for the campaign service: cached
 * results live in the in-memory LRU and (optionally) on disk as
 * JSON, and the job API serves them back out. Every field of
 * RunResult is carried; resultsIdentical() is the bit-identity
 * comparator the served-vs-direct tests and the load bench use.
 */

#ifndef CCNUMA_SERVE_RESULT_IO_HH
#define CCNUMA_SERVE_RESULT_IO_HH

#include <string>

#include "serve/json_in.hh"
#include "system/machine.hh"

namespace ccnuma
{
namespace report
{
class JsonWriter;
} // namespace report

namespace serve
{

/** Write @p r as a JSON object on @p j (beginObject..endObject). */
void writeRunResult(report::JsonWriter &j, const RunResult &r);

/** @return @p r as a standalone JSON document. */
std::string resultToJson(const RunResult &r);

/** Rebuild a RunResult from writeRunResult() output. */
RunResult resultFromJson(const JsonValue &v);
RunResult resultFromJson(const std::string &text);

/** Field-by-field equality — the served-vs-direct identity check. */
bool resultsIdentical(const RunResult &a, const RunResult &b);

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_RESULT_IO_HH
