/**
 * @file
 * Canonical serialization and stable hashing of a simulation point.
 *
 * The campaign service deduplicates work by content: two requests
 * that describe the same (MachineConfig, workload, seed) point must
 * map to the same cache key, and two requests that differ in ANY
 * result-bearing field must not. The canonical form is a fixed-order
 * `key=value` text rendering of every result-bearing configuration
 * field; the key is a stable 64-bit FNV-1a hash of that text, with
 * the full text kept alongside to disarm hash collisions (a collision
 * bypasses the cache, it never merges two points).
 *
 * Two groups of fields are deliberately EXCLUDED because the repo's
 * identity test suites prove them result-invariant:
 *   - MachineConfig::shards (tests/integration/test_sharded_identity):
 *     a sharded run is bit-identical to serial, so a point simulated
 *     with 4 shards can serve a request for the same point at 1;
 *   - MachineConfig::obs (tests/obs traced-vs-untraced identity):
 *     tracing writes side files but never changes a RunResult.
 * Everything else — including the verify/reliable/recovery/integrity
 * subsystems, which do change timing or behavior — is included.
 *
 * New-field guard: canonicalMachineConfig() sits behind sizeof
 * static_asserts on every struct it flattens. Landing a new config
 * field without extending the canonical form (and the perturbation
 * test in tests/serve/test_canonical.cc) fails the build instead of
 * silently serving stale cached results.
 */

#ifndef CCNUMA_SERVE_CANONICAL_HH
#define CCNUMA_SERVE_CANONICAL_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "system/config.hh"
#include "workload/workload.hh"

namespace ccnuma
{
namespace serve
{

/** Stable 64-bit FNV-1a. Never changes across platforms/versions. */
constexpr std::uint64_t
hash64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Fixed-order `key=value` rendering of every result-bearing
 * MachineConfig field (see file comment for the exclusions).
 */
std::string canonicalMachineConfig(const MachineConfig &cfg);

/** Canonical rendering of a workload identity (name + params). */
std::string canonicalWorkload(const std::string &app,
                              const WorkloadParams &wp);

/** Content-address of one simulation point. */
struct PointKey
{
    std::uint64_t hash = 0;
    /** The full canonical text (collision guard, persisted). */
    std::string canonical;
};

/** Key of the point (cfg, app, wp). wp.seed is part of the key. */
PointKey makePointKey(const MachineConfig &cfg,
                      const std::string &app,
                      const WorkloadParams &wp);

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_CANONICAL_HH
