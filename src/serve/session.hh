/**
 * @file
 * Reusable simulation sessions: the Machine lifecycle lifted out of
 * the bench main()s so one execution path serves both the one-shot
 * table/figure benches and the long-running campaign daemon.
 *
 * A SimPoint is one fully-resolved simulation: a MachineConfig with
 * every tweak applied plus the workload identity (factory name and
 * WorkloadParams, seed included). SimSession::run() executes it —
 * construct Machine, build workload, run, collect RunResult — and is
 * safe to call concurrently from many threads (each call owns its
 * Machine; the PR 4 thread-local Core recycling makes repeated runs
 * on one thread allocation-cheap).
 *
 * CampaignRunner executes a vector of points on the existing
 * parallelMap backend, optionally fronted by a ResultCache: each
 * point is content-hashed and served from cache / deduplicated
 * against in-flight twins before a Machine is ever built.
 */

#ifndef CCNUMA_SERVE_SESSION_HH
#define CCNUMA_SERVE_SESSION_HH

#include <functional>
#include <string>
#include <vector>

#include "serve/canonical.hh"
#include "serve/result_cache.hh"
#include "system/machine.hh"
#include "workload/workload.hh"

namespace ccnuma
{
namespace serve
{

/** One fully-resolved simulation point. */
struct SimPoint
{
    std::string app;   ///< workload factory name (e.g. "FFT")
    MachineConfig cfg; ///< all tweaks applied
    WorkloadParams wp; ///< thread count, scale, seed, ...

    PointKey
    key() const
    {
        return makePointKey(cfg, app, wp);
    }
};

/** Paper convention: LU and Cholesky run on 32 processors. */
unsigned procsForApp(const std::string &app, unsigned default_procs);

/**
 * Resolve one (app, arch) request into a SimPoint, reproducing the
 * bench harness conventions exactly: base config, procs-per-node
 * split, arch, caller tweak, --shards folded to a node-count
 * divisor, and workload params tied to the post-tweak line size.
 * @p procs is the point's processor count (callers that honor the
 * paper's LU/Cholesky convention pass procsForApp() output).
 */
SimPoint
makeSimPoint(const std::string &app, Arch arch, unsigned procs,
             double scale, double data_factor = 1.0,
             const std::function<void(MachineConfig &)> &tweak =
                 nullptr,
             unsigned shards = 1,
             std::uint64_t seed = WorkloadParams{}.seed);

/** Executes SimPoints; stateless, concurrency-safe. */
class SimSession
{
  public:
    /** Build the Machine and workload for @p pt and run it. */
    RunResult run(const SimPoint &pt) const;
};

/** How one campaign point was satisfied. */
struct PointOutcome
{
    RunResult result;
    bool fromCache = false; ///< memory or disk hit
    bool deduped = false;   ///< shared an in-flight twin
};

/**
 * Runs a vector of points on @p jobs parallelMap workers, through
 * @p cache when one is given. Multiple CampaignRunners may share one
 * ResultCache concurrently — that is exactly how overlapping
 * campaigns deduplicate.
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(unsigned jobs = 1,
                            ResultCache *cache = nullptr)
        : jobs_(jobs), cache_(cache)
    {}

    /**
     * Execute every point; results come back in input order.
     * @p progress (optional) fires once per completed point, FROM
     * THE WORKER THREAD that finished it, as it completes — the
     * daemon streams these to clients. It must be thread-safe.
     */
    std::vector<PointOutcome>
    run(const std::vector<SimPoint> &points,
        const std::function<void(std::size_t,
                                 const PointOutcome &)> &progress =
            nullptr) const;

    unsigned jobs() const { return jobs_; }
    ResultCache *cache() const { return cache_; }

  private:
    unsigned jobs_;
    ResultCache *cache_;
};

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_SESSION_HH
