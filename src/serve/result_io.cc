#include "serve/result_io.hh"

#include <sstream>

#include "report/json.hh"

namespace ccnuma
{
namespace serve
{

// New-field tripwire, same convention as canonical.cc: a RunResult
// field added without extending the round-trip below (and the
// round-trip test in tests/serve/test_result_cache.cc) fails the
// build instead of silently dropping data from cached results.
#if defined(__x86_64__) && defined(__GLIBCXX__)
static_assert(sizeof(RunResult) == 576,
              "RunResult changed: update result_io round-trip");
#endif

// Every uint64-valued field (Tick fields included; Tick is uint64).
#define CCNUMA_RUNRESULT_U64_FIELDS(X)                                \
    X(execTicks)                                                      \
    X(instructions)                                                   \
    X(memRefs)                                                        \
    X(misses)                                                         \
    X(ccRequests)                                                     \
    X(ccOccupancy)                                                    \
    X(faultsInjected)                                                 \
    X(xportRetransmits)                                               \
    X(xportTimeouts)                                                  \
    X(xportDupsDropped)                                               \
    X(xportReordersHealed)                                            \
    X(xportAcks)                                                      \
    X(nackRetries)                                                    \
    X(retryBackoffTicks)                                              \
    X(crashesInjected)                                                \
    X(dirRebuilds)                                                    \
    X(rebuildLines)                                                   \
    X(reconstructionTicksMax)                                         \
    X(recoveryNacks)                                                  \
    X(missTimeouts)                                                   \
    X(timeoutResends)                                                 \
    X(recoveryProbes)                                                 \
    X(degradedEntries)                                                \
    X(strayDrops)                                                     \
    X(migrations)                                                     \
    X(flipsInjected)                                                  \
    X(flipsSkipped)                                                   \
    X(crcChecked)                                                     \
    X(crcDetected)                                                    \
    X(eccCorrected)                                                   \
    X(scrubCorrections)                                               \
    X(eccPendingDropped)                                              \
    X(poisonNacks)                                                    \
    X(containedDiscards)                                              \
    X(linesPoisoned)                                                  \
    X(procsKilledPoison)                                              \
    X(integrityEscalations)

#define CCNUMA_RUNRESULT_DOUBLE_FIELDS(X)                             \
    X(avgUtilization)                                                 \
    X(avgQueueDelayTicks)                                             \
    X(arrivalsPerUs)

void
writeRunResult(report::JsonWriter &j, const RunResult &r)
{
    j.beginObject();
    j.key("workload").value(r.workload);
    j.key("arch").value(r.arch);
#define W_U64(f) j.key(#f).value(static_cast<std::uint64_t>(r.f));
    CCNUMA_RUNRESULT_U64_FIELDS(W_U64)
#undef W_U64
#define W_DBL(f) j.key(#f).valueFull(r.f);
    CCNUMA_RUNRESULT_DOUBLE_FIELDS(W_DBL)
#undef W_DBL
    j.key("escapedCorruptions")
        .value(static_cast<std::int64_t>(r.escapedCorruptions));
    j.key("completed").value(r.completed);
    j.key("shardsRequested")
        .value(static_cast<std::uint64_t>(r.shardsRequested));
    j.key("shardsUsed")
        .value(static_cast<std::uint64_t>(r.shardsUsed));
    j.key("shardFallback").value(r.shardFallback);
    j.key("windowPolicy").value(r.windowPolicy);
    j.key("windowsRun").value(r.windowsRun);
    j.key("windowsWidened").value(r.windowsWidened);
    j.key("windowFallbacks").value(r.windowFallbacks);
    j.key("syncWindowStops").value(r.syncWindowStops);
    j.key("windowPolicyFallback").value(r.windowPolicyFallback);
    j.key("rollbacks").value(r.rollbacks);
    j.key("antiMessages").value(r.antiMessages);
    j.key("squashedEvents").value(r.squashedEvents);
    j.key("checkpointBytes").value(r.checkpointBytes);
    j.key("gvtSweeps").value(r.gvtSweeps);
    j.endObject();
}

std::string
resultToJson(const RunResult &r)
{
    std::ostringstream os;
    report::JsonWriter j(os);
    writeRunResult(j, r);
    return os.str();
}

RunResult
resultFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw JsonError("result: expected a JSON object");
    RunResult r;
    r.workload = v.getString("workload", "");
    r.arch = v.getString("arch", "");
#define R_U64(f) r.f = v.getU64(#f, 0);
    CCNUMA_RUNRESULT_U64_FIELDS(R_U64)
#undef R_U64
#define R_DBL(f) r.f = v.getDouble(#f, 0.0);
    CCNUMA_RUNRESULT_DOUBLE_FIELDS(R_DBL)
#undef R_DBL
    if (const JsonValue *e = v.get("escapedCorruptions"))
        r.escapedCorruptions =
            static_cast<std::int64_t>(e->asDouble());
    r.completed = v.getBool("completed", false);
    r.shardsRequested =
        static_cast<unsigned>(v.getU64("shardsRequested", 1));
    r.shardsUsed = static_cast<unsigned>(v.getU64("shardsUsed", 1));
    r.shardFallback = v.getString("shardFallback", "");
    r.windowPolicy = v.getString("windowPolicy", "");
    r.windowsRun = v.getU64("windowsRun", 0);
    r.windowsWidened = v.getU64("windowsWidened", 0);
    r.windowFallbacks = v.getU64("windowFallbacks", 0);
    r.syncWindowStops = v.getU64("syncWindowStops", 0);
    r.windowPolicyFallback = v.getString("windowPolicyFallback", "");
    r.rollbacks = v.getU64("rollbacks", 0);
    r.antiMessages = v.getU64("antiMessages", 0);
    r.squashedEvents = v.getU64("squashedEvents", 0);
    r.checkpointBytes = v.getU64("checkpointBytes", 0);
    r.gvtSweeps = v.getU64("gvtSweeps", 0);
    return r;
}

RunResult
resultFromJson(const std::string &text)
{
    return resultFromJson(parseJson(text));
}

bool
resultsIdentical(const RunResult &a, const RunResult &b)
{
    // Execution-strategy metadata (shardsRequested/shardsUsed/
    // shardFallback, the PR 9 windowPolicy/window counters, and the
    // PR 10 speculative rollback/anti-message/checkpoint counters) is
    // excluded: the cache key deliberately ignores the shard count
    // and window policy (sharded runs are bit-identical to serial
    // either way), so a hit may legitimately report the scheduler
    // layout of the run that populated it.
    if (a.workload != b.workload || a.arch != b.arch)
        return false;
#define C_U64(f)                                                      \
    if (a.f != b.f)                                                   \
        return false;
    CCNUMA_RUNRESULT_U64_FIELDS(C_U64)
#undef C_U64
#define C_DBL(f)                                                      \
    if (a.f != b.f)                                                   \
        return false;
    CCNUMA_RUNRESULT_DOUBLE_FIELDS(C_DBL)
#undef C_DBL
    return a.escapedCorruptions == b.escapedCorruptions &&
           a.completed == b.completed;
}

} // namespace serve
} // namespace ccnuma
