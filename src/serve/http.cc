#include "serve/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace ccnuma
{
namespace serve
{

namespace
{

constexpr std::size_t kMaxBodyBytes = 1u << 20;
constexpr std::size_t kMaxHeaderBytes = 64u * 1024;

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Status";
    }
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return s;
}

/** Read until @p delim is seen or the cap is hit; includes delim. */
bool
readUntil(int fd, std::string &buf, const std::string &delim,
          std::size_t cap)
{
    while (buf.find(delim) == std::string::npos) {
        if (buf.size() > cap)
            return false;
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
    return true;
}

bool
readExactly(int fd, std::string &buf, std::size_t want)
{
    while (buf.size() < want) {
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------- //
// HttpExchange
// ---------------------------------------------------------------- //

void
HttpExchange::writeAll(const char *data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
        if (n <= 0)
            throw std::runtime_error("http: send failed");
        off += static_cast<std::size_t>(n);
    }
}

void
HttpExchange::respond(int status, const std::string &body,
                      const std::string &content_type)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n" +
                       "Content-Type: " + content_type + "\r\n" +
                       "Content-Length: " +
                       std::to_string(body.size()) + "\r\n" +
                       "Connection: close\r\n\r\n";
    responded_ = true;
    writeAll(head.data(), head.size());
    writeAll(body.data(), body.size());
}

void
HttpExchange::beginChunked(int status,
                           const std::string &content_type)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n" +
                       "Content-Type: " + content_type + "\r\n" +
                       "Transfer-Encoding: chunked\r\n" +
                       "Connection: close\r\n\r\n";
    responded_ = true;
    chunked_ = true;
    writeAll(head.data(), head.size());
}

void
HttpExchange::writeChunk(const std::string &data)
{
    if (data.empty())
        return;
    char size[24];
    std::snprintf(size, sizeof(size), "%zx\r\n", data.size());
    writeAll(size, std::strlen(size));
    writeAll(data.data(), data.size());
    writeAll("\r\n", 2);
}

void
HttpExchange::endChunked()
{
    writeAll("0\r\n\r\n", 5);
    chunked_ = false;
}

// ---------------------------------------------------------------- //
// HttpServer
// ---------------------------------------------------------------- //

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler))
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("http: socket() failed");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(listenFd_);
        throw std::runtime_error(
            std::string("http: cannot bind 127.0.0.1:") +
            std::to_string(port) + " (" + std::strerror(errno) +
            ")");
    }
    if (::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        throw std::runtime_error("http: listen() failed");
    }

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true))
        return;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return;
    }
    // Shut the listener down; accept() returns and the loop exits.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> g(workersMutex_);
        workers.swap(workers_);
    }
    for (std::thread &t : workers) {
        if (t.joinable())
            t.join();
    }
}

void
HttpServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load())
                return;
            continue;
        }
        std::lock_guard<std::mutex> g(workersMutex_);
        // Opportunistically reap finished workers so a long-lived
        // daemon does not accumulate joinable threads. A finished
        // worker's thread object is detached-equivalent: it has
        // already run to completion, so join() returns immediately.
        workers_.push_back(
            std::thread([this, fd] { serveConnection(fd); }));
        if (workers_.size() > 256) {
            for (std::thread &t : workers_) {
                if (t.joinable())
                    t.join();
            }
            workers_.clear();
        }
    }
}

void
HttpServer::serveConnection(int fd)
{
    HttpExchange ex(fd);
    try {
        std::string buf;
        if (!readUntil(fd, buf, "\r\n\r\n", kMaxHeaderBytes)) {
            ::close(fd);
            return;
        }
        std::size_t head_end = buf.find("\r\n\r\n");
        std::string head = buf.substr(0, head_end);
        std::string rest = buf.substr(head_end + 4);

        HttpRequest req;
        std::size_t line_end = head.find("\r\n");
        std::string request_line = head.substr(0, line_end);
        std::size_t sp1 = request_line.find(' ');
        std::size_t sp2 = request_line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            ex.respond(400, "{\"error\":\"malformed request\"}");
            ::close(fd);
            return;
        }
        req.method = request_line.substr(0, sp1);
        req.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

        std::size_t pos = line_end == std::string::npos
                              ? head.size()
                              : line_end + 2;
        while (pos < head.size()) {
            std::size_t eol = head.find("\r\n", pos);
            if (eol == std::string::npos)
                eol = head.size();
            std::string line = head.substr(pos, eol - pos);
            pos = eol + 2;
            std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            std::string key = toLower(line.substr(0, colon));
            std::size_t vstart = colon + 1;
            while (vstart < line.size() && line[vstart] == ' ')
                ++vstart;
            req.headers[key] = line.substr(vstart);
        }

        std::size_t content_length = 0;
        auto it = req.headers.find("content-length");
        if (it != req.headers.end())
            content_length = static_cast<std::size_t>(
                std::strtoull(it->second.c_str(), nullptr, 10));
        if (content_length > kMaxBodyBytes) {
            ex.respond(413, "{\"error\":\"body too large\"}");
            ::close(fd);
            return;
        }
        if (!readExactly(fd, rest, content_length)) {
            ::close(fd);
            return;
        }
        req.body = rest.substr(0, content_length);

        handler_(req, ex);
        if (!ex.responded())
            ex.respond(500, "{\"error\":\"handler sent nothing\"}");
    } catch (const std::exception &) {
        // Connection-level failure (peer hung up mid-write, handler
        // threw after responding): nothing useful left to send.
        if (!ex.responded()) {
            try {
                ex.respond(500, "{\"error\":\"internal error\"}");
            } catch (...) {
            }
        }
    }
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the client still has in flight so its send()
    // does not see a reset before it reads our response.
    char drain[1024];
    while (::recv(fd, drain, sizeof(drain), 0) > 0) {
    }
    ::close(fd);
}

// ---------------------------------------------------------------- //
// Client
// ---------------------------------------------------------------- //

HttpResponse
httpRequest(std::uint16_t port, const std::string &method,
            const std::string &path, const std::string &body)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("http client: socket() failed");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error(
            "http client: cannot connect to 127.0.0.1:" +
            std::to_string(port));
    }

    std::string req = method + " " + path + " HTTP/1.1\r\n" +
                      "Host: 127.0.0.1\r\n" +
                      "Content-Length: " +
                      std::to_string(body.size()) + "\r\n" +
                      "Connection: close\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < req.size()) {
        ssize_t n = ::send(fd, req.data() + off, req.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            throw std::runtime_error("http client: send failed");
        }
        off += static_cast<std::size_t>(n);
    }

    std::string raw;
    char tmp[4096];
    ssize_t n;
    while ((n = ::recv(fd, tmp, sizeof(tmp), 0)) > 0)
        raw.append(tmp, static_cast<std::size_t>(n));
    ::close(fd);

    std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos)
        throw std::runtime_error("http client: truncated response");
    std::string head = raw.substr(0, head_end);
    std::string payload = raw.substr(head_end + 4);

    HttpResponse resp;
    std::size_t line_end = head.find("\r\n");
    std::string status_line = head.substr(0, line_end);
    std::size_t sp = status_line.find(' ');
    if (sp == std::string::npos)
        throw std::runtime_error("http client: bad status line");
    resp.status = std::atoi(status_line.c_str() +
                            static_cast<int>(sp) + 1);

    std::size_t pos =
        line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = toLower(line.substr(0, colon));
        std::size_t vstart = colon + 1;
        while (vstart < line.size() && line[vstart] == ' ')
            ++vstart;
        resp.headers[key] = line.substr(vstart);
    }

    auto te = resp.headers.find("transfer-encoding");
    if (te != resp.headers.end() &&
        te->second.find("chunked") != std::string::npos) {
        // De-chunk: <hex size>\r\n<data>\r\n ... 0\r\n\r\n
        std::size_t p = 0;
        while (p < payload.size()) {
            std::size_t eol = payload.find("\r\n", p);
            if (eol == std::string::npos)
                break;
            std::size_t size = static_cast<std::size_t>(
                std::strtoull(payload.c_str() + p, nullptr, 16));
            if (size == 0)
                break;
            std::size_t data_at = eol + 2;
            if (data_at + size > payload.size())
                break;
            resp.body.append(payload, data_at, size);
            p = data_at + size + 2;
        }
    } else {
        resp.body = std::move(payload);
    }
    return resp;
}

} // namespace serve
} // namespace ccnuma
