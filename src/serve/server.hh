/**
 * @file
 * The campaign service: an always-on daemon that accepts sweep specs
 * over an HTTP/JSON job API, executes them on the shared
 * CampaignRunner/ResultCache backend, and serves results that are
 * bit-identical to the one-shot bench path.
 *
 * Admission control is explicit and bounded: a campaign is either
 * accepted into a fixed-capacity queue or rejected right away with
 * 429 (queue full) / 503 (draining) — the service never queues
 * unboundedly. The queue discipline is a config ablation, echoing
 * the bus-service-discipline comparison of Nikolov & Lerato at the
 * job-scheduler layer:
 *   - FCFS: strict submission order;
 *   - priority classes: higher class first, FIFO within a class
 *     (a 0..2 "priority" field in the spec selects the class).
 *
 * Endpoints (all JSON):
 *   POST /campaigns           submit a spec -> 202 {id, points} |
 *                             400 invalid | 429 queue full
 *   GET  /campaigns/<id>      progress snapshot (per-point rows)
 *   GET  /campaigns/<id>/stream  chunked NDJSON: one line per
 *                             completed point, then a summary line
 *   GET  /campaigns/<id>/result  completed campaign in the
 *                             BENCH_*.json table schema (plus full
 *                             per-point results) | 409 running
 *   GET  /stats               cache + admission counters
 *   POST /shutdown            stop accepting, finish, exit run()
 */

#ifndef CCNUMA_SERVE_SERVER_HH
#define CCNUMA_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/campaign.hh"
#include "serve/http.hh"
#include "serve/result_cache.hh"
#include "serve/session.hh"

namespace ccnuma
{
namespace serve
{

/** Daemon configuration. */
struct ServiceConfig
{
    std::uint16_t port = 0;     ///< 0 = ephemeral (tests)
    unsigned execThreads = 2;   ///< concurrently running campaigns
    unsigned pointJobs = 1;     ///< parallelMap jobs per campaign
    unsigned maxQueued = 8;     ///< admission queue bound
    /** false = FCFS, true = priority classes (spec "priority"). */
    bool priorityDiscipline = false;
    std::uint64_t cacheBytes = 64ull << 20;
    std::string persistDir;     ///< "" = no disk persistence
    std::size_t maxPointsPerCampaign = 4096;
};

/** Admission counters (all monotonic). */
struct AdmissionStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejectedQueueFull = 0; ///< answered 429
    std::uint64_t rejectedInvalid = 0;   ///< answered 400
    std::uint64_t rejectedDraining = 0;  ///< answered 503
    std::uint64_t completed = 0;
};

/** The daemon. */
class CampaignService
{
  public:
    explicit CampaignService(const ServiceConfig &cfg);
    ~CampaignService();

    /** Bind, start the HTTP listener and executor threads. */
    void start();

    /** Stop the listener, drain executors, join everything. */
    void stop();

    /** Block until POST /shutdown or stop() (daemon main loop). */
    void waitForShutdown();

    std::uint16_t port() const;
    const ServiceConfig &config() const { return cfg_; }
    const ResultCache &cache() const { return cache_; }
    AdmissionStats admissionStats() const;

    /**
     * Test/bench hook: hold executors before their next campaign so
     * a burst of submissions can be staged deterministically (the
     * overload and discipline tests depend on this; nothing in the
     * serving path does).
     */
    void pauseExecutors();
    void resumeExecutors();

  private:
    enum class JobState
    {
        Queued,
        Running,
        Done,
        Failed,
    };

    /** One point's progress within a campaign. */
    struct PointProgress
    {
        bool done = false;
        bool fromCache = false;
        bool deduped = false;
        RunResult result;
    };

    /** One submitted campaign. */
    struct Job
    {
        std::string id;
        CampaignSpec spec;
        std::vector<SimPoint> points;
        JobState state = JobState::Queued;
        std::string error;
        std::vector<PointProgress> progress;
        /** Point indices in the order they finished (for streams). */
        std::vector<std::size_t> completionOrder;
        std::size_t completedPoints = 0;
        std::uint64_t submitSeq = 0; ///< FIFO tiebreak
        /** Order executors dequeued jobs (1-based; 0 = not yet) —
         *  what the discipline tests assert on. */
        std::uint64_t startSeq = 0;
    };

    void handle(const HttpRequest &req, HttpExchange &ex);
    void handleSubmit(const HttpRequest &req, HttpExchange &ex);
    void handleSnapshot(const std::string &id, HttpExchange &ex);
    void handleStream(const std::string &id, HttpExchange &ex);
    void handleResult(const std::string &id, HttpExchange &ex);
    void handleStats(HttpExchange &ex);

    void executorLoop();
    /** Pop per discipline; null when stopping. Holds the lock. */
    std::shared_ptr<Job> nextJobLocked();
    void runJob(const std::shared_ptr<Job> &job);

    std::string snapshotJson(const Job &job);
    std::string resultJson(const Job &job);
    std::string statsJson();

    ServiceConfig cfg_;
    ResultCache cache_;
    std::unique_ptr<HttpServer> http_;

    mutable std::mutex mutex_;
    std::condition_variable cvWork_;     ///< executors sleep here
    std::condition_variable cvProgress_; ///< streamers sleep here
    std::condition_variable cvShutdown_;
    std::map<std::string, std::shared_ptr<Job>> jobs_;
    std::deque<std::shared_ptr<Job>> queue_;
    AdmissionStats admission_;
    std::uint64_t nextId_ = 1;
    std::uint64_t nextSubmitSeq_ = 1;
    std::uint64_t nextStartSeq_ = 1;
    bool stopping_ = false;
    bool shutdownRequested_ = false;
    bool paused_ = false;

    std::vector<std::thread> executors_;
};

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_SERVER_HH
