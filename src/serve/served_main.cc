/**
 * @file
 * ccnuma-served: the campaign daemon. Binds an HTTP/JSON job API,
 * executes submitted sweep campaigns on the shared CampaignRunner
 * backend through the content-addressed result cache, and runs until
 * POST /shutdown (or SIGINT via normal process kill).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --port N        listen port (default 8920; 0 = ephemeral)\n"
        "  --exec N        concurrent campaigns (default 2)\n"
        "  --jobs N        parallel points per campaign (default 1)\n"
        "  --queue N       admission queue bound (default 8)\n"
        "  --discipline D  fcfs | priority (default fcfs)\n"
        "  --cache-mb N    result cache byte cap in MiB (default 64)\n"
        "  --persist DIR   write-through cache directory (default\n"
        "                  off; bench/out/cache by convention)\n"
        "  --max-points N  per-campaign point limit (default 4096)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ccnuma::serve;

    ServiceConfig cfg;
    cfg.port = 8920;

    auto num = [&](int &i) -> std::uint64_t {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            std::exit(2);
        }
        return std::strtoull(argv[++i], nullptr, 0);
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--port") {
            cfg.port = static_cast<std::uint16_t>(num(i));
        } else if (a == "--exec") {
            cfg.execThreads = static_cast<unsigned>(num(i));
        } else if (a == "--jobs") {
            cfg.pointJobs = static_cast<unsigned>(num(i));
        } else if (a == "--queue") {
            cfg.maxQueued = static_cast<unsigned>(num(i));
        } else if (a == "--discipline") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--discipline needs a value\n");
                return 2;
            }
            std::string d = argv[++i];
            if (d == "fcfs") {
                cfg.priorityDiscipline = false;
            } else if (d == "priority") {
                cfg.priorityDiscipline = true;
            } else {
                std::fprintf(stderr,
                             "--discipline must be fcfs or "
                             "priority, not '%s'\n",
                             d.c_str());
                return 2;
            }
        } else if (a == "--cache-mb") {
            cfg.cacheBytes = num(i) << 20;
        } else if (a == "--persist") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--persist needs a value\n");
                return 2;
            }
            cfg.persistDir = argv[++i];
        } else if (a == "--max-points") {
            cfg.maxPointsPerCampaign =
                static_cast<std::size_t>(num(i));
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    try {
        CampaignService service(cfg);
        service.start();
        std::printf("ccnuma-served listening on 127.0.0.1:%u "
                    "(%s, exec=%u jobs=%u queue=%u cache=%lluMiB%s%s)\n",
                    static_cast<unsigned>(service.port()),
                    cfg.priorityDiscipline ? "priority" : "fcfs",
                    cfg.execThreads, cfg.pointJobs, cfg.maxQueued,
                    static_cast<unsigned long long>(
                        cfg.cacheBytes >> 20),
                    cfg.persistDir.empty() ? "" : " persist=",
                    cfg.persistDir.c_str());
        std::fflush(stdout);
        service.waitForShutdown();
        std::printf("ccnuma-served: shut down cleanly\n");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ccnuma-served: %s\n", e.what());
        return 1;
    }
    return 0;
}
