#include "serve/json_in.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ccnuma
{
namespace serve
{

bool
JsonValue::asBool() const
{
    if (type != Type::Bool)
        throw JsonError("expected a boolean");
    return boolean;
}

double
JsonValue::asDouble() const
{
    if (type != Type::Number)
        throw JsonError("expected a number");
    return number;
}

std::uint64_t
JsonValue::asU64() const
{
    if (type != Type::Number)
        throw JsonError("expected a number");
    if (number < 0 || std::floor(number) != number)
        throw JsonError("expected a non-negative integer");
    return static_cast<std::uint64_t>(number);
}

const std::string &
JsonValue::asString() const
{
    if (type != Type::String)
        throw JsonError("expected a string");
    return str;
}

double
JsonValue::getDouble(std::string_view key, double def) const
{
    const JsonValue *v = get(key);
    return v ? v->asDouble() : def;
}

std::uint64_t
JsonValue::getU64(std::string_view key, std::uint64_t def) const
{
    const JsonValue *v = get(key);
    return v ? v->asU64() : def;
}

bool
JsonValue::getBool(std::string_view key, bool def) const
{
    const JsonValue *v = get(key);
    return v ? v->asBool() : def;
}

std::string
JsonValue::getString(std::string_view key,
                     const std::string &def) const
{
    const JsonValue *v = get(key);
    return v ? v->asString() : def;
}

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw JsonError("json: " + msg + " at offset " +
                        std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': {
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.str = string();
            return v;
          }
          case 't': {
            if (!consumeLiteral("true"))
                fail("bad literal");
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
          }
          case 'f': {
            if (!consumeLiteral("false"))
                fail("bad literal");
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default: return numberValue();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two 3-byte sequences; the
                // service never emits them, this is input hygiene).
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    numberValue()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number '" + tok + "'");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = d;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).document();
}

} // namespace serve
} // namespace ccnuma
