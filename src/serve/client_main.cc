/**
 * @file
 * ccnuma-campaign: command-line client for the campaign daemon.
 *
 *   ccnuma-campaign [--port N] submit <spec.json | ->
 *   ccnuma-campaign [--port N] wait <id>
 *   ccnuma-campaign [--port N] result <id> [-o out.json]
 *   ccnuma-campaign [--port N] run <spec.json | -> [-o out.json]
 *   ccnuma-campaign [--port N] stats
 *   ccnuma-campaign [--port N] shutdown
 *
 * "run" is submit + wait (polling snapshots) + result download in one
 * step — what the CI smoke test and the curl quick-start automate.
 * Exit status: 0 success, 1 service-side failure, 2 usage error.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "serve/http.hh"
#include "serve/json_in.hh"

namespace
{

using namespace ccnuma::serve;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ccnuma-campaign [--port N] <command> ...\n"
        "  submit <spec.json|->       POST a campaign, print the id\n"
        "  wait <id>                  poll until done or failed\n"
        "  result <id> [-o FILE]      download the finished results\n"
        "  run <spec|-> [-o FILE]     submit + wait + result\n"
        "  stats                      cache / admission counters\n"
        "  shutdown                   ask the daemon to exit\n");
}

std::string
readSpec(const std::string &path)
{
    if (path == "-") {
        std::ostringstream os;
        os << std::cin.rdbuf();
        return os.str();
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read spec '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Fail loudly on any non-2xx answer. */
HttpResponse
expectOk(const HttpResponse &resp, const char *what)
{
    if (resp.status < 200 || resp.status >= 300) {
        std::fprintf(stderr, "%s failed: HTTP %d\n%s\n", what,
                     resp.status, resp.body.c_str());
        std::exit(1);
    }
    return resp;
}

std::string
submit(std::uint16_t port, const std::string &spec_text)
{
    HttpResponse resp = expectOk(
        httpRequest(port, "POST", "/campaigns", spec_text),
        "submit");
    JsonValue doc = parseJson(resp.body);
    std::string id = doc.getString("id", "");
    std::printf("%s\n", resp.body.c_str());
    if (id.empty()) {
        std::fprintf(stderr, "submit reply had no id\n");
        std::exit(1);
    }
    return id;
}

int
wait(std::uint16_t port, const std::string &id, bool quiet)
{
    std::size_t last_done = static_cast<std::size_t>(-1);
    while (true) {
        HttpResponse resp = expectOk(
            httpRequest(port, "GET", "/campaigns/" + id), "poll");
        JsonValue doc = parseJson(resp.body);
        std::string status = doc.getString("status", "?");
        std::size_t done =
            static_cast<std::size_t>(doc.getU64("completed", 0));
        std::size_t total =
            static_cast<std::size_t>(doc.getU64("points", 0));
        if (!quiet && done != last_done) {
            std::fprintf(stderr, "%s: %s %zu/%zu\n", id.c_str(),
                         status.c_str(), done, total);
            last_done = done;
        }
        if (status == "done")
            return 0;
        if (status == "failed") {
            std::fprintf(stderr, "%s failed: %s\n", id.c_str(),
                         doc.getString("error", "?").c_str());
            return 1;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
}

int
result(std::uint16_t port, const std::string &id,
       const std::string &out_path)
{
    HttpResponse resp = expectOk(
        httpRequest(port, "GET", "/campaigns/" + id + "/result"),
        "result");
    if (out_path.empty()) {
        std::printf("%s\n", resp.body.c_str());
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         out_path.c_str());
            return 1;
        }
        out << resp.body << "\n";
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint16_t port = 8920;
    int i = 1;
    if (i + 1 < argc && std::strcmp(argv[i], "--port") == 0) {
        port = static_cast<std::uint16_t>(
            std::strtoul(argv[i + 1], nullptr, 0));
        i += 2;
    }
    if (i >= argc) {
        usage();
        return 2;
    }
    std::string cmd = argv[i++];

    auto outFlag = [&](std::string &out_path) {
        if (i + 1 < argc && std::strcmp(argv[i], "-o") == 0) {
            out_path = argv[i + 1];
            i += 2;
        }
    };

    try {
        if (cmd == "submit") {
            if (i >= argc) {
                usage();
                return 2;
            }
            submit(port, readSpec(argv[i]));
            return 0;
        }
        if (cmd == "wait") {
            if (i >= argc) {
                usage();
                return 2;
            }
            return wait(port, argv[i], false);
        }
        if (cmd == "result") {
            if (i >= argc) {
                usage();
                return 2;
            }
            std::string id = argv[i++];
            std::string out_path;
            outFlag(out_path);
            return result(port, id, out_path);
        }
        if (cmd == "run") {
            if (i >= argc) {
                usage();
                return 2;
            }
            std::string spec = readSpec(argv[i++]);
            std::string out_path;
            outFlag(out_path);
            std::string id = submit(port, spec);
            int rc = wait(port, id, false);
            if (rc != 0)
                return rc;
            return result(port, id, out_path);
        }
        if (cmd == "stats") {
            HttpResponse resp = expectOk(
                httpRequest(port, "GET", "/stats"), "stats");
            std::printf("%s\n", resp.body.c_str());
            return 0;
        }
        if (cmd == "shutdown") {
            HttpResponse resp = expectOk(
                httpRequest(port, "POST", "/shutdown"), "shutdown");
            std::printf("%s\n", resp.body.c_str());
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ccnuma-campaign: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
