/**
 * @file
 * Campaign sweep specifications: the job API's JSON request body.
 *
 * A campaign is a grid — applications x architectures x seeds — over
 * one shared (scale, procs, tweaks) base, expanded into the
 * fully-resolved SimPoints the CampaignRunner executes:
 *
 *   {
 *     "name":   "fig6-smoke",          // optional, for reports
 *     "apps":   ["FFT", "LU"],         // required, non-empty
 *     "archs":  ["HWC", "PPC"],        // default: all four
 *     "scale":  0.05,                  // default 0.5
 *     "procs":  16,                    // default 64
 *     "seeds":  [12345, 99],           // default [12345]
 *     "dataFactor": 1.0,               // optional (Figure 9 axis)
 *     "lineBytes": 128,                // optional tweak (Figure 7)
 *     "netLatencyTicks": 14,           // optional tweak (Figure 8)
 *     "shards": 1,                     // optional (result-invariant)
 *     "priority": 0                    // admission class, 0..2;
 *   }                                  //   higher is more urgent
 *
 * The LU/Cholesky 32-processor paper convention applies exactly as
 * in the benches (one execution path, one convention).
 */

#ifndef CCNUMA_SERVE_CAMPAIGN_HH
#define CCNUMA_SERVE_CAMPAIGN_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/json_in.hh"
#include "serve/session.hh"

namespace ccnuma
{
namespace serve
{

/** Thrown for an invalid spec; the server answers 400 with .what(). */
class CampaignError : public std::runtime_error
{
  public:
    explicit CampaignError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Parsed campaign request. */
struct CampaignSpec
{
    std::string name = "campaign";
    std::vector<std::string> apps;
    std::vector<Arch> archs;
    double scale = 0.5;
    unsigned procs = 64;
    std::vector<std::uint64_t> seeds;
    double dataFactor = 1.0;
    unsigned lineBytes = 0;      ///< 0 = leave the base config alone
    Tick netLatencyTicks = 0;    ///< 0 = leave the base config alone
    unsigned shards = 1;
    unsigned priority = 0;       ///< 0..2, higher served first

    /** apps x archs x seeds. */
    std::size_t
    numPoints() const
    {
        return apps.size() * archs.size() * seeds.size();
    }
};

/** Parse Arch from its table name ("HWC", "PPC", "2HWC", "2PPC"). */
Arch archFromName(const std::string &name);

/**
 * Parse and validate a spec document. Throws CampaignError on an
 * unknown app/arch, an empty grid, or a malformed field.
 */
CampaignSpec parseCampaignSpec(const JsonValue &doc);
CampaignSpec parseCampaignSpec(const std::string &json_text);

/**
 * Expand the grid in (app-major, arch, seed-minor) order into
 * fully-resolved points.
 */
std::vector<SimPoint> expandCampaign(const CampaignSpec &spec);

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_CAMPAIGN_HH
