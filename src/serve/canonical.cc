#include "serve/canonical.hh"

#include <cstdio>

namespace ccnuma
{
namespace serve
{

// ---------------------------------------------------------------------
// New-field tripwire. If any of these fire, a config struct gained or
// lost a field: extend the canonical rendering below AND the
// perturbation test in tests/serve/test_canonical.cc, then update the
// expected size. Layout is only asserted where it is deterministic
// (x86-64 libstdc++, the platform CI runs); other platforms still get
// correct behavior, just not the tripwire.
// ---------------------------------------------------------------------
#if defined(__x86_64__) && defined(__GLIBCXX__)
static_assert(sizeof(MachineConfig) == 744,
              "MachineConfig changed: update canonicalMachineConfig");
static_assert(sizeof(NodeParams) == 312,
              "NodeParams changed: update canonicalMachineConfig");
static_assert(sizeof(NetworkParams) == 24,
              "NetworkParams changed: update canonicalMachineConfig");
static_assert(sizeof(BusParams) == 64,
              "BusParams changed: update canonicalMachineConfig");
static_assert(sizeof(MemoryParams) == 32,
              "MemoryParams changed: update canonicalMachineConfig");
static_assert(sizeof(DirectoryParams) == 32,
              "DirectoryParams changed: update canonicalMachineConfig");
static_assert(sizeof(CcParams) == 96,
              "CcParams changed: update canonicalMachineConfig");
static_assert(sizeof(RetryPolicyParams) == 24,
              "RetryPolicyParams changed: update canonical form");
static_assert(sizeof(CacheUnitParams) == 64,
              "CacheUnitParams changed: update canonicalMachineConfig");
static_assert(sizeof(ProcessorParams) == 16,
              "ProcessorParams changed: update canonicalMachineConfig");
static_assert(sizeof(ReliableParams) == 48,
              "ReliableParams changed: update canonicalMachineConfig");
static_assert(sizeof(RecoveryConfig) == 40,
              "RecoveryConfig changed: update canonicalMachineConfig");
static_assert(sizeof(IntegrityConfig) == 16,
              "IntegrityConfig changed: update canonicalMachineConfig");
static_assert(sizeof(VerifyConfig) == 144,
              "VerifyConfig changed: update canonicalMachineConfig");
static_assert(sizeof(FaultConfig) == 128,
              "FaultConfig changed: update canonicalMachineConfig");
static_assert(sizeof(CrashFault) == 24,
              "CrashFault changed: update canonicalMachineConfig");
static_assert(sizeof(FlipFault) == 40,
              "FlipFault changed: update canonicalMachineConfig");
static_assert(sizeof(WorkloadParams) == 48,
              "WorkloadParams changed: update canonicalWorkload");
#endif

namespace
{

/** Append one `key=value\n` line. */
class Canon
{
  public:
    explicit Canon(std::string &out) : out_(out) {}

    void
    field(const char *key, std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        line(key, buf);
    }

    void
    field(const char *key, bool v)
    {
        line(key, v ? "1" : "0");
    }

    /**
     * Doubles render with %.17g: enough digits to round-trip any
     * IEEE-754 binary64, so distinct values never collapse to one
     * canonical text.
     */
    void
    field(const char *key, double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        line(key, buf);
    }

    void
    field(const char *key, const char *v)
    {
        line(key, v);
    }

  private:
    void
    line(const char *key, const char *val)
    {
        out_ += key;
        out_ += '=';
        out_ += val;
        out_ += '\n';
    }

    std::string &out_;
};

} // namespace

std::string
canonicalMachineConfig(const MachineConfig &cfg)
{
    std::string out;
    out.reserve(2048);
    Canon c(out);

    c.field("machine.numNodes", std::uint64_t(cfg.numNodes));
    c.field("machine.pageBytes", std::uint64_t(cfg.pageBytes));
    c.field("machine.placement",
            cfg.placement == PlacementPolicy::RoundRobin
                ? "round-robin"
                : "first-touch");
    c.field("machine.syncBase", std::uint64_t(cfg.syncBase));
    c.field("machine.syncHandoffTicks",
            std::uint64_t(cfg.syncHandoffTicks));
    c.field("machine.maxTicks", std::uint64_t(cfg.maxTicks));
    // cfg.shards, cfg.windowPolicy (conservative, adaptive, AND
    // speculative — the Time-Warp identity suite proves rollback
    // replay bit-identical), cfg.specHorizonWindows,
    // cfg.specCkptWindows, and cfg.obs are deliberately omitted: all
    // are proven result-invariant by the identity test suites (see
    // the header comment), so points may share cache entries across
    // them. Grant *timing* is not invariant, though: serial runs use
    // zero-delay sync wakes unless forceSyncDefer is set, while
    // sharded runs always defer — so the key carries the effective
    // deferral mode, letting a deferred serial oracle share entries
    // with every sharded point while undeferred serial stays its own.
    c.field("sync.deferredGrants",
            cfg.shards > 1 || cfg.forceSyncDefer);

    const NodeParams &n = cfg.node;
    c.field("node.procsPerNode", std::uint64_t(n.procsPerNode));

    const BusParams &b = n.bus;
    c.field("bus.arbLatency", std::uint64_t(b.arbLatency));
    c.field("bus.strobeSpacing", std::uint64_t(b.strobeSpacing));
    c.field("bus.snoopLatency", std::uint64_t(b.snoopLatency));
    c.field("bus.memDataLatency", std::uint64_t(b.memDataLatency));
    c.field("bus.c2cDataLatency", std::uint64_t(b.c2cDataLatency));
    c.field("bus.beatTicks", std::uint64_t(b.beatTicks));
    c.field("bus.busWidthBytes", std::uint64_t(b.busWidthBytes));
    c.field("bus.lineBytes", std::uint64_t(b.lineBytes));
    c.field("bus.maxOutstanding", std::uint64_t(b.maxOutstanding));

    const MemoryParams &m = n.mem;
    c.field("mem.numBanks", std::uint64_t(m.numBanks));
    c.field("mem.bankBusy", std::uint64_t(m.bankBusy));
    c.field("mem.accessLatency", std::uint64_t(m.accessLatency));
    c.field("mem.lineBytes", std::uint64_t(m.lineBytes));

    const DirectoryParams &d = n.dir;
    c.field("dir.dramLatency", std::uint64_t(d.dramLatency));
    c.field("dir.dramBusy", std::uint64_t(d.dramBusy));
    c.field("dir.cacheEntries", std::uint64_t(d.cacheEntries));
    c.field("dir.cacheAssoc", std::uint64_t(d.cacheAssoc));
    c.field("dir.lineBytes", std::uint64_t(d.lineBytes));
    c.field("dir.cacheEnabled", d.cacheEnabled);

    const CcParams &cc = n.cc;
    c.field("cc.engineType",
            cc.engineType == EngineType::HWC ? "hwc" : "pp");
    c.field("cc.numEngines", std::uint64_t(cc.numEngines));
    c.field("cc.dispatchLatency", std::uint64_t(cc.dispatchLatency));
    c.field("cc.niDelay", std::uint64_t(cc.niDelay));
    c.field("cc.ppTransferPoll", std::uint64_t(cc.ppTransferPoll));
    c.field("cc.livelockThreshold",
            std::uint64_t(cc.livelockThreshold));
    c.field("cc.directDataPath", cc.directDataPath);
    c.field("cc.priorityArbitration", cc.priorityArbitration);
    c.field("cc.dynamicSplit", cc.dynamicSplit);
    c.field("cc.retry.backoffBase",
            std::uint64_t(cc.retry.backoffBase));
    c.field("cc.retry.backoffMax", std::uint64_t(cc.retry.backoffMax));
    c.field("cc.retry.maxRetries", std::uint64_t(cc.retry.maxRetries));
    c.field("cc.recoveryEnabled", cc.recoveryEnabled);
    c.field("cc.repairTicks", std::uint64_t(cc.repairTicks));
    c.field("cc.timeoutRetries", std::uint64_t(cc.timeoutRetries));
    c.field("cc.probeRetries", std::uint64_t(cc.probeRetries));
    c.field("cc.probeFanout", std::uint64_t(cc.probeFanout));

    const CacheUnitParams &cu = n.cache;
    c.field("cache.l1Bytes", std::uint64_t(cu.l1Bytes));
    c.field("cache.l1Assoc", std::uint64_t(cu.l1Assoc));
    c.field("cache.l2Bytes", std::uint64_t(cu.l2Bytes));
    c.field("cache.l2Assoc", std::uint64_t(cu.l2Assoc));
    c.field("cache.lineBytes", std::uint64_t(cu.lineBytes));
    c.field("cache.l1HitLatency", std::uint64_t(cu.l1HitLatency));
    c.field("cache.l2HitLatency", std::uint64_t(cu.l2HitLatency));
    c.field("cache.fillRestart", std::uint64_t(cu.fillRestart));
    c.field("cache.missTimeoutTicks",
            std::uint64_t(cu.missTimeoutTicks));

    const ProcessorParams &pp = n.proc;
    c.field("proc.missDetect", std::uint64_t(pp.missDetect));
    c.field("proc.checkMonotonic", pp.checkMonotonic);

    const NetworkParams &net = cfg.net;
    c.field("net.flightLatency", std::uint64_t(net.flightLatency));
    c.field("net.portWidthBytes", std::uint64_t(net.portWidthBytes));
    c.field("net.portCycle", std::uint64_t(net.portCycle));

    const ReliableParams &r = cfg.reliable;
    c.field("reliable.enabled", r.enabled);
    c.field("reliable.retransmitTimeout",
            std::uint64_t(r.retransmitTimeout));
    c.field("reliable.retransmitTimeoutMax",
            std::uint64_t(r.retransmitTimeoutMax));
    c.field("reliable.maxRetransmits",
            std::uint64_t(r.maxRetransmits));
    c.field("reliable.ackDelay", std::uint64_t(r.ackDelay));
    c.field("reliable.reorderBufCap",
            std::uint64_t(r.reorderBufCap));
    c.field("reliable.crc", r.crc);

    const RecoveryConfig &rc = cfg.recovery;
    c.field("recovery.enabled", rc.enabled);
    c.field("recovery.repairTicks", std::uint64_t(rc.repairTicks));
    c.field("recovery.missTimeoutTicks",
            std::uint64_t(rc.missTimeoutTicks));
    c.field("recovery.timeoutRetries",
            std::uint64_t(rc.timeoutRetries));
    c.field("recovery.probeRetries",
            std::uint64_t(rc.probeRetries));
    c.field("recovery.probeFanout", std::uint64_t(rc.probeFanout));

    const IntegrityConfig &ic = cfg.integrity;
    c.field("integrity.enabled", ic.enabled);
    c.field("integrity.scrubIntervalTicks",
            std::uint64_t(ic.scrubIntervalTicks));

    const VerifyConfig &v = cfg.verify;
    c.field("verify.checker", v.checker);
    c.field("verify.watchdog", v.watchdog);
    c.field("verify.watchdogBudget",
            std::uint64_t(v.watchdogBudget));

    const FaultConfig &f = v.faults;
    c.field("faults.seed", std::uint64_t(f.seed));
    c.field("faults.delayJitterProb", f.delayJitterProb);
    c.field("faults.delayJitterMax",
            std::uint64_t(f.delayJitterMax));
    c.field("faults.engineStallProb", f.engineStallProb);
    c.field("faults.engineStallMax",
            std::uint64_t(f.engineStallMax));
    c.field("faults.reorderProb", f.reorderProb);
    c.field("faults.reorderDelayMax",
            std::uint64_t(f.reorderDelayMax));
    c.field("faults.duplicateProb", f.duplicateProb);
    c.field("faults.duplicateDelay",
            std::uint64_t(f.duplicateDelay));
    c.field("faults.dropEveryN", std::uint64_t(f.dropEveryN));
    c.field("faults.numCrashes", std::uint64_t(f.crashes.size()));
    for (std::size_t i = 0; i < f.crashes.size(); ++i) {
        const CrashFault &cf = f.crashes[i];
        std::string p = "faults.crash" + std::to_string(i) + ".";
        c.field((p + "node").c_str(), std::uint64_t(cf.node));
        c.field((p + "atTick").c_str(), std::uint64_t(cf.atTick));
        c.field((p + "loseDirectory").c_str(), cf.loseDirectory);
        c.field((p + "permanent").c_str(), cf.permanent);
    }
    c.field("faults.numFlips", std::uint64_t(f.flips.size()));
    for (std::size_t i = 0; i < f.flips.size(); ++i) {
        const FlipFault &ff = f.flips[i];
        std::string p = "faults.flip" + std::to_string(i) + ".";
        const char *dom = ff.domain == FlipDomain::Message
                              ? "message"
                              : ff.domain == FlipDomain::Directory
                                    ? "directory"
                                    : "cache";
        c.field((p + "domain").c_str(), dom);
        c.field((p + "node").c_str(), std::uint64_t(ff.node));
        c.field((p + "atTick").c_str(), std::uint64_t(ff.atTick));
        c.field((p + "bits").c_str(), std::uint64_t(ff.bits));
        c.field((p + "seed").c_str(), std::uint64_t(ff.seed));
        c.field((p + "preferClean").c_str(), ff.preferClean);
    }

    return out;
}

std::string
canonicalWorkload(const std::string &app, const WorkloadParams &wp)
{
    std::string out;
    out.reserve(256);
    Canon c(out);
    c.field("workload.app", app.c_str());
    c.field("workload.numThreads", std::uint64_t(wp.numThreads));
    c.field("workload.scale", wp.scale);
    c.field("workload.dataFactor", wp.dataFactor);
    c.field("workload.lineBytes", std::uint64_t(wp.lineBytes));
    c.field("workload.heapBase", std::uint64_t(wp.heapBase));
    c.field("workload.seed", std::uint64_t(wp.seed));
    return out;
}

PointKey
makePointKey(const MachineConfig &cfg, const std::string &app,
             const WorkloadParams &wp)
{
    PointKey k;
    k.canonical = canonicalWorkload(app, wp);
    k.canonical += canonicalMachineConfig(cfg);
    k.hash = hash64(k.canonical);
    return k;
}

} // namespace serve
} // namespace ccnuma
