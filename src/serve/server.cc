#include "serve/server.hh"

#include <algorithm>
#include <sstream>

#include "report/json.hh"
#include "serve/result_io.hh"
#include "sim/logging.hh"

namespace ccnuma
{
namespace serve
{

namespace
{

/** Recover the table arch name from a resolved config. */
const char *
archOfConfig(const MachineConfig &cfg)
{
    bool pp = cfg.node.cc.engineType == EngineType::PP;
    bool two = cfg.node.cc.numEngines >= 2;
    if (two)
        return pp ? "2PPC" : "2HWC";
    return pp ? "PPC" : "HWC";
}

const char *
stateName(int s)
{
    switch (s) {
      case 0: return "queued";
      case 1: return "running";
      case 2: return "done";
      case 3: return "failed";
    }
    return "?";
}

std::string
errorBody(const std::string &msg)
{
    std::ostringstream os;
    report::JsonWriter j(os);
    j.beginObject();
    j.key("error").value(msg);
    j.endObject();
    return os.str();
}

} // namespace

CampaignService::CampaignService(const ServiceConfig &cfg)
    : cfg_(cfg), cache_(cfg.cacheBytes, cfg.persistDir)
{
    http_ = std::make_unique<HttpServer>(
        cfg_.port, [this](const HttpRequest &req, HttpExchange &ex) {
            handle(req, ex);
        });
}

CampaignService::~CampaignService()
{
    stop();
}

std::uint16_t
CampaignService::port() const
{
    return http_->port();
}

void
CampaignService::start()
{
    http_->start();
    std::lock_guard<std::mutex> g(mutex_);
    if (!executors_.empty())
        return;
    unsigned n = std::max(1u, cfg_.execThreads);
    for (unsigned i = 0; i < n; ++i)
        executors_.emplace_back([this] { executorLoop(); });
}

void
CampaignService::stop()
{
    http_->stop();
    {
        std::lock_guard<std::mutex> g(mutex_);
        stopping_ = true;
        paused_ = false;
    }
    cvWork_.notify_all();
    cvShutdown_.notify_all();
    for (std::thread &t : executors_) {
        if (t.joinable())
            t.join();
    }
    executors_.clear();
}

void
CampaignService::waitForShutdown()
{
    {
        std::unique_lock<std::mutex> g(mutex_);
        cvShutdown_.wait(g, [this] {
            return shutdownRequested_ || stopping_;
        });
    }
    stop();
}

AdmissionStats
CampaignService::admissionStats() const
{
    std::lock_guard<std::mutex> g(mutex_);
    return admission_;
}

void
CampaignService::pauseExecutors()
{
    std::lock_guard<std::mutex> g(mutex_);
    paused_ = true;
}

void
CampaignService::resumeExecutors()
{
    {
        std::lock_guard<std::mutex> g(mutex_);
        paused_ = false;
    }
    cvWork_.notify_all();
}

// ---------------------------------------------------------------- //
// Executors
// ---------------------------------------------------------------- //

std::shared_ptr<CampaignService::Job>
CampaignService::nextJobLocked()
{
    if (queue_.empty())
        return nullptr;
    if (!cfg_.priorityDiscipline) {
        auto job = queue_.front();
        queue_.pop_front();
        return job;
    }
    // Priority classes: highest class first, FIFO (submitSeq)
    // within a class.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end();
         ++it) {
        if ((*it)->spec.priority > (*best)->spec.priority ||
            ((*it)->spec.priority == (*best)->spec.priority &&
             (*it)->submitSeq < (*best)->submitSeq))
            best = it;
    }
    auto job = *best;
    queue_.erase(best);
    return job;
}

void
CampaignService::executorLoop()
{
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> g(mutex_);
            cvWork_.wait(g, [this] {
                return stopping_ || (!queue_.empty() && !paused_);
            });
            if (stopping_)
                return;
            job = nextJobLocked();
            if (!job)
                continue;
            job->state = JobState::Running;
            job->startSeq = nextStartSeq_++;
        }
        runJob(job);
    }
}

void
CampaignService::runJob(const std::shared_ptr<Job> &job)
{
    CampaignRunner runner(cfg_.pointJobs, &cache_);
    try {
        runner.run(job->points, [&](std::size_t i,
                                    const PointOutcome &out) {
            std::lock_guard<std::mutex> g(mutex_);
            PointProgress &p = job->progress[i];
            p.done = true;
            p.fromCache = out.fromCache;
            p.deduped = out.deduped;
            p.result = out.result;
            job->completionOrder.push_back(i);
            ++job->completedPoints;
            cvProgress_.notify_all();
        });
        std::lock_guard<std::mutex> g(mutex_);
        job->state = JobState::Done;
        ++admission_.completed;
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> g(mutex_);
        job->state = JobState::Failed;
        job->error = e.what();
    }
    cvProgress_.notify_all();
}

// ---------------------------------------------------------------- //
// HTTP handlers
// ---------------------------------------------------------------- //

void
CampaignService::handle(const HttpRequest &req, HttpExchange &ex)
{
    const std::string &p = req.path;
    if (p == "/campaigns" && req.method == "POST") {
        handleSubmit(req, ex);
        return;
    }
    if (p == "/stats" && req.method == "GET") {
        handleStats(ex);
        return;
    }
    if (p == "/healthz" && req.method == "GET") {
        ex.respond(200, "{\"ok\":true}");
        return;
    }
    if (p == "/shutdown" && req.method == "POST") {
        {
            std::lock_guard<std::mutex> g(mutex_);
            shutdownRequested_ = true;
        }
        cvShutdown_.notify_all();
        ex.respond(200, "{\"shutdown\":true}");
        return;
    }
    if (p.rfind("/campaigns/", 0) == 0) {
        std::string rest = p.substr(std::string("/campaigns/").size());
        std::size_t slash = rest.find('/');
        std::string id = rest.substr(0, slash);
        std::string sub = slash == std::string::npos
                              ? ""
                              : rest.substr(slash + 1);
        if (req.method != "GET") {
            ex.respond(405, errorBody("use GET"));
            return;
        }
        if (sub.empty()) {
            handleSnapshot(id, ex);
        } else if (sub == "stream") {
            handleStream(id, ex);
        } else if (sub == "result") {
            handleResult(id, ex);
        } else {
            ex.respond(404, errorBody("unknown endpoint"));
        }
        return;
    }
    ex.respond(404, errorBody("unknown endpoint"));
}

void
CampaignService::handleSubmit(const HttpRequest &req,
                              HttpExchange &ex)
{
    CampaignSpec spec;
    std::vector<SimPoint> points;
    try {
        spec = parseCampaignSpec(req.body);
        points = expandCampaign(spec);
        if (points.size() > cfg_.maxPointsPerCampaign)
            throw CampaignError(
                "campaign expands to " +
                std::to_string(points.size()) +
                " points; the limit is " +
                std::to_string(cfg_.maxPointsPerCampaign));
    } catch (const CampaignError &e) {
        {
            std::lock_guard<std::mutex> g(mutex_);
            ++admission_.rejectedInvalid;
        }
        ex.respond(400, errorBody(e.what()));
        return;
    }

    std::shared_ptr<Job> job;
    std::size_t queue_depth = 0;
    {
        std::lock_guard<std::mutex> g(mutex_);
        if (stopping_ || shutdownRequested_) {
            ++admission_.rejectedDraining;
            ex.respond(503, errorBody("service is draining"));
            return;
        }
        if (queue_.size() >= cfg_.maxQueued) {
            // Bounded admission: a counted rejection, never an
            // unbounded queue.
            ++admission_.rejectedQueueFull;
            ex.respond(429, errorBody(
                "admission queue is full (" +
                std::to_string(queue_.size()) + " campaigns)"));
            return;
        }
        job = std::make_shared<Job>();
        job->id = "c" + std::to_string(nextId_++);
        job->spec = std::move(spec);
        job->points = std::move(points);
        job->progress.resize(job->points.size());
        job->submitSeq = nextSubmitSeq_++;
        jobs_.emplace(job->id, job);
        queue_.push_back(job);
        queue_depth = queue_.size();
        ++admission_.accepted;
    }
    cvWork_.notify_one();

    std::ostringstream os;
    report::JsonWriter j(os);
    j.beginObject();
    j.key("id").value(job->id);
    j.key("name").value(job->spec.name);
    j.key("points")
        .value(static_cast<std::uint64_t>(job->points.size()));
    j.key("status").value("queued");
    j.key("queueDepth")
        .value(static_cast<std::uint64_t>(queue_depth));
    j.key("priority")
        .value(static_cast<std::uint64_t>(job->spec.priority));
    j.endObject();
    ex.respond(202, os.str());
}

std::string
CampaignService::snapshotJson(const Job &job)
{
    std::ostringstream os;
    report::JsonWriter j(os);
    j.beginObject();
    j.key("id").value(job.id);
    j.key("name").value(job.spec.name);
    j.key("status").value(stateName(static_cast<int>(job.state)));
    if (!job.error.empty())
        j.key("error").value(job.error);
    j.key("points")
        .value(static_cast<std::uint64_t>(job.points.size()));
    j.key("completed")
        .value(static_cast<std::uint64_t>(job.completedPoints));
    if (job.startSeq != 0)
        j.key("startSeq").value(job.startSeq);
    j.key("rows").beginArray();
    for (std::size_t i = 0; i < job.points.size(); ++i) {
        const SimPoint &pt = job.points[i];
        const PointProgress &p = job.progress[i];
        j.beginObject();
        j.key("index").value(static_cast<std::uint64_t>(i));
        j.key("app").value(pt.app);
        j.key("arch").value(archOfConfig(pt.cfg));
        j.key("seed")
            .value(static_cast<std::uint64_t>(pt.wp.seed));
        j.key("done").value(p.done);
        if (p.done) {
            j.key("cached").value(p.fromCache);
            j.key("deduped").value(p.deduped);
            j.key("workload").value(p.result.workload);
            j.key("execTicks")
                .value(static_cast<std::uint64_t>(
                    p.result.execTicks));
            j.key("instructions")
                .value(static_cast<std::uint64_t>(
                    p.result.instructions));
        }
        j.endObject();
    }
    j.endArray();
    j.endObject();
    return os.str();
}

void
CampaignService::handleSnapshot(const std::string &id,
                                HttpExchange &ex)
{
    std::string body;
    {
        std::lock_guard<std::mutex> g(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            ex.respond(404, errorBody("no campaign '" + id + "'"));
            return;
        }
        body = snapshotJson(*it->second);
    }
    ex.respond(200, body);
}

void
CampaignService::handleStream(const std::string &id,
                              HttpExchange &ex)
{
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> g(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            ex.respond(404, errorBody("no campaign '" + id + "'"));
            return;
        }
        job = it->second;
    }

    ex.beginChunked(200);
    std::size_t streamed = 0;
    while (true) {
        // Collect newly completed points under the lock, write them
        // to the socket outside it.
        std::vector<std::string> lines;
        bool finished = false;
        {
            std::unique_lock<std::mutex> g(mutex_);
            cvProgress_.wait(g, [&] {
                return stopping_ ||
                       job->completionOrder.size() > streamed ||
                       job->state == JobState::Done ||
                       job->state == JobState::Failed;
            });
            while (streamed < job->completionOrder.size()) {
                std::size_t i = job->completionOrder[streamed++];
                const SimPoint &pt = job->points[i];
                const PointProgress &p = job->progress[i];
                std::ostringstream os;
                report::JsonWriter j(os);
                j.beginObject();
                j.key("point").value(
                    static_cast<std::uint64_t>(i));
                j.key("app").value(pt.app);
                j.key("arch").value(archOfConfig(pt.cfg));
                j.key("seed").value(
                    static_cast<std::uint64_t>(pt.wp.seed));
                j.key("cached").value(p.fromCache);
                j.key("deduped").value(p.deduped);
                j.key("execTicks")
                    .value(static_cast<std::uint64_t>(
                        p.result.execTicks));
                j.endObject();
                os << "\n";
                lines.push_back(os.str());
            }
            if (stopping_ ||
                ((job->state == JobState::Done ||
                  job->state == JobState::Failed) &&
                 streamed >= job->completionOrder.size())) {
                finished = true;
                std::ostringstream os;
                report::JsonWriter j(os);
                j.beginObject();
                j.key("status").value(
                    stateName(static_cast<int>(job->state)));
                if (!job->error.empty())
                    j.key("error").value(job->error);
                j.key("completed")
                    .value(static_cast<std::uint64_t>(
                        job->completedPoints));
                j.endObject();
                os << "\n";
                lines.push_back(os.str());
            }
        }
        for (const std::string &l : lines)
            ex.writeChunk(l);
        if (finished)
            break;
    }
    ex.endChunked();
}

std::string
CampaignService::resultJson(const Job &job)
{
    std::size_t cached = 0, deduped = 0, simulated = 0;
    for (const PointProgress &p : job.progress) {
        if (p.fromCache)
            ++cached;
        else if (p.deduped)
            ++deduped;
        else
            ++simulated;
    }
    CacheStats cs = cache_.stats();

    std::ostringstream os;
    report::JsonWriter j(os);
    j.beginObject();
    // Exactly the JsonReport envelope the one-shot benches write, so
    // every consumer of BENCH_*.json (tools/bench_gate.py first)
    // reads a daemon download identically.
    j.key("bench").value(job.spec.name);
    j.key("scale").value(job.spec.scale);
    j.key("procs")
        .value(static_cast<std::uint64_t>(job.spec.procs));
    j.key("tables").beginArray();

    j.beginObject();
    j.key("title").value("campaign points");
    const char *cols[] = {"workload", "arch",   "seed",
                          "execTicks", "instructions", "cached",
                          "deduped"};
    j.key("columns").beginArray();
    for (const char *c : cols)
        j.value(c);
    j.endArray();
    j.key("rows").beginArray();
    for (std::size_t i = 0; i < job.points.size(); ++i) {
        const SimPoint &pt = job.points[i];
        const PointProgress &p = job.progress[i];
        j.beginObject();
        j.key("workload").value(p.result.workload);
        j.key("arch").value(archOfConfig(pt.cfg));
        j.key("seed").value(std::to_string(pt.wp.seed));
        j.key("execTicks")
            .value(std::to_string(p.result.execTicks));
        j.key("instructions")
            .value(std::to_string(p.result.instructions));
        j.key("cached").value(p.fromCache ? "yes" : "no");
        j.key("deduped").value(p.deduped ? "yes" : "no");
        j.endObject();
    }
    j.endArray();
    j.endObject();

    j.beginObject();
    j.key("title").value("campaign summary");
    j.key("columns").beginArray();
    j.value("metric").value("value");
    j.endArray();
    j.key("rows").beginArray();
    auto metric = [&](const char *name, const std::string &v) {
        j.beginObject();
        j.key("metric").value(name);
        j.key("value").value(v);
        j.endObject();
    };
    char buf[32];
    metric("points", std::to_string(job.points.size()));
    metric("points cached", std::to_string(cached));
    metric("points deduped", std::to_string(deduped));
    metric("points simulated", std::to_string(simulated));
    std::snprintf(buf, sizeof(buf), "%.4f", cs.hitRate());
    metric("cache hit rate", buf);
    std::snprintf(buf, sizeof(buf), "%.4f", cs.dedupFactor());
    metric("dedup factor", buf);
    j.endArray();
    j.endObject();

    j.endArray();

    // Full-fidelity per-point results (everything RunResult holds),
    // in point order — the bit-identity payload.
    j.key("results").beginArray();
    for (const PointProgress &p : job.progress)
        writeRunResult(j, p.result);
    j.endArray();
    j.endObject();
    return os.str();
}

void
CampaignService::handleResult(const std::string &id,
                              HttpExchange &ex)
{
    std::string body;
    {
        std::lock_guard<std::mutex> g(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            ex.respond(404, errorBody("no campaign '" + id + "'"));
            return;
        }
        const Job &job = *it->second;
        if (job.state == JobState::Failed) {
            ex.respond(500, errorBody("campaign failed: " +
                                      job.error));
            return;
        }
        if (job.state != JobState::Done) {
            ex.respond(409, errorBody(
                "campaign is " +
                std::string(stateName(
                    static_cast<int>(job.state))) +
                "; results are available once it is done"));
            return;
        }
        body = resultJson(job);
    }
    ex.respond(200, body);
}

std::string
CampaignService::statsJson()
{
    CacheStats cs = cache_.stats();
    AdmissionStats as;
    std::size_t depth = 0, jobs = 0;
    {
        std::lock_guard<std::mutex> g(mutex_);
        as = admission_;
        depth = queue_.size();
        jobs = jobs_.size();
    }

    std::ostringstream os;
    report::JsonWriter j(os);
    j.beginObject();
    j.key("cache").beginObject();
    j.key("hits").value(cs.hits);
    j.key("diskHits").value(cs.diskHits);
    j.key("misses").value(cs.misses);
    j.key("dedupWaits").value(cs.dedupWaits);
    j.key("evictions").value(cs.evictions);
    j.key("collisions").value(cs.collisions);
    j.key("insertions").value(cs.insertions);
    j.key("bytes").value(cs.bytes);
    j.key("entries").value(cs.entries);
    j.key("hitRate").valueFull(cs.hitRate());
    j.key("dedupFactor").valueFull(cs.dedupFactor());
    j.endObject();
    j.key("admission").beginObject();
    j.key("accepted").value(as.accepted);
    j.key("rejectedQueueFull").value(as.rejectedQueueFull);
    j.key("rejectedInvalid").value(as.rejectedInvalid);
    j.key("rejectedDraining").value(as.rejectedDraining);
    j.key("completed").value(as.completed);
    j.endObject();
    j.key("queueDepth").value(static_cast<std::uint64_t>(depth));
    j.key("campaigns").value(static_cast<std::uint64_t>(jobs));
    j.key("discipline")
        .value(cfg_.priorityDiscipline ? "priority" : "fcfs");
    j.endObject();
    return os.str();
}

void
CampaignService::handleStats(HttpExchange &ex)
{
    ex.respond(200, statsJson());
}

} // namespace serve
} // namespace ccnuma
