#include "serve/session.hh"

#include <algorithm>
#include <numeric>

#include "sim/parallel.hh"
#include "workload/replay.hh"

namespace ccnuma
{
namespace serve
{

unsigned
procsForApp(const std::string &app, unsigned default_procs)
{
    if (app == "LU" || app == "Cholesky")
        return std::min(32u, default_procs);
    return default_procs;
}

SimPoint
makeSimPoint(const std::string &app, Arch arch, unsigned procs,
             double scale, double data_factor,
             const std::function<void(MachineConfig &)> &tweak,
             unsigned shards, std::uint64_t seed)
{
    SimPoint pt;
    pt.app = app;

    MachineConfig &cfg = pt.cfg;
    cfg = MachineConfig::base();
    unsigned ppn = cfg.node.procsPerNode;
    cfg.withProcsPerNode(ppn, procs);
    cfg.withArch(arch);
    if (tweak)
        tweak(cfg);
    if (shards > 1 && cfg.shards <= 1) {
        // Shard counts must divide the node count; fold the request
        // down to the nearest divisor rather than rejecting the run.
        cfg.shards = std::gcd(shards, cfg.numNodes);
    }

    pt.wp.numThreads = procs;
    pt.wp.scale = scale;
    pt.wp.dataFactor = data_factor;
    pt.wp.lineBytes = cfg.node.cache.lineBytes;
    pt.wp.seed = seed;
    return pt;
}

RunResult
SimSession::run(const SimPoint &pt) const
{
    auto w = makeWorkload(pt.app, pt.wp);
    // Trace-replay fast path: a sweep revisiting this workload
    // identity (kernel + every WorkloadParams field, rendered by the
    // same canonical text the result cache keys on) replays the
    // captured reference stream allocation-free instead of running
    // the data-computing coroutines again. Machine parameters are
    // deliberately absent from the key — they shape timing, never
    // the op sequence. CCNUMA_REPLAY=0 restores always-generate.
    if (ReplayCache *rc = globalReplayCache()) {
        auto buf = rc->acquire(canonicalWorkload(pt.app, pt.wp),
                               [&] {
                                   return makeWorkload(pt.app,
                                                       pt.wp);
                               });
        ReplayWorkload rw(std::move(w), std::move(buf));
        Machine m(pt.cfg);
        return m.run(rw);
    }
    Machine m(pt.cfg);
    return m.run(*w);
}

std::vector<PointOutcome>
CampaignRunner::run(
    const std::vector<SimPoint> &points,
    const std::function<void(std::size_t, const PointOutcome &)>
        &progress) const
{
    SimSession session;
    auto run_one = [&](const SimPoint &pt) {
        PointOutcome out;
        if (cache_) {
            ResultCache::Outcome o =
                cache_->fetch(pt.key(), [&] {
                    return session.run(pt);
                });
            out.result = std::move(o.result);
            out.fromCache = o.fromCache();
            out.deduped = o.deduped();
        } else {
            out.result = session.run(pt);
        }
        return out;
    };

    std::vector<PointOutcome> results(points.size());
    parallelForIndex(jobs_, points.size(), [&](std::size_t i) {
        results[i] = run_one(points[i]);
        if (progress)
            progress(i, results[i]);
    });
    return results;
}

} // namespace serve
} // namespace ccnuma
