/**
 * @file
 * Minimal JSON reader for the campaign service. The simulator's
 * report layer only ever emits JSON (report/json.hh); the service
 * also has to *accept* it — sweep specs over the job API and cached
 * results off disk — so this adds the missing direction: a small
 * recursive-descent parser into a plain DOM value. No dependencies,
 * no streaming, strict-enough: numbers, strings with the standard
 * escapes, bool/null, arrays, objects (insertion order preserved).
 */

#ifndef CCNUMA_SERVE_JSON_IN_HH
#define CCNUMA_SERVE_JSON_IN_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ccnuma
{
namespace serve
{

/** Thrown on malformed JSON input (message includes the offset). */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Object members in input order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; null if absent or not an object. */
    const JsonValue *
    get(std::string_view key) const
    {
        if (type != Type::Object)
            return nullptr;
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    /** Typed accessors; throw JsonError on a type mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;

    /** Member with a default when absent (throws on wrong type). */
    double getDouble(std::string_view key, double def) const;
    std::uint64_t getU64(std::string_view key,
                         std::uint64_t def) const;
    bool getBool(std::string_view key, bool def) const;
    std::string getString(std::string_view key,
                          const std::string &def) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). Throws JsonError on malformed input.
 */
JsonValue parseJson(std::string_view text);

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_JSON_IN_HH
