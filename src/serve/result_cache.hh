/**
 * @file
 * Content-addressed result cache with single-flight deduplication.
 *
 * The campaign service keys every simulation point by the stable
 * 64-bit hash of its canonical form (serve/canonical.hh) and serves
 * repeats from this cache instead of re-simulating. Three layers:
 *
 *  - a byte-capped in-memory LRU of completed results (the canonical
 *    text is stored alongside each entry, so a hash collision is
 *    detected and bypasses the cache rather than merging points);
 *  - single-flight dedup of IN-FLIGHT points: when N concurrent
 *    campaigns ask for the same key while the first simulation is
 *    still running, the N-1 late arrivals block on its completion
 *    and share the one result — duplicate points are simulated
 *    exactly once machine-wide;
 *  - optional disk persistence (one <hash>.json per entry under a
 *    caller-chosen directory, bench/out/cache/ by convention):
 *    a memory miss consults disk before simulating, and every fill
 *    is written through, so a restarted daemon keeps its history.
 *
 * Every outcome is counted (hits, misses, dedup waits, disk hits,
 * evictions, collisions) — cache behavior is never silent.
 */

#ifndef CCNUMA_SERVE_RESULT_CACHE_HH
#define CCNUMA_SERVE_RESULT_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/canonical.hh"
#include "system/machine.hh"

namespace ccnuma
{
namespace serve
{

/** Monotonic counters describing every lookup outcome. */
struct CacheStats
{
    std::uint64_t hits = 0;        ///< served from memory
    std::uint64_t diskHits = 0;    ///< served from the persist dir
    std::uint64_t misses = 0;      ///< simulated (compute ran)
    std::uint64_t dedupWaits = 0;  ///< waited on an in-flight twin
    std::uint64_t evictions = 0;   ///< LRU entries dropped at the cap
    std::uint64_t collisions = 0;  ///< hash matched, canonical didn't
    std::uint64_t insertions = 0;  ///< entries filled
    std::uint64_t bytes = 0;       ///< current resident payload bytes
    std::uint64_t entries = 0;     ///< current resident entry count

    /** served-without-simulating / lookups (0 when no lookups). */
    double
    hitRate() const
    {
        std::uint64_t served = hits + diskHits + dedupWaits;
        std::uint64_t total = served + misses;
        return total ? static_cast<double>(served) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /**
     * Requested points per simulated point; > 1 means the cache
     * deduplicated work (the load bench's figure of merit).
     */
    double
    dedupFactor() const
    {
        std::uint64_t total = hits + diskHits + dedupWaits + misses;
        return misses ? static_cast<double>(total) /
                            static_cast<double>(misses)
                      : (total ? static_cast<double>(total) : 1.0);
    }
};

/** A byte-capped, single-flight, optionally persistent result cache. */
class ResultCache
{
  public:
    /**
     * @param byte_cap  resident-payload ceiling; 0 disables the
     *                  memory LRU (single-flight dedup of concurrent
     *                  identical fetches still applies).
     * @param persist_dir disk write-through directory; "" disables
     *                  persistence. Created on first use.
     */
    explicit ResultCache(std::uint64_t byte_cap,
                         std::string persist_dir = "");

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** How a fetch was satisfied. */
    enum class Source
    {
        Computed,  ///< simulated here and now
        Memory,    ///< in-memory LRU hit
        Disk,      ///< persisted entry loaded
        Deduped,   ///< shared an in-flight twin's simulation
    };

    struct Outcome
    {
        RunResult result;
        Source source = Source::Computed;

        bool
        fromCache() const
        {
            return source == Source::Memory || source == Source::Disk;
        }
        bool deduped() const { return source == Source::Deduped; }
    };

    /**
     * Return @p key's result, computing it with @p compute on a true
     * miss. Concurrent fetches of the same key run @p compute once:
     * late arrivals block until the first finishes and share its
     * result. @p compute may throw; the exception propagates to the
     * computing caller and waiters retry the fetch themselves.
     */
    Outcome fetch(const PointKey &key,
                  const std::function<RunResult()> &compute);

    /** Probe without computing. @return true and fill @p out on hit. */
    bool lookup(const PointKey &key, RunResult &out);

    CacheStats stats() const;

    std::uint64_t byteCap() const { return byteCap_; }
    const std::string &persistDir() const { return persistDir_; }

  private:
    struct Entry
    {
        std::string canonical;
        std::string json;  ///< serialized result (the byte charge)
        RunResult result;
        std::list<std::uint64_t>::iterator lruPos;
    };

    /** One in-flight computation waiters rendezvous on. */
    struct Flight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        RunResult result;
    };

    /** Charge for one entry: canonical + serialized payload. */
    static std::uint64_t
    entryBytes(const Entry &e)
    {
        return e.canonical.size() + e.json.size() + 64;
    }

    /** Locked helpers. */
    bool lookupLocked(const PointKey &key, RunResult &out);
    void insertLocked(const PointKey &key, const RunResult &r);
    void evictLocked();

    /** Disk persistence (no cache lock held while doing I/O). */
    std::string pathFor(std::uint64_t hash) const;
    bool loadFromDisk(const PointKey &key, RunResult &out);
    void storeToDisk(const PointKey &key, const RunResult &r);

    std::uint64_t byteCap_;
    std::string persistDir_;

    mutable std::mutex mutex_;
    std::map<std::uint64_t, Entry> entries_;
    /** LRU order, most recent at the back; values are hashes. */
    std::list<std::uint64_t> lru_;
    std::map<std::uint64_t, std::shared_ptr<Flight>> inFlight_;
    CacheStats stats_;
};

} // namespace serve
} // namespace ccnuma

#endif // CCNUMA_SERVE_RESULT_CACHE_HH
