/**
 * @file
 * The coherence controller: the paper's primary subject.
 *
 * One controller per SMP node synthesizes CC-NUMA shared memory:
 * it defers bus transactions that need remote action, exchanges
 * protocol messages with peer controllers, keeps the full-map
 * directory for local lines, and executes the protocol handlers of
 * Table 4 on one or two protocol engines.
 *
 * Architecture variants (the paper's HWC / PPC / 2HWC / 2PPC):
 *  - engine type: custom hardware FSM vs. commodity protocol
 *    processor (per-sub-operation costs from the OccupancyModel);
 *  - engine count: one engine, or two engines split so that protocol
 *    requests for local addresses go to the LPE and requests for
 *    remote addresses to the RPE (only the LPE touches the
 *    directory), following the S3.mp-style policy the paper uses.
 *
 * Shared structure (common to all variants, as in the paper):
 *  - duplicate directories (bus-side 2-bit copy answers snoops at bus
 *    rate; controller-side full-map copy in DRAM behind an 8K-entry
 *    write-through directory cache);
 *  - a protocol dispatch controller with three input queues
 *    (network responses > network requests > bus requests) and a
 *    livelock exception that promotes a bus request after four
 *    network-side requests have bypassed it;
 *  - a direct data path between bus interface and network interface
 *    that forwards writebacks of dirty remote data to the home node
 *    without dispatching a protocol handler.
 */

#ifndef CCNUMA_CC_COHERENCE_CONTROLLER_HH
#define CCNUMA_CC_COHERENCE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bus/bus.hh"
#include "directory/directory.hh"
#include "mem/address_map.hh"
#include "net/network.hh"
#include "net/reliable.hh"
#include "protocol/handlers.hh"
#include "protocol/messages.hh"
#include "protocol/occupancy.hh"
#include "protocol/retry.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"

namespace ccnuma
{

namespace obs
{
class Tracer;
} // namespace obs

/** Functional view of the node's caches, provided by the node. */
class LocalCacheProbe
{
  public:
    virtual ~LocalCacheProbe() = default;

    /** @return true if any local cache holds a valid copy. */
    virtual bool lineCachedLocally(Addr line_addr) const = 0;

    /** @return true if any local cache holds a Modified copy. */
    virtual bool lineModifiedLocally(Addr line_addr) const = 0;
};

/** Routes protocol messages between controllers (the machine). */
class MsgRouter
{
  public:
    virtual ~MsgRouter() = default;

    /** Deliver @p msg to its destination controller (now). */
    virtual void deliverMsg(const Msg &msg) = 0;

    /**
     * Called at the instant @p msg enters the network, before
     * Network::send. The router may stamp the message (the invariant
     * checker's per-pair sequence numbers live here).
     */
    virtual void onNetSend(Msg &msg) { (void)msg; }
};

/** Coherence controller configuration. */
struct CcParams
{
    EngineType engineType = EngineType::HWC;
    unsigned numEngines = 1;
    /**
     * Dispatch controller grant latency (ticks). The grant overlaps
     * with the engine's dispatch-register read, so the base systems
     * fold it into the DispatchHandler sub-operation.
     */
    Tick dispatchLatency = 0;
    /** Network interface processing per message, each direction. */
    Tick niDelay = 4;
    /**
     * Extra occupancy a protocol processor pays after a data
     * transfer: it confirms completion by polling off-chip
     * bus/network-interface registers (two reads), where the custom
     * FSM tracks completion in hardware for free.
     */
    Tick ppTransferPoll = 16;
    /** Bus requests promoted after this many net-request bypasses. */
    unsigned livelockThreshold = 4;
    /** Direct bus<->network data path for writebacks (ablation). */
    bool directDataPath = true;
    /** Dispatch queue arbitration: paper policy vs. plain FIFO. */
    bool priorityArbitration = true;
    /**
     * Two-engine work distribution: the paper's static local/remote
     * address split (false) vs. an idealized dynamic least-loaded
     * split (true) — the alternative the paper discusses in Section
     * 3.4 but rejects because it would require both engines to
     * access the directory.
     */
    bool dynamicSplit = false;
    /**
     * Retry policy for transient protocol conditions (owner nacks,
     * home nacks, injected engine stalls). The default reproduces
     * the paper's immediate, unbounded retry; a bounded policy adds
     * capped exponential backoff and escalates with a clean
     * FatalError diagnostic instead of livelocking (see
     * MachineConfig::withReliableTransport()).
     */
    RetryPolicyParams retry;

    /**
     * Fail-stop crash recovery (PR 6). Off by default; the machine
     * copies MachineConfig::recovery into these knobs when enabled.
     * When off, every recovery code path stays behind one branch.
     */
    bool recoveryEnabled = false;
    /** Ticks between a controller crash and its restart. */
    Tick repairTicks = 25'000;
    /** Timeout ladder: request resends before probing the home. */
    unsigned timeoutRetries = 2;
    /** Timeout ladder: probes before declaring the home dead. */
    unsigned probeRetries = 2;
    /** Directory-probe wave size during a rebuild (0 = all peers). */
    unsigned probeFanout = 0;
};

/**
 * The coherence controller. It is a bus agent (for the fetch and
 * invalidation transactions its handlers issue) and the bus's
 * coherence hook (the bus-side directory logic).
 */
class CoherenceController : public BusAgent, public BusCoherenceHook,
                            public Snapshottable
{
  public:
    CoherenceController(const std::string &name, EventQueue &eq,
                        NodeId node, const CcParams &params,
                        Bus &bus, Network &net, AddressMap &map,
                        DirectoryStore &dir);

    /** Wire the functional cache probe (set by the node). */
    void setProbe(LocalCacheProbe *probe) { probe_ = probe; }

    /** Wire the local memory controller (set by the node). */
    void setMemory(MemoryController *mem) { memory_ = mem; }

    /** Wire the message router (set by the machine). */
    void setRouter(MsgRouter *router) { router_ = router; }

    /**
     * Route outgoing messages through a reliable transport instead
     * of the raw network (set by the machine when recovery is
     * enabled; null restores the direct path).
     */
    void setTransport(ReliableTransport *t) { xport_ = t; }

    /**
     * Wire the observability tracer (set by the machine when tracing
     * is enabled; null keeps every hook to one branch).
     */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    /**
     * Install an engine-stall hook (fault injection). Consulted each
     * time an engine is about to dispatch; a nonzero return keeps the
     * engine busy for that many ticks before it re-attempts the
     * dispatch. Null (the default) costs one branch per dispatch.
     */
    void
    setStallHook(std::function<Tick()> hook)
    {
        stallHook_ = std::move(hook);
    }

    // --- fail-stop crash recovery (PR 6) ---

    /**
     * Controller lifecycle under fail-stop faults. The controller
     * card dies and restarts; the node's caches, bus, and memory
     * survive throughout.
     */
    enum class CcState : std::uint8_t
    {
        Normal,     ///< healthy
        Crashed,    ///< dark: no dispatch, no receive, bus parked
        Recovering, ///< restarted, rebuilding the directory
    };

    CcState ccState() const { return state_; }

    /**
     * Fail-stop crash: every protocol engine and all transient
     * handler state dies instantly. Queued and in-flight work for
     * which this controller is still responsible (local processor
     * requests, parked home-side requests) is remembered for replay
     * after restart; network-side items are dropped — the reliable
     * transport's receive fence guarantees their re-delivery. With
     * @p lose_directory the directory SRAM content is lost too and
     * the restart enters a rebuild epoch.
     */
    void crash(bool lose_directory);

    /**
     * Restart the controller repairTicks after the crash. If the
     * directory survived, service resumes immediately; otherwise the
     * home enters Recovering and broadcasts DirProbe to rebuild the
     * full-map directory from its peers' cached copies.
     */
    void restart();

    /**
     * Miss-timeout escalation ladder, driven by the requesting cache
     * unit's per-miss timer: resend the request (timeoutRetries
     * times), then probe the home for liveness (probeRetries times),
     * then declare the home dead via the degraded hook.
     */
    void missTimeout(Addr line_addr);

    /** Called when the timeout ladder exhausts against a home. */
    using DegradedHook = std::function<void(NodeId dead_home)>;
    void setDegradedHook(DegradedHook fn)
    {
        degradedHook_ = std::move(fn);
    }

    /** Cross-check hook run when a directory rebuild completes. */
    using RebuildCheckHook = std::function<void(NodeId home)>;
    void setRebuildCheckHook(RebuildCheckHook fn)
    {
        rebuildCheckHook_ = std::move(fn);
    }

    /**
     * Functional scan of the node's caches for DirProbe responses:
     * emit(line, modified, version) for every valid local copy of a
     * line homed at @p home. Installed by the node.
     */
    using CacheScanFn = std::function<void(
        NodeId home,
        const std::function<void(Addr, bool, std::uint64_t)> &emit)>;
    void setCacheScan(CacheScanFn fn) { cacheScan_ = std::move(fn); }

    /**
     * Degraded-mode migration support: hand the recovery manager
     * every writeback-buffer entry whose line is homed at @p home
     * (the dead node), erasing them and releasing any requests
     * stalled behind them. The manager posts the data to the
     * successor's memory.
     */
    std::vector<std::pair<Addr, std::uint64_t>>
    drainWbHomedAt(NodeId home);

    /**
     * Degraded-mode migration support: tear down every pending
     * requester-side transaction whose line is homed at @p home and
     * re-enqueue the underlying processor requests. Called after the
     * address map remap, so the replays route to the successor.
     */
    void replayPendingHomedAt(NodeId home);

    /**
     * Permanently retire a dead node's controller: drop all state
     * with no replay and no restart. The node's pages have been
     * migrated to a successor and its network pairs fenced dead.
     */
    void shutdownPermanently();

    // --- integrity: line poisoning (PR 7) ---

    /**
     * Mark a local line dead: an uncorrectable corruption consumed
     * its only up-to-date copy and no rebuild can resurrect the
     * data. The directory entry is reset to Home with no sharers
     * (keeping the invariant checker's directory-coverage view
     * consistent) and every future request for the line — local bus
     * requests and remote ReadReq/ReadExclReq alike — is bounced
     * with PoisonNack so the corruption can never propagate.
     */
    void markLineDead(Addr line_addr);

    /** True when @p line_addr has been poisoned at this home. */
    bool
    isLineDead(Addr line_addr) const
    {
        return !deadLines_.empty() &&
               deadLines_.count(line_addr) != 0;
    }

    /**
     * Requester-side poison fence, installed by the machine: called
     * when a PoisonNack arrives (or a local request hits a dead
     * local line) after the controller has torn down its own pending
     * state for the line. The machine kills the processors blocked
     * on the line and aborts their cache-unit misses.
     */
    using PoisonFence = std::function<void(Addr line)>;
    void setPoisonFence(PoisonFence fn)
    {
        poisonFence_ = std::move(fn);
    }

    /** Lines poisoned at this home. */
    std::uint64_t linesDead() const { return deadLines_.size(); }

    NodeId node() const { return node_; }
    const CcParams &params() const { return params_; }

    // --- BusCoherenceHook ---
    SupplyDecision busObserve(BusTxn &txn,
                              SnoopResult combined) override;
    void busCaptureWriteBack(BusTxn &txn, Tick data_ready) override;

    // --- BusAgent (the controller's own fetches) ---
    SnoopResult busSnoop(BusTxn &txn) override;
    void busDone(BusTxn &txn) override;

    /** Deliver an incoming network message (called by the router). */
    void netReceive(const Msg &msg);

    /** True when no transaction state is pending (quiescence). */
    bool idle() const;

    /**
     * True when this controller holds no transient state for
     * @p line_addr: no home/requester transaction, no writeback or
     * parked request, no queued or in-flight handler touching it.
     * Used by the invariant checker to decide when the full
     * directory-agreement check for a line is valid mid-run.
     */
    bool lineQuiet(Addr line_addr) const;

    // --- statistics (Table 6 / Table 7 inputs) ---

    /** Total requests dispatched to protocol engines. */
    std::uint64_t totalArrivals() const;
    /** Total engine-busy ticks, summed over engines. */
    Tick totalOccupancy() const;
    /** Engine-busy ticks of engine @p e. */
    Tick engineOccupancy(unsigned e) const;
    /** Requests handled by engine @p e. */
    std::uint64_t engineArrivals(unsigned e) const;
    /** Mean queuing delay (ticks) of engine @p e. */
    double engineQueueDelay(unsigned e) const;
    /** Mean queuing delay over all engines (ticks). */
    double meanQueueDelay() const;

    unsigned numEngines() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    /** Reset measurement state (start of measured phase). */
    void resetStats();

    /** Dump transaction state for deadlock diagnosis. */
    void dumpState(std::ostream &os) const;

    // --- speculative checkpointing: full value copy of all
    // transient protocol state (the directory store snapshots
    // separately via its own journals). In-flight handler
    // continuations are by-value lambda captures in the event
    // queue, so the queue snapshot carries them; the Exec contexts
    // parked in fetches_ are deep-copied here. ---
    std::shared_ptr<const void> specSave(std::size_t &bytes) override;
    void specRestore(const void *snap) override;

    stats::Group &statGroup() { return statGroup_; }

    stats::Scalar statBusRequests{"bus_requests",
        "bus-side requests dispatched"};
    stats::Scalar statNetRequests{"net_requests",
        "network-side requests dispatched"};
    stats::Scalar statNetResponses{"net_responses",
        "network-side responses dispatched"};
    stats::Scalar statMerged{"merged_requests",
        "bus requests merged into a pending remote transaction"};
    stats::Scalar statParked{"parked_requests",
        "requests parked behind a busy home line"};
    stats::Scalar statNacks{"owner_nacks",
        "forwards nacked by a stale owner"};
    stats::Scalar statLivelockPromotions{"livelock_promotions",
        "bus requests promoted by the livelock exception"};
    stats::Scalar statDirectWBs{"direct_writebacks",
        "writebacks forwarded on the direct data path"};
    stats::Scalar statWbStalls{"wb_stalls",
        "requests stalled behind an unacknowledged writeback"};
    stats::Scalar statNackRetries{"nack_retries",
        "nacked requests re-attempted under the retry policy"};
    stats::Scalar statRetryBackoffTicks{"retry_backoff_ticks",
        "total ticks spent waiting out retry backoff"};

    // --- fail-stop recovery statistics (PR 6) ---
    stats::Scalar statCrashes{"crashes",
        "fail-stop controller crashes injected"};
    stats::Scalar statCrashDropped{"crash_dropped_items",
        "queued network items dropped at a crash (re-delivered by "
        "the transport)"};
    stats::Scalar statRecoveryNacks{"recovery_nacks",
        "requests nacked while the home rebuilt its directory"};
    stats::Scalar statDirRebuilds{"dir_rebuilds",
        "directory reconstructions completed"};
    stats::Scalar statRebuildLines{"rebuild_lines",
        "directory entries rebuilt from peer probe responses"};
    stats::Scalar statMissTimeouts{"miss_timeouts",
        "miss timers expired at the requesting cache"};
    stats::Scalar statTimeoutResends{"timeout_resends",
        "requests resent by the timeout ladder"};
    stats::Scalar statRecoveryProbes{"recovery_probes",
        "home-liveness probes sent by the timeout ladder"};
    stats::Scalar statDegradedEntries{"degraded_entries",
        "timeout ladders exhausted into degraded mode"};
    stats::Scalar statStrayDrops{"stray_drops",
        "stale responses for state lost in a crash, dropped"};

    // --- integrity statistics (PR 7) ---
    stats::Scalar statPoisonNacks{"poison_nacks",
        "requests bounced off a poisoned (dead) line"};

    std::uint64_t poisonNacks() const
    {
        return static_cast<std::uint64_t>(statPoisonNacks.value());
    }

    std::uint64_t crashes() const
    {
        return static_cast<std::uint64_t>(statCrashes.value());
    }
    std::uint64_t dirRebuilds() const
    {
        return static_cast<std::uint64_t>(statDirRebuilds.value());
    }
    std::uint64_t rebuildLines() const
    {
        return static_cast<std::uint64_t>(statRebuildLines.value());
    }
    std::uint64_t recoveryNacks() const
    {
        return static_cast<std::uint64_t>(statRecoveryNacks.value());
    }
    std::uint64_t missTimeouts() const
    {
        return static_cast<std::uint64_t>(statMissTimeouts.value());
    }
    std::uint64_t timeoutResends() const
    {
        return static_cast<std::uint64_t>(statTimeoutResends.value());
    }
    std::uint64_t recoveryProbes() const
    {
        return static_cast<std::uint64_t>(statRecoveryProbes.value());
    }
    std::uint64_t degradedEntries() const
    {
        return static_cast<std::uint64_t>(statDegradedEntries.value());
    }
    std::uint64_t strayDrops() const
    {
        return static_cast<std::uint64_t>(statStrayDrops.value());
    }
    /** Longest restart-to-rebuild-complete latency seen (ticks). */
    Tick reconstructionTicksMax() const
    {
        return reconstructionTicksMax_;
    }

    std::uint64_t nackRetries() const
    {
        return static_cast<std::uint64_t>(statNackRetries.value());
    }
    Tick retryBackoffTicks() const
    {
        return static_cast<Tick>(statRetryBackoffTicks.value());
    }

  private:
    /** Dispatch queue identities, in descending priority. */
    enum Queue : unsigned
    {
        QNetResponse = 0,
        QNetRequest = 1,
        QBusRequest = 2,
        NumQueues = 3,
    };

    /** One unit of work for a protocol engine. */
    struct DispatchItem
    {
        bool isBus = false;
        Msg msg;                    ///< valid when !isBus
        std::uint64_t busTxnId = 0; ///< valid when isBus
        Addr lineAddr = 0;
        BusCmd busCmd = BusCmd::Read;
        Tick enqueueTick = 0;
        unsigned srcQueue = 0; ///< queue last enqueued on (tracing)
        bool counted = false; ///< already counted as an arrival
        /**
         * Replayed after a crash (or resent on a miss timeout): the
         * outgoing request carries Msg::recoveryResend so a home that
         * already granted this node ownership re-grants from memory
         * instead of nacking the apparent duplicate.
         */
        bool crashResend = false;
    };

    /** A protocol engine (FSM or protocol processor). */
    struct Engine
    {
        unsigned idx = 0;
        bool busy = false;
        Tick busyStart = 0;
        /** Line of the handler in flight (valid while busy). */
        Addr curLine = 0;
        bool curLineValid = false;
        std::deque<DispatchItem> queues[NumQueues];
        unsigned netBypass = 0; ///< net requests since a bus request
        unsigned stallStreak = 0; ///< consecutive injected stalls
        /** Handler in flight for the tracer (0xff = none). */
        std::uint8_t curHandler = 0xff;
        int curExtraTargets = 0;
        /**
         * Item in flight (valid while busy): a crash replays it from
         * scratch after the restart, since the handler's scheduled
         * continuations die with the epoch.
         */
        DispatchItem curItem;
        bool curItemValid = false;
        // measurement
        Tick occupancyTicks = 0;
        std::uint64_t arrivals = 0;
        double queueDelaySum = 0.0;
        std::uint64_t queueDelayCount = 0;
    };

    /** Active home-side transaction for a local line. */
    struct HomeTxn
    {
        NodeId requester = 0;
        bool excl = false;
        bool localRequest = false;
        std::uint64_t busTxnId = 0; ///< when localRequest
        unsigned acksExpected = 0;
        std::uint64_t dataVersion = 0;
        bool haveData = false;
        /** Original request retained for owner-nack retry. */
        DispatchItem original;
    };

    /** Requester-side pending remote transaction. */
    struct ReqPending
    {
        bool excl = false;
        std::vector<std::uint64_t> busTxns;
        std::deque<DispatchItem> conflicting;
    };

    /** Writeback buffer entry (data awaiting the home's ack). */
    struct WbEntry
    {
        std::uint64_t version = 0;
    };

    /** Context of a handler execution in flight. */
    struct Exec
    {
        unsigned engine = 0;
        HandlerId handler = HandlerId::BusReadRemote;
        Addr lineAddr = 0;
        int extraTargets = 0;
        CcBusOp busOp = CcBusOp::None;
        std::uint64_t version = 0;  ///< data version once known
        bool fetchFailed = false;   ///< bus fetch found no data
        bool fetchShared = false;   ///< a cache retained a copy
        bool fetchDirty = false;    ///< a Modified copy was demoted
        /** Protocol consequences, run at the respond point. */
        std::function<void(Exec &, Tick)> action;
    };

    // enqueue / dispatch machinery
    void enqueue(unsigned queue, DispatchItem item,
                 bool to_front = false);
    unsigned engineFor(Addr line_addr) const;
    void tryDispatch(unsigned engine_idx);
    bool pickItem(Engine &e, DispatchItem &out);
    void startItem(unsigned engine_idx, DispatchItem item);

    // handler execution
    void beginHandler(unsigned engine_idx, HandlerId h, Addr line,
                      int extra_targets, CcBusOp bus_op,
                      std::function<void(Exec &, Tick)> action);
    void respondPhase(std::unique_ptr<Exec> ex, Tick t);
    void finishHandler(unsigned engine_idx, Tick free_at);

    // protocol decision helpers
    void executeBusItem(unsigned engine_idx, DispatchItem &item);
    void executeNetItem(unsigned engine_idx, DispatchItem &item);
    void parkAtHome(unsigned engine_idx, DispatchItem &item);
    void closeHomeTxn(Addr line_addr, Tick t);
    /** Re-enqueue requests parked behind a now-clear home line. */
    void drainHomeWaiting(Addr line_addr, Tick t);
    void completeRequesterFill(Addr line_addr, std::uint64_t version,
                               Tick t);
    void sendMsg(MsgType type, Addr line_addr, NodeId dst,
                 NodeId requester, std::uint64_t version, bool retains,
                 Tick t, bool recovery_resend = false);
    /**
     * Record a nack-driven retry of @p line and return its backoff
     * delay; escalates with a FatalError diagnostic when the
     * bounded policy's budget is exhausted.
     */
    Tick retryDelay(Addr line, const char *what);
    bool lineAvailableLocally(Addr line_addr) const;
    /** Post incoming writeback data to the home memory. */
    void writeHomeMemory(Addr line_addr, std::uint64_t version,
                         Tick t);

    // crash-recovery helpers (PR 6)
    /** Issue the next DirProbe wave of the active rebuild. */
    void sendNextProbeWave(Tick t);
    /** All probes answered: cross-check, go Normal, replay. */
    void finishRebuild(Tick t);
    /** Re-enqueue everything parked across the outage. */
    void replayAfterRestart(Tick t);
    /** Answer a peer's DirProbe from local caches + wb buffer. */
    void answerDirProbe(const Msg &msg, Tick t);
    /** Apply one DirProbeResp to the rebuilding directory. */
    void applyProbeResp(const Msg &msg);
    /**
     * Advance the rebuild once the current wave is fully absorbed:
     * every Done received AND every counted response applied.
     */
    void maybeAdvanceRebuild(Tick t);
    /**
     * True when a response-type message refers to transient state
     * this controller no longer holds (lost in a crash): count and
     * drop it instead of asserting.
     */
    bool strayDrop(const char *what);

    std::string name_;
    EventQueue &eq_;
    NodeId node_;
    CcParams params_;
    Bus &bus_;
    Network &net_;
    AddressMap &map_;
    DirectoryStore &dir_;
    MemoryController *memory_ = nullptr;
    LocalCacheProbe *probe_ = nullptr;
    MsgRouter *router_ = nullptr;
    ReliableTransport *xport_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
    std::function<Tick()> stallHook_;
    /** Per-line nack retry bookkeeping (see CcParams::retry). */
    RetryTracker retries_;
    OccupancyModel model_;
    int busAgentId_ = -1;

    std::vector<Engine> engines_;
    std::unordered_map<Addr, HomeTxn> homeBusy_;
    /** Local-line bus requests deferred but not yet dispatched. */
    std::unordered_map<Addr, unsigned> deferredLocal_;
    std::unordered_map<Addr, std::deque<DispatchItem>> homeWaiting_;
    std::unordered_map<Addr, ReqPending> reqPending_;
    std::unordered_map<Addr, WbEntry> wbBuffer_;
    /**
     * Local requests stalled behind an unacknowledged writeback of
     * the same line: they may only be sent to the home after the
     * home has absorbed our writeback, preserving the protocol's
     * request-follows-writeback ordering.
     */
    std::unordered_map<Addr, std::deque<DispatchItem>> wbWaiting_;
    /** Bus fetches in flight, by bus transaction id. */
    std::unordered_map<std::uint64_t, std::unique_ptr<Exec>> fetches_;

    // --- crash-recovery state (PR 6) ---
    CcState state_ = CcState::Normal;
    /**
     * Bumped at each crash. Scheduled continuation lambdas capture
     * the epoch they were created in and no-op when it is stale, so
     * a handler's tail can never touch post-crash engine state.
     */
    std::uint64_t epoch_ = 0;
    /**
     * Work the controller still owes an answer for, collected at
     * crash time and parked across the outage; replayed once the
     * restart (and any directory rebuild) completes.
     */
    std::deque<DispatchItem> crashReplay_;
    /** Directory SRAM content died with the crash. */
    bool dirLost_ = false;
    /** WriteBack/SharingWB messages parked during a rebuild. */
    std::deque<Msg> rebuildParkedWb_;
    /** Peers not yet sent a DirProbe, during a rebuild. */
    std::deque<NodeId> probePendingPeers_;
    /** DirProbeDone responses still outstanding. */
    unsigned probeDonesOutstanding_ = 0;
    /**
     * Per-line DirProbeResp accounting across the rebuild: each
     * DirProbeDone carries how many responses its peer sent, and the
     * rebuild may only complete once every counted response has been
     * applied — on a two-engine controller the Done can overtake a
     * response still occupying the other engine.
     */
    std::uint64_t probeRespsExpected_ = 0;
    std::uint64_t probeRespsApplied_ = 0;
    /** Tick the controller restarted (reconstruction latency). */
    Tick restartTick_ = 0;
    Tick reconstructionTicksMax_ = 0;
    /** Per-line miss-timeout escalation ladder. */
    struct MissLadder
    {
        unsigned resends = 0;
        unsigned probes = 0;
    };
    std::unordered_map<Addr, MissLadder> missLadders_;
    DegradedHook degradedHook_;
    RebuildCheckHook rebuildCheckHook_;
    CacheScanFn cacheScan_;
    /** Poisoned local lines (PR 7); requests bounce forever. */
    std::unordered_set<Addr> deadLines_;
    PoisonFence poisonFence_;
    /** Permanently retired (degraded mode); never serves again. */
    bool deadForever_ = false;

    /**
     * Value snapshot of the controller (speculation). Every member
     * mirrors a transient-state field above; fetches holds deep
     * copies of the in-flight Exec contexts.
     */
    struct SpecSnap
    {
        RetryTracker retries;
        std::vector<Engine> engines;
        std::unordered_map<Addr, HomeTxn> homeBusy;
        std::unordered_map<Addr, unsigned> deferredLocal;
        std::unordered_map<Addr, std::deque<DispatchItem>> homeWaiting;
        std::unordered_map<Addr, ReqPending> reqPending;
        std::unordered_map<Addr, WbEntry> wbBuffer;
        std::unordered_map<Addr, std::deque<DispatchItem>> wbWaiting;
        std::unordered_map<std::uint64_t, Exec> fetches;
        CcState state;
        std::uint64_t epoch;
        std::deque<DispatchItem> crashReplay;
        bool dirLost;
        std::deque<Msg> rebuildParkedWb;
        std::deque<NodeId> probePendingPeers;
        unsigned probeDonesOutstanding;
        std::uint64_t probeRespsExpected;
        std::uint64_t probeRespsApplied;
        Tick restartTick;
        Tick reconstructionTicksMax;
        std::unordered_map<Addr, MissLadder> missLadders;
        std::unordered_set<Addr> deadLines;
        bool deadForever;
    };

    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_CC_COHERENCE_CONTROLLER_HH
