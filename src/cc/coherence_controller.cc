#include "cc/coherence_controller.hh"

#include "obs/tracer.hh"

#include <algorithm>
#include <unordered_set>

namespace ccnuma
{

CoherenceController::CoherenceController(const std::string &name,
                                         EventQueue &eq, NodeId node,
                                         const CcParams &params,
                                         Bus &bus, Network &net,
                                         AddressMap &map,
                                         DirectoryStore &dir)
    : name_(name), eq_(eq), node_(node), params_(params), bus_(bus),
      net_(net), map_(map), dir_(dir), retries_(params.retry),
      model_(params.engineType), statGroup_(name)
{
    if (params.numEngines != 1 && params.numEngines != 2 &&
        params.numEngines != 4) {
        fatal("cc %s: numEngines must be 1, 2 or 4", name.c_str());
    }
    engines_.resize(params.numEngines);
    for (unsigned i = 0; i < params.numEngines; ++i)
        engines_[i].idx = i;
    busAgentId_ = bus_.addAgent(this);
    bus_.setCoherenceHook(this);

    statGroup_.add(&statBusRequests);
    statGroup_.add(&statNetRequests);
    statGroup_.add(&statNetResponses);
    statGroup_.add(&statMerged);
    statGroup_.add(&statParked);
    statGroup_.add(&statNacks);
    statGroup_.add(&statLivelockPromotions);
    statGroup_.add(&statDirectWBs);
    statGroup_.add(&statWbStalls);
    statGroup_.add(&statNackRetries);
    statGroup_.add(&statRetryBackoffTicks);
    statGroup_.add(&statCrashes);
    statGroup_.add(&statCrashDropped);
    statGroup_.add(&statRecoveryNacks);
    statGroup_.add(&statDirRebuilds);
    statGroup_.add(&statRebuildLines);
    statGroup_.add(&statMissTimeouts);
    statGroup_.add(&statTimeoutResends);
    statGroup_.add(&statRecoveryProbes);
    statGroup_.add(&statDegradedEntries);
    statGroup_.add(&statStrayDrops);
    statGroup_.add(&statPoisonNacks);
}

// ---------------------------------------------------------------------
// Line poisoning (PR 7)
// ---------------------------------------------------------------------

void
CoherenceController::markLineDead(Addr line_addr)
{
    deadLines_.insert(line_addr);
    // Reset the directory view: no holder anywhere. The checker's
    // coverage invariant exempts dead lines explicitly; the Home
    // state keeps the bus-side directory logic self-consistent
    // (requests are intercepted before it is consulted anyway).
    DirEntry &e = dir_.entry(line_addr);
    e.state = DirState::Home;
    e.sharers = 0;
    ccnuma_trace(line_addr, "%8llu %s LINE DEAD %#llx",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 (unsigned long long)line_addr);
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::LineDead, node_,
                            line_addr, eq_.curTick());
    }
}

// ---------------------------------------------------------------------
// Bus-side logic (the bus-side directory / dispatch front end)
// ---------------------------------------------------------------------

void
CoherenceController::writeHomeMemory(Addr line_addr,
                                     std::uint64_t version, Tick t)
{
    if (!memory_)
        return;
    memory_->scheduleWrite(line_addr, t);
    memory_->setVersion(line_addr, version);
}

bool
CoherenceController::lineAvailableLocally(Addr line_addr) const
{
    if (wbBuffer_.count(line_addr))
        return true;
    return probe_ != nullptr && probe_->lineCachedLocally(line_addr);
}

SupplyDecision
CoherenceController::busObserve(BusTxn &txn, SnoopResult combined)
{
    const Addr line = txn.lineAddr;
    const bool local = map_.homeOf(line) == node_;

    if (txn.fromCC) {
        // One of our own fetch/invalidate operations.
        switch (txn.cmd) {
          case BusCmd::Read:
          case BusCmd::ReadExcl:
            if (combined == SnoopResult::DirtySupply ||
                combined == SnoopResult::SharedSupply) {
                // A local line read out of a Modified local cache
                // demotes the copy to Shared; memory must absorb the
                // dirty data in the same transfer, or later readers
                // would see the stale memory image.
                if (txn.cmd == BusCmd::Read && local &&
                    combined == SnoopResult::DirtySupply) {
                    return SupplyDecision::CacheReflect;
                }
                return SupplyDecision::Cache;
            }
            if (auto it = wbBuffer_.find(line); it != wbBuffer_.end()) {
                txn.dataVersion = it->second.version;
                return SupplyDecision::Cache;
            }
            if (local)
                return SupplyDecision::Memory;
            return SupplyDecision::NoData; // stale owner; nack
          case BusCmd::Inval:
            return SupplyDecision::NoData;
          case BusCmd::WriteBack:
            panic("cc %s: controller-issued writeback", name_.c_str());
        }
    }

    // Processor-issued transaction.
    if (state_ != CcState::Normal) {
        // The controller card is dark or rebuilding its directory.
        // Transactions the snooping bus completes within the node
        // (cache-to-cache supplies, writebacks into local memory)
        // proceed as usual — the bus-side data path survives a
        // controller crash. Anything that needs the controller's
        // dispatch logic or a trustworthy directory parks until the
        // restart replays it.
        switch (txn.cmd) {
          case BusCmd::Inval:
            return SupplyDecision::NoData;
          case BusCmd::WriteBack:
            if (local)
                return SupplyDecision::Memory;
            wbBuffer_[line] = WbEntry{txn.dataVersion};
            return SupplyDecision::NoData;
          case BusCmd::Read:
          case BusCmd::ReadExcl:
            if (combined == SnoopResult::DirtySupply) {
                if (local) {
                    return txn.cmd == BusCmd::Read
                               ? SupplyDecision::CacheReflect
                               : SupplyDecision::Cache;
                }
                if (txn.cmd == BusCmd::Read) {
                    // The demotion already happened in the snoop;
                    // the dirty data must travel home now. The
                    // direct data path needs no protocol engine.
                    Tick data_time =
                        eq_.curTick() + bus_.params().c2cDataLatency +
                        static_cast<Tick>(
                            bus_.params().lineBytes /
                            bus_.params().busWidthBytes) *
                            bus_.params().beatTicks;
                    wbBuffer_[line] = WbEntry{txn.dataVersion};
                    ++statDirectWBs;
                    sendMsg(MsgType::SharingWB, line,
                            map_.homeOf(line), node_, txn.dataVersion,
                            /*retains=*/true, data_time);
                }
                return SupplyDecision::Cache;
            }
            // Only a plain Read may complete off a Shared copy: an
            // upgrade needs the home to invalidate remote sharers
            // and record ownership, so it parks like any other
            // controller-dependent transaction.
            if (combined == SnoopResult::SharedSupply && !local &&
                txn.cmd == BusCmd::Read) {
                return SupplyDecision::Cache;
            }
            break;
        }
        DispatchItem item;
        item.isBus = true;
        item.busTxnId = txn.id;
        item.lineAddr = line;
        item.busCmd = txn.cmd;
        item.crashResend = true;
        crashReplay_.push_back(item);
        ++statParked;
        return SupplyDecision::Deferred;
    }
    const bool busy = homeBusy_.count(line) != 0 ||
                      deferredLocal_.count(line) != 0 ||
                      (homeWaiting_.count(line) &&
                       !homeWaiting_.at(line).empty());

    switch (txn.cmd) {
      case BusCmd::Read:
        if (local) {
            if (combined == SnoopResult::DirtySupply) {
                // Locally modified local line: cache-to-cache with
                // memory reflection on the M->S downgrade. This must
                // take precedence over parking — the snoop has
                // already demoted the owner, so the data must move
                // now. (A local Modified copy implies the directory
                // records no remote owner, so the supply is safe
                // even while another home transaction is active.)
                return SupplyDecision::CacheReflect;
            }
            if (busy) {
                // Serialize behind the in-progress home transaction.
                DispatchItem item;
                item.isBus = true;
                item.busTxnId = txn.id;
                item.lineAddr = line;
                item.busCmd = txn.cmd;
                homeWaiting_[line].push_back(item);
                ++statParked;
                return SupplyDecision::Deferred;
            }
            BusSideDirState bs = dir_.busSideState(line);
            if (bs == BusSideDirState::DirtyRemote ||
                isLineDead(line)) {
                // A poisoned line must never fill from the stale
                // memory image; the engine bounces it instead.
                DispatchItem item;
                item.isBus = true;
                item.busTxnId = txn.id;
                item.lineAddr = line;
                item.busCmd = txn.cmd;
                enqueue(QBusRequest, item);
                return SupplyDecision::Deferred;
            }
            // An Exclusive fill is only safe when no remote node
            // holds a copy; the bus-side directory answers this at
            // bus rate.
            txn.exclusiveOk = bs == BusSideDirState::NoRemote;
            return SupplyDecision::Memory;
        }
        // Remote line.
        if (combined == SnoopResult::DirtySupply) {
            // Within-node supply; the downgrading owner's data also
            // travels home as a sharing writeback on the direct data
            // path so the directory stays truthful.
            Tick data_time = eq_.curTick() +
                             bus_.params().c2cDataLatency +
                             static_cast<Tick>(
                                 bus_.params().lineBytes /
                                 bus_.params().busWidthBytes) *
                                 bus_.params().beatTicks;
            wbBuffer_[line] = WbEntry{txn.dataVersion};
            std::uint64_t version = txn.dataVersion;
            if (params_.directDataPath) {
                ++statDirectWBs;
                sendMsg(MsgType::SharingWB, line, map_.homeOf(line),
                        node_, version, /*retains=*/true, data_time);
            } else {
                DispatchItem item;
                item.isBus = true;
                item.busTxnId = 0;
                item.lineAddr = line;
                item.busCmd = BusCmd::WriteBack;
                item.msg.type = MsgType::SharingWB;
                item.msg.lineAddr = line;
                item.msg.dst = map_.homeOf(line);
                item.msg.version = version;
                item.msg.ownerRetains = true;
                eq_.scheduleFunction(
                    [this, item] { enqueue(QBusRequest, item); },
                    data_time);
            }
            return SupplyDecision::Cache;
        }
        if (combined == SnoopResult::SharedSupply)
            return SupplyDecision::Cache;
        break; // miss within the node: go remote

      case BusCmd::ReadExcl:
        if (local) {
            if (combined == SnoopResult::DirtySupply) {
                // Ownership migrates between local caches; the
                // demotion already happened in the snoop, so the
                // transfer must complete regardless of parking.
                return SupplyDecision::Cache;
            }
            if (busy) {
                DispatchItem item;
                item.isBus = true;
                item.busTxnId = txn.id;
                item.lineAddr = line;
                item.busCmd = txn.cmd;
                homeWaiting_[line].push_back(item);
                ++statParked;
                return SupplyDecision::Deferred;
            }
            BusSideDirState bs = dir_.busSideState(line);
            if (bs == BusSideDirState::NoRemote &&
                !isLineDead(line)) {
                return SupplyDecision::Memory;
            }
            DispatchItem item;
            item.isBus = true;
            item.busTxnId = txn.id;
            item.lineAddr = line;
            item.busCmd = txn.cmd;
            enqueue(QBusRequest, item);
            return SupplyDecision::Deferred;
        }
        // Remote line.
        if (combined == SnoopResult::DirtySupply) {
            // The node owns the line; ownership migrates within the
            // node without involving the home.
            return SupplyDecision::Cache;
        }
        break; // need exclusive permission from the home

      case BusCmd::Inval:
        return SupplyDecision::NoData;

      case BusCmd::WriteBack:
        if (local)
            return SupplyDecision::Memory;
        // Reserve the writeback buffer entry immediately so that
        // requests racing with the writeback stall behind it.
        wbBuffer_[line] = WbEntry{txn.dataVersion};
        return SupplyDecision::NoData; // captured; see below
    }

    // Remote-line miss: defer and hand to a protocol engine, merging
    // with an existing pending transaction for the same line when the
    // request kinds are compatible.
    DispatchItem item;
    item.isBus = true;
    item.busTxnId = txn.id;
    item.lineAddr = line;
    item.busCmd = txn.cmd;
    auto it = reqPending_.find(line);
    if (it != reqPending_.end()) {
        if (!it->second.excl && txn.cmd == BusCmd::Read) {
            it->second.busTxns.push_back(txn.id);
            ++statMerged;
        } else {
            it->second.conflicting.push_back(item);
        }
        return SupplyDecision::Deferred;
    }
    enqueue(QBusRequest, item);
    return SupplyDecision::Deferred;
}

void
CoherenceController::busCaptureWriteBack(BusTxn &txn, Tick data_ready)
{
    const Addr line = txn.lineAddr;
    const NodeId home = map_.homeOf(line);
    ccnuma_assert(home != node_);
    ccnuma_assert(wbBuffer_.count(line));
    if (params_.directDataPath) {
        ++statDirectWBs;
        sendMsg(MsgType::WriteBack, line, home, node_,
                txn.dataVersion, false, data_ready);
    } else {
        DispatchItem item;
        item.isBus = true;
        item.busTxnId = 0;
        item.lineAddr = line;
        item.busCmd = BusCmd::WriteBack;
        item.msg.type = MsgType::WriteBack;
        item.msg.lineAddr = line;
        item.msg.dst = home;
        item.msg.version = txn.dataVersion;
        eq_.scheduleFunction(
            [this, item] { enqueue(QBusRequest, item); }, data_ready);
    }
}

SnoopResult
CoherenceController::busSnoop(BusTxn &)
{
    // The controller holds no cache lines of its own; its writeback
    // buffer is consulted in busObserve for its own fetches only.
    return SnoopResult::None;
}

void
CoherenceController::busDone(BusTxn &txn)
{
    auto it = fetches_.find(txn.id);
    if (it == fetches_.end() && params_.recoveryEnabled) {
        // The handler that issued this fetch died in a crash; its
        // originating request was collected for replay and will
        // fetch again from scratch.
        ++statStrayDrops;
        return;
    }
    ccnuma_assert(it != fetches_.end());
    std::unique_ptr<Exec> ex = std::move(it->second);
    fetches_.erase(it);
    ex->fetchFailed = txn.supply == SupplyDecision::NoData;
    ex->fetchShared = txn.sharedSeen;
    ex->fetchDirty = txn.dirtySupplied;
    if (!ex->fetchFailed && txn.cmd != BusCmd::Inval)
        ex->version = txn.dataVersion;
    respondPhase(std::move(ex), eq_.curTick());
}

// ---------------------------------------------------------------------
// Network interface
// ---------------------------------------------------------------------

void
CoherenceController::sendMsg(MsgType type, Addr line_addr, NodeId dst,
                             NodeId requester, std::uint64_t version,
                             bool retains, Tick t,
                             bool recovery_resend)
{
    Msg m;
    m.type = type;
    m.lineAddr = line_addr;
    m.src = node_;
    m.dst = dst;
    m.requester = requester;
    m.version = version;
    m.ownerRetains = retains;
    m.recoveryResend = recovery_resend;
    ccnuma_trace(line_addr,
                 "%8llu %s send %s -> node%u req=%u ver=%llu ret=%d",
                 (unsigned long long)t, name_.c_str(),
                 msgTypeName(type), dst, requester,
                 (unsigned long long)version, (int)retains);
    unsigned bytes = msgBytes(type, bus_.params().lineBytes);
    Tick depart = t + params_.niDelay;
    eq_.scheduleFunction(
        [this, m, bytes]() mutable {
            ccnuma_assert(router_ != nullptr);
            // Stamp at the true network-entry instant so the
            // checker's sequence numbers reflect wire order.
            router_->onNetSend(m);
            if (xport_ != nullptr) {
                // Reliable mode: the transport owns delivery (it
                // retransmits lost frames, discards duplicates, and
                // re-establishes per-pair order before handing the
                // message back to the router).
                xport_->send(m, bytes);
                return;
            }
            Msg delivered = m;
            net_.send(node_, m.dst, bytes,
                      [this, delivered] {
                          router_->deliverMsg(delivered);
                      });
        },
        depart);
}

Tick
CoherenceController::retryDelay(Addr line, const char *what)
{
    RetryTracker::Attempt a = retries_.next(line);
    if (a.exhausted) {
        // Escalation path: the transient condition never cleared.
        // A clean diagnostic beats livelocking the machine.
        fatal("cc %s: %s for line %#llx abandoned after %u retries "
              "(policy: base %llu ticks, cap %llu ticks); the line "
              "never left its transient state", name_.c_str(), what,
              (unsigned long long)line, a.count - 1,
              (unsigned long long)params_.retry.backoffBase,
              (unsigned long long)params_.retry.backoffMax);
    }
    ++statNackRetries;
    statRetryBackoffTicks += static_cast<double>(a.delay);
    return a.delay;
}

void
CoherenceController::netReceive(const Msg &msg)
{
    if (state_ == CcState::Crashed || deadForever_) {
        // Dark. The reliable transport's receive fence normally
        // drops frames before they reach us (unacknowledged, so the
        // sender re-delivers after the restart); anything already in
        // flight past the fence is dropped here the same way.
        ++statCrashDropped;
        return;
    }

    // Home-liveness probes are answered at the network interface,
    // below the dispatch queues: a probe must tell the requester
    // whether the card is alive even when its engines are saturated
    // or busy rebuilding the directory.
    if (msg.type == MsgType::RecoveryProbe) {
        sendMsg(MsgType::RecoveryProbeAck, msg.lineAddr, msg.src,
                msg.requester, 0, false, eq_.curTick());
        return;
    }
    if (msg.type == MsgType::RecoveryProbeAck) {
        // The home is alive, just slow: give it a fresh ladder.
        missLadders_.erase(msg.lineAddr);
        return;
    }

    // Writeback acknowledgements retire writeback-buffer entries;
    // that is network-interface bookkeeping, not protocol handler
    // work — no engine dispatch, no occupancy.
    if (msg.type == MsgType::WriteBackAck) {
        const Addr line = msg.lineAddr;
        wbBuffer_.erase(line);
        auto wit = wbWaiting_.find(line);
        if (wit == wbWaiting_.end())
            return;
        std::deque<DispatchItem> waiting = std::move(wit->second);
        wbWaiting_.erase(wit);
        for (auto rit = waiting.rbegin(); rit != waiting.rend();
             ++rit) {
            enqueue(QBusRequest, *rit, /*to_front=*/true);
        }
        return;
    }

    DispatchItem item;
    item.msg = msg;
    item.lineAddr = msg.lineAddr;
    switch (msg.type) {
      case MsgType::ReadReq:
      case MsgType::ReadExclReq:
      case MsgType::FwdRead:
      case MsgType::FwdReadExcl:
      case MsgType::InvalReq:
      case MsgType::WriteBack:
      case MsgType::DirProbe:
        enqueue(QNetRequest, item);
        break;
      default:
        enqueue(QNetResponse, item);
        break;
    }
}

// ---------------------------------------------------------------------
// Dispatch machinery
// ---------------------------------------------------------------------

unsigned
CoherenceController::engineFor(Addr line_addr) const
{
    if (engines_.size() == 1)
        return 0;
    if (params_.dynamicSplit) {
        unsigned best = 0;
        std::size_t best_load = ~std::size_t(0);
        for (unsigned e = 0; e < engines_.size(); ++e) {
            std::size_t load = engines_[e].busy ? 1 : 0;
            for (unsigned q = 0; q < NumQueues; ++q)
                load += engines_[e].queues[q].size();
            if (load < best_load) {
                best_load = load;
                best = e;
            }
        }
        return best;
    }
    // The S3.mp-style split: local addresses to the LPE(s), remote
    // addresses to the RPE(s). With more than two engines (the
    // paper's "more protocol engines for different regions of
    // memory"), each half is further interleaved by line region.
    const unsigned half =
        static_cast<unsigned>(engines_.size()) / 2;
    const unsigned region = static_cast<unsigned>(
        (line_addr / bus_.params().lineBytes) % half);
    return map_.homeOf(line_addr) == node_ ? region : half + region;
}

void
CoherenceController::enqueue(unsigned queue, DispatchItem item,
                             bool to_front)
{
    if (state_ == CcState::Crashed || deadForever_) {
        // A pre-crash continuation (direct-path fallback, replay
        // drain) landed after the card went dark: park it with the
        // rest of the outage's work.
        crashReplay_.push_back(item);
        return;
    }
    item.enqueueTick = eq_.curTick();
    item.srcQueue = queue;
    unsigned e = engineFor(item.lineAddr);
    if (!item.counted) {
        item.counted = true;
        switch (queue) {
          case QBusRequest: ++statBusRequests; break;
          case QNetRequest: ++statNetRequests; break;
          case QNetResponse: ++statNetResponses; break;
        }
        ++engines_[e].arrivals;
    }
    // Track deferred local-line bus requests so that the bus-side
    // logic serializes newcomers behind them (see busObserve).
    if (item.isBus && item.busCmd != BusCmd::WriteBack &&
        map_.homeOf(item.lineAddr) == node_) {
        ++deferredLocal_[item.lineAddr];
    }
    if (to_front)
        engines_[e].queues[queue].push_front(item);
    else
        engines_[e].queues[queue].push_back(item);
    if (tracer_) {
        tracer_->queueDepth(node_, e,
                            engines_[e].queues[0].size() +
                                engines_[e].queues[1].size() +
                                engines_[e].queues[2].size());
    }
    if (!engines_[e].busy) {
        eq_.scheduleFunctionIn([this, e] { tryDispatch(e); }, 0);
    }
}

bool
CoherenceController::pickItem(Engine &e, DispatchItem &out)
{
    bool bus_waiting = !e.queues[QBusRequest].empty();
    if (params_.priorityArbitration) {
        if (bus_waiting && e.netBypass >= params_.livelockThreshold) {
            out = e.queues[QBusRequest].front();
            e.queues[QBusRequest].pop_front();
            e.netBypass = 0;
            ++statLivelockPromotions;
            return true;
        }
        for (unsigned q = 0; q < NumQueues; ++q) {
            if (e.queues[q].empty())
                continue;
            out = e.queues[q].front();
            e.queues[q].pop_front();
            if (q == QNetRequest && bus_waiting)
                ++e.netBypass;
            if (q == QBusRequest)
                e.netBypass = 0;
            return true;
        }
        return false;
    }
    // Plain FIFO across all three queues (ablation).
    int best = -1;
    Tick best_tick = maxTick;
    for (unsigned q = 0; q < NumQueues; ++q) {
        if (!e.queues[q].empty() &&
            e.queues[q].front().enqueueTick < best_tick) {
            best = static_cast<int>(q);
            best_tick = e.queues[q].front().enqueueTick;
        }
    }
    if (best < 0)
        return false;
    out = e.queues[best].front();
    e.queues[best].pop_front();
    return true;
}

void
CoherenceController::tryDispatch(unsigned engine_idx)
{
    Engine &e = engines_[engine_idx];
    if (e.busy || state_ == CcState::Crashed || deadForever_)
        return;
    if (stallHook_ &&
        (!e.queues[0].empty() || !e.queues[1].empty() ||
         !e.queues[2].empty())) {
        Tick stall = stallHook_();
        if (stall > 0) {
            // Injected engine stall: hold the engine busy without
            // dispatching, then re-attempt. Under a bounded retry
            // policy an endless stall streak escalates instead of
            // silently starving the queues.
            ++e.stallStreak;
            if (params_.retry.bounded() &&
                e.stallStreak > params_.retry.maxRetries) {
                fatal("cc %s: engine %u starved by %u consecutive "
                      "injected stalls (retry budget %u); queues "
                      "%zu/%zu/%zu", name_.c_str(), engine_idx,
                      e.stallStreak, params_.retry.maxRetries,
                      e.queues[0].size(), e.queues[1].size(),
                      e.queues[2].size());
            }
            e.busy = true;
            e.busyStart = eq_.curTick();
            eq_.scheduleFunctionIn(
                [this, engine_idx, ep = epoch_] {
                    if (ep != epoch_)
                        return; // engine died in a crash
                    Engine &en = engines_[engine_idx];
                    ccnuma_assert(en.busy);
                    en.busy = false;
                    en.occupancyTicks +=
                        eq_.curTick() - en.busyStart;
                    if (tracer_) {
                        tracer_->engineStall(
                            node_, engine_idx, en.busyStart,
                            eq_.curTick() - en.busyStart);
                    }
                    tryDispatch(engine_idx);
                },
                stall);
            return;
        }
    }
    e.stallStreak = 0;
    DispatchItem item;
    if (!pickItem(e, item))
        return;
    e.busy = true;
    e.busyStart = eq_.curTick();
    e.curHandler = 0xff;
    e.curExtraTargets = 0;
    e.queueDelaySum +=
        static_cast<double>(eq_.curTick() - item.enqueueTick);
    ++e.queueDelayCount;
    if (tracer_) {
        tracer_->queueWait(node_, engine_idx, item.srcQueue,
                           item.enqueueTick, eq_.curTick());
    }
    startItem(engine_idx, item);
}

void
CoherenceController::startItem(unsigned engine_idx, DispatchItem item)
{
    engines_[engine_idx].curLine = item.lineAddr;
    engines_[engine_idx].curLineValid = true;
    engines_[engine_idx].curItem = item;
    engines_[engine_idx].curItemValid = true;
    if (item.isBus && item.busCmd != BusCmd::WriteBack &&
        map_.homeOf(item.lineAddr) == node_) {
        auto it = deferredLocal_.find(item.lineAddr);
        ccnuma_assert(it != deferredLocal_.end());
        if (--it->second == 0)
            deferredLocal_.erase(it);
    }
    if (item.isBus)
        executeBusItem(engine_idx, item);
    else
        executeNetItem(engine_idx, item);
}

void
CoherenceController::parkAtHome(unsigned engine_idx,
                                DispatchItem &item)
{
    homeWaiting_[item.lineAddr].push_back(item);
    ++statParked;
    // The engine spent a dispatch-and-check on this; release it.
    finishHandler(engine_idx,
                  eq_.curTick() + params_.dispatchLatency +
                      model_.cost(SubOp::DispatchHandler) +
                      model_.cost(SubOp::ReadAssocRegs));
}

void
CoherenceController::closeHomeTxn(Addr line_addr, Tick t)
{
    homeBusy_.erase(line_addr);
    drainHomeWaiting(line_addr, t);
}

void
CoherenceController::drainHomeWaiting(Addr line_addr, Tick t)
{
    auto it = homeWaiting_.find(line_addr);
    if (it == homeWaiting_.end())
        return;
    std::deque<DispatchItem> waiting = std::move(it->second);
    homeWaiting_.erase(it);
    // Replay in arrival order; push_front in reverse order. (No
    // epoch guard: if a crash lands first, enqueue parks the items
    // with the rest of the outage's replay work.)
    eq_.scheduleFunction(
        [this, waiting] {
            for (auto rit = waiting.rbegin(); rit != waiting.rend();
                 ++rit) {
                enqueue(rit->isBus ? QBusRequest : QNetRequest, *rit,
                        /*to_front=*/true);
            }
        },
        t);
}

// ---------------------------------------------------------------------
// Handler execution
// ---------------------------------------------------------------------

void
CoherenceController::beginHandler(
    unsigned engine_idx, HandlerId h, Addr line, int extra_targets,
    CcBusOp bus_op, std::function<void(Exec &, Tick)> action)
{
    const HandlerSpec &spec = handlerSpec(h);
    engines_[engine_idx].curHandler = static_cast<std::uint8_t>(h);
    engines_[engine_idx].curExtraTargets = extra_targets;
    auto ex = std::make_unique<Exec>();
    ex->engine = engine_idx;
    ex->handler = h;
    ex->lineAddr = line;
    ex->extraTargets = extra_targets;
    ex->busOp = bus_op;
    ex->action = std::move(action);

    Tick now = eq_.curTick();
    Tick pre_done = now + params_.dispatchLatency +
                    spec.preCost(model_, extra_targets);
    if (spec.readsDirectory)
        pre_done = dir_.scheduleRead(line, pre_done, nullptr);

    if (ex->busOp != CcBusOp::None) {
        BusCmd bc = BusCmd::Read;
        switch (ex->busOp) {
          case CcBusOp::FetchRead: bc = BusCmd::Read; break;
          case CcBusOp::FetchReadExcl: bc = BusCmd::ReadExcl; break;
          case CcBusOp::InvalOnly: bc = BusCmd::Inval; break;
          case CcBusOp::None: break;
        }
        // The Exec rides by value so the pending callback stays
        // copyable (speculative checkpoints copy it; a rollback
        // replays it from the copy with no ownership to reconstruct).
        eq_.scheduleFunction(
            [this, ex2 = std::move(*ex), bc, line,
             ep = epoch_]() mutable {
                if (ep != epoch_) {
                    // The handler died in a crash before its bus
                    // operation issued; its request replays fresh.
                    return;
                }
                std::uint64_t id = bus_.request(bc, line, busAgentId_,
                                                0, /*from_cc=*/true);
                fetches_[id] =
                    std::make_unique<Exec>(std::move(ex2));
            },
            pre_done);
    } else {
        respondPhase(std::move(ex), pre_done);
    }
}

void
CoherenceController::respondPhase(std::unique_ptr<Exec> ex, Tick t)
{
    // By-value Exec capture: see beginHandler's bus-op path.
    eq_.scheduleFunction(
        [this, e = std::move(*ex), ep = epoch_]() mutable {
            if (ep != epoch_)
                return; // handler died in a crash
            Tick now = eq_.curTick();
            if (e.action)
                e.action(e, now);
            const HandlerSpec &spec = handlerSpec(e.handler);
            Tick post = spec.postCost(model_);
            if (spec.movesData) {
                // Remainder of the line transfer after the critical
                // beat keeps the engine occupied (but the response
                // is already on its way). A protocol processor
                // additionally polls off-chip registers to confirm
                // the transfer completed.
                const BusParams &bp = bus_.params();
                post += (bp.lineBytes / bp.busWidthBytes - 1) *
                        bp.beatTicks;
                if (params_.engineType == EngineType::PP)
                    post += params_.ppTransferPoll;
            }
            finishHandler(e.engine, now + post);
        },
        t);
}

void
CoherenceController::finishHandler(unsigned engine_idx, Tick free_at)
{
    eq_.scheduleFunction(
        [this, engine_idx, ep = epoch_] {
            if (ep != epoch_)
                return; // engine died in a crash
            Engine &e = engines_[engine_idx];
            ccnuma_assert(e.busy);
            e.busy = false;
            e.curLineValid = false;
            e.curItemValid = false;
            e.occupancyTicks += eq_.curTick() - e.busyStart;
            if (tracer_) {
                tracer_->engineSpan(node_, engine_idx, e.curHandler,
                                    e.curExtraTargets, e.busyStart,
                                    eq_.curTick());
                e.curHandler = 0xff;
                e.curExtraTargets = 0;
            }
            tryDispatch(engine_idx);
        },
        free_at);
}

// ---------------------------------------------------------------------
// Protocol decisions: local bus requests
// ---------------------------------------------------------------------

void
CoherenceController::executeBusItem(unsigned engine_idx,
                                    DispatchItem &item)
{
    const Addr line = item.lineAddr;

    // Slow-path (ablation) writeback / sharing-writeback send: the
    // engine spends a send handler where the direct data path would
    // have forwarded the data for free.
    if (item.busCmd == BusCmd::WriteBack) {
        Msg m = item.msg;
        beginHandler(engine_idx, HandlerId::BusReadRemote, line, 0,
                     CcBusOp::None,
                     [this, m](Exec &, Tick t) {
                         sendMsg(m.type, m.lineAddr, m.dst, node_,
                                 m.version, m.ownerRetains, t);
                     });
        return;
    }

    const NodeId home = map_.homeOf(line);
    const bool excl = item.busCmd == BusCmd::ReadExcl;

    if (home == node_) {
        if (homeBusy_.count(line)) {
            parkAtHome(engine_idx, item);
            return;
        }
        if (isLineDead(line)) {
            // Local processor request for a poisoned local line: the
            // machine's poison fence kills the blocked processors
            // and aborts their misses, then the deferred bus
            // transaction drains without installing anything (the
            // cache unit drops it via its poison-abort list).
            std::uint64_t bus_txn = item.busTxnId;
            ++statPoisonNacks;
            if (tracer_) {
                tracer_->faultEvent(obs::FaultKind::Poison, node_,
                                    line, eq_.curTick());
            }
            beginHandler(
                engine_idx, HandlerId::OwnerNackAtHome, line, 0,
                CcBusOp::None,
                [this, line, bus_txn](Exec &, Tick t) {
                    if (poisonFence_)
                        poisonFence_(line);
                    bus_.deferredRespond(bus_txn, 0, t);
                    drainHomeWaiting(line, t);
                });
            return;
        }
        DirEntry &d = dir_.entry(line);
        switch (d.state) {
          case DirState::DirtyRemote: {
            NodeId owner = d.owner;
            HomeTxn txn;
            txn.requester = node_;
            txn.excl = excl;
            txn.localRequest = true;
            txn.busTxnId = item.busTxnId;
            txn.original = item;
            homeBusy_[line] = txn;
            beginHandler(
                engine_idx, HandlerId::BusReadLocalDirtyRemote, line,
                0, CcBusOp::None,
                [this, line, owner, excl](Exec &, Tick t) {
                    sendMsg(excl ? MsgType::FwdReadExcl
                                 : MsgType::FwdRead,
                            line, owner, node_, 0, false, t);
                });
            return;
          }
          case DirState::SharedRemote:
            if (excl) {
                std::vector<NodeId> targets;
                for (NodeId n = 0; n < map_.numNodes(); ++n) {
                    if (d.isSharer(n))
                        targets.push_back(n);
                }
                ccnuma_assert(!targets.empty());
                HomeTxn txn;
                txn.requester = node_;
                txn.excl = true;
                txn.localRequest = true;
                txn.busTxnId = item.busTxnId;
                txn.acksExpected =
                    static_cast<unsigned>(targets.size());
                txn.original = item;
                homeBusy_[line] = txn;
                beginHandler(
                    engine_idx,
                    HandlerId::BusReadExclLocalCachedRemote, line,
                    static_cast<int>(targets.size()),
                    // Fetch-exclusive: local copies acquired since
                    // the original bus snoop must die with the rest.
                    CcBusOp::FetchReadExcl,
                    [this, line, targets](Exec &ex, Tick t) {
                        auto hb = homeBusy_.find(line);
                        ccnuma_assert(hb != homeBusy_.end());
                        hb->second.dataVersion = ex.version;
                        hb->second.haveData = true;
                        for (NodeId n : targets) {
                            sendMsg(MsgType::InvalReq, line, n,
                                    node_, 0, false, t);
                        }
                    });
                return;
            }
            // Local read of a shared-remote line should have been
            // supplied by memory; it reaches an engine only as a
            // replay after parking. Supply it from memory now.
            [[fallthrough]];
          case DirState::Home: {
            std::uint64_t bus_txn = item.busTxnId;
            // Hold a home transaction across the fetch: once this
            // engine dispatched, the deferredLocal_ guard is gone,
            // and without homeBusy_ a fresh local ReadExcl would
            // sail past busObserve and fill Modified straight from
            // memory while the fetch below carries the same line's
            // data to the parked requester — two Modified copies.
            HomeTxn txn;
            txn.requester = node_;
            txn.excl = excl;
            txn.localRequest = true;
            txn.busTxnId = item.busTxnId;
            txn.original = item;
            homeBusy_[line] = txn;
            beginHandler(
                engine_idx,
                excl ? HandlerId::ReadExclFromOwnerForHome
                     : HandlerId::ReadFromOwnerForHome,
                line, 0,
                excl ? CcBusOp::FetchReadExcl : CcBusOp::FetchRead,
                [this, line, bus_txn](Exec &ex, Tick t) {
                    ccnuma_assert(!ex.fetchFailed);
                    bus_.deferredRespond(bus_txn, ex.version, t);
                    closeHomeTxn(line, t);
                });
            return;
          }
        }
        return;
    }

    // A request for a line whose writeback we have not yet seen
    // acknowledged must wait: the home has to absorb the writeback
    // before it can serve us, and sending the request early would
    // present the home with a request from its recorded owner.
    if (wbBuffer_.count(line)) {
        wbWaiting_[line].push_back(item);
        ++statWbStalls;
        finishHandler(engine_idx,
                      eq_.curTick() + params_.dispatchLatency);
        return;
    }

    // Remote line: open (or join) a requester-side transaction.
    auto it = reqPending_.find(line);
    if (it != reqPending_.end()) {
        if (!it->second.excl && !excl) {
            it->second.busTxns.push_back(item.busTxnId);
            ++statMerged;
        } else {
            it->second.conflicting.push_back(item);
        }
        // Nothing further for the engine to do.
        finishHandler(engine_idx,
                      eq_.curTick() + params_.dispatchLatency);
        return;
    }

    // A request deferred earlier may find the line present in the
    // node by now (a concurrent transaction filled it, or the node
    // still owns it): serve it within the node instead of bothering
    // the home. Ownership migrates inside the node without a home
    // transaction, exactly as it would have on the snooping bus.
    const bool mod_local =
        probe_ != nullptr && probe_->lineModifiedLocally(line);
    const bool cached_local =
        mod_local ||
        (probe_ != nullptr && probe_->lineCachedLocally(line));
    if ((excl && mod_local) || (!excl && cached_local)) {
        std::uint64_t bus_txn = item.busTxnId;
        DispatchItem retry = item;
        beginHandler(
            engine_idx,
            excl ? HandlerId::ReadExclFromOwnerForHome
                 : HandlerId::ReadFromOwnerForHome,
            line, 0,
            excl ? CcBusOp::FetchReadExcl : CcBusOp::FetchRead,
            [this, line, home, bus_txn, excl, retry](Exec &ex,
                                                     Tick t) {
                if (ex.fetchFailed) {
                    // The copy evaporated between the probe and the
                    // fetch; try again from the top (the retry will
                    // stall on the writeback buffer or go remote).
                    eq_.scheduleFunction(
                        [this, retry] {
                            enqueue(QBusRequest, retry,
                                    /*to_front=*/true);
                        },
                        t);
                    return;
                }
                if (!excl && ex.fetchDirty) {
                    // The fetch demoted our Modified copy of a
                    // remote line; the dirty data travels home as a
                    // sharing writeback on the direct data path so
                    // the directory and memory stay truthful.
                    wbBuffer_[line] = WbEntry{ex.version};
                    ++statDirectWBs;
                    sendMsg(MsgType::SharingWB, line, home, node_,
                            ex.version, /*retains=*/true, t);
                }
                bus_.deferredRespond(bus_txn, ex.version, t);
            });
        return;
    }

    ReqPending rp;
    rp.excl = excl;
    rp.busTxns.push_back(item.busTxnId);
    reqPending_[line] = rp;
    const bool resend = item.crashResend;
    beginHandler(engine_idx,
                 excl ? HandlerId::BusReadExclRemote
                      : HandlerId::BusReadRemote,
                 line, 0, CcBusOp::None,
                 [this, line, home, excl, resend](Exec &, Tick t) {
                     sendMsg(excl ? MsgType::ReadExclReq
                                  : MsgType::ReadReq,
                             line, home, node_, 0, false, t,
                             /*recovery_resend=*/resend);
                 });
}

// ---------------------------------------------------------------------
// Protocol decisions: network messages
// ---------------------------------------------------------------------

void
CoherenceController::completeRequesterFill(Addr line_addr,
                                           std::uint64_t version,
                                           Tick t)
{
    auto it = reqPending_.find(line_addr);
    ccnuma_assert(it != reqPending_.end());
    // The fill succeeded; any home-nack retry streak on the line is
    // over.
    retries_.clear(line_addr);
    for (std::uint64_t txn_id : it->second.busTxns)
        bus_.deferredRespond(txn_id, version, t);
    std::deque<DispatchItem> conflicting =
        std::move(it->second.conflicting);
    reqPending_.erase(it);
    if (conflicting.empty())
        return;
    eq_.scheduleFunction(
        [this, conflicting] {
            for (auto rit = conflicting.rbegin();
                 rit != conflicting.rend(); ++rit) {
                enqueue(QBusRequest, *rit, /*to_front=*/true);
            }
        },
        t);
}

void
CoherenceController::executeNetItem(unsigned engine_idx,
                                    DispatchItem &item)
{
    const Msg msg = item.msg;
    const Addr line = msg.lineAddr;
    ccnuma_trace(line,
                 "%8llu %s dispatch %s from node%u req=%u ver=%llu",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 msgTypeName(msg.type), msg.src, msg.requester,
                 (unsigned long long)msg.version);

    switch (msg.type) {
      case MsgType::ReadReq:
      case MsgType::ReadExclReq: {
        // We are the home node.
        if (state_ == CcState::Recovering) {
            // The directory is being rebuilt; nothing it says about
            // this line can be trusted yet. Bounce the request with
            // a distinct nack so the requester's bounded-retry
            // policy re-presents it after the rebuild.
            const NodeId req = msg.requester;
            ++statRecoveryNacks;
            beginHandler(
                engine_idx, HandlerId::OwnerNackAtHome, line, 0,
                CcBusOp::None,
                [this, line, req](Exec &, Tick t) {
                    sendMsg(MsgType::RecoveryNack, line, req, req, 0,
                            false, t);
                });
            return;
        }
        if (isLineDead(line)) {
            // The line's only up-to-date copy was consumed by an
            // uncorrectable error: fence the requester off the dead
            // data with a terminal nack (no retry will ever help).
            const NodeId req = msg.requester;
            ++statPoisonNacks;
            if (tracer_) {
                tracer_->faultEvent(obs::FaultKind::Poison, node_,
                                    line, eq_.curTick());
            }
            beginHandler(
                engine_idx, HandlerId::OwnerNackAtHome, line, 0,
                CcBusOp::None,
                [this, line, req](Exec &, Tick t) {
                    sendMsg(MsgType::PoisonNack, line, req, req, 0,
                            false, t);
                });
            return;
        }
        if (homeBusy_.count(line)) {
            parkAtHome(engine_idx, item);
            return;
        }
        const bool excl = msg.type == MsgType::ReadExclReq;
        const NodeId req = msg.requester;
        DirEntry &d = dir_.entry(line);

        if (d.state == DirState::DirtyRemote && d.owner == req &&
            msg.recoveryResend) {
            // The recorded owner lost its grant (a crash killed its
            // in-flight fill, or the reply died with our own card)
            // and is asking again: re-grant from memory, which still
            // holds the last version the owner ever confirmed.
            HomeTxn txn;
            txn.requester = req;
            txn.excl = excl;
            txn.original = item;
            homeBusy_[line] = txn;
            beginHandler(
                engine_idx,
                excl ? HandlerId::RemoteReadExclToHomeUncached
                     : HandlerId::RemoteReadToHomeClean,
                line, 0,
                excl ? CcBusOp::FetchReadExcl : CcBusOp::FetchRead,
                [this, line, req, excl](Exec &ex, Tick t) {
                    ccnuma_assert(!ex.fetchFailed);
                    sendMsg(excl ? MsgType::DataExclReply
                                 : MsgType::DataReply,
                            line, req, req, ex.version, false, t);
                    DirEntry &e = dir_.entry(line);
                    if (excl) {
                        e.state = DirState::DirtyRemote;
                        e.owner = req;
                        e.sharers = 0;
                    } else {
                        e.state = DirState::SharedRemote;
                        e.sharers = 0;
                        e.addSharer(req);
                    }
                    dir_.scheduleWrite(line, t);
                    closeHomeTxn(line, t);
                });
            return;
        }

        if (d.state == DirState::DirtyRemote && d.owner != req) {
            NodeId owner = d.owner;
            HomeTxn txn;
            txn.requester = req;
            txn.excl = excl;
            txn.original = item;
            homeBusy_[line] = txn;
            beginHandler(
                engine_idx,
                excl ? HandlerId::RemoteReadExclToHomeDirty
                     : HandlerId::RemoteReadToHomeDirtyRemote,
                line, 0, CcBusOp::None,
                [this, line, owner, req, excl](Exec &, Tick t) {
                    sendMsg(excl ? MsgType::FwdReadExcl
                                 : MsgType::FwdRead,
                            line, owner, req, 0, false, t);
                });
            return;
        }
        if (d.state == DirState::DirtyRemote) {
            // The requester is the recorded owner: its request raced
            // ahead of the fill that made it the owner. Bounce it
            // back; the requester serves it within its node.
            beginHandler(engine_idx, HandlerId::OwnerNackAtHome,
                         line, 0, CcBusOp::None,
                         [this, line, req](Exec &, Tick t) {
                             sendMsg(MsgType::HomeNack, line, req,
                                     req, 0, false, t);
                             drainHomeWaiting(line, t);
                         });
            return;
        }

        if (!excl) {
            // Clean at home (possibly with remote sharers).
            HomeTxn txn;
            txn.requester = req;
            txn.original = item;
            homeBusy_[line] = txn;
            beginHandler(
                engine_idx, HandlerId::RemoteReadToHomeClean, line, 0,
                CcBusOp::FetchRead,
                [this, line, req](Exec &ex, Tick t) {
                    ccnuma_assert(!ex.fetchFailed);
                    sendMsg(MsgType::DataReply, line, req, req,
                            ex.version, false, t);
                    DirEntry &e = dir_.entry(line);
                    e.state = DirState::SharedRemote;
                    e.addSharer(req);
                    dir_.scheduleWrite(line, t);
                    closeHomeTxn(line, t);
                });
            return;
        }

        // Read-exclusive at home.
        std::vector<NodeId> targets;
        if (d.state == DirState::SharedRemote) {
            for (NodeId n = 0; n < map_.numNodes(); ++n) {
                if (d.isSharer(n) && n != req)
                    targets.push_back(n);
            }
        }
        if (targets.empty()) {
            HomeTxn txn;
            txn.requester = req;
            txn.excl = true;
            txn.original = item;
            homeBusy_[line] = txn;
            beginHandler(
                engine_idx, HandlerId::RemoteReadExclToHomeUncached,
                line, 0, CcBusOp::FetchReadExcl,
                [this, line, req](Exec &ex, Tick t) {
                    ccnuma_assert(!ex.fetchFailed);
                    sendMsg(MsgType::DataExclReply, line, req, req,
                            ex.version, false, t);
                    DirEntry &e = dir_.entry(line);
                    e.state = DirState::DirtyRemote;
                    e.owner = req;
                    e.sharers = 0;
                    dir_.scheduleWrite(line, t);
                    closeHomeTxn(line, t);
                });
            return;
        }
        HomeTxn txn;
        txn.requester = req;
        txn.excl = true;
        txn.acksExpected = static_cast<unsigned>(targets.size());
        txn.original = item;
        homeBusy_[line] = txn;
        beginHandler(
            engine_idx, HandlerId::RemoteReadExclToHomeShared, line,
            static_cast<int>(targets.size()), CcBusOp::FetchReadExcl,
            [this, line, targets](Exec &ex, Tick t) {
                auto hb = homeBusy_.find(line);
                ccnuma_assert(hb != homeBusy_.end());
                hb->second.dataVersion = ex.version;
                hb->second.haveData = true;
                for (NodeId n : targets)
                    sendMsg(MsgType::InvalReq, line, n, node_, 0,
                            false, t);
            });
        return;
      }

      case MsgType::FwdRead:
      case MsgType::FwdReadExcl: {
        // We are (or were) the owner of a remote line.
        const bool excl = msg.type == MsgType::FwdReadExcl;
        const NodeId home = msg.src;
        const NodeId req = msg.requester;
        const bool to_home = req == home;

        const bool cached =
            probe_ != nullptr && probe_->lineCachedLocally(line);
        if (!cached) {
            if (auto wb = wbBuffer_.find(line);
                wb != wbBuffer_.end()) {
                // The line left our caches entirely; its data is
                // still in the controller's writeback buffer.
                // Supply from there (no local copy is retained).
                std::uint64_t version = wb->second.version;
                beginHandler(
                    engine_idx,
                    excl ? (to_home
                                ? HandlerId::ReadExclFromOwnerForHome
                                : HandlerId::
                                      ReadExclFromOwnerForRemote)
                         : (to_home
                                ? HandlerId::ReadFromOwnerForHome
                                : HandlerId::ReadFromOwnerForRemote),
                    line, 0, CcBusOp::None,
                    [this, line, home, req, excl, to_home,
                     version](Exec &, Tick t) {
                        if (excl) {
                            if (to_home) {
                                sendMsg(
                                    MsgType::OwnerDataExclToHome,
                                    line, home, req, version, false,
                                    t);
                            } else {
                                sendMsg(MsgType::DataExclReply,
                                        line, req, req, version,
                                        false, t);
                                sendMsg(MsgType::OwnershipAck, line,
                                        home, req, 0, false, t);
                            }
                        } else {
                            if (to_home) {
                                sendMsg(MsgType::OwnerDataToHome,
                                        line, home, req, version,
                                        false, t);
                            } else {
                                sendMsg(MsgType::DataReply, line,
                                        req, req, version, false,
                                        t);
                                sendMsg(MsgType::SharingWB, line,
                                        home, req, version, false,
                                        t);
                            }
                        }
                    });
                return;
            }
            // Neither cached nor buffered: stale forward; the home
            // retries after our writeback lands.
            beginHandler(engine_idx,
                         excl ? HandlerId::ReadExclFromOwnerForHome
                              : HandlerId::ReadFromOwnerForHome,
                         line, 0, CcBusOp::None,
                         [this, line, home](Exec &, Tick t) {
                             sendMsg(MsgType::OwnerNack, line, home,
                                     node_, 0, false, t);
                         });
            return;
        }

        beginHandler(
            engine_idx,
            excl ? (to_home ? HandlerId::ReadExclFromOwnerForHome
                            : HandlerId::ReadExclFromOwnerForRemote)
                 : (to_home ? HandlerId::ReadFromOwnerForHome
                            : HandlerId::ReadFromOwnerForRemote),
            line, 0,
            excl ? CcBusOp::FetchReadExcl : CcBusOp::FetchRead,
            [this, line, home, req, excl, to_home](Exec &ex, Tick t) {
                if (ex.fetchFailed) {
                    // Lost a race with a local eviction; the home
                    // retries once the writeback lands.
                    sendMsg(MsgType::OwnerNack, line, home, node_, 0,
                            false, t);
                    return;
                }
                if (excl) {
                    if (to_home) {
                        sendMsg(MsgType::OwnerDataExclToHome, line,
                                home, req, ex.version, false, t);
                    } else {
                        sendMsg(MsgType::DataExclReply, line, req,
                                req, ex.version, false, t);
                        sendMsg(MsgType::OwnershipAck, line, home,
                                req, 0, false, t);
                    }
                } else {
                    bool retains = ex.fetchShared;
                    if (to_home) {
                        sendMsg(MsgType::OwnerDataToHome, line, home,
                                req, ex.version, retains, t);
                    } else {
                        sendMsg(MsgType::DataReply, line, req, req,
                                ex.version, false, t);
                        sendMsg(MsgType::SharingWB, line, home, req,
                                ex.version, retains, t);
                    }
                }
            });
        return;
      }

      case MsgType::InvalReq: {
        const NodeId home = msg.src;
        beginHandler(engine_idx, HandlerId::InvalRequestAtSharer,
                     line, 0, CcBusOp::InvalOnly,
                     [this, line, home](Exec &, Tick t) {
                         sendMsg(MsgType::InvalAck, line, home,
                                 node_, 0, false, t);
                     });
        return;
      }

      case MsgType::InvalAck: {
        auto hb = homeBusy_.find(line);
        if (hb == homeBusy_.end() && strayDrop("InvalAck")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ccnuma_assert(hb != homeBusy_.end());
        ccnuma_assert(hb->second.acksExpected > 0);
        if (--hb->second.acksExpected > 0) {
            beginHandler(engine_idx, HandlerId::InvalAckMoreExpected,
                         line, 0, CcBusOp::None, nullptr);
            return;
        }
        HomeTxn txn = hb->second;
        if (txn.localRequest) {
            beginHandler(
                engine_idx, HandlerId::InvalAckLastLocal, line, 0,
                CcBusOp::None,
                [this, line, txn](Exec &, Tick t) {
                    ccnuma_assert(txn.haveData);
                    bus_.deferredRespond(txn.busTxnId,
                                         txn.dataVersion, t);
                    DirEntry &e = dir_.entry(line);
                    e.state = DirState::Home;
                    e.sharers = 0;
                    dir_.scheduleWrite(line, t);
                    closeHomeTxn(line, t);
                });
        } else {
            beginHandler(
                engine_idx, HandlerId::InvalAckLastRemote, line, 0,
                CcBusOp::None,
                [this, line, txn](Exec &, Tick t) {
                    ccnuma_assert(txn.haveData);
                    sendMsg(MsgType::DataExclReply, line,
                            txn.requester, txn.requester,
                            txn.dataVersion, false, t);
                    DirEntry &e = dir_.entry(line);
                    e.state = DirState::DirtyRemote;
                    e.owner = txn.requester;
                    e.sharers = 0;
                    dir_.scheduleWrite(line, t);
                    closeHomeTxn(line, t);
                });
        }
        return;
      }

      case MsgType::DataReply:
      case MsgType::DataExclReply: {
        if (!reqPending_.count(line) && strayDrop("data reply")) {
            // The requester state died in a crash; the replayed
            // request will be re-granted (Msg::recoveryResend).
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        const bool excl = msg.type == MsgType::DataExclReply;
        std::uint64_t version = msg.version;
        // An exclusive grant whose request was parked behind an
        // earlier read transaction may find Shared copies that local
        // fills re-established after the upgrade's original bus
        // snoop; they must die before the Modified fill (the home
        // only invalidates REMOTE sharers). In the unconflicted path
        // no local copy can exist here — the requester dropped its
        // own copy at miss issue and the snoop killed the rest — so
        // the extra bus invalidation never fires.
        const bool stale_local = excl && probe_ != nullptr &&
                                 probe_->lineCachedLocally(line);
        beginHandler(
            engine_idx,
            excl ? HandlerId::DataReplyForRemoteReadExcl
                 : HandlerId::DataReplyForRemoteRead,
            line, 0,
            stale_local ? CcBusOp::InvalOnly : CcBusOp::None,
            [this, line, version](Exec &, Tick t) {
                completeRequesterFill(line, version, t);
            });
        return;
      }

      case MsgType::OwnerDataToHome: {
        auto hb = homeBusy_.find(line);
        if (hb == homeBusy_.end() && strayDrop("OwnerDataToHome")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ccnuma_assert(hb != homeBusy_.end());
        HomeTxn txn = hb->second;
        ccnuma_assert(txn.localRequest && !txn.excl);
        retries_.clear(line); // forward finally answered

        NodeId owner = msg.src;
        bool retains = msg.ownerRetains;
        std::uint64_t version = msg.version;
        beginHandler(
            engine_idx, HandlerId::OwnerDataToHomeRead, line, 0,
            CcBusOp::None,
            [this, line, txn, owner, retains, version](Exec &,
                                                       Tick t) {
                bus_.deferredRespond(txn.busTxnId, version, t);
                // Memory reflects the owner's data (posted write
                // riding the same transfer).
                writeHomeMemory(line, version, t);
                DirEntry &e = dir_.entry(line);
                if (retains) {
                    e.state = DirState::SharedRemote;
                    e.sharers = 0;
                    e.addSharer(owner);
                } else {
                    e.state = DirState::Home;
                    e.sharers = 0;
                }
                dir_.scheduleWrite(line, t);
                closeHomeTxn(line, t);
            });
        return;
      }

      case MsgType::OwnerDataExclToHome: {
        auto hb = homeBusy_.find(line);
        if (hb == homeBusy_.end() &&
            strayDrop("OwnerDataExclToHome")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ccnuma_assert(hb != homeBusy_.end());
        HomeTxn txn = hb->second;
        ccnuma_assert(txn.localRequest && txn.excl);
        retries_.clear(line); // forward finally answered

        std::uint64_t version = msg.version;
        beginHandler(
            engine_idx, HandlerId::OwnerDataToHomeReadExcl, line, 0,
            CcBusOp::None,
            [this, line, txn, version](Exec &, Tick t) {
                bus_.deferredRespond(txn.busTxnId, version, t);
                DirEntry &e = dir_.entry(line);
                e.state = DirState::Home;
                e.sharers = 0;
                dir_.scheduleWrite(line, t);
                closeHomeTxn(line, t);
            });
        return;
      }

      case MsgType::SharingWB: {
        if (state_ == CcState::Recovering) {
            // The owner/sharer picture is still being rebuilt; hold
            // the writeback until the directory can judge whether it
            // applies. The sender's buffer entry stays reserved
            // until we ack, preserving request-follows-writeback
            // ordering across the outage.
            rebuildParkedWb_.push_back(msg);
            finishHandler(engine_idx,
                          eq_.curTick() + params_.dispatchLatency);
            return;
        }
        auto hb = homeBusy_.find(line);
        DirEntry &d = dir_.entry(line);
        const NodeId owner = msg.src;
        // A sharing writeback closing a forwarded read carries the
        // remote requester's id; a spontaneous demotion writeback
        // carries the sender's own id. Only the former completes the
        // active home transaction.
        const bool closes = hb != homeBusy_.end() &&
                            !hb->second.excl &&
                            !hb->second.localRequest &&
                            msg.requester != msg.src &&
                            msg.requester == hb->second.requester;
        if (closes) {
            HomeTxn txn = hb->second;
            bool retains = msg.ownerRetains;
            std::uint64_t version = msg.version;
            retries_.clear(line); // forward finally answered
            beginHandler(
                engine_idx,
                HandlerId::OwnerWriteBackToHomeRemoteRead, line, 0,
                CcBusOp::None,
                [this, line, txn, owner, retains, version](Exec &,
                                                           Tick t) {
                    writeHomeMemory(line, version, t);
                    DirEntry &e = dir_.entry(line);
                    e.state = DirState::SharedRemote;
                    e.sharers = 0;
                    e.addSharer(txn.requester);
                    if (retains)
                        e.addSharer(owner);
                    dir_.scheduleWrite(line, t);
                    sendMsg(MsgType::WriteBackAck, line, owner,
                            owner, 0, false, t);
                    closeHomeTxn(line, t);
                });
            return;
        }
        // Spontaneous demotion (local read of a dirty line at the
        // owner). Apply only when the directory still records the
        // sender as owner; otherwise the writeback is stale.
        bool applies = d.state == DirState::DirtyRemote &&
                       d.owner == owner;
        bool retains = msg.ownerRetains;
        std::uint64_t version = msg.version;
        beginHandler(
            engine_idx, HandlerId::SharingWriteBackAtHome, line, 0,
            CcBusOp::None,
            [this, line, owner, applies, retains, version](Exec &,
                                                           Tick t) {
                if (applies) {
                    writeHomeMemory(line, version, t);
                    DirEntry &e = dir_.entry(line);
                    if (retains) {
                        e.state = DirState::SharedRemote;
                        e.sharers = 0;
                        e.addSharer(owner);
                    } else {
                        e.state = DirState::Home;
                        e.sharers = 0;
                    }
                    dir_.scheduleWrite(line, t);
                }
                sendMsg(MsgType::WriteBackAck, line, owner, owner, 0,
                        false, t);
            });
        return;
      }

      case MsgType::OwnershipAck: {
        auto hb = homeBusy_.find(line);
        if (hb == homeBusy_.end() && strayDrop("OwnershipAck")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ccnuma_assert(hb != homeBusy_.end());
        HomeTxn txn = hb->second;
        ccnuma_assert(txn.excl && !txn.localRequest);
        retries_.clear(line); // forward finally answered

        beginHandler(
            engine_idx, HandlerId::OwnerAckToHomeRemoteReadExcl, line,
            0, CcBusOp::None,
            [this, line, txn](Exec &, Tick t) {
                DirEntry &e = dir_.entry(line);
                e.state = DirState::DirtyRemote;
                e.owner = txn.requester;
                e.sharers = 0;
                dir_.scheduleWrite(line, t);
                closeHomeTxn(line, t);
            });
        return;
      }

      case MsgType::WriteBack: {
        if (state_ == CcState::Recovering) {
            rebuildParkedWb_.push_back(msg);
            finishHandler(engine_idx,
                          eq_.curTick() + params_.dispatchLatency);
            return;
        }
        DirEntry &d = dir_.entry(line);
        const NodeId owner = msg.src;
        bool applies = d.state == DirState::DirtyRemote &&
                       d.owner == owner;
        std::uint64_t version = msg.version;
        beginHandler(
            engine_idx, HandlerId::WriteBackAtHome, line, 0,
            CcBusOp::None,
            [this, line, owner, applies, version](Exec &, Tick t) {
                if (applies) {
                    writeHomeMemory(line, version, t);
                    DirEntry &e = dir_.entry(line);
                    e.state = DirState::Home;
                    e.sharers = 0;
                    dir_.scheduleWrite(line, t);
                }
                sendMsg(MsgType::WriteBackAck, line, owner, owner, 0,
                        false, t);
            });
        return;
      }

      case MsgType::WriteBackAck:
        // Handled without dispatch in netReceive.
        panic("cc %s: WriteBackAck reached the dispatch path",
              name_.c_str());

      case MsgType::HomeNack:
      case MsgType::RecoveryNack: {
        // HomeNack: our request raced ahead of our own ownership
        // fill; redo it from the top (the local probe will now find
        // the copy, or the retry will stall behind the writeback
        // buffer). RecoveryNack: the home fenced us out while it
        // rebuilds its directory; same teardown-and-retry, so the
        // bounded backoff naturally rides out the rebuild. Under a
        // bounded retry policy the re-attempt backs off
        // exponentially and eventually escalates.
        if (!reqPending_.count(line) && strayDrop("nack")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ccnuma_assert(reqPending_.count(line));
        const Tick backoff = retryDelay(
            line, msg.type == MsgType::RecoveryNack
                      ? "request nacked by a recovering home"
                      : "home-nacked request");
        beginHandler(
            engine_idx, HandlerId::OwnerNackAtHome, line, 0,
            CcBusOp::None,
            [this, line, backoff](Exec &, Tick t) {
                auto it = reqPending_.find(line);
                ccnuma_assert(it != reqPending_.end());
                ReqPending rp = std::move(it->second);
                reqPending_.erase(it);
                eq_.scheduleFunction(
                    [this, line, rp] {
                        for (auto cit = rp.conflicting.rbegin();
                             cit != rp.conflicting.rend(); ++cit) {
                            enqueue(QBusRequest, *cit,
                                    /*to_front=*/true);
                        }
                        for (auto tit = rp.busTxns.rbegin();
                             tit != rp.busTxns.rend(); ++tit) {
                            DispatchItem item;
                            item.isBus = true;
                            item.busTxnId = *tit;
                            item.lineAddr = line;
                            item.busCmd = rp.excl
                                              ? BusCmd::ReadExcl
                                              : BusCmd::Read;
                            enqueue(QBusRequest, item,
                                    /*to_front=*/true);
                        }
                    },
                    t + backoff);
            });
        return;
      }

      case MsgType::PoisonNack: {
        // The home fenced us off a dead line: the data is gone for
        // good and no retry will resurrect it. Tear down everything
        // pending on the line, let the machine's poison fence kill
        // the processors blocked on it, and complete the deferred
        // bus transactions with a dummy response so the bus drains
        // (the cache units drop them via their poison-abort lists).
        auto it = reqPending_.find(line);
        if (it == reqPending_.end() && strayDrop("PoisonNack")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ccnuma_assert(it != reqPending_.end());
        ReqPending rp = std::move(it->second);
        reqPending_.erase(it);
        missLadders_.erase(line);
        retries_.clear(line);
        beginHandler(
            engine_idx, HandlerId::OwnerNackAtHome, line, 0,
            CcBusOp::None,
            [this, line, rp](Exec &, Tick t) {
                if (poisonFence_)
                    poisonFence_(line);
                for (std::uint64_t txn : rp.busTxns)
                    bus_.deferredRespond(txn, 0, t);
                for (const auto &c : rp.conflicting) {
                    if (c.busTxnId != 0)
                        bus_.deferredRespond(c.busTxnId, 0, t);
                }
            });
        return;
      }

      case MsgType::OwnerNack: {
        auto hb = homeBusy_.find(line);
        if (hb == homeBusy_.end() && strayDrop("OwnerNack")) {
            finishHandler(engine_idx, eq_.curTick());
            return;
        }
        ++statNacks;
        ccnuma_assert(hb != homeBusy_.end());
        DispatchItem original = hb->second.original;
        const Tick backoff = retryDelay(line, "owner-nacked forward");
        beginHandler(
            engine_idx, HandlerId::OwnerNackAtHome, line, 0,
            CcBusOp::None,
            [this, line, original, backoff](Exec &, Tick t) {
                closeHomeTxn(line, t);
                eq_.scheduleFunction(
                    [this, original] {
                        DispatchItem item = original;
                        enqueue(item.isBus ? QBusRequest
                                           : QNetRequest,
                                item, /*to_front=*/true);
                    },
                    t + backoff);
            });
        return;
      }

      case MsgType::DirProbe: {
        // A restarted home is rebuilding its directory: report every
        // local copy of a line homed there.
        const Msg m = msg;
        beginHandler(engine_idx, HandlerId::DirProbeAtSharer, line, 0,
                     CcBusOp::None,
                     [this, m](Exec &, Tick t) {
                         answerDirProbe(m, t);
                     });
        return;
      }

      case MsgType::DirProbeResp: {
        const Msg m = msg;
        beginHandler(engine_idx, HandlerId::DirProbeRespAtHome, line,
                     0, CcBusOp::None,
                     [this, m](Exec &, Tick t) {
                         applyProbeResp(m);
                         dir_.scheduleWrite(m.lineAddr, t);
                         maybeAdvanceRebuild(t);
                     });
        return;
      }

      case MsgType::DirProbeDone: {
        const Msg m = msg;
        beginHandler(
            engine_idx, HandlerId::DirProbeRespAtHome, line, 0,
            CcBusOp::None,
            [this, m](Exec &, Tick t) {
                ccnuma_assert(state_ == CcState::Recovering);
                ccnuma_assert(probeDonesOutstanding_ > 0);
                --probeDonesOutstanding_;
                probeRespsExpected_ += m.version;
                maybeAdvanceRebuild(t);
            });
        return;
      }

      case MsgType::RecoveryProbe:
      case MsgType::RecoveryProbeAck:
        // Answered below dispatch in netReceive.
        panic("cc %s: %s reached the dispatch path", name_.c_str(),
              msgTypeName(msg.type));
    }
    panic("cc %s: unhandled message type %s", name_.c_str(),
          msgTypeName(msg.type));
}

// ---------------------------------------------------------------------
// Fail-stop crash recovery (PR 6)
// ---------------------------------------------------------------------

void
CoherenceController::crash(bool lose_directory)
{
    ccnuma_assert(params_.recoveryEnabled);
    ccnuma_assert(state_ == CcState::Normal && !deadForever_);
    ++statCrashes;
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::Crash, node_, 0,
                            eq_.curTick());
    }
    // Invalidate every scheduled continuation of in-flight handlers:
    // their lambdas captured the old epoch and now no-op (the one
    // holding a raw Exec deletes it). Pre-crash sendMsg events are
    // deliberately not guarded — those messages already left the
    // card's protocol logic for the network interface.
    ++epoch_;
    state_ = CcState::Crashed;
    dirLost_ = lose_directory;
    if (xport_ != nullptr)
        xport_->fenceNode(node_, true);

    // Collect everything this controller still owes an answer for:
    // local processor transactions awaiting a deferred response and
    // home-side requests it accepted responsibility for. Network
    // items are dropped — the transport re-delivers them after the
    // fence lifts. Bus transaction ids dedup the sweep (one request
    // can appear both in a transient map and in an engine).
    std::unordered_set<std::uint64_t> seen;
    auto keep = [&](const DispatchItem &it) {
        if (!it.isBus) {
            // A frame the transport already delivered (and
            // acknowledged) is never re-delivered, so anything whose
            // sender waits indefinitely must be parked for replay:
            // writebacks (the sender's buffer entry stays reserved
            // until we ack) and home-issued forwards/invalidations
            // (the home transaction blocks until we answer; homes
            // run no retry timer). Plain requests are re-sent by the
            // requester's miss ladder and stale responses by the
            // recovery-resend path, so those are safely dropped.
            switch (it.msg.type) {
              case MsgType::WriteBack:
              case MsgType::SharingWB:
              case MsgType::FwdRead:
              case MsgType::FwdReadExcl:
              case MsgType::InvalReq:
                crashReplay_.push_back(it);
                break;
              default:
                ++statCrashDropped;
            }
            return;
        }
        if (it.busTxnId != 0 && !seen.insert(it.busTxnId).second)
            return;
        DispatchItem r = it;
        r.crashResend = true;
        crashReplay_.push_back(r);
    };

    for (auto &e : engines_) {
        if (e.curItemValid)
            keep(e.curItem);
        e.busy = false;
        e.curItemValid = false;
        e.curLineValid = false;
        e.curHandler = 0xff;
        e.curExtraTargets = 0;
        e.netBypass = 0;
        e.stallStreak = 0;
        for (auto &q : e.queues) {
            for (auto &it : q)
                keep(it);
            q.clear();
        }
    }
    for (auto &[line, hb] : homeBusy_) {
        // A local request still needs its bus response. A remote
        // requester's transaction is simply dropped: the requester's
        // miss timer resends it with Msg::recoveryResend set.
        if (hb.localRequest)
            keep(hb.original);
        else
            ++statCrashDropped;
    }
    homeBusy_.clear();
    for (auto &[line, q] : homeWaiting_) {
        for (auto &it : q)
            keep(it);
    }
    homeWaiting_.clear();
    for (auto &[line, q] : wbWaiting_) {
        for (auto &it : q)
            keep(it);
    }
    wbWaiting_.clear();
    for (auto &[line, rp] : reqPending_) {
        for (std::uint64_t txn : rp.busTxns) {
            DispatchItem it;
            it.isBus = true;
            it.busTxnId = txn;
            it.lineAddr = line;
            it.busCmd = rp.excl ? BusCmd::ReadExcl : BusCmd::Read;
            keep(it);
        }
        for (auto &c : rp.conflicting)
            keep(c);
    }
    reqPending_.clear();
    deferredLocal_.clear();
    fetches_.clear();
    missLadders_.clear();
    // All in-flight operations died with the card; their per-line
    // retry streaks are meaningless now.
    retries_.clearAll();
    // The writeback buffer survives: it is bus-side data-path SRAM,
    // and its entries are the only copy of evicted dirty lines.

    if (lose_directory)
        dir_.invalidateAll();

    ccnuma_trace(0, "%8llu %s CRASH (directory %s), %zu items parked",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 lose_directory ? "lost" : "intact",
                 crashReplay_.size());
}

void
CoherenceController::restart()
{
    ccnuma_assert(state_ == CcState::Crashed && !deadForever_);
    restartTick_ = eq_.curTick();
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::Restart, node_, 0,
                            eq_.curTick());
    }
    if (xport_ != nullptr)
        xport_->fenceNode(node_, false);
    if (!dirLost_) {
        state_ = CcState::Normal;
        replayAfterRestart(eq_.curTick());
        return;
    }
    dirLost_ = false;
    state_ = CcState::Recovering;
    probePendingPeers_.clear();
    probeDonesOutstanding_ = 0;
    probeRespsExpected_ = 0;
    probeRespsApplied_ = 0;
    for (NodeId n = 0; n < map_.numNodes(); ++n) {
        if (n != node_)
            probePendingPeers_.push_back(n);
    }
    ccnuma_trace(0, "%8llu %s RESTART: rebuilding directory from %zu "
                 "peers", (unsigned long long)eq_.curTick(),
                 name_.c_str(), probePendingPeers_.size());
    if (probePendingPeers_.empty())
        finishRebuild(eq_.curTick());
    else
        sendNextProbeWave(eq_.curTick());
}

void
CoherenceController::sendNextProbeWave(Tick t)
{
    ccnuma_assert(state_ == CcState::Recovering);
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::RebuildWave, node_, 0,
                            t);
    }
    unsigned wave =
        params_.probeFanout == 0
            ? static_cast<unsigned>(probePendingPeers_.size())
            : params_.probeFanout;
    while (wave-- > 0 && !probePendingPeers_.empty()) {
        NodeId peer = probePendingPeers_.front();
        probePendingPeers_.pop_front();
        ++probeDonesOutstanding_;
        sendMsg(MsgType::DirProbe, 0, peer, node_, 0, false, t);
    }
}

void
CoherenceController::answerDirProbe(const Msg &msg, Tick t)
{
    const NodeId home = msg.src;
    std::uint64_t count = 0;
    // Msg::ownerRetains doubles as the dirty flag in a probe
    // response: true means this node holds the only valid data.
    if (cacheScan_) {
        cacheScan_(home, [&](Addr l, bool modified,
                             std::uint64_t ver) {
            sendMsg(MsgType::DirProbeResp, l, home, node_, ver,
                    /*retains=*/modified, t);
            ++count;
        });
    }
    // The writeback buffer holds evicted dirty lines whose WriteBack
    // message the crashed home never absorbed; report them as owned
    // here so the rebuilt directory accepts the parked writeback.
    for (const auto &[l, wb] : wbBuffer_) {
        if (map_.homeOf(l) == home) {
            sendMsg(MsgType::DirProbeResp, l, home, node_,
                    wb.version, /*retains=*/true, t);
            ++count;
        }
    }
    sendMsg(MsgType::DirProbeDone, 0, home, node_, count, false, t);
}

void
CoherenceController::applyProbeResp(const Msg &msg)
{
    ccnuma_assert(state_ == CcState::Recovering);
    DirEntry &e = dir_.entry(msg.lineAddr);
    if (msg.ownerRetains) {
        // Dirty at the responder: it is the owner.
        e.state = DirState::DirtyRemote;
        e.owner = msg.src;
        e.sharers = 0;
    } else if (e.state != DirState::DirtyRemote) {
        e.state = DirState::SharedRemote;
        e.addSharer(msg.src);
    }
    ++probeRespsApplied_;
    ++statRebuildLines;
}

void
CoherenceController::maybeAdvanceRebuild(Tick t)
{
    if (state_ != CcState::Recovering)
        return;
    if (probeDonesOutstanding_ > 0 ||
        probeRespsApplied_ < probeRespsExpected_)
        return;
    if (!probePendingPeers_.empty())
        sendNextProbeWave(t);
    else
        finishRebuild(t);
}

void
CoherenceController::finishRebuild(Tick t)
{
    ccnuma_assert(state_ == CcState::Recovering);
    ++statDirRebuilds;
    if (tracer_) {
        tracer_->faultEvent(obs::FaultKind::RebuildDone, node_, 0,
                            t);
    }
    const Tick latency = t - restartTick_;
    reconstructionTicksMax_ =
        std::max(reconstructionTicksMax_, latency);
    ccnuma_trace(0, "%8llu %s REBUILD complete in %llu ticks",
                 (unsigned long long)t, name_.c_str(),
                 (unsigned long long)latency);
    // Cross-check the rebuilt map against the checker's shadow
    // directory before trusting it with live traffic.
    if (rebuildCheckHook_)
        rebuildCheckHook_(node_);
    state_ = CcState::Normal;
    replayAfterRestart(t);
}

void
CoherenceController::replayAfterRestart(Tick t)
{
    ccnuma_assert(state_ == CcState::Normal);
    std::deque<DispatchItem> items = std::move(crashReplay_);
    crashReplay_.clear();
    std::deque<Msg> wbs = std::move(rebuildParkedWb_);
    rebuildParkedWb_.clear();
    if (items.empty() && wbs.empty())
        return;
    eq_.scheduleFunction(
        [this, items, wbs] {
            // Writebacks first: they carry data the rebuilt
            // directory already expects from their senders.
            for (const auto &m : wbs) {
                DispatchItem it;
                it.msg = m;
                it.lineAddr = m.lineAddr;
                enqueue(m.type == MsgType::WriteBack ? QNetRequest
                                                     : QNetResponse,
                        it);
            }
            for (const auto &it : items) {
                // A deferred read the card answered in its final
                // ticks before the crash (response issued, engine
                // not yet released) needs nothing more: the data
                // phase completes on the bus regardless. Replaying
                // it would answer the transaction twice. WriteBack
                // and Inval items keep their network obligations
                // even though their address phases closed long ago.
                if (it.isBus && it.busTxnId != 0 &&
                    (it.busCmd == BusCmd::Read ||
                     it.busCmd == BusCmd::ReadExcl) &&
                    (!bus_.isOpen(it.busTxnId) ||
                     bus_.fillScheduled(it.busTxnId))) {
                    ccnuma_trace(it.lineAddr,
                                 "%8llu %s replay elides answered "
                                 "bus txn %llu",
                                 (unsigned long long)eq_.curTick(),
                                 name_.c_str(),
                                 (unsigned long long)it.busTxnId);
                    continue;
                }
                unsigned q = QBusRequest;
                if (!it.isBus) {
                    q = it.msg.type == MsgType::SharingWB
                            ? QNetResponse
                            : QNetRequest;
                }
                enqueue(q, it);
            }
        },
        t);
}

void
CoherenceController::missTimeout(Addr line_addr)
{
    if (!params_.recoveryEnabled || state_ != CcState::Normal ||
        deadForever_) {
        return;
    }
    auto it = reqPending_.find(line_addr);
    if (it == reqPending_.end())
        return; // the timer raced with the fill
    ++statMissTimeouts;
    MissLadder &lad = missLadders_[line_addr];
    const NodeId home = map_.homeOf(line_addr);
    const bool excl = it->second.excl;
    if (lad.resends < params_.timeoutRetries) {
        ++lad.resends;
        ++statTimeoutResends;
        sendMsg(excl ? MsgType::ReadExclReq : MsgType::ReadReq,
                line_addr, home, node_, 0, false, eq_.curTick(),
                /*recovery_resend=*/true);
        return;
    }
    if (lad.probes < params_.probeRetries) {
        ++lad.probes;
        ++statRecoveryProbes;
        sendMsg(MsgType::RecoveryProbe, line_addr, home, node_, 0,
                false, eq_.curTick());
        return;
    }
    // The home answered neither resends nor liveness probes: it is
    // gone. Degraded mode fences it and migrates its pages.
    ++statDegradedEntries;
    missLadders_.erase(line_addr);
    ccnuma_trace(line_addr,
                 "%8llu %s DEGRADED: home node%u presumed dead",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 home);
    if (degradedHook_)
        degradedHook_(home);
}

bool
CoherenceController::strayDrop(const char *what)
{
    if (!params_.recoveryEnabled)
        return false;
    ++statStrayDrops;
    ccnuma_trace(0, "%8llu %s stray %s dropped",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 what);
    return true;
}

std::vector<std::pair<Addr, std::uint64_t>>
CoherenceController::drainWbHomedAt(NodeId home)
{
    std::vector<std::pair<Addr, std::uint64_t>> out;
    for (auto it = wbBuffer_.begin(); it != wbBuffer_.end();) {
        const Addr line = it->first;
        if (map_.homeOf(line) != home) {
            ++it;
            continue;
        }
        out.emplace_back(line, it->second.version);
        it = wbBuffer_.erase(it);
        // The writeback is as absorbed as it will ever be; release
        // requests stalled behind it.
        auto wit = wbWaiting_.find(line);
        if (wit == wbWaiting_.end())
            continue;
        std::deque<DispatchItem> waiting = std::move(wit->second);
        wbWaiting_.erase(wit);
        for (auto rit = waiting.rbegin(); rit != waiting.rend();
             ++rit) {
            enqueue(QBusRequest, *rit, /*to_front=*/true);
        }
    }
    return out;
}

void
CoherenceController::replayPendingHomedAt(NodeId home)
{
    std::deque<DispatchItem> items;
    for (auto it = reqPending_.begin(); it != reqPending_.end();) {
        const Addr line = it->first;
        if (map_.homeOf(line) != home) {
            ++it;
            continue;
        }
        for (std::uint64_t txn : it->second.busTxns) {
            DispatchItem di;
            di.isBus = true;
            di.busTxnId = txn;
            di.lineAddr = line;
            di.busCmd =
                it->second.excl ? BusCmd::ReadExcl : BusCmd::Read;
            items.push_back(di);
        }
        for (auto &c : it->second.conflicting)
            items.push_back(c);
        missLadders_.erase(line);
        retries_.clear(line);
        it = reqPending_.erase(it);
    }
    if (items.empty())
        return;
    // Deferred so the caller can flip the address-map remap first;
    // the replays then route to the successor home.
    eq_.scheduleFunction(
        [this, items] {
            for (const auto &di : items)
                enqueue(QBusRequest, di);
        },
        eq_.curTick());
}

void
CoherenceController::shutdownPermanently()
{
    ++epoch_;
    deadForever_ = true;
    state_ = CcState::Crashed;
    for (auto &e : engines_) {
        e.busy = false;
        e.curItemValid = false;
        e.curLineValid = false;
        e.curHandler = 0xff;
        e.curExtraTargets = 0;
        for (auto &q : e.queues)
            q.clear();
    }
    homeBusy_.clear();
    homeWaiting_.clear();
    reqPending_.clear();
    wbBuffer_.clear();
    wbWaiting_.clear();
    deferredLocal_.clear();
    fetches_.clear();
    crashReplay_.clear();
    rebuildParkedWb_.clear();
    missLadders_.clear();
    probePendingPeers_.clear();
    probeDonesOutstanding_ = 0;
    probeRespsExpected_ = 0;
    probeRespsApplied_ = 0;
    retries_.clearAll();
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

bool
CoherenceController::idle() const
{
    if (deadForever_)
        return true; // permanently retired: nothing will ever move
    if (state_ != CcState::Normal || !crashReplay_.empty() ||
        !rebuildParkedWb_.empty()) {
        return false;
    }
    if (!homeBusy_.empty() || !reqPending_.empty() ||
        !fetches_.empty() || !wbBuffer_.empty() ||
        !deferredLocal_.empty()) {
        return false;
    }
    for (const auto &kv : homeWaiting_) {
        if (!kv.second.empty())
            return false;
    }
    for (const auto &kv : wbWaiting_) {
        if (!kv.second.empty())
            return false;
    }
    for (const auto &e : engines_) {
        if (e.busy)
            return false;
        for (const auto &q : e.queues) {
            if (!q.empty())
                return false;
        }
    }
    return true;
}

bool
CoherenceController::lineQuiet(Addr line_addr) const
{
    if (state_ != CcState::Normal && !deadForever_)
        return false;
    for (const auto &it : crashReplay_) {
        if (it.lineAddr == line_addr)
            return false;
    }
    for (const auto &m : rebuildParkedWb_) {
        if (m.lineAddr == line_addr)
            return false;
    }
    if (homeBusy_.count(line_addr) || reqPending_.count(line_addr) ||
        wbBuffer_.count(line_addr) ||
        deferredLocal_.count(line_addr)) {
        return false;
    }
    if (auto it = homeWaiting_.find(line_addr);
        it != homeWaiting_.end() && !it->second.empty()) {
        return false;
    }
    if (auto it = wbWaiting_.find(line_addr);
        it != wbWaiting_.end() && !it->second.empty()) {
        return false;
    }
    for (const auto &kv : fetches_) {
        if (kv.second->lineAddr == line_addr)
            return false;
    }
    for (const auto &e : engines_) {
        if (e.busy && e.curLineValid && e.curLine == line_addr)
            return false;
        for (const auto &q : e.queues) {
            for (const auto &item : q) {
                if (item.lineAddr == line_addr)
                    return false;
            }
        }
    }
    return true;
}

std::uint64_t
CoherenceController::totalArrivals() const
{
    std::uint64_t n = 0;
    for (const auto &e : engines_)
        n += e.arrivals;
    return n;
}

Tick
CoherenceController::totalOccupancy() const
{
    Tick n = 0;
    for (const auto &e : engines_)
        n += e.occupancyTicks;
    return n;
}

Tick
CoherenceController::engineOccupancy(unsigned e) const
{
    return engines_.at(e).occupancyTicks;
}

std::uint64_t
CoherenceController::engineArrivals(unsigned e) const
{
    return engines_.at(e).arrivals;
}

double
CoherenceController::engineQueueDelay(unsigned e) const
{
    const Engine &en = engines_.at(e);
    return en.queueDelayCount
               ? en.queueDelaySum /
                     static_cast<double>(en.queueDelayCount)
               : 0.0;
}

double
CoherenceController::meanQueueDelay() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &e : engines_) {
        sum += e.queueDelaySum;
        n += e.queueDelayCount;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

void
CoherenceController::dumpState(std::ostream &os) const
{
    os << name_ << ":";
    if (deadForever_) {
        os << " DEAD(degraded-mode fence)";
    } else if (state_ == CcState::Crashed) {
        os << " CRASHED(parked=" << crashReplay_.size() << ")";
    } else if (state_ == CcState::Recovering) {
        os << " RECOVERING(donesPending=" << probeDonesOutstanding_
           << ",peersLeft=" << probePendingPeers_.size()
           << ",resps=" << probeRespsApplied_ << "/"
           << probeRespsExpected_
           << ",parkedWb=" << rebuildParkedWb_.size() << ")";
    }
    for (const auto &[line, hb] : homeBusy_) {
        os << " homeBusy(" << std::hex << line << std::dec
           << ",req=" << hb.requester << ",excl=" << hb.excl
           << ",acks=" << hb.acksExpected << ")";
    }
    for (const auto &[line, rp] : reqPending_) {
        os << " reqPending(" << std::hex << line << std::dec
           << ",excl=" << rp.excl << ",txns=" << rp.busTxns.size()
           << ",confl=" << rp.conflicting.size() << ")";
    }
    for (const auto &[line, wb] : wbBuffer_) {
        os << " wb(" << std::hex << line << std::dec << ")";
    }
    for (const auto &[line, q] : wbWaiting_) {
        if (!q.empty())
            os << " wbWait(" << std::hex << line << std::dec << ","
               << q.size() << ")";
    }
    for (const auto &[line, q] : homeWaiting_) {
        if (!q.empty())
            os << " homeWait(" << std::hex << line << std::dec
               << "," << q.size() << ")";
    }
    for (const auto &e : engines_) {
        os << " engine" << e.idx << "(busy=" << e.busy << ",q="
           << e.queues[0].size() << "/" << e.queues[1].size() << "/"
           << e.queues[2].size() << ")";
    }
    os << "\n";
}

void
CoherenceController::resetStats()
{
    for (auto &e : engines_) {
        e.occupancyTicks = 0;
        e.arrivals = 0;
        e.queueDelaySum = 0.0;
        e.queueDelayCount = 0;
    }
    statGroup_.resetAll();
}

// ---------------------------------------------------------------------
// Speculative checkpointing
// ---------------------------------------------------------------------

std::shared_ptr<const void>
CoherenceController::specSave(std::size_t &bytes)
{
    std::unordered_map<std::uint64_t, Exec> fetches;
    fetches.reserve(fetches_.size());
    for (const auto &[id, ex] : fetches_)
        fetches.emplace(id, *ex);
    auto s = std::make_shared<SpecSnap>(SpecSnap{
        retries_, engines_, homeBusy_, deferredLocal_, homeWaiting_,
        reqPending_, wbBuffer_, wbWaiting_, std::move(fetches),
        state_, epoch_, crashReplay_, dirLost_, rebuildParkedWb_,
        probePendingPeers_, probeDonesOutstanding_,
        probeRespsExpected_, probeRespsApplied_, restartTick_,
        reconstructionTicksMax_, missLadders_, deadLines_,
        deadForever_});
    // Approximate footprint: the struct plus its container payloads
    // (queue items dominate; per-item std::function payloads are
    // not walked).
    std::size_t queued = 0;
    for (const auto &e : s->engines)
        for (const auto &q : e.queues)
            queued += q.size();
    for (const auto &[line, q] : s->homeWaiting)
        queued += q.size();
    for (const auto &[line, q] : s->wbWaiting)
        queued += q.size();
    for (const auto &[line, rp] : s->reqPending)
        queued += rp.conflicting.size();
    queued += s->crashReplay.size();
    bytes += sizeof(SpecSnap) +
             queued * sizeof(DispatchItem) +
             s->fetches.size() * sizeof(Exec) +
             s->homeBusy.size() * sizeof(HomeTxn) +
             (s->deferredLocal.size() + s->missLadders.size() +
              s->wbBuffer.size() + s->deadLines.size()) *
                 2 * sizeof(Addr) +
             s->rebuildParkedWb.size() * sizeof(Msg);
    return s;
}

void
CoherenceController::specRestore(const void *snap)
{
    const SpecSnap *s = static_cast<const SpecSnap *>(snap);
    retries_ = s->retries;
    engines_ = s->engines;
    homeBusy_ = s->homeBusy;
    deferredLocal_ = s->deferredLocal;
    homeWaiting_ = s->homeWaiting;
    reqPending_ = s->reqPending;
    wbBuffer_ = s->wbBuffer;
    wbWaiting_ = s->wbWaiting;
    fetches_.clear();
    for (const auto &[id, ex] : s->fetches)
        fetches_.emplace(id, std::make_unique<Exec>(ex));
    state_ = s->state;
    epoch_ = s->epoch;
    crashReplay_ = s->crashReplay;
    dirLost_ = s->dirLost;
    rebuildParkedWb_ = s->rebuildParkedWb;
    probePendingPeers_ = s->probePendingPeers;
    probeDonesOutstanding_ = s->probeDonesOutstanding;
    probeRespsExpected_ = s->probeRespsExpected;
    probeRespsApplied_ = s->probeRespsApplied;
    restartTick_ = s->restartTick;
    reconstructionTicksMax_ = s->reconstructionTicksMax;
    missLadders_ = s->missLadders;
    deadLines_ = s->deadLines;
    deadForever_ = s->deadForever;
}

} // namespace ccnuma
