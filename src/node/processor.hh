/**
 * @file
 * In-order, blocking compute processor model.
 *
 * Matches the paper's 200 MHz compute processors: one instruction per
 * cycle, stall-on-miss, one outstanding miss, sequentially consistent
 * (a store does not complete until exclusive ownership is obtained).
 * Cache hits and compute gaps are batched between global events for
 * speed; only misses and synchronization interact with the rest of
 * the machine.
 */

#ifndef CCNUMA_NODE_PROCESSOR_HH
#define CCNUMA_NODE_PROCESSOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "node/cache_unit.hh"
#include "node/sync.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "workload/op_stream.hh"

namespace ccnuma
{

namespace obs
{
class Tracer;
} // namespace obs

/** Processor timing/behavior parameters. */
struct ProcessorParams
{
    /** L2 miss detection latency before the bus request (Table 3). */
    Tick missDetect = 8;
    /**
     * Enable per-processor monotonic-read checking (the invariant
     * checker's dynamic component); costs memory, used in tests.
     */
    bool checkMonotonic = false;
};

/** One compute processor executing a ThreadOp stream. */
class Processor : public Snapshottable
{
  public:
    Processor(const std::string &name, EventQueue &eq, ProcId id,
              NodeId node, CacheUnit &cache, SyncManager &sync,
              const ProcessorParams &p);
    ~Processor();

    /** Install the thread program (before start()). */
    void setProgram(OpStream stream) { stream_ = std::move(stream); }

    /** Invoked once when the program ends. */
    void setFinishedCallback(std::function<void()> cb)
    {
        onFinished_ = std::move(cb);
    }

    /** Begin executing at tick @p when. */
    void start(Tick when);

    /**
     * Fail-stop node death (PR 6 degraded mode): stop executing
     * immediately and count as finished so the run can complete with
     * the survivors. Instructions retired so far are kept; any
     * in-flight miss or sync continuation becomes a no-op.
     */
    void kill();

    /**
     * Record data-miss spans with the tracer (set by the machine;
     * null = off). Sync-variable misses stay untraced — the paper's
     * latency breakdowns cover data references only.
     */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    bool finished() const { return finished_; }
    ProcId id() const { return id_; }
    Tick finishTick() const { return finishTick_; }

    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t memRefs() const { return loads_ + stores_; }
    std::uint64_t misses() const { return misses_; }
    Tick stallTicks() const { return stallTicks_; }
    Tick syncWaitTicks() const { return syncWaitTicks_; }

    stats::Group &statGroup() { return statGroup_; }

    // --- speculative checkpointing: raw counters by value, the op
    // stream by tape cursor (workload/op_stream.hh) ---

    void specBegin() override { stream_.specEnableTape(); }

    std::shared_ptr<const void>
    specSave(std::size_t &bytes) override
    {
        bytes += sizeof(Snap);
        return std::make_shared<Snap>(
            Snap{finished_, killed_, finishTick_, syncWaitStart_,
                 instructions_, loads_, stores_, misses_, stallTicks_,
                 syncWaitTicks_, stream_.specCursor()});
    }

    void
    specRestore(const void *snap) override
    {
        const Snap *s = static_cast<const Snap *>(snap);
        finished_ = s->finished;
        killed_ = s->killed;
        finishTick_ = s->finishTick;
        syncWaitStart_ = s->syncWaitStart;
        instructions_ = s->instructions;
        loads_ = s->loads;
        stores_ = s->stores;
        misses_ = s->misses;
        stallTicks_ = s->stallTicks;
        syncWaitTicks_ = s->syncWaitTicks;
        stream_.specRewind(s->cursor);
    }

    void
    specCommit(const void *oldest) override
    {
        stream_.specCommitTape(
            static_cast<const Snap *>(oldest)->cursor);
    }

    void specEnd() override { stream_.specDisableTape(); }

  private:
    /** Value snapshot of the processor's execution state. */
    struct Snap
    {
        bool finished;
        bool killed;
        Tick finishTick;
        Tick syncWaitStart;
        std::uint64_t instructions;
        std::uint64_t loads;
        std::uint64_t stores;
        std::uint64_t misses;
        Tick stallTicks;
        Tick syncWaitTicks;
        std::size_t cursor;
    };

    void run();
    void issueMiss(ThreadOp op);
    void doSync(ThreadOp op);
    /** Access a sync variable, then continue with @p then. */
    void syncRef(Addr addr, bool write, std::function<void()> then);
    void resumeAt(Tick when);
    void checkRead(Addr addr, std::uint64_t version);
    void finish();

    std::string name_;
    EventQueue &eq_;
    ProcId id_;
    NodeId node_;
    CacheUnit &cache_;
    SyncManager &sync_;
    ProcessorParams params_;
    OpStream stream_;
    std::function<void()> onFinished_;
    obs::Tracer *tracer_ = nullptr;

    bool finished_ = false;
    bool killed_ = false;
    Tick finishTick_ = 0;
    Tick syncWaitStart_ = 0;

    std::uint64_t instructions_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t misses_ = 0;
    Tick stallTicks_ = 0;
    Tick syncWaitTicks_ = 0;

    std::unordered_map<Addr, std::uint64_t> lastSeen_;

    /**
     * Reusable execute event: one instance serves every start/resume
     * of this processor's instruction loop (at most one is ever
     * outstanding), so the hottest scheduling edge in the simulator
     * never touches the one-shot pool.
     */
    class RunEvent : public Event
    {
      public:
        explicit RunEvent(Processor &p) : proc_(p) {}
        void process() override { proc_.run(); }
        const char *name() const override { return "proc run"; }

      private:
        Processor &proc_;
    };
    RunEvent runEvent_{*this};

    stats::Group statGroup_;
    stats::Scalar statInstructions{"instructions",
        "instructions executed (compute + memory references)"};
    stats::Scalar statMisses{"misses", "L2 misses"};
    stats::Scalar statStallTicks{"stall_ticks",
        "ticks stalled on cache misses"};
    stats::Scalar statSyncWaitTicks{"sync_wait_ticks",
        "ticks waiting at barriers and locks"};
};

} // namespace ccnuma

#endif // CCNUMA_NODE_PROCESSOR_HH
