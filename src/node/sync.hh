/**
 * @file
 * Synchronization substrate: barriers and locks.
 *
 * Synchronization variables live in the simulated shared address
 * space (one cache line each), and every barrier arrival / lock
 * acquire / lock release performs a store to the variable's line
 * through the normal cache and coherence machinery, so
 * synchronization generates realistic hot-line protocol traffic at
 * the variable's home node. This manager supplies the *semantics*
 * (who waits, who is released) without unbounded spinning: waiters
 * sleep and are woken by the granting event, paying one additional
 * coherence access on the handoff.
 *
 * Grants are always deferred: a barrier release or lock handoff
 * reaches the granted processor handoffTicks after the operation
 * that caused it — modeling the flag/line propagation delay of a real
 * sleeping waiter — and the grant event carries an explicit
 * deterministic key from the sync manager's own context. Deferral is
 * also what makes the manager shardable: operations performed during
 * a conservative window are recorded per shard and processed at the
 * window barrier in (event key) merge order, which is exactly the
 * order the serial path processes them inline, so grant timing and
 * sequence numbers are bit-identical in both modes.
 */

#ifndef CCNUMA_NODE_SYNC_HH
#define CCNUMA_NODE_SYNC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sharded.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Barrier and lock coordination across the whole machine. */
class SyncManager
{
  public:
    SyncManager(const std::string &name, const ShardMap &map,
                Addr sync_base, unsigned line_bytes);

    /** Single-queue convenience constructor (unit tests). */
    SyncManager(const std::string &name, EventQueue &eq,
                Addr sync_base, unsigned line_bytes,
                unsigned num_nodes = 4);

    /** Number of threads each barrier waits for. */
    void setBarrierParticipants(unsigned n) { participants_ = n; }
    unsigned barrierParticipants() const { return participants_; }

    /** Grant propagation delay (MachineConfig::syncHandoffTicks). */
    void setHandoffTicks(Tick d) { handoffTicks_ = d; }
    Tick handoffTicks() const { return handoffTicks_; }

    /**
     * Adaptive-window support: have every recorded operation clamp
     * the posting queue's window stop to op.tick + handoffTicks (the
     * earliest its own grant could land back on that queue). Under
     * conservative lock-step windows the clamp is a provable no-op,
     * so it stays off and the hot path skips it.
     */
    void setAdaptiveWindows(bool on) { adaptiveWindows_ = on; }

    /**
     * Force the deferred (sharded-style) grant path even on a single
     * queue. Serial runs normally use the seed's zero-delay wakes;
     * identity oracles for the sharded modes flip this on
     * (CCNUMA_SYNC_DEFER=1) so both sides time grants identically.
     */
    void setForceDefer(bool on) { forceDefer_ = on; }
    bool forceDefer() const { return forceDefer_; }

    /** Address of barrier @p id's cache line. */
    Addr
    barrierAddr(std::uint32_t id) const
    {
        return syncBase_ + static_cast<Addr>(id) * lineBytes_;
    }

    /** Address of lock @p id's cache line. */
    Addr
    lockAddr(std::uint32_t id) const
    {
        return syncBase_ + lockRegionOffset_ +
               static_cast<Addr>(id) * lineBytes_;
    }

    /**
     * Record a barrier arrival by @p node. When the last participant
     * has arrived, every arriver's @p wake runs (in a fresh event on
     * its own node's queue) handoffTicks after the final arrival;
     * the final arriver's wake receives released = true.
     */
    void arrive(std::uint32_t id, NodeId node,
                std::function<void(bool released)> wake);

    /**
     * Request a lock. @p granted runs handoffTicks after the
     * operation that hands @p node the lock: the acquire itself when
     * the lock is free, the release that reaches this waiter
     * otherwise.
     */
    void lockAcquire(std::uint32_t id, NodeId node,
                     std::function<void()> granted);

    /** Release a lock, handing it to the oldest waiter if any. */
    void lockRelease(std::uint32_t id, NodeId node);

    /**
     * Process operations recorded during the last sharded window, in
     * deterministic (event key) merge order. Called at the window
     * barrier with all shard threads quiescent. Serial mode processes
     * inline and never buffers, so this is then a no-op.
     *
     * Under adaptive windows shards run *different* spans, so an
     * operation posted by a far-ahead shard may sort after operations
     * a lagging shard has not yet posted. @p safe is the tick every
     * shard has provably reached (the post-drain minimum of all
     * queues' nextWhen()): only operations below that horizon are
     * processed now, and each processed operation shrinks the horizon
     * to op.tick + handoffTicks, since its grant can wake a processor
     * whose next sync operation would sort before a later buffered
     * one. The unprocessed suffix is deferred to a later barrier.
     * With the default safe = maxTick (conservative windows, where
     * every shard reached the same end) everything is processed, so
     * behavior is exactly the PR 5 merge.
     */
    void processPending(Tick safe = maxTick);

    /**
     * @return true when no recorded operations are buffered, counting
     * operations deferred past an adaptive horizon.
     */
    bool pendingEmpty() const;

    /**
     * Earliest event key tick among deferred operations (maxTick when
     * none). The adaptive window planner bounds every shard's window
     * by this, so no shard can outrun a deferred operation's effects.
     */
    Tick pendingMinWhen() const;

    // --- speculative (Time-Warp) sharding support ---

    /**
     * Earliest event key tick among *all* buffered operations,
     * recorded logs included (maxTick when none). The speculative
     * frontier caps itself at this plus handoffTicks: an unprocessed
     * operation's earliest effect is its own grant.
     */
    Tick recordedMinWhen() const;

    /**
     * Anti-messages: drop every operation @p shard's record log holds
     * with op.tick at or after @p from_tick — the rollback squashes
     * the execution segment that posted them (the log holds exactly
     * the posts since the last barrier). Operations already merged
     * into the deferred list are committed and never squashed.
     * @return operations cancelled.
     */
    std::uint64_t squashFrom(unsigned shard, Tick from_tick);

    /**
     * Straggler hook on the deferred grant path: runs with the
     * grant's destination node and firing tick immediately before
     * the grant is scheduled. The speculative machine rolls the
     * destination shard back when the grant would land in its past;
     * the grant is then scheduled after the restore, so it is never
     * lost. Null (the default) costs one branch per grant.
     */
    void
    setPreGrantHook(std::function<void(NodeId, Tick)> hook)
    {
        preGrantHook_ = std::move(hook);
    }

    stats::Group &statGroup() { return statGroup_; }

    stats::Scalar statBarriers{"barriers", "barrier episodes completed"};
    stats::Scalar statLockHandoffs{"lock_handoffs",
        "lock acquisitions that had to queue"};

  private:
    struct Op
    {
        enum class Kind
        {
            BarrierArrive,
            LockAcquire,
            LockRelease,
        };
        Kind kind;
        std::uint32_t id = 0;
        NodeId node = 0;
        Tick tick = 0;
        std::function<void(bool)> wake;
        std::function<void()> granted;
    };

    struct Record
    {
        EventKey key;
        Op op;
    };

    struct BarrierArrival
    {
        NodeId node;
        std::function<void(bool)> wake;
    };

    struct BarrierState
    {
        std::vector<BarrierArrival> arrivals;
    };

    struct LockWaiter
    {
        NodeId node;
        std::function<void()> granted;
    };

    struct LockState
    {
        bool held = false;
        std::deque<LockWaiter> waiting;
    };

    /** Route one operation: inline (serial) or recorded (sharded). */
    void post(Op op);
    /** Apply one operation to barrier/lock state, issuing grants. */
    void processOp(Op &op);
    /** Schedule a grant event on @p node's queue with a sync key. */
    void grant(NodeId node, Tick op_tick, std::function<void()> fn);

    ShardMap ownMap_;
    const ShardMap *map_;
    Addr syncBase_;
    unsigned lineBytes_;
    Addr lockRegionOffset_;
    unsigned participants_ = 1;
    Tick handoffTicks_ = 16;
    bool adaptiveWindows_ = false;
    bool forceDefer_ = false;
    std::function<void(NodeId, Tick)> preGrantHook_;
    /** Per-context grant sequence (advances in processing order). */
    std::uint64_t syncSeq_ = 0;
    /** Per-shard operation logs (sharded mode only). */
    std::vector<std::vector<Record>> pending_;
    /**
     * Operations deferred past an adaptive-window safe horizon,
     * kept sorted by event key until a later barrier's horizon
     * admits them.
     */
    std::vector<Record> deferred_;
    std::unordered_map<std::uint32_t, BarrierState> barriers_;
    std::unordered_map<std::uint32_t, LockState> locks_;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NODE_SYNC_HH
