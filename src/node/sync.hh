/**
 * @file
 * Synchronization substrate: barriers and locks.
 *
 * Synchronization variables live in the simulated shared address
 * space (one cache line each), and every barrier arrival / lock
 * acquire / lock release performs a store to the variable's line
 * through the normal cache and coherence machinery, so
 * synchronization generates realistic hot-line protocol traffic at
 * the variable's home node. This manager supplies the *semantics*
 * (who waits, who is released) without unbounded spinning: waiters
 * sleep and are woken by the releasing event, paying one additional
 * coherence access on the handoff.
 */

#ifndef CCNUMA_NODE_SYNC_HH
#define CCNUMA_NODE_SYNC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{

/** Barrier and lock coordination across the whole machine. */
class SyncManager
{
  public:
    SyncManager(const std::string &name, EventQueue &eq,
                Addr sync_base, unsigned line_bytes);

    /** Number of threads each barrier waits for. */
    void setBarrierParticipants(unsigned n) { participants_ = n; }
    unsigned barrierParticipants() const { return participants_; }

    /** Address of barrier @p id's cache line. */
    Addr
    barrierAddr(std::uint32_t id) const
    {
        return syncBase_ + static_cast<Addr>(id) * lineBytes_;
    }

    /** Address of lock @p id's cache line. */
    Addr
    lockAddr(std::uint32_t id) const
    {
        return syncBase_ + lockRegionOffset_ +
               static_cast<Addr>(id) * lineBytes_;
    }

    /**
     * Record a barrier arrival.
     * @param wake called (in a fresh event) when the barrier opens;
     *        not called for the final arriver.
     * @return true iff this arrival released the barrier.
     */
    bool arrive(std::uint32_t id, std::function<void()> wake);

    /**
     * Try to acquire a lock.
     * @param granted called (in a fresh event) when a queued acquire
     *        eventually gets the lock; not called on immediate
     *        success.
     * @return true iff the lock was free and is now held.
     */
    bool lockAcquire(std::uint32_t id, std::function<void()> granted);

    /** Release a lock, handing it to the oldest waiter if any. */
    void lockRelease(std::uint32_t id);

    stats::Group &statGroup() { return statGroup_; }

    stats::Scalar statBarriers{"barriers", "barrier episodes completed"};
    stats::Scalar statLockHandoffs{"lock_handoffs",
        "lock acquisitions that had to queue"};

  private:
    struct BarrierState
    {
        unsigned arrived = 0;
        std::vector<std::function<void()>> waiting;
    };

    struct LockState
    {
        bool held = false;
        std::deque<std::function<void()>> waiting;
    };

    EventQueue &eq_;
    Addr syncBase_;
    unsigned lineBytes_;
    Addr lockRegionOffset_;
    unsigned participants_ = 1;
    std::unordered_map<std::uint32_t, BarrierState> barriers_;
    std::unordered_map<std::uint32_t, LockState> locks_;
    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NODE_SYNC_HH
