#include "node/sync.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ccnuma
{

SyncManager::SyncManager(const std::string &name, const ShardMap &map,
                         Addr sync_base, unsigned line_bytes)
    : map_(&map), syncBase_(sync_base), lineBytes_(line_bytes),
      lockRegionOffset_(static_cast<Addr>(line_bytes) * 64 * 1024),
      statGroup_(name)
{
    pending_.resize(map_->numShards);
    statGroup_.add(&statBarriers);
    statGroup_.add(&statLockHandoffs);
}

SyncManager::SyncManager(const std::string &name, EventQueue &eq,
                         Addr sync_base, unsigned line_bytes,
                         unsigned num_nodes)
    : ownMap_(ShardMap::single(eq, num_nodes)), map_(&ownMap_),
      syncBase_(sync_base), lineBytes_(line_bytes),
      lockRegionOffset_(static_cast<Addr>(line_bytes) * 64 * 1024),
      statGroup_(name)
{
    pending_.resize(1);
    statGroup_.add(&statBarriers);
    statGroup_.add(&statLockHandoffs);
}

void
SyncManager::arrive(std::uint32_t id, NodeId node,
                    std::function<void(bool)> wake)
{
    Op op;
    op.kind = Op::Kind::BarrierArrive;
    op.id = id;
    op.node = node;
    op.tick = map_->of(node).curTick();
    op.wake = std::move(wake);
    post(std::move(op));
}

void
SyncManager::lockAcquire(std::uint32_t id, NodeId node,
                         std::function<void()> granted)
{
    Op op;
    op.kind = Op::Kind::LockAcquire;
    op.id = id;
    op.node = node;
    op.tick = map_->of(node).curTick();
    op.granted = std::move(granted);
    post(std::move(op));
}

void
SyncManager::lockRelease(std::uint32_t id, NodeId node)
{
    Op op;
    op.kind = Op::Kind::LockRelease;
    op.id = id;
    op.node = node;
    op.tick = map_->of(node).curTick();
    post(std::move(op));
}

void
SyncManager::post(Op op)
{
    if (!map_->sharded()) {
        processOp(op);
        return;
    }
    // Record with the calling event's key; the barrier-time merge
    // sorts by it, reproducing the order the serial path would have
    // processed these operations inline.
    EventQueue &q = map_->of(op.node);
    EventKey key = q.currentKey();
    key.sub = q.nextSub();
    pending_[map_->shardOf(op.node)].push_back(
        Record{key, std::move(op)});
    // An adaptive window must not run past the point where this
    // operation's own grant could land back on this queue (e.g. an
    // uncontended lock acquire granted to the acquirer): stop the
    // window there so the grant is scheduled before the shard resumes.
    // Cross-shard grants are covered by the planner's pending-sync
    // bound instead.
    if (adaptiveWindows_)
        q.clampWindowStop(q.curTick() + handoffTicks_);
}

void
SyncManager::processPending(Tick safe)
{
    // Merge in place on deferred_ (not a local): a speculative
    // pre-grant rollback may squash records *during* processOp, and
    // squashFrom must see everything merged this barrier.
    for (auto &log : pending_) {
        for (Record &r : log)
            deferred_.push_back(std::move(r));
        log.clear();
    }
    std::sort(deferred_.begin(), deferred_.end(),
              [](const Record &a, const Record &b) {
                  return a.key < b.key;
              });
    // Process in key order while below the safe horizon. Each
    // processed operation may grant a wake at op.tick + handoffTicks,
    // and the woken processor's very next sync operation could sort
    // before anything still buffered at a later tick — so the horizon
    // shrinks as we go. Records at or past the horizon wait, sorted,
    // in deferred_ for a later barrier.
    //
    // A mid-loop squashFrom only erases records with op.tick at or
    // past a rollback target (>= the speculative frontier), and every
    // record below index i has key.when < horizon <= frontier — so
    // erasure never shifts the processed prefix, and re-reading
    // size() each iteration keeps the walk sound. The record being
    // processed is moved to a local first: the erase may reallocate.
    Tick horizon = safe;
    std::size_t i = 0;
    while (i < deferred_.size()) {
        if (deferred_[i].key.when >= horizon)
            break;
        Record r = std::move(deferred_[i]);
        ++i;
        processOp(r.op);
        if (r.op.tick + handoffTicks_ < horizon)
            horizon = r.op.tick + handoffTicks_;
    }
    deferred_.erase(deferred_.begin(),
                    deferred_.begin() + static_cast<std::ptrdiff_t>(i));
}

bool
SyncManager::pendingEmpty() const
{
    for (const auto &log : pending_) {
        if (!log.empty())
            return false;
    }
    return deferred_.empty();
}

Tick
SyncManager::pendingMinWhen() const
{
    // deferred_ is kept sorted by processPending.
    return deferred_.empty() ? maxTick : deferred_.front().key.when;
}

Tick
SyncManager::recordedMinWhen() const
{
    Tick m = pendingMinWhen();
    for (const auto &log : pending_) {
        for (const Record &r : log)
            m = std::min(m, r.key.when);
    }
    return m;
}

std::uint64_t
SyncManager::squashFrom(unsigned shard, Tick from_tick)
{
    // Only the shard's record log is squashable: it holds exactly the
    // operations posted since the last barrier, i.e. by the execution
    // segment being rolled back. deferred_ must NOT be filtered — its
    // records were merged (committed) at earlier barriers, and one may
    // carry op.tick >= from_tick when the burst base was set by a
    // queue event rather than the sync horizon; dropping it would lose
    // a committed grant forever.
    auto &log = pending_[shard];
    auto keep = std::remove_if(log.begin(), log.end(),
                               [from_tick](const Record &r) {
                                   return r.op.tick >= from_tick;
                               });
    auto n = static_cast<std::uint64_t>(log.end() - keep);
    log.erase(keep, log.end());
    return n;
}

void
SyncManager::grant(NodeId node, Tick op_tick,
                   std::function<void()> fn)
{
    if (!map_->sharded() && !forceDefer_) {
        // Serial fast path: the wake runs as an ordinary zero-delay
        // event on the single queue (the seed's behavior). Sharded
        // runs always defer — the explicit sync key is what makes
        // grant order mode-independent.
        map_->of(node).scheduleFunctionIn(std::move(fn), 0);
        return;
    }
    Tick when = op_tick + handoffTicks_;
    if (preGrantHook_)
        preGrantHook_(node, when);
    map_->of(node).scheduleExternal(
        std::move(fn), when, Event::defaultPriority, "sync-grant",
        op_tick, map_->syncCtx(), syncSeq_++, map_->nodeCtx(node));
}

void
SyncManager::processOp(Op &op)
{
    switch (op.kind) {
      case Op::Kind::BarrierArrive: {
        BarrierState &b = barriers_[op.id];
        b.arrivals.push_back(
            BarrierArrival{op.node, std::move(op.wake)});
        ccnuma_assert(b.arrivals.size() <= participants_);
        if (b.arrivals.size() < participants_)
            return;
        ++statBarriers;
        std::vector<BarrierArrival> arrivals = std::move(b.arrivals);
        barriers_.erase(op.id);
        for (std::size_t i = 0; i < arrivals.size(); ++i) {
            bool released = (i + 1 == arrivals.size());
            grant(arrivals[i].node, op.tick,
                  [w = std::move(arrivals[i].wake), released] {
                      w(released);
                  });
        }
        return;
      }
      case Op::Kind::LockAcquire: {
        LockState &l = locks_[op.id];
        if (!l.held) {
            l.held = true;
            grant(op.node, op.tick, std::move(op.granted));
            return;
        }
        ++statLockHandoffs;
        l.waiting.push_back(
            LockWaiter{op.node, std::move(op.granted)});
        return;
      }
      case Op::Kind::LockRelease: {
        auto it = locks_.find(op.id);
        ccnuma_assert(it != locks_.end() && it->second.held);
        LockState &l = it->second;
        if (!l.waiting.empty()) {
            LockWaiter next = std::move(l.waiting.front());
            l.waiting.pop_front();
            // The lock stays held; ownership passes to the waiter.
            grant(next.node, op.tick, std::move(next.granted));
            return;
        }
        l.held = false;
        return;
      }
    }
}

} // namespace ccnuma
