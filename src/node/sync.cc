#include "node/sync.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ccnuma
{

SyncManager::SyncManager(const std::string &name, const ShardMap &map,
                         Addr sync_base, unsigned line_bytes)
    : map_(&map), syncBase_(sync_base), lineBytes_(line_bytes),
      lockRegionOffset_(static_cast<Addr>(line_bytes) * 64 * 1024),
      statGroup_(name)
{
    pending_.resize(map_->numShards);
    statGroup_.add(&statBarriers);
    statGroup_.add(&statLockHandoffs);
}

SyncManager::SyncManager(const std::string &name, EventQueue &eq,
                         Addr sync_base, unsigned line_bytes,
                         unsigned num_nodes)
    : ownMap_(ShardMap::single(eq, num_nodes)), map_(&ownMap_),
      syncBase_(sync_base), lineBytes_(line_bytes),
      lockRegionOffset_(static_cast<Addr>(line_bytes) * 64 * 1024),
      statGroup_(name)
{
    pending_.resize(1);
    statGroup_.add(&statBarriers);
    statGroup_.add(&statLockHandoffs);
}

void
SyncManager::arrive(std::uint32_t id, NodeId node,
                    std::function<void(bool)> wake)
{
    Op op;
    op.kind = Op::Kind::BarrierArrive;
    op.id = id;
    op.node = node;
    op.tick = map_->of(node).curTick();
    op.wake = std::move(wake);
    post(std::move(op));
}

void
SyncManager::lockAcquire(std::uint32_t id, NodeId node,
                         std::function<void()> granted)
{
    Op op;
    op.kind = Op::Kind::LockAcquire;
    op.id = id;
    op.node = node;
    op.tick = map_->of(node).curTick();
    op.granted = std::move(granted);
    post(std::move(op));
}

void
SyncManager::lockRelease(std::uint32_t id, NodeId node)
{
    Op op;
    op.kind = Op::Kind::LockRelease;
    op.id = id;
    op.node = node;
    op.tick = map_->of(node).curTick();
    post(std::move(op));
}

void
SyncManager::post(Op op)
{
    if (!map_->sharded()) {
        processOp(op);
        return;
    }
    // Record with the calling event's key; the barrier-time merge
    // sorts by it, reproducing the order the serial path would have
    // processed these operations inline.
    EventQueue &q = map_->of(op.node);
    EventKey key = q.currentKey();
    key.sub = q.nextSub();
    pending_[map_->shardOf(op.node)].push_back(
        Record{key, std::move(op)});
    // An adaptive window must not run past the point where this
    // operation's own grant could land back on this queue (e.g. an
    // uncontended lock acquire granted to the acquirer): stop the
    // window there so the grant is scheduled before the shard resumes.
    // Cross-shard grants are covered by the planner's pending-sync
    // bound instead.
    if (adaptiveWindows_)
        q.clampWindowStop(q.curTick() + handoffTicks_);
}

void
SyncManager::processPending(Tick safe)
{
    std::vector<Record> merged = std::move(deferred_);
    deferred_.clear();
    for (auto &log : pending_) {
        for (Record &r : log)
            merged.push_back(std::move(r));
        log.clear();
    }
    std::sort(merged.begin(), merged.end(),
              [](const Record &a, const Record &b) {
                  return a.key < b.key;
              });
    // Process in key order while below the safe horizon. Each
    // processed operation may grant a wake at op.tick + handoffTicks,
    // and the woken processor's very next sync operation could sort
    // before anything still buffered at a later tick — so the horizon
    // shrinks as we go. Records at or past the horizon wait, sorted,
    // in deferred_ for a later barrier.
    Tick horizon = safe;
    std::size_t i = 0;
    for (; i < merged.size(); ++i) {
        Record &r = merged[i];
        if (r.key.when >= horizon)
            break;
        processOp(r.op);
        if (r.op.tick + handoffTicks_ < horizon)
            horizon = r.op.tick + handoffTicks_;
    }
    for (; i < merged.size(); ++i)
        deferred_.push_back(std::move(merged[i]));
}

bool
SyncManager::pendingEmpty() const
{
    for (const auto &log : pending_) {
        if (!log.empty())
            return false;
    }
    return deferred_.empty();
}

Tick
SyncManager::pendingMinWhen() const
{
    // deferred_ is kept sorted by processPending.
    return deferred_.empty() ? maxTick : deferred_.front().key.when;
}

void
SyncManager::grant(NodeId node, Tick op_tick,
                   std::function<void()> fn)
{
    map_->of(node).scheduleExternal(
        std::move(fn), op_tick + handoffTicks_,
        Event::defaultPriority, "sync-grant", op_tick,
        map_->syncCtx(), syncSeq_++, map_->nodeCtx(node));
}

void
SyncManager::processOp(Op &op)
{
    switch (op.kind) {
      case Op::Kind::BarrierArrive: {
        BarrierState &b = barriers_[op.id];
        b.arrivals.push_back(
            BarrierArrival{op.node, std::move(op.wake)});
        ccnuma_assert(b.arrivals.size() <= participants_);
        if (b.arrivals.size() < participants_)
            return;
        ++statBarriers;
        std::vector<BarrierArrival> arrivals = std::move(b.arrivals);
        barriers_.erase(op.id);
        for (std::size_t i = 0; i < arrivals.size(); ++i) {
            bool released = (i + 1 == arrivals.size());
            grant(arrivals[i].node, op.tick,
                  [w = std::move(arrivals[i].wake), released] {
                      w(released);
                  });
        }
        return;
      }
      case Op::Kind::LockAcquire: {
        LockState &l = locks_[op.id];
        if (!l.held) {
            l.held = true;
            grant(op.node, op.tick, std::move(op.granted));
            return;
        }
        ++statLockHandoffs;
        l.waiting.push_back(
            LockWaiter{op.node, std::move(op.granted)});
        return;
      }
      case Op::Kind::LockRelease: {
        auto it = locks_.find(op.id);
        ccnuma_assert(it != locks_.end() && it->second.held);
        LockState &l = it->second;
        if (!l.waiting.empty()) {
            LockWaiter next = std::move(l.waiting.front());
            l.waiting.pop_front();
            // The lock stays held; ownership passes to the waiter.
            grant(next.node, op.tick, std::move(next.granted));
            return;
        }
        l.held = false;
        return;
      }
    }
}

} // namespace ccnuma
