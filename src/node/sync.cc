#include "node/sync.hh"

#include "sim/logging.hh"

namespace ccnuma
{

SyncManager::SyncManager(const std::string &name, EventQueue &eq,
                         Addr sync_base, unsigned line_bytes)
    : eq_(eq), syncBase_(sync_base), lineBytes_(line_bytes),
      lockRegionOffset_(static_cast<Addr>(line_bytes) * 64 * 1024),
      statGroup_(name)
{
    statGroup_.add(&statBarriers);
    statGroup_.add(&statLockHandoffs);
}

bool
SyncManager::arrive(std::uint32_t id, std::function<void()> wake)
{
    BarrierState &b = barriers_[id];
    ++b.arrived;
    ccnuma_assert(b.arrived <= participants_);
    if (b.arrived == participants_) {
        ++statBarriers;
        std::vector<std::function<void()>> waiting =
            std::move(b.waiting);
        barriers_.erase(id);
        for (auto &w : waiting)
            eq_.scheduleFunctionIn(std::move(w), 0);
        return true;
    }
    b.waiting.push_back(std::move(wake));
    return false;
}

bool
SyncManager::lockAcquire(std::uint32_t id,
                         std::function<void()> granted)
{
    LockState &l = locks_[id];
    if (!l.held) {
        l.held = true;
        return true;
    }
    ++statLockHandoffs;
    l.waiting.push_back(std::move(granted));
    return false;
}

void
SyncManager::lockRelease(std::uint32_t id)
{
    auto it = locks_.find(id);
    ccnuma_assert(it != locks_.end() && it->second.held);
    LockState &l = it->second;
    if (!l.waiting.empty()) {
        auto next = std::move(l.waiting.front());
        l.waiting.pop_front();
        // The lock stays held; ownership passes to the waiter.
        eq_.scheduleFunctionIn(std::move(next), 0);
        return;
    }
    l.held = false;
}

} // namespace ccnuma
