/**
 * @file
 * An SMP node: compute processors with private L1/L2 caches, a split-
 * transaction snooping bus, an interleaved memory controller, the
 * node's slice of the directory, and the coherence controller
 * (Figure 1 of the paper).
 */

#ifndef CCNUMA_NODE_SMP_NODE_HH
#define CCNUMA_NODE_SMP_NODE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "cc/coherence_controller.hh"
#include "directory/directory.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "net/network.hh"
#include "node/cache_unit.hh"
#include "node/processor.hh"
#include "node/sync.hh"
#include "sim/event_queue.hh"

namespace ccnuma
{

/** Per-node configuration bundle. */
struct NodeParams
{
    unsigned procsPerNode = 4;
    BusParams bus;
    MemoryParams mem;
    DirectoryParams dir;
    CcParams cc;
    CacheUnitParams cache;
    ProcessorParams proc;
};

/** One SMP node of the CC-NUMA machine. */
class SmpNode : public LocalCacheProbe
{
  public:
    SmpNode(const std::string &name, EventQueue &eq, NodeId id,
            const NodeParams &p, Network &net, AddressMap &map,
            SyncManager &sync,
            std::function<std::uint64_t()> next_version);

    NodeId id() const { return id_; }
    Bus &bus() { return *bus_; }
    MemoryController &memory() { return *mem_; }
    DirectoryStore &directory() { return *dir_; }
    CoherenceController &cc() { return *cc_; }

    unsigned numProcs() const
    {
        return static_cast<unsigned>(procs_.size());
    }
    Processor &proc(unsigned i) { return *procs_.at(i); }
    CacheUnit &cacheUnit(unsigned i) { return *caches_.at(i); }

    // --- LocalCacheProbe ---
    bool lineCachedLocally(Addr line_addr) const override;
    bool lineModifiedLocally(Addr line_addr) const override;

  private:
    NodeId id_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<MemoryController> mem_;
    std::unique_ptr<DirectoryStore> dir_;
    std::unique_ptr<CoherenceController> cc_;
    std::vector<std::unique_ptr<CacheUnit>> caches_;
    std::vector<std::unique_ptr<Processor>> procs_;
};

} // namespace ccnuma

#endif // CCNUMA_NODE_SMP_NODE_HH
