#include "node/smp_node.hh"

#include <unordered_map>
#include <utility>

namespace ccnuma
{

SmpNode::SmpNode(const std::string &name, EventQueue &eq, NodeId id,
                 const NodeParams &p, Network &net, AddressMap &map,
                 SyncManager &sync,
                 std::function<std::uint64_t()> next_version)
    : id_(id)
{
    bus_ = std::make_unique<Bus>(name + ".bus", eq, p.bus);
    mem_ = std::make_unique<MemoryController>(name + ".mem", p.mem);
    dir_ = std::make_unique<DirectoryStore>(name + ".dir", p.dir);
    bus_->setMemory(mem_.get());

    cc_ = std::make_unique<CoherenceController>(
        name + ".cc", eq, id, p.cc, *bus_, net, map, *dir_);
    cc_->setProbe(this);
    cc_->setMemory(mem_.get());

    for (unsigned i = 0; i < p.procsPerNode; ++i) {
        std::string cname =
            name + ".cpu" + std::to_string(i);
        caches_.push_back(std::make_unique<CacheUnit>(
            cname + ".cache", eq, *bus_, map, id, p.cache,
            next_version));
        ProcId pid =
            id * p.procsPerNode + i; // global numbering by node
        procs_.push_back(std::make_unique<Processor>(
            cname, eq, pid, id, *caches_.back(), sync, p.proc));
    }

    if (p.cc.recoveryEnabled) {
        // Stuck-miss escalation: each cache unit's per-miss timer
        // drives the controller's retry/probe/degraded ladder.
        for (auto &c : caches_) {
            c->setMissTimeoutHook(
                [this](Addr line) { cc_->missTimeout(line); });
        }
        // Directory reconstruction: a recovering peer probes us for
        // every local copy of a line homed there. The controller's
        // own writeback buffer is scanned separately; here we report
        // cache and cache-writeback-buffer copies.
        AddressMap *amap = &map;
        cc_->setCacheScan(
            [this, amap](NodeId home,
                         const std::function<void(
                             Addr, bool, std::uint64_t)> &emit) {
                // One response per line, dirty dominating: collapse
                // per-processor copies so the rebuilding home is not
                // told about the same line twice.
                std::unordered_map<Addr, std::pair<bool,
                                                   std::uint64_t>>
                    seen;
                auto note = [&](Addr line, bool dirty,
                                std::uint64_t ver) {
                    if (amap->homeOf(line) != home)
                        return;
                    auto [it, inserted] = seen.try_emplace(
                        line, std::make_pair(dirty, ver));
                    if (!inserted && dirty)
                        it->second = {true, ver};
                };
                for (const auto &c : caches_) {
                    c->l2().forEachLine([&](const CacheLine &l) {
                        note(l.lineAddr,
                             l.state == LineState::Modified,
                             l.version);
                    });
                    // Evicted Modified lines still in the cache-level
                    // writeback buffer are the line's only copy:
                    // report them as dirty so the rebuilt entry
                    // matches the WriteBack that is about to arrive.
                    c->forEachWb([&](Addr line, std::uint64_t ver) {
                        note(line, true, ver);
                    });
                }
                for (const auto &[line, v] : seen)
                    emit(line, v.first, v.second);
            });
    }
}

bool
SmpNode::lineCachedLocally(Addr line_addr) const
{
    for (const auto &c : caches_) {
        if (c->hasLine(line_addr))
            return true;
    }
    return false;
}

bool
SmpNode::lineModifiedLocally(Addr line_addr) const
{
    for (const auto &c : caches_) {
        const CacheLine *l = c->l2().findLine(line_addr);
        if (l && l->state == LineState::Modified)
            return true;
    }
    return false;
}

} // namespace ccnuma
