#include "node/smp_node.hh"

namespace ccnuma
{

SmpNode::SmpNode(const std::string &name, EventQueue &eq, NodeId id,
                 const NodeParams &p, Network &net, AddressMap &map,
                 SyncManager &sync,
                 std::function<std::uint64_t()> next_version)
    : id_(id)
{
    bus_ = std::make_unique<Bus>(name + ".bus", eq, p.bus);
    mem_ = std::make_unique<MemoryController>(name + ".mem", p.mem);
    dir_ = std::make_unique<DirectoryStore>(name + ".dir", p.dir);
    bus_->setMemory(mem_.get());

    cc_ = std::make_unique<CoherenceController>(
        name + ".cc", eq, id, p.cc, *bus_, net, map, *dir_);
    cc_->setProbe(this);
    cc_->setMemory(mem_.get());

    for (unsigned i = 0; i < p.procsPerNode; ++i) {
        std::string cname =
            name + ".cpu" + std::to_string(i);
        caches_.push_back(std::make_unique<CacheUnit>(
            cname + ".cache", eq, *bus_, map, id, p.cache,
            next_version));
        ProcId pid =
            id * p.procsPerNode + i; // global numbering by node
        procs_.push_back(std::make_unique<Processor>(
            cname, eq, pid, id, *caches_.back(), sync, p.proc));
    }
}

bool
SmpNode::lineCachedLocally(Addr line_addr) const
{
    for (const auto &c : caches_) {
        if (c->hasLine(line_addr))
            return true;
    }
    return false;
}

bool
SmpNode::lineModifiedLocally(Addr line_addr) const
{
    for (const auto &c : caches_) {
        const CacheLine *l = c->l2().findLine(line_addr);
        if (l && l->state == LineState::Modified)
            return true;
    }
    return false;
}

} // namespace ccnuma
