/**
 * @file
 * Per-processor two-level cache hierarchy and its bus-side logic.
 *
 * Each compute processor owns an L1 (small, clean subset of L2) and a
 * snooping L2 that participates in the node's MESI protocol. The unit
 * has a single MSHR (the modeled processors are in-order and blocking)
 * and a small writeback buffer that keeps evicted dirty lines
 * snoopable until their writeback data has moved on the bus.
 */

#ifndef CCNUMA_NODE_CACHE_UNIT_HH
#define CCNUMA_NODE_CACHE_UNIT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "mem/address_map.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"

namespace ccnuma
{

/** Cache hierarchy parameters. */
struct CacheUnitParams
{
    std::uint64_t l1Bytes = 16 * 1024;
    unsigned l1Assoc = 4;
    std::uint64_t l2Bytes = 1024 * 1024;
    unsigned l2Assoc = 4;
    unsigned lineBytes = 128;
    Tick l1HitLatency = 1;
    Tick l2HitLatency = 8;
    /** Extra ticks after the critical beat before restart. */
    Tick fillRestart = 4;
    /**
     * Per-miss request timer (PR 6): while a miss is outstanding,
     * fire the timeout hook every this many ticks so the coherence
     * controller can escalate a stuck miss through its recovery
     * ladder. 0 (the default) disables the timer entirely.
     */
    Tick missTimeoutTicks = 0;
};

/**
 * One processor's L1+L2 with bus attachment. Timing for hits is
 * returned synchronously; misses go through the split-transaction
 * bus and complete via callback.
 */
class CacheUnit : public BusAgent, public Snapshottable
{
  public:
    CacheUnit(const std::string &name, EventQueue &eq, Bus &bus,
              AddressMap &map, NodeId node,
              const CacheUnitParams &p,
              std::function<std::uint64_t()> next_version);

    /** Result of a synchronous cache access attempt. */
    struct AccessResult
    {
        bool hit = false;
        Tick latency = 0;
        std::uint64_t version = 0; ///< data version observed
    };

    /**
     * Attempt @p addr; on a hit the access completes in
     * result.latency ticks. On a miss the caller must follow up with
     * startMiss().
     */
    AccessResult access(Addr addr, bool write);

    /**
     * Begin servicing a miss (one outstanding at a time). When the
     * fill's critical beat arrives, @p on_restart is invoked with the
     * tick at which the processor may restart and the version of the
     * data it consumed.
     */
    void startMiss(Addr addr, bool write,
                   std::function<void(Tick, std::uint64_t)> on_restart);

    /** @return true while the single MSHR is occupied. */
    bool missPending() const { return mshr_.valid; }

    /** @return true while a miss on @p line_addr is outstanding. */
    bool
    missPendingOn(Addr line_addr) const
    {
        return mshr_.valid && mshr_.lineAddr == line_addr;
    }

    /** Functional probe: does this unit hold a supplyable copy? */
    bool hasLine(Addr addr) const;

    /**
     * Install the miss-timeout hook (PR 6): called with the stuck
     * miss's line address each time the per-miss timer expires. The
     * node wires it to the coherence controller's escalation ladder.
     */
    void
    setMissTimeoutHook(std::function<void(Addr)> hook)
    {
        missTimeoutHook_ = std::move(hook);
    }

    /**
     * Degraded-mode fence of a dead node: functionally drop every
     * cached line and writeback-buffer entry. The recovery manager
     * migrates Modified data to the lines' homes first.
     */
    void
    invalidateAll()
    {
        l1_.invalidateAll();
        l2_.invalidateAll();
        wbBuffer_.clear();
    }

    /**
     * Fail-stop node death: drop all cached state and stop reacting
     * to bus completions (a fill already in flight for the dead
     * node's MSHR must not re-install a line the migration no longer
     * tracks). The processors are killed alongside, so no new access
     * ever arrives.
     */
    void
    shutdown()
    {
        dead_ = true;
        invalidateAll();
        mshr_.valid = false;
        ++missGen_;
    }

    /** Functional peek at the L2 state (checker). */
    const SetAssocCache &l2() const { return l2_; }

    // --- integrity (PR 7) ---

    /**
     * Inject a correctable bit flip into one word of a random valid
     * L2 line (see SetAssocCache::injectCeFlip).
     * @return the victim line address, or kNoLineTag if empty.
     */
    Addr injectCeFlip(Random &rng) { return l2_.injectCeFlip(rng); }

    /**
     * Uncorrectable-flip containment for a *clean* copy: silently
     * drop the line from both levels. Indistinguishable from a
     * silent clean eviction, which the protocol already tolerates
     * (the directory may list non-holders).
     */
    void
    discardLine(Addr line)
    {
        l2_.invalidate(line);
        l1_.invalidate(line);
    }

    /** L2 scrub pass; @return corrections applied. */
    std::uint64_t scrubL2() { return l2_.scrubNow(); }

    /** L2 single-bit corrections (access + scrub). */
    std::uint64_t eccCorrected() const { return l2_.eccCorrected(); }

    /**
     * PoisonNack containment: abandon the outstanding miss on a dead
     * @p line. The MSHR is cleared without an install and its bus
     * transaction id is remembered so the eventual (deferred) bus
     * completion drains without touching the cache — the processor
     * behind the miss is killed by the caller, so the restart
     * callback is dropped.
     */
    void poisonAbort(Addr line);

    /**
     * Visit writeback-buffer entries as (line, version) pairs. The
     * recovery paths treat these as dirty copies: an evicted Modified
     * line lives only here until its writeback data moves on the bus.
     */
    template <typename F>
    void
    forEachWb(F &&f) const
    {
        for (const auto &wb : wbBuffer_)
            f(wb.lineAddr, wb.version);
    }

    // --- BusAgent ---
    bool busRetryCheck(const BusTxn &txn) const override;
    SnoopResult busSnoop(BusTxn &txn) override;
    void busDone(BusTxn &txn) override;

    stats::Group &statGroup() { return statGroup_; }

    // --- speculative checkpointing: composes the two cache levels'
    // journal snapshots with a full copy of the unit's small state ---

    void
    specBegin() override
    {
        l1_.specBegin();
        l2_.specBegin();
    }

    std::shared_ptr<const void>
    specSave(std::size_t &bytes) override
    {
        auto s = std::make_shared<Snap>();
        s->l1 = l1_.specSave(bytes);
        s->l2 = l2_.specSave(bytes);
        s->mshr = mshr_;
        s->wbBuffer = wbBuffer_;
        s->poisonedTxns = poisonedTxns_;
        s->missGen = missGen_;
        s->dead = dead_;
        bytes += sizeof(Snap) + s->wbBuffer.size() * sizeof(WbEntry);
        return s;
    }

    void
    specRestore(const void *snap) override
    {
        const Snap *s = static_cast<const Snap *>(snap);
        l1_.specRestore(s->l1.get());
        l2_.specRestore(s->l2.get());
        mshr_ = s->mshr;
        wbBuffer_ = s->wbBuffer;
        poisonedTxns_ = s->poisonedTxns;
        missGen_ = s->missGen;
        dead_ = s->dead;
    }

    void
    specCommit(const void *oldest) override
    {
        const Snap *s = static_cast<const Snap *>(oldest);
        l1_.specCommit(s->l1.get());
        l2_.specCommit(s->l2.get());
    }

    void
    specEnd() override
    {
        l1_.specEnd();
        l2_.specEnd();
    }

    stats::Scalar statL1Hits{"l1_hits", "L1 hits"};
    stats::Scalar statL2Hits{"l2_hits", "L2 hits (L1 misses)"};
    stats::Scalar statMisses{"misses", "L2 misses (bus transactions)"};
    stats::Scalar statUpgradeMisses{"upgrade_misses",
        "stores to Shared lines requiring exclusive ownership"};
    stats::Scalar statWriteBacks{"writebacks",
        "dirty lines written back on eviction"};

  private:
    void installFill(Addr line_addr, bool write, const BusTxn &txn);
    SnoopResult wbSupply(BusTxn &txn);
    void armMissTimer();

    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool write = false;
        std::uint64_t busTxnId = 0;
        bool invalAfterFill = false;
        std::function<void(Tick, std::uint64_t)> onRestart;
    };

    struct WbEntry
    {
        Addr lineAddr = 0;
        std::uint64_t version = 0;
        std::uint64_t busTxnId = 0;
    };

    /** Value snapshot of the unit (cache levels by journal mark). */
    struct Snap
    {
        std::shared_ptr<const void> l1;
        std::shared_ptr<const void> l2;
        Mshr mshr;
        std::vector<WbEntry> wbBuffer;
        std::vector<std::uint64_t> poisonedTxns;
        std::uint64_t missGen = 0;
        bool dead = false;
    };

    std::string name_;
    EventQueue &eq_;
    Bus &bus_;
    AddressMap &map_;
    NodeId node_ = 0;
    CacheUnitParams params_;
    std::function<std::uint64_t()> nextVersion_;
    int agentId_ = -1;

    SetAssocCache l1_;
    SetAssocCache l2_;
    Mshr mshr_;
    std::vector<WbEntry> wbBuffer_;
    /** Bus txns of poison-aborted misses still draining (PR 7). */
    std::vector<std::uint64_t> poisonedTxns_;
    std::function<void(Addr)> missTimeoutHook_;
    /** Invalidates timers of retired misses. */
    std::uint64_t missGen_ = 0;
    /** Set by shutdown(): the node fail-stopped permanently. */
    bool dead_ = false;

    stats::Group statGroup_;
};

} // namespace ccnuma

#endif // CCNUMA_NODE_CACHE_UNIT_HH
