#include "node/cache_unit.hh"

#include <algorithm>

namespace ccnuma
{

CacheUnit::CacheUnit(const std::string &name, EventQueue &eq,
                     Bus &bus, AddressMap &map, NodeId node,
                     const CacheUnitParams &p,
                     std::function<std::uint64_t()> next_version)
    : name_(name), eq_(eq), bus_(bus), map_(map), node_(node),
      params_(p), nextVersion_(std::move(next_version)),
      l1_(name + ".l1", p.l1Bytes, p.l1Assoc, p.lineBytes),
      l2_(name + ".l2", p.l2Bytes, p.l2Assoc, p.lineBytes),
      statGroup_(name)
{
    agentId_ = bus_.addAgent(this);
    statGroup_.add(&statL1Hits);
    statGroup_.add(&statL2Hits);
    statGroup_.add(&statMisses);
    statGroup_.add(&statUpgradeMisses);
    statGroup_.add(&statWriteBacks);
}

CacheUnit::AccessResult
CacheUnit::access(Addr addr, bool write)
{
    CacheLine *c2 = l2_.findLine(addr);
    if (!c2) {
        ++statMisses;
        return {};
    }
    if (write) {
        if (c2->state == LineState::Shared) {
            // Need exclusive ownership from the home.
            ++statUpgradeMisses;
            ++statMisses;
            return {};
        }
        // E -> M is a silent local upgrade (local lines only; remote
        // lines are never Exclusive).
        c2->state = LineState::Modified;
        c2->version = nextVersion_();
        l2_.touch(c2);
        CacheLine *c1 = l1_.findLine(addr);
        if (c1) {
            c1->version = c2->version;
            l1_.touch(c1);
            ++statL1Hits;
            return {true, params_.l1HitLatency, c2->version};
        }
        ++statL2Hits;
        return {true, params_.l2HitLatency, c2->version};
    }
    l2_.touch(c2);
    CacheLine *c1 = l1_.findLine(addr);
    if (c1) {
        l1_.touch(c1);
        ++statL1Hits;
        return {true, params_.l1HitLatency, c2->version};
    }
    // L1 fill from L2; the L1 is a clean subset, so the victim is
    // dropped silently.
    CacheLine *nl1 = l1_.allocate(addr, LineState::Shared, nullptr);
    nl1->version = c2->version;
    ++statL2Hits;
    return {true, params_.l2HitLatency, c2->version};
}

void
CacheUnit::startMiss(Addr addr, bool write,
                     std::function<void(Tick, std::uint64_t)>
                         on_restart)
{
    ccnuma_assert(!mshr_.valid);
    Addr line = l2_.lineAlign(addr);
    // Under first-touch placement, the first miss pins the page to
    // the missing processor's node.
    map_.resolve(line, node_);
    // A store to a Shared copy consumes its stale copy now; the
    // exclusive fill brings fresh data.
    if (write) {
        l2_.invalidate(line);
        l1_.invalidate(line);
    }
    mshr_.valid = true;
    mshr_.lineAddr = line;
    mshr_.write = write;
    mshr_.invalAfterFill = false;
    mshr_.onRestart = std::move(on_restart);
    mshr_.busTxnId = bus_.request(
        write ? BusCmd::ReadExcl : BusCmd::Read, line, agentId_);
    armMissTimer();
}

void
CacheUnit::armMissTimer()
{
    if (params_.missTimeoutTicks == 0 || !missTimeoutHook_)
        return;
    const std::uint64_t gen = ++missGen_;
    const Addr line = mshr_.lineAddr;
    eq_.scheduleFunctionIn(
        [this, gen, line] {
            if (gen != missGen_ || !mshr_.valid ||
                mshr_.lineAddr != line) {
                return; // the miss completed; stale timer
            }
            missTimeoutHook_(line);
            // Still stuck: re-arm so the escalation ladder keeps
            // climbing until the fill lands or degraded mode fences
            // the home.
            armMissTimer();
        },
        params_.missTimeoutTicks);
}

bool
CacheUnit::hasLine(Addr addr) const
{
    if (l2_.findLine(addr) != nullptr)
        return true;
    Addr line = l2_.lineAlign(addr);
    for (const auto &wb : wbBuffer_) {
        if (wb.lineAddr == line)
            return true;
    }
    return false;
}

SnoopResult
CacheUnit::wbSupply(BusTxn &txn)
{
    // The line's only copy may be in the writeback buffer, in flight
    // to memory/home. Supply local lines to anyone (memory has not
    // absorbed the data yet); supply remote lines only to the
    // coherence controller's own fetches — other requesters must be
    // serialized through the home node.
    if (txn.cmd != BusCmd::Read && txn.cmd != BusCmd::ReadExcl)
        return SnoopResult::None;
    const Addr line = txn.lineAddr;
    for (const auto &wb : wbBuffer_) {
        if (wb.lineAddr != line)
            continue;
        bool local = map_.homeOf(line) == node_;
        if (local || txn.fromCC) {
            txn.dataVersion = wb.version;
            return SnoopResult::DirtySupply;
        }
        break;
    }
    return SnoopResult::None;
}

bool
CacheUnit::busRetryCheck(const BusTxn &txn) const
{
    // Our fill is bus-ordered ahead of this transaction but has not
    // installed yet: the requester must retry so it observes our
    // copy — a store it must take from us instead of the stale
    // memory image, or a read whose Exclusive grant would otherwise
    // be duplicated. Only applies once our fill's data is actually
    // scheduled — a deferred request is ordered at the home instead,
    // and must not stall the home's own operations.
    return mshr_.valid && mshr_.lineAddr == txn.lineAddr &&
           txn.id != mshr_.busTxnId &&
           txn.cmd != BusCmd::WriteBack &&
           bus_.fillScheduled(mshr_.busTxnId);
}

SnoopResult
CacheUnit::busSnoop(BusTxn &txn)
{
    const Addr line = txn.lineAddr;

    // A read fill in flight is invalidated after it completes if an
    // exclusive request passes it on the bus: the fill's data is
    // ordered before that writer and may be consumed once. A
    // read-exclusive fill is never poisoned this way — the home
    // serialized the racing invalidation *before* our ownership
    // grant, and our stale Shared copy was already dropped when the
    // miss was issued.
    if (mshr_.valid && !mshr_.write && mshr_.lineAddr == line &&
        (txn.cmd == BusCmd::ReadExcl || txn.cmd == BusCmd::Inval) &&
        txn.id != mshr_.busTxnId) {
        mshr_.invalAfterFill = true;
    }

    CacheLine *c2 = l2_.findLine(line);
    if (!c2)
        return wbSupply(txn);
    ccnuma_trace(line, "%8llu %s snoop %s in %s ver=%llu",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 busCmdName(txn.cmd), lineStateName(c2->state),
                 (unsigned long long)c2->version);

    switch (txn.cmd) {
      case BusCmd::Read: {
        if (c2->state == LineState::Modified) {
            c2->state = LineState::Shared;
            txn.dataVersion = c2->version;
            CacheLine *c1 = l1_.findLine(line);
            if (c1)
                c1->version = c2->version;
            return SnoopResult::DirtySupply;
        }
        if (c2->state == LineState::Exclusive)
            c2->state = LineState::Shared;
        // Shared copies of remote lines may be supplied
        // cache-to-cache within the node (the directory tracks
        // nodes, not processors).
        if (map_.homeOf(line) != node_) {
            txn.dataVersion = c2->version;
            return SnoopResult::SharedSupply;
        }
        return SnoopResult::Shared;
      }
      case BusCmd::ReadExcl: {
        LineState prior = c2->state;
        std::uint64_t version = c2->version;
        if (prior == LineState::Modified)
            txn.dataVersion = version;
        l2_.invalidate(line);
        l1_.invalidate(line);
        if (prior == LineState::Modified)
            return SnoopResult::DirtySupply;
        // Shared copies of remote lines can feed the coherence
        // controller's exclusive fetches (serving a forwarded
        // read-exclusive after a demotion left only Shared copies).
        if (map_.homeOf(line) != node_) {
            txn.dataVersion = version;
            return SnoopResult::SharedSupply;
        }
        return SnoopResult::Shared;
      }
      case BusCmd::Inval:
        l2_.invalidate(line);
        l1_.invalidate(line);
        return SnoopResult::Shared;
      case BusCmd::WriteBack:
        return SnoopResult::None;
    }
    return SnoopResult::None;
}

void
CacheUnit::installFill(Addr line_addr, bool write, const BusTxn &txn)
{
    LineState st;
    std::uint64_t version = txn.dataVersion;
    if (write) {
        st = LineState::Modified;
        version = nextVersion_();
    } else if (map_.homeOf(line_addr) == node_ && !txn.sharedSeen &&
               txn.exclusiveOk &&
               txn.supply == SupplyDecision::Memory) {
        st = LineState::Exclusive;
    } else {
        st = LineState::Shared;
    }

    SetAssocCache::Victim victim;
    CacheLine *nl = l2_.allocate(line_addr, st, &victim);
    nl->version = version;
    ccnuma_trace(line_addr, "%8llu %s fill %s ver=%llu supply=%d",
                 (unsigned long long)eq_.curTick(), name_.c_str(),
                 lineStateName(st), (unsigned long long)version,
                 (int)txn.supply);
    if (victim.valid) {
        l1_.invalidate(victim.lineAddr);
        if (victim.state == LineState::Modified) {
            ++statWriteBacks;
            std::uint64_t wb_txn =
                bus_.request(BusCmd::WriteBack, victim.lineAddr,
                             agentId_, victim.version);
            wbBuffer_.push_back(
                {victim.lineAddr, victim.version, wb_txn});
        }
    }
    // Mirror into L1.
    if (l1_.findLine(line_addr) == nullptr) {
        CacheLine *nl1 =
            l1_.allocate(line_addr, LineState::Shared, nullptr);
        nl1->version = version;
    }
}

void
CacheUnit::poisonAbort(Addr line)
{
    if (!mshr_.valid || mshr_.lineAddr != line)
        return;
    poisonedTxns_.push_back(mshr_.busTxnId);
    mshr_.valid = false;
    mshr_.onRestart = nullptr;
    ++missGen_; // retire any armed miss timer
}

void
CacheUnit::busDone(BusTxn &txn)
{
    if (dead_)
        return;
    // Writeback transaction completed: the data moved on the bus and
    // was absorbed by memory or captured by the coherence controller.
    for (auto it = wbBuffer_.begin(); it != wbBuffer_.end(); ++it) {
        if (it->busTxnId == txn.id) {
            wbBuffer_.erase(it);
            return;
        }
    }

    // A poison-aborted miss's transaction draining (deferredRespond
    // after a PoisonNack): nothing to install, nobody to restart.
    auto pit = std::find(poisonedTxns_.begin(), poisonedTxns_.end(),
                         txn.id);
    if (pit != poisonedTxns_.end()) {
        poisonedTxns_.erase(pit);
        return;
    }

    ccnuma_assert(mshr_.valid && mshr_.busTxnId == txn.id);
    installFill(mshr_.lineAddr, mshr_.write, txn);
    std::uint64_t consumed =
        mshr_.write ? l2_.findLine(mshr_.lineAddr)->version
                    : txn.dataVersion;
    if (mshr_.invalAfterFill) {
        // An exclusive request passed us during the fill; the
        // processor consumes its (older, but coherently ordered)
        // value and the copy is dropped.
        l2_.invalidate(mshr_.lineAddr);
        l1_.invalidate(mshr_.lineAddr);
    }
    auto cb = std::move(mshr_.onRestart);
    mshr_.valid = false;
    ++missGen_; // retire any armed miss timer
    cb(eq_.curTick() + params_.fillRestart, consumed);
}

} // namespace ccnuma
