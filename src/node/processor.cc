#include "node/processor.hh"

#include "obs/tracer.hh"

namespace ccnuma
{

Processor::Processor(const std::string &name, EventQueue &eq,
                     ProcId id, NodeId node, CacheUnit &cache,
                     SyncManager &sync, const ProcessorParams &p)
    : name_(name), eq_(eq), id_(id), node_(node), cache_(cache),
      sync_(sync), params_(p), statGroup_(name)
{
    statGroup_.add(&statInstructions);
    statGroup_.add(&statMisses);
    statGroup_.add(&statStallTicks);
    statGroup_.add(&statSyncWaitTicks);
}

Processor::~Processor()
{
    if (runEvent_.scheduled())
        eq_.deschedule(&runEvent_);
}

void
Processor::start(Tick when)
{
    eq_.schedule(&runEvent_, when);
}

void
Processor::resumeAt(Tick when)
{
    if (killed_)
        return;
    eq_.schedule(&runEvent_, when);
}

void
Processor::kill()
{
    if (killed_)
        return;
    killed_ = true;
    if (runEvent_.scheduled())
        eq_.deschedule(&runEvent_);
    if (!finished_)
        finish();
}

void
Processor::checkRead(Addr addr, std::uint64_t version)
{
    if (!params_.checkMonotonic)
        return;
    Addr line = cache_.l2().lineAlign(addr);
    std::uint64_t &last = lastSeen_[line];
    if (version < last) {
        panic("%s: non-monotonic read of line %#llx "
              "(saw version %llu after %llu)", name_.c_str(),
              (unsigned long long)line, (unsigned long long)version,
              (unsigned long long)last);
    }
    last = version;
}

void
Processor::run()
{
    if (killed_)
        return;
    Tick delta = 0;
    ThreadOp op;
    while (true) {
        if (!stream_.next(op))
            op = ThreadOp{}; // Kind::End

        switch (op.kind) {
          case ThreadOp::Kind::Compute:
            delta += op.count;
            instructions_ += op.count;
            continue;

          case ThreadOp::Kind::Load:
          case ThreadOp::Kind::Store: {
            bool write = op.kind == ThreadOp::Kind::Store;
            ++instructions_;
            if (write)
                ++stores_;
            else
                ++loads_;
            auto r = cache_.access(op.addr, write);
            if (r.hit) {
                delta += r.latency;
                if (!write)
                    checkRead(op.addr, r.version);
                continue;
            }
            // Miss: issue at the accumulated local time.
            if (delta == 0) {
                issueMiss(op);
            } else {
                eq_.scheduleFunctionIn(
                    [this, op] { issueMiss(op); }, delta);
            }
            return;
          }

          case ThreadOp::Kind::Barrier:
          case ThreadOp::Kind::Lock:
          case ThreadOp::Kind::Unlock:
            if (delta == 0) {
                doSync(op);
            } else {
                eq_.scheduleFunctionIn([this, op] { doSync(op); },
                                       delta);
            }
            return;

          case ThreadOp::Kind::End:
            if (delta == 0) {
                finish();
            } else {
                eq_.scheduleFunctionIn([this] { finish(); }, delta);
            }
            return;
        }
    }
}

void
Processor::issueMiss(ThreadOp op)
{
    if (killed_)
        return;
    ++misses_;
    Tick issue = eq_.curTick();
    bool write = op.kind == ThreadOp::Kind::Store;
    Addr addr = op.addr;
    if (tracer_)
        tracer_->missBegin(id_, addr, write, issue);
    eq_.scheduleFunctionIn(
        [this, addr, write, issue] {
            cache_.startMiss(
                addr, write,
                [this, addr, write, issue](Tick restart,
                                           std::uint64_t version) {
                    stallTicks_ += restart - issue;
                    if (tracer_)
                        tracer_->missEnd(id_, restart);
                    if (!write)
                        checkRead(addr, version);
                    resumeAt(restart);
                });
        },
        params_.missDetect);
}

void
Processor::syncRef(Addr addr, bool write, std::function<void()> then)
{
    if (killed_)
        return;
    ++instructions_;
    if (write)
        ++stores_;
    else
        ++loads_;
    auto r = cache_.access(addr, write);
    if (r.hit) {
        eq_.scheduleFunctionIn(std::move(then), r.latency);
        return;
    }
    ++misses_;
    Tick issue = eq_.curTick();
    eq_.scheduleFunctionIn(
        [this, addr, write, issue, then = std::move(then)] {
            cache_.startMiss(addr, write,
                             [this, issue, then](Tick restart,
                                                 std::uint64_t) {
                                 stallTicks_ += restart - issue;
                                 eq_.scheduleFunction(then, restart);
                             });
        },
        params_.missDetect);
}

void
Processor::doSync(ThreadOp op)
{
    std::uint32_t id = op.count;
    switch (op.kind) {
      case ThreadOp::Kind::Barrier:
        // Flag-barrier traffic: arrivals read the (shared) barrier
        // line; the releasing arrival writes the flag, invalidating
        // the spinners, who each re-read it on wake-up. Every
        // arriver — including the releasing one — sleeps until the
        // sync manager's deferred grant arrives.
        syncRef(sync_.barrierAddr(id), /*write=*/false, [this, id] {
            syncWaitStart_ = eq_.curTick();
            sync_.arrive(id, node_, [this, id](bool released) {
                syncWaitTicks_ += eq_.curTick() - syncWaitStart_;
                syncRef(sync_.barrierAddr(id), /*write=*/released,
                        [this] { run(); });
            });
        });
        return;
      case ThreadOp::Kind::Lock:
        syncRef(sync_.lockAddr(id), /*write=*/true, [this, id] {
            syncWaitStart_ = eq_.curTick();
            sync_.lockAcquire(id, node_, [this] {
                syncWaitTicks_ += eq_.curTick() - syncWaitStart_;
                run();
            });
        });
        return;
      case ThreadOp::Kind::Unlock:
        syncRef(sync_.lockAddr(id), /*write=*/true, [this, id] {
            sync_.lockRelease(id, node_);
            run();
        });
        return;
      default:
        panic("%s: doSync with non-sync op", name_.c_str());
    }
}

void
Processor::finish()
{
    finished_ = true;
    finishTick_ = eq_.curTick();
    statInstructions.set(static_cast<double>(instructions_));
    statMisses.set(static_cast<double>(misses_));
    statStallTicks.set(static_cast<double>(stallTicks_));
    statSyncWaitTicks.set(static_cast<double>(syncWaitTicks_));
    if (onFinished_)
        onFinished_();
}

} // namespace ccnuma
