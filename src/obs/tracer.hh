/**
 * @file
 * The per-request tracing and occupancy-timeline tracker (the
 * observability subsystem's core).
 *
 * One Tracer is owned by the Machine when tracing is enabled; every
 * instrumented component holds a null-checked pointer, so the cost
 * with tracing off is one branch per hook. Two kinds of state are
 * kept:
 *
 *  - aggregates (per-request-class latency histograms, per-engine
 *    occupancy/stall/queue statistics, handler and sub-op occupancy
 *    attribution) — fed by EVERY request, so exported means are exact
 *    regardless of sampling;
 *
 *  - the event record (a bounded ring of TraceEvents feeding the
 *    Chrome trace sink) — Miss/BusTxn/NetMsg events are subject to
 *    deterministic 1-in-N sampling, engine/queue events are always
 *    recorded (they ARE the occupancy timeline), and overflow drops
 *    are counted, never silent.
 *
 * Request classification is observational: the tracer watches message
 * deliveries at the machine's router and flags each open miss with
 * what the protocol actually did (home involvement, third-party
 * owner), then bins the miss into the paper's Table 1/3 breakdown
 * categories when the processor restarts.
 */

#ifndef CCNUMA_OBS_TRACER_HH
#define CCNUMA_OBS_TRACER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs_config.hh"
#include "obs/ring.hh"
#include "obs/trace_event.hh"
#include "protocol/handlers.hh"
#include "protocol/messages.hh"
#include "protocol/occupancy.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ccnuma
{
namespace obs
{

class TraceSink;

/** Machine shape the tracer needs (set once by the Machine). */
struct TracerContext
{
    unsigned numNodes = 1;
    unsigned procsPerNode = 1;
    unsigned enginesPerCc = 1;
    unsigned lineBytes = 128; ///< miss addrs normalize to lines
    EngineType engineType = EngineType::HWC;
    /** Home-node lookup for classification (the address map). */
    std::function<NodeId(Addr)> homeOf;
};

/** Per-engine occupancy-timeline aggregates. */
struct EngineAgg
{
    Tick busyTicks = 0;
    Tick stallTicks = 0;
    std::uint64_t handlers = 0;     ///< incl. dispatch-only releases
    std::uint64_t stalls = 0;
    stats::Distribution queueWait{"queue_wait",
        "dispatch-queue wait (ticks)", 10.0, 64};
    stats::Distribution queueDepth{"queue_depth",
        "dispatch-queue depth at enqueue", 1.0, 32};

    void
    reset()
    {
        busyTicks = 0;
        stallTicks = 0;
        handlers = 0;
        stalls = 0;
        queueWait.reset();
        queueDepth.reset();
    }

    void
    merge(const EngineAgg &o)
    {
        busyTicks += o.busyTicks;
        stallTicks += o.stallTicks;
        handlers += o.handlers;
        stalls += o.stalls;
        queueWait.merge(o.queueWait);
        queueDepth.merge(o.queueDepth);
    }
};

/** The tracker. All hooks are cheap; none allocates after setup. */
class Tracer
{
  public:
    Tracer(const ObsConfig &cfg, const TracerContext &ctx);
    ~Tracer();

    const ObsConfig &config() const { return cfg_; }
    const TracerContext &context() const { return ctx_; }

    // ---- processor miss lifecycle ----

    /** A processor stalled on a miss. One outstanding miss per CPU. */
    void missBegin(ProcId p, Addr addr, bool write, Tick now);

    /** The miss's restart arrived; classify and account it. */
    void missEnd(ProcId p, Tick restart);

    /** Observe a delivered protocol message (classification). */
    void noteDeliver(const Msg &msg);

    // ---- coherence-controller hooks ----

    /**
     * A protocol engine released after executing @p handler
     * (0xff = dispatch-only release with no handler body).
     */
    void engineSpan(NodeId node, unsigned engine, std::uint8_t handler,
                    int extra_targets, Tick start, Tick end);

    /** An injected engine stall interval. */
    void engineStall(NodeId node, unsigned engine, Tick start,
                     Tick dur);

    /** A dispatch item waited in queue @p q from enqueue to grant. */
    void queueWait(NodeId node, unsigned engine, unsigned q,
                   Tick enqueued, Tick granted);

    /** Queue depth observed at an enqueue (all queues, one engine). */
    void queueDepth(NodeId node, unsigned engine, std::size_t depth);

    // ---- bus / network / transport hooks ----

    /** A completed SMP bus transaction. @p cmd_name is static. */
    void busSpan(NodeId node, const char *cmd_name, std::uint8_t cmd,
                 Addr line_addr, Tick start, Tick end);

    /** A network message in flight from @p src to @p dst. */
    void netSpan(NodeId src, NodeId dst, unsigned bytes, Tick sent,
                 Tick delivered);

    /** A reliable-transport retransmission or timeout (instant). */
    void xportEvent(SpanKind kind, NodeId src, NodeId dst, Tick now);

    // ---- fault / recovery / integrity lifecycle hooks ----

    /**
     * A fault-lifecycle instant on @p node (crash, rebuild wave,
     * scrub correction, poison, ...). Always recorded — these are
     * rare and each one matters to a post-mortem.
     */
    void faultEvent(FaultKind kind, NodeId node, Addr line, Tick now);

    // ---- lifecycle ----

    /**
     * Discard everything recorded so far (warm-up exclusion): the
     * event ring, all aggregates, and any open miss spans. Events
     * that started before the reset never appear in the export.
     */
    void reset(Tick now);

    /** Tick the current measurement interval started at. */
    Tick measureStart() const { return measureStart_; }

    /**
     * Fold another tracer's record into this one (sharded runs keep
     * one tracer per shard and merge at the end). Aggregates add;
     * the two event rings are combined and re-sorted by start tick
     * so the export reads like one machine-wide timeline. The merge
     * order is deterministic for a given shard count. @p other is
     * left in an unspecified drained state.
     */
    void absorb(Tracer &other);

    /** Feed the buffered events and aggregates through @p sink. */
    void exportTo(TraceSink &sink, Tick now) const;

    /**
     * Write the configured outputs (Chrome trace and/or metrics
     * file); called by the Machine at the end of run().
     */
    void exportAll(Tick now) const;

    // ---- aggregate access (metrics sink, stats dump, tests) ----

    const EventRing &ring() const { return ring_; }

    template <typename F>
    void
    forEachEvent(F &&f) const
    {
        ring_.forEach(std::forward<F>(f));
    }

    const stats::Distribution &classLatency(ReqClass c) const
    {
        return *classHist_[static_cast<unsigned>(c)];
    }

    std::uint64_t misses() const { return missSeq_; }

    const EngineAgg &engineAgg(NodeId node, unsigned engine) const
    {
        return engines_[node * ctx_.enginesPerCc + engine];
    }

    std::uint64_t handlerCount(HandlerId h) const
    {
        return handlerCount_[static_cast<unsigned>(h)];
    }
    Tick handlerTicks(HandlerId h) const
    {
        return handlerTicks_[static_cast<unsigned>(h)];
    }
    std::uint64_t dispatchOnlyCount() const { return dispatchOnly_; }

    /** Engine ticks attributed to Table 2 sub-op class @p op. */
    Tick subOpTicks(SubOp op) const
    {
        return subOpTicks_[static_cast<unsigned>(op)];
    }
    /** Engine ticks beyond the static sub-op costs (bus/mem waits). */
    Tick busMemWaitTicks() const { return busMemWait_; }

    std::uint64_t busTxns() const { return busSeq_; }
    double busMeanTicks() const { return busLat_.mean(); }
    std::uint64_t netMsgs() const { return netSeq_; }
    double netMeanTicks() const { return netLat_.mean(); }
    std::uint64_t netBytes() const { return netBytes_; }
    std::uint64_t xportRetransmits() const { return xportRetx_; }
    std::uint64_t xportTimeouts() const { return xportTo_; }
    std::uint64_t faultEvents() const { return faultEvents_; }
    std::uint64_t faultEvents(FaultKind k) const
    {
        return faultKindCount_[static_cast<unsigned>(k)];
    }

    stats::Group &statGroup() { return statGroup_; }
    const stats::Group &statGroup() const { return statGroup_; }

  private:
    /** Record @p ev unless it began before the measured interval. */
    void record(const TraceEvent &ev);

    /** Deterministic 1-in-N decision over a per-kind sequence. */
    bool
    sampled(std::uint64_t seq) const
    {
        return (seq + cfg_.sampleSeed) % cfg_.sampleEvery == 0;
    }

    /** One outstanding miss per processor. */
    struct MissSlot
    {
        bool open = false;
        Addr line = 0;
        Tick start = 0;
        bool write = false;
        bool homeLocal = false;
        bool sawNetReq = false;     ///< home was involved
        bool sawThreeHop = false;   ///< data came from a third party
        bool sawOwnerAction = false;///< remote owner acted for home
        bool record = false;        ///< passed the sampling gate
    };

    ReqClass classify(const MissSlot &s) const;

    ObsConfig cfg_;
    TracerContext ctx_;
    EventRing ring_;
    Tick measureStart_ = 0;

    std::vector<MissSlot> slots_;  ///< indexed by global ProcId
    std::vector<EngineAgg> engines_;
    OccupancyModel model_;

    std::array<std::unique_ptr<stats::Distribution>,
               numReqClasses> classHist_;
    std::array<std::uint64_t, numHandlers> handlerCount_{};
    std::array<Tick, numHandlers> handlerTicks_{};
    std::array<Tick, numSubOps> subOpTicks_{};
    Tick busMemWait_ = 0;
    std::uint64_t dispatchOnly_ = 0;

    stats::Average busLat_{"bus_latency", "bus txn latency (ticks)"};
    stats::Average netLat_{"net_latency", "msg flight time (ticks)"};
    std::uint64_t netBytes_ = 0;
    std::uint64_t xportRetx_ = 0;
    std::uint64_t xportTo_ = 0;
    std::uint64_t faultEvents_ = 0;
    std::array<std::uint64_t, numFaultKinds> faultKindCount_{};

    // per-kind sampling sequences
    std::uint64_t missSeq_ = 0;
    std::uint64_t busSeq_ = 0;
    std::uint64_t netSeq_ = 0;
    std::uint64_t engineSeq_ = 0;

    stats::Group statGroup_{"obs"};
};

} // namespace obs
} // namespace ccnuma

#endif // CCNUMA_OBS_TRACER_HH
