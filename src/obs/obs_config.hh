/**
 * @file
 * Observability subsystem configuration. Everything is off by
 * default so paper-fidelity runs pay nothing; the CCNUMA_TRACE
 * environment variable force-enables tracing without a config change
 * (mirroring CCNUMA_VERIFY / CCNUMA_RELIABLE). See DESIGN.md
 * ("Observability subsystem") for the span taxonomy and the sink
 * interface.
 */

#ifndef CCNUMA_OBS_OBS_CONFIG_HH
#define CCNUMA_OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

namespace ccnuma
{

/** Machine-level observability knobs. */
struct ObsConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /**
     * Chrome trace-event JSON output path (loadable in Perfetto /
     * chrome://tracing); empty disables the trace sink while keeping
     * the aggregate histograms live. (CCNUMA_TRACE_FILE overrides.)
     */
    std::string chromeTraceFile = "ccnuma_trace.json";

    /**
     * Machine-readable metrics output path. A ".json" suffix emits a
     * structured JSON document; ".csv" emits flat metric,value rows.
     * Empty disables the metrics sink. (CCNUMA_TRACE_METRICS
     * overrides.)
     */
    std::string metricsFile = "ccnuma_metrics.json";

    /**
     * Record span events for 1 request in every @c sampleEvery
     * (deterministic under @c sampleSeed); 1 traces everything.
     * Aggregate histograms always see every request — sampling only
     * bounds the event record. (CCNUMA_TRACE_SAMPLE overrides.)
     */
    std::uint64_t sampleEvery = 1;

    /** Offsets which 1-in-N residue class gets sampled. */
    std::uint64_t sampleSeed = 0;

    /**
     * Bounded event-ring capacity (entries, rounded up to a power of
     * two). When full, new events are dropped and counted — never
     * silently. (CCNUMA_TRACE_RING overrides.)
     */
    std::size_t ringCapacity = 1u << 18;
};

} // namespace ccnuma

#endif // CCNUMA_OBS_OBS_CONFIG_HH
