/**
 * @file
 * Bounded single-producer event ring for the observability
 * subsystem.
 *
 * The simulator is single-threaded, so no atomics are needed; the
 * structure still follows the classic lock-free ring discipline —
 * fixed power-of-two storage, monotonically increasing head/tail
 * counters, mask indexing, and a drop-with-count overflow policy —
 * so the hot-path cost is an index mask and a store, and a future
 * multi-threaded host could swap the counters for atomics without
 * changing the layout.
 *
 * Overflow policy: when the ring is full the NEWEST event is dropped
 * and counted (the recorded prefix stays contiguous, which keeps the
 * Chrome trace self-consistent). Drops are never silent: the sinks
 * report the count, and tests assert on it.
 */

#ifndef CCNUMA_OBS_RING_HH
#define CCNUMA_OBS_RING_HH

#include <cstdint>
#include <vector>

#include "obs/trace_event.hh"

namespace ccnuma
{
namespace obs
{

/** Fixed-capacity FIFO of TraceEvents with counted overflow. */
class EventRing
{
  public:
    /** @param capacity entries; rounded up to a power of two. */
    explicit EventRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const
    {
        return static_cast<std::size_t>(head_ - tail_);
    }
    bool empty() const { return head_ == tail_; }

    /** Events accepted since construction (or the last clear()). */
    std::uint64_t pushed() const { return pushed_; }

    /** Events dropped because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** @return false (and count a drop) when the ring is full. */
    bool
    push(const TraceEvent &ev)
    {
        if (size() == buf_.size()) {
            ++dropped_;
            return false;
        }
        buf_[head_ & mask_] = ev;
        ++head_;
        ++pushed_;
        return true;
    }

    /** Visit all buffered events oldest-first (does not consume). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::uint64_t i = tail_; i != head_; ++i)
            f(buf_[i & mask_]);
    }

    /**
     * Adjust the accounting by externally tracked deltas. Used when
     * rebuilding a ring from several source rings (sharded-run
     * merge) so pushed/dropped still reflect the original recording,
     * not the rebuild.
     */
    void
    bump(std::uint64_t pushed, std::uint64_t dropped)
    {
        pushed_ += pushed;
        dropped_ += dropped;
    }

    /** Discard everything, including the drop/push accounting. */
    void
    clear()
    {
        head_ = tail_ = 0;
        pushed_ = 0;
        dropped_ = 0;
    }

  private:
    std::vector<TraceEvent> buf_;
    std::size_t mask_ = 0;
    std::uint64_t head_ = 0; ///< next write position (monotonic)
    std::uint64_t tail_ = 0; ///< oldest retained event (monotonic)
    std::uint64_t pushed_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace obs
} // namespace ccnuma

#endif // CCNUMA_OBS_RING_HH
