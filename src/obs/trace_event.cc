#include "obs/trace_event.hh"

namespace ccnuma
{
namespace obs
{

const char *
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::EngineHandler: return "engine_handler";
      case SpanKind::EngineStall: return "engine_stall";
      case SpanKind::QueueWait: return "queue_wait";
      case SpanKind::BusTxn: return "bus_txn";
      case SpanKind::NetMsg: return "net_msg";
      case SpanKind::Miss: return "miss";
      case SpanKind::XportRetransmit: return "xport_retransmit";
      case SpanKind::XportTimeout: return "xport_timeout";
      case SpanKind::FaultEvent: return "fault_event";
    }
    return "unknown";
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Crash: return "crash";
      case FaultKind::Restart: return "restart";
      case FaultKind::RebuildWave: return "rebuild_wave";
      case FaultKind::RebuildDone: return "rebuild_done";
      case FaultKind::Migration: return "migration";
      case FaultKind::FlipInjected: return "flip_injected";
      case FaultKind::CrcDrop: return "crc_drop";
      case FaultKind::ScrubCorrection: return "scrub_correction";
      case FaultKind::Poison: return "poison";
      case FaultKind::LineDead: return "line_dead";
      case FaultKind::ProcKill: return "proc_kill";
      case FaultKind::Escalation: return "escalation";
      case FaultKind::NumKinds: break;
    }
    return "unknown";
}

const char *
reqClassName(ReqClass c)
{
    switch (c) {
      case ReqClass::LocalRead: return "local_read";
      case ReqClass::LocalWrite: return "local_write";
      case ReqClass::LocalReadRemote: return "local_read_remote";
      case ReqClass::LocalWriteRemote: return "local_write_remote";
      case ReqClass::RemoteReadNear: return "remote_read_near";
      case ReqClass::RemoteWriteNear: return "remote_write_near";
      case ReqClass::RemoteReadClean: return "remote_read_clean";
      case ReqClass::RemoteWriteClean: return "remote_write_clean";
      case ReqClass::RemoteReadDirty: return "remote_read_dirty";
      case ReqClass::RemoteWriteDirty: return "remote_write_dirty";
      case ReqClass::NumClasses: break;
    }
    return "unknown";
}

} // namespace obs
} // namespace ccnuma
