/**
 * @file
 * The observability subsystem's span/event record and the request
 * classification taxonomy.
 *
 * A TraceEvent is a fixed-size POD so the bounded ring buffer never
 * allocates on the hot path. Interpretation of the generic fields
 * (lane, a, b) depends on the SpanKind; the sinks own the mapping to
 * human-readable output.
 */

#ifndef CCNUMA_OBS_TRACE_EVENT_HH
#define CCNUMA_OBS_TRACE_EVENT_HH

#include <cstdint>

#include "sim/types.hh"

namespace ccnuma
{
namespace obs
{

/** What a recorded event describes. */
enum class SpanKind : std::uint8_t
{
    /** Protocol-engine handler execution. a = HandlerId (or 0xff for
     *  a dispatch-and-release with no handler), lane = engine. */
    EngineHandler,
    /** Injected engine stall interval. lane = engine. */
    EngineStall,
    /** Dispatch-queue wait (enqueue to engine grant). lane = engine,
     *  a = queue index (responses > net requests > bus requests). */
    QueueWait,
    /** SMP bus transaction (request to completion). a = BusCmd. */
    BusTxn,
    /** Network message flight (send to delivery). lane = dst node,
     *  b = wire bytes. */
    NetMsg,
    /** End-to-end processor miss. lane = local proc index,
     *  a = ReqClass. */
    Miss,
    /** Reliable-transport retransmission (instant). lane = dst. */
    XportRetransmit,
    /** Reliable-transport timer expiry (instant). lane = dst. */
    XportTimeout,
    /** Fault/recovery lifecycle event (instant). a = FaultKind. */
    FaultEvent,
};

constexpr unsigned numSpanKinds = 9;

const char *spanKindName(SpanKind k);

/**
 * What a FaultEvent describes: the fault-injection and
 * recovery/integrity lifecycle (PR 6 crashes and rebuilds, PR 7
 * corruption, scrubbing, and poisoning), rendered as a dedicated
 * instant-event track in the Chrome/Perfetto export.
 */
enum class FaultKind : std::uint8_t
{
    Crash,           ///< controller fail-stopped
    Restart,         ///< controller back up, rebuild starting
    RebuildWave,     ///< directory-reconstruction probe wave sent
    RebuildDone,     ///< directory rebuilt, requests resume
    Migration,       ///< degraded mode: pages migrated off a node
    FlipInjected,    ///< a seeded bit flip landed
    CrcDrop,         ///< transport frame failed its CRC (re-sent)
    ScrubCorrection, ///< background scrub corrected a single flip
    Poison,          ///< PoisonNack fenced a requester
    LineDead,        ///< sole dirty copy lost; line marked dead
    ProcKill,        ///< processor killed by poison containment
    Escalation,      ///< directory UE escalated to crash recovery
    NumKinds,
};

constexpr unsigned numFaultKinds =
    static_cast<unsigned>(FaultKind::NumKinds);

const char *faultKindName(FaultKind k);

/**
 * Request classes for the per-class latency histograms — the
 * paper's Table 1/3 breakdown categories. "Local" means the missing
 * processor sits on the line's home node; "near" means a remote line
 * was supplied within the requesting node without home involvement.
 */
enum class ReqClass : std::uint8_t
{
    LocalRead,        ///< local line, served at home
    LocalWrite,       ///< local line, ownership granted at home
    LocalReadRemote,  ///< local line, dirty at a remote owner
    LocalWriteRemote, ///< local line, remote copies recalled
    RemoteReadNear,   ///< remote line, supplied within the node
    RemoteWriteNear,  ///< remote line, ownership migrated in-node
    RemoteReadClean,  ///< remote line, clean at home (Table 3 row)
    RemoteWriteClean, ///< remote line, uncached/shared at home
    RemoteReadDirty,  ///< remote line, 3-hop via the owner
    RemoteWriteDirty, ///< remote line, 3-hop exclusive via owner
    NumClasses,
};

constexpr unsigned numReqClasses =
    static_cast<unsigned>(ReqClass::NumClasses);

const char *reqClassName(ReqClass c);

/** One recorded span or instant event (fixed-size, no ownership). */
struct TraceEvent
{
    Tick start = 0;
    Tick dur = 0;           ///< 0 for instant events
    Addr lineAddr = 0;      ///< 0 when not line-associated
    /**
     * Optional static-duration display name supplied by the producer
     * (e.g. the bus command mnemonic). Lets layers above obs label
     * events with their own enum names without obs depending on their
     * headers. Null means "derive from kind/a".
     */
    const char *label = nullptr;
    std::uint32_t id = 0;   ///< per-kind sequence / transaction id
    std::uint16_t node = 0; ///< originating node (Chrome pid)
    std::uint16_t lane = 0; ///< engine / proc / dst, per SpanKind
    SpanKind kind = SpanKind::EngineHandler;
    std::uint8_t a = 0;     ///< kind-specific (handler, class, cmd)
    std::uint16_t b = 0;    ///< kind-specific (bytes, aux)
};

} // namespace obs
} // namespace ccnuma

#endif // CCNUMA_OBS_TRACE_EVENT_HH
