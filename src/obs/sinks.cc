#include "obs/sinks.hh"

#include <cstdio>
#include <string>

#include "obs/tracer.hh"
#include "report/json.hh"

namespace ccnuma
{
namespace obs
{

namespace
{

/** Ticks (5 ns each) to Chrome trace microseconds. */
std::string
ticksToUs(Tick t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  ticksToNs(t) / 1000.0);
    return buf;
}

const char *
queueName(unsigned q)
{
    switch (q) {
      case 0: return "q_net_resp";
      case 1: return "q_net_req";
      case 2: return "q_bus_req";
    }
    return "q";
}

std::string
engineLabel(const Tracer &t, unsigned e)
{
    if (t.context().enginesPerCc == 2)
        return e == 0 ? "LPE" : "RPE";
    return "engine" + std::to_string(e);
}

} // namespace

void
ChromeTraceSink::emitMeta(unsigned pid, unsigned tid,
                          const char *what, const std::string &name)
{
    if (!first_)
        os_ << ",\n";
    first_ = false;
    os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
        << report::jsonEscape(name) << "\"}}";
}

void
ChromeTraceSink::begin(const Tracer &t, Tick /*now*/)
{
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    const TracerContext &ctx = t.context();
    for (unsigned n = 0; n < ctx.numNodes; ++n) {
        emitMeta(n, 0, "process_name",
                 "node" + std::to_string(n));
        for (unsigned e = 0; e < ctx.enginesPerCc; ++e) {
            emitMeta(n, tidEngineBase + e, "thread_name",
                     engineLabel(t, e));
            emitMeta(n, tidQueueBase + e, "thread_name",
                     "queues " + engineLabel(t, e));
        }
        emitMeta(n, tidBus, "thread_name", "smp_bus");
        emitMeta(n, tidNet, "thread_name", "network");
        emitMeta(n, tidXport, "thread_name", "xport");
        emitMeta(n, tidFaults, "thread_name", "faults");
        for (unsigned p = 0; p < ctx.procsPerNode; ++p)
            emitMeta(n, tidCpuBase + p, "thread_name",
                     "cpu" + std::to_string(p));
    }
}

void
ChromeTraceSink::emitCommon(const TraceEvent &ev, const char *ph,
                            const char *name, const char *cat,
                            unsigned tid)
{
    if (!first_)
        os_ << ",\n";
    first_ = false;
    os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << ev.node
        << ",\"tid\":" << tid << ",\"ts\":" << ticksToUs(ev.start)
        << ",\"name\":\"" << report::jsonEscape(name)
        << "\",\"cat\":\"" << cat << '"';
    if (ph[0] == 'X')
        os_ << ",\"dur\":" << ticksToUs(ev.dur);
    if (ph[0] == 'i')
        os_ << ",\"s\":\"t\"";
}

void
ChromeTraceSink::consume(const TraceEvent &ev)
{
    char addr[32];
    std::snprintf(addr, sizeof(addr), "0x%llx",
                  static_cast<unsigned long long>(ev.lineAddr));
    switch (ev.kind) {
      case SpanKind::EngineHandler: {
        const char *name =
            ev.a == 0xff
                ? "dispatch_release"
                : handlerName(static_cast<HandlerId>(ev.a));
        emitCommon(ev, "X", name, "engine", tidEngineBase + ev.lane);
        os_ << ",\"args\":{\"line\":\"" << addr
            << "\",\"extra_targets\":" << ev.b << "}}";
        break;
      }
      case SpanKind::EngineStall:
        emitCommon(ev, "X", "stall", "engine",
                   tidEngineBase + ev.lane);
        os_ << "}";
        break;
      case SpanKind::QueueWait:
        emitCommon(ev, "X", queueName(ev.a), "queue",
                   tidQueueBase + ev.lane);
        os_ << "}";
        break;
      case SpanKind::BusTxn:
        emitCommon(ev, "X", ev.label ? ev.label : "bus_txn", "bus",
                   tidBus);
        os_ << ",\"args\":{\"line\":\"" << addr << "\"}}";
        break;
      case SpanKind::NetMsg:
        emitCommon(ev, "X", "msg", "net", tidNet);
        os_ << ",\"args\":{\"dst\":" << ev.lane
            << ",\"bytes\":" << ev.b << "}}";
        break;
      case SpanKind::Miss:
        emitCommon(ev, "X",
                   reqClassName(static_cast<ReqClass>(ev.a)), "miss",
                   tidCpuBase + ev.lane);
        os_ << ",\"args\":{\"line\":\"" << addr << "\"}}";
        break;
      case SpanKind::XportRetransmit:
      case SpanKind::XportTimeout:
        emitCommon(ev, "i", spanKindName(ev.kind), "xport",
                   tidXport);
        os_ << ",\"args\":{\"dst\":" << ev.lane << "}}";
        break;
      case SpanKind::FaultEvent:
        emitCommon(ev, "i",
                   faultKindName(static_cast<FaultKind>(ev.a)),
                   "fault", tidFaults);
        os_ << ",\"args\":{\"line\":\"" << addr << "\"}}";
        break;
    }
}

void
ChromeTraceSink::end(const Tracer &t, Tick now)
{
    os_ << "\n],\"otherData\":{"
        << "\"events_recorded\":" << t.ring().size()
        << ",\"events_dropped\":" << t.ring().dropped()
        << ",\"sample_every\":" << t.config().sampleEvery
        << ",\"export_tick\":" << now << "}}\n";
}

void
MetricsSink::consume(const TraceEvent &ev)
{
    ++kindCounts_[static_cast<unsigned>(ev.kind)];
}

void
MetricsSink::end(const Tracer &t, Tick now)
{
    if (fmt_ == Format::Json)
        writeJson(t, now);
    else
        writeCsv(t, now);
}

namespace
{

void
jsonDistribution(report::JsonWriter &j, const stats::Distribution &d)
{
    j.beginObject();
    j.key("count").value(d.count());
    j.key("mean").value(d.mean());
    j.key("min").value(d.minValue());
    j.key("max").value(d.maxValue());
    j.key("p50").value(d.p50());
    j.key("p90").value(d.p90());
    j.key("p99").value(d.p99());
    j.key("underflow").value(d.underflow());
    j.key("overflow").value(d.overflow());
    j.endObject();
}

} // namespace

void
MetricsSink::writeJson(const Tracer &t, Tick now)
{
    const TracerContext &ctx = t.context();
    report::JsonWriter j(os_);
    j.beginObject();

    j.key("time_unit").value("ticks");
    j.key("ns_per_tick").value(nsPerTick);
    j.key("export_tick").value(static_cast<std::uint64_t>(now));
    j.key("measure_start_tick")
        .value(static_cast<std::uint64_t>(t.measureStart()));

    j.key("sampling").beginObject();
    j.key("every").value(t.config().sampleEvery);
    j.key("seed").value(t.config().sampleSeed);
    j.endObject();

    j.key("ring").beginObject();
    j.key("capacity")
        .value(static_cast<std::uint64_t>(t.ring().capacity()));
    j.key("recorded").value(t.ring().pushed());
    j.key("dropped").value(t.ring().dropped());
    j.endObject();

    j.key("events").beginObject();
    for (unsigned k = 0; k < numSpanKinds; ++k)
        j.key(spanKindName(static_cast<SpanKind>(k)))
            .value(kindCounts_[k]);
    j.endObject();

    j.key("request_classes").beginObject();
    j.key("misses").value(t.misses());
    for (unsigned c = 0; c < numReqClasses; ++c) {
        const auto &d = t.classLatency(static_cast<ReqClass>(c));
        j.key(reqClassName(static_cast<ReqClass>(c)));
        jsonDistribution(j, d);
    }
    j.endObject();

    Tick window = now > t.measureStart() ? now - t.measureStart() : 0;
    j.key("engines").beginArray();
    for (unsigned n = 0; n < ctx.numNodes; ++n) {
        for (unsigned e = 0; e < ctx.enginesPerCc; ++e) {
            const EngineAgg &a = t.engineAgg(n, e);
            j.beginObject();
            j.key("node").value(n);
            j.key("engine").value(e);
            j.key("busy_ticks")
                .value(static_cast<std::uint64_t>(a.busyTicks));
            j.key("stall_ticks")
                .value(static_cast<std::uint64_t>(a.stallTicks));
            j.key("handlers").value(a.handlers);
            j.key("utilization")
                .value(window ? static_cast<double>(a.busyTicks) /
                                    static_cast<double>(window)
                              : 0.0);
            j.key("queue_wait");
            jsonDistribution(j, a.queueWait);
            j.key("queue_depth");
            jsonDistribution(j, a.queueDepth);
            j.endObject();
        }
    }
    j.endArray();

    j.key("handlers").beginArray();
    for (unsigned h = 0; h < numHandlers; ++h) {
        auto id = static_cast<HandlerId>(h);
        if (!t.handlerCount(id))
            continue;
        j.beginObject();
        j.key("name").value(handlerName(id));
        j.key("count").value(t.handlerCount(id));
        j.key("total_ticks")
            .value(static_cast<std::uint64_t>(t.handlerTicks(id)));
        j.key("mean_ticks")
            .value(static_cast<double>(t.handlerTicks(id)) /
                   static_cast<double>(t.handlerCount(id)));
        j.endObject();
    }
    j.endArray();
    j.key("dispatch_only_releases").value(t.dispatchOnlyCount());

    j.key("subop_ticks").beginObject();
    for (unsigned s = 0; s < numSubOps; ++s)
        j.key(subOpName(static_cast<SubOp>(s)))
            .value(static_cast<std::uint64_t>(
                t.subOpTicks(static_cast<SubOp>(s))));
    j.key("bus_mem_wait")
        .value(static_cast<std::uint64_t>(t.busMemWaitTicks()));
    j.endObject();

    j.key("bus").beginObject();
    j.key("txns").value(t.busTxns());
    j.key("mean_ticks").value(t.busMeanTicks());
    j.endObject();

    j.key("net").beginObject();
    j.key("msgs").value(t.netMsgs());
    j.key("mean_ticks").value(t.netMeanTicks());
    j.key("bytes").value(t.netBytes());
    j.endObject();

    j.key("xport").beginObject();
    j.key("retransmits").value(t.xportRetransmits());
    j.key("timeouts").value(t.xportTimeouts());
    j.endObject();

    j.key("faults").beginObject();
    j.key("total").value(t.faultEvents());
    for (unsigned k = 0; k < numFaultKinds; ++k) {
        auto fk = static_cast<FaultKind>(k);
        j.key(faultKindName(fk)).value(t.faultEvents(fk));
    }
    j.endObject();

    j.endObject();
    os_ << "\n";
}

void
MetricsSink::writeCsv(const Tracer &t, Tick now)
{
    const TracerContext &ctx = t.context();
    os_ << "metric,value\n";
    auto row = [&](const std::string &k, double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        os_ << k << ',' << buf << '\n';
    };
    row("export_tick", static_cast<double>(now));
    row("ring.recorded", static_cast<double>(t.ring().pushed()));
    row("ring.dropped", static_cast<double>(t.ring().dropped()));
    row("misses", static_cast<double>(t.misses()));
    for (unsigned c = 0; c < numReqClasses; ++c) {
        const auto &d = t.classLatency(static_cast<ReqClass>(c));
        std::string base = std::string("class.") +
            reqClassName(static_cast<ReqClass>(c));
        row(base + ".count", static_cast<double>(d.count()));
        row(base + ".mean_ticks", d.mean());
        row(base + ".p50_ticks", d.p50());
        row(base + ".p90_ticks", d.p90());
        row(base + ".p99_ticks", d.p99());
    }
    Tick window = now > t.measureStart() ? now - t.measureStart() : 0;
    for (unsigned n = 0; n < ctx.numNodes; ++n) {
        for (unsigned e = 0; e < ctx.enginesPerCc; ++e) {
            const EngineAgg &a = t.engineAgg(n, e);
            std::string base = "engine.n" + std::to_string(n) + ".e" +
                               std::to_string(e);
            row(base + ".busy_ticks",
                static_cast<double>(a.busyTicks));
            row(base + ".stall_ticks",
                static_cast<double>(a.stallTicks));
            row(base + ".handlers", static_cast<double>(a.handlers));
            row(base + ".utilization",
                window ? static_cast<double>(a.busyTicks) /
                             static_cast<double>(window)
                       : 0.0);
            row(base + ".queue_wait_mean", a.queueWait.mean());
            row(base + ".queue_depth_mean", a.queueDepth.mean());
        }
    }
    row("bus.txns", static_cast<double>(t.busTxns()));
    row("bus.mean_ticks", t.busMeanTicks());
    row("net.msgs", static_cast<double>(t.netMsgs()));
    row("net.mean_ticks", t.netMeanTicks());
    row("net.bytes", static_cast<double>(t.netBytes()));
    row("xport.retransmits",
        static_cast<double>(t.xportRetransmits()));
    row("xport.timeouts", static_cast<double>(t.xportTimeouts()));
}

} // namespace obs
} // namespace ccnuma
