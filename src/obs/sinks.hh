/**
 * @file
 * Pluggable consumers of the tracer's event record.
 *
 * A TraceSink is driven by Tracer::exportTo(): begin(), then one
 * consume() per buffered event (oldest first), then end(). The two
 * built-in sinks are:
 *
 *  - ChromeTraceSink: Chrome trace-event JSON (the "JSON Array
 *    Format" with an object root), loadable in Perfetto or
 *    chrome://tracing. Each node is a process; engines, dispatch
 *    queues, the SMP bus, the network interface, the reliable
 *    transport, and each CPU get their own named thread tracks.
 *
 *  - MetricsSink: a machine-readable metrics document (JSON or flat
 *    CSV) built from the tracer's exact aggregates — per-request-
 *    class latency histograms with p50/p90/p99, per-engine occupancy
 *    and utilization, handler and sub-op occupancy attribution, and
 *    the ring-buffer accounting (events recorded/dropped).
 */

#ifndef CCNUMA_OBS_SINKS_HH
#define CCNUMA_OBS_SINKS_HH

#include <cstdint>
#include <ostream>

#include "obs/trace_event.hh"
#include "sim/types.hh"

namespace ccnuma
{
namespace obs
{

class Tracer;

/** Consumer interface over the tracer's bounded event record. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once before the event stream. @p now = export time. */
    virtual void begin(const Tracer &t, Tick now) { (void)t; (void)now; }

    /** Called once per buffered event, oldest first. */
    virtual void consume(const TraceEvent &ev) = 0;

    /** Called once after the event stream. */
    virtual void end(const Tracer &t, Tick now) { (void)t; (void)now; }
};

/** Chrome trace-event JSON exporter (Perfetto-loadable). */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os) : os_(os) {}

    void begin(const Tracer &t, Tick now) override;
    void consume(const TraceEvent &ev) override;
    void end(const Tracer &t, Tick now) override;

    // Thread-track ids within each node's process.
    static constexpr unsigned tidEngineBase = 1;  ///< + engine idx
    static constexpr unsigned tidQueueBase = 50;  ///< + engine idx
    static constexpr unsigned tidBus = 90;
    static constexpr unsigned tidNet = 95;
    static constexpr unsigned tidXport = 96;
    static constexpr unsigned tidFaults = 97;
    static constexpr unsigned tidCpuBase = 100;   ///< + local proc

  private:
    void emitMeta(unsigned pid, unsigned tid, const char *what,
                  const std::string &name);
    void emitCommon(const TraceEvent &ev, const char *ph,
                    const char *name, const char *cat, unsigned tid);

    std::ostream &os_;
    bool first_ = true;
};

/** Machine-readable metrics exporter (JSON document or flat CSV). */
class MetricsSink : public TraceSink
{
  public:
    enum class Format { Json, Csv };

    MetricsSink(std::ostream &os, Format fmt) : os_(os), fmt_(fmt) {}

    void consume(const TraceEvent &ev) override;
    void end(const Tracer &t, Tick now) override;

  private:
    void writeJson(const Tracer &t, Tick now);
    void writeCsv(const Tracer &t, Tick now);

    std::ostream &os_;
    Format fmt_;
    /** Events seen in the stream, per SpanKind. */
    std::uint64_t kindCounts_[numSpanKinds] = {};
};

} // namespace obs
} // namespace ccnuma

#endif // CCNUMA_OBS_SINKS_HH
