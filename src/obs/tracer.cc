#include "obs/tracer.hh"

#include <algorithm>
#include <fstream>

#include "obs/sinks.hh"
#include "sim/logging.hh"

namespace ccnuma
{
namespace obs
{

Tracer::Tracer(const ObsConfig &cfg, const TracerContext &ctx)
    : cfg_(cfg), ctx_(ctx), ring_(cfg.ringCapacity),
      slots_(static_cast<std::size_t>(ctx.numNodes) *
             ctx.procsPerNode),
      engines_(static_cast<std::size_t>(ctx.numNodes) *
               ctx.enginesPerCc),
      model_(ctx.engineType)
{
    if (cfg_.sampleEvery == 0)
        cfg_.sampleEvery = 1;
    for (unsigned c = 0; c < numReqClasses; ++c) {
        classHist_[c] = std::make_unique<stats::Distribution>(
            std::string("lat_") +
                reqClassName(static_cast<ReqClass>(c)),
            "miss latency (ticks)", 50.0, 80);
        statGroup_.add(classHist_[c].get());
    }
    statGroup_.add(&busLat_);
    statGroup_.add(&netLat_);
}

Tracer::~Tracer() = default;

void
Tracer::record(const TraceEvent &ev)
{
    // Events that began before the measured interval belong to the
    // discarded warm-up; keep the export consistent with the
    // aggregates by dropping them outright.
    if (ev.start < measureStart_)
        return;
    ring_.push(ev);
}

void
Tracer::missBegin(ProcId p, Addr addr, bool write, Tick now)
{
    MissSlot &s = slots_.at(p);
    s = MissSlot{};
    s.open = true;
    s.line = addr & ~static_cast<Addr>(ctx_.lineBytes - 1);
    s.start = now;
    s.write = write;
    NodeId node = p / ctx_.procsPerNode;
    s.homeLocal = ctx_.homeOf && ctx_.homeOf(s.line) == node;
    s.record = sampled(missSeq_);
    ++missSeq_;
}

void
Tracer::missEnd(ProcId p, Tick restart)
{
    MissSlot &s = slots_.at(p);
    if (!s.open)
        return; // opened before a reset; dropped
    s.open = false;
    ReqClass c = classify(s);
    if (s.start >= measureStart_)
        classHist_[static_cast<unsigned>(c)]->sample(
            static_cast<double>(restart - s.start));
    if (!s.record)
        return;
    TraceEvent ev;
    ev.kind = SpanKind::Miss;
    ev.start = s.start;
    ev.dur = restart - s.start;
    ev.lineAddr = s.line;
    ev.id = static_cast<std::uint32_t>(p);
    ev.node = static_cast<std::uint16_t>(p / ctx_.procsPerNode);
    ev.lane = static_cast<std::uint16_t>(p % ctx_.procsPerNode);
    ev.a = static_cast<std::uint8_t>(c);
    record(ev);
}

void
Tracer::noteDeliver(const Msg &msg)
{
    NodeId home = ctx_.homeOf ? ctx_.homeOf(msg.lineAddr) : 0;
    for (MissSlot &s : slots_) {
        if (!s.open || s.line != msg.lineAddr)
            continue;
        // Which processor owns this slot is positional; recompute.
        NodeId node = static_cast<NodeId>(
            (&s - slots_.data()) / ctx_.procsPerNode);
        switch (msg.type) {
          case MsgType::ReadReq:
          case MsgType::ReadExclReq:
            // Our node asked the home: the home is involved, so the
            // miss was not satisfied node-internally.
            if (msg.src == node)
                s.sawNetReq = true;
            break;
          case MsgType::DataReply:
          case MsgType::DataExclReply:
            // Data delivered to us from somewhere other than the
            // home: a dirty third-party owner supplied it (3-hop).
            if (msg.dst == node && msg.src != home)
                s.sawThreeHop = true;
            break;
          case MsgType::OwnerDataToHome:
          case MsgType::OwnerDataExclToHome:
          case MsgType::SharingWB:
          case MsgType::OwnershipAck:
            // A remote owner responded to the home on behalf of a
            // local-line request: the local miss needed remote action.
            if (s.homeLocal && msg.requester == node)
                s.sawOwnerAction = true;
            break;
          case MsgType::InvalAck:
            // Remote copies of a local line were recalled for a
            // local write.
            if (s.homeLocal && s.write && msg.dst == node)
                s.sawOwnerAction = true;
            break;
          default:
            break;
        }
    }
}

ReqClass
Tracer::classify(const MissSlot &s) const
{
    if (s.homeLocal) {
        if (s.write)
            return s.sawOwnerAction ? ReqClass::LocalWriteRemote
                                    : ReqClass::LocalWrite;
        return s.sawOwnerAction ? ReqClass::LocalReadRemote
                                : ReqClass::LocalRead;
    }
    if (!s.sawNetReq)
        return s.write ? ReqClass::RemoteWriteNear
                       : ReqClass::RemoteReadNear;
    if (s.sawThreeHop)
        return s.write ? ReqClass::RemoteWriteDirty
                       : ReqClass::RemoteReadDirty;
    return s.write ? ReqClass::RemoteWriteClean
                   : ReqClass::RemoteReadClean;
}

void
Tracer::engineSpan(NodeId node, unsigned engine, std::uint8_t handler,
                   int extra_targets, Tick start, Tick end)
{
    EngineAgg &agg = engines_.at(node * ctx_.enginesPerCc + engine);
    Tick begin = std::max(start, measureStart_);
    if (end > begin) {
        agg.busyTicks += end - begin;
        ++agg.handlers;
    }

    Tick dur = end - start;
    if (handler != 0xff &&
        handler < static_cast<std::uint8_t>(HandlerId::NumHandlers)) {
        auto h = static_cast<HandlerId>(handler);
        if (start >= measureStart_) {
            ++handlerCount_[handler];
            handlerTicks_[handler] += dur;
            // Attribute the span to Table 2 sub-op classes: the
            // static pre/post/per-target costs come from the spec;
            // whatever remains is dynamic bus/memory/transfer wait.
            const HandlerSpec &spec = handlerSpec(h);
            Tick fixed = 0;
            auto walk = [&](const std::vector<SubOpCount> &ops,
                            int times) {
                for (const auto &[op, n] : ops) {
                    Tick t = static_cast<Tick>(n) * times *
                             model_.cost(op);
                    subOpTicks_[static_cast<unsigned>(op)] += t;
                    fixed += t;
                }
            };
            walk(spec.pre, 1);
            walk(spec.post, 1);
            if (extra_targets > 0)
                walk(spec.perTarget, extra_targets);
            busMemWait_ += dur > fixed ? dur - fixed : 0;
        }
    } else if (start >= measureStart_) {
        ++dispatchOnly_;
        Tick dispatch =
            std::min(dur, model_.cost(SubOp::DispatchHandler));
        subOpTicks_[static_cast<unsigned>(SubOp::DispatchHandler)] +=
            dispatch;
        busMemWait_ += dur - dispatch;
    }

    TraceEvent ev;
    ev.kind = SpanKind::EngineHandler;
    ev.start = start;
    ev.dur = dur;
    ev.id = static_cast<std::uint32_t>(engineSeq_++);
    ev.node = static_cast<std::uint16_t>(node);
    ev.lane = static_cast<std::uint16_t>(engine);
    ev.a = handler;
    ev.b = static_cast<std::uint16_t>(
        extra_targets > 0 ? extra_targets : 0);
    record(ev);
}

void
Tracer::engineStall(NodeId node, unsigned engine, Tick start,
                    Tick dur)
{
    EngineAgg &agg = engines_.at(node * ctx_.enginesPerCc + engine);
    if (start >= measureStart_) {
        agg.stallTicks += dur;
        ++agg.stalls;
    }
    TraceEvent ev;
    ev.kind = SpanKind::EngineStall;
    ev.start = start;
    ev.dur = dur;
    ev.node = static_cast<std::uint16_t>(node);
    ev.lane = static_cast<std::uint16_t>(engine);
    record(ev);
}

void
Tracer::queueWait(NodeId node, unsigned engine, unsigned q,
                  Tick enqueued, Tick granted)
{
    EngineAgg &agg = engines_.at(node * ctx_.enginesPerCc + engine);
    if (enqueued >= measureStart_)
        agg.queueWait.sample(static_cast<double>(granted - enqueued));
    if (granted == enqueued)
        return; // zero-wait grants would only bloat the trace
    TraceEvent ev;
    ev.kind = SpanKind::QueueWait;
    ev.start = enqueued;
    ev.dur = granted - enqueued;
    ev.node = static_cast<std::uint16_t>(node);
    ev.lane = static_cast<std::uint16_t>(engine);
    ev.a = static_cast<std::uint8_t>(q);
    record(ev);
}

void
Tracer::queueDepth(NodeId node, unsigned engine, std::size_t depth)
{
    EngineAgg &agg = engines_.at(node * ctx_.enginesPerCc + engine);
    agg.queueDepth.sample(static_cast<double>(depth));
}

void
Tracer::busSpan(NodeId node, const char *cmd_name, std::uint8_t cmd,
                Addr line_addr, Tick start, Tick end)
{
    if (start >= measureStart_)
        busLat_.sample(static_cast<double>(end - start));
    bool rec = sampled(busSeq_);
    ++busSeq_;
    if (!rec)
        return;
    TraceEvent ev;
    ev.kind = SpanKind::BusTxn;
    ev.start = start;
    ev.dur = end - start;
    ev.lineAddr = line_addr;
    ev.label = cmd_name;
    ev.node = static_cast<std::uint16_t>(node);
    ev.a = cmd;
    record(ev);
}

void
Tracer::netSpan(NodeId src, NodeId dst, unsigned bytes, Tick sent,
                Tick delivered)
{
    if (sent >= measureStart_) {
        netLat_.sample(static_cast<double>(delivered - sent));
        netBytes_ += bytes;
    }
    bool rec = sampled(netSeq_);
    ++netSeq_;
    if (!rec)
        return;
    TraceEvent ev;
    ev.kind = SpanKind::NetMsg;
    ev.start = sent;
    ev.dur = delivered - sent;
    ev.node = static_cast<std::uint16_t>(src);
    ev.lane = static_cast<std::uint16_t>(dst);
    ev.b = static_cast<std::uint16_t>(bytes);
    record(ev);
}

void
Tracer::xportEvent(SpanKind kind, NodeId src, NodeId dst, Tick now)
{
    if (now >= measureStart_) {
        if (kind == SpanKind::XportRetransmit)
            ++xportRetx_;
        else if (kind == SpanKind::XportTimeout)
            ++xportTo_;
    }
    TraceEvent ev;
    ev.kind = kind;
    ev.start = now;
    ev.node = static_cast<std::uint16_t>(src);
    ev.lane = static_cast<std::uint16_t>(dst);
    record(ev);
}

void
Tracer::faultEvent(FaultKind kind, NodeId node, Addr line, Tick now)
{
    if (now >= measureStart_) {
        ++faultEvents_;
        ++faultKindCount_[static_cast<unsigned>(kind)];
    }
    TraceEvent ev;
    ev.kind = SpanKind::FaultEvent;
    ev.start = now;
    ev.lineAddr = line;
    ev.node = static_cast<std::uint16_t>(node);
    ev.a = static_cast<std::uint8_t>(kind);
    record(ev);
}

void
Tracer::reset(Tick now)
{
    measureStart_ = now;
    ring_.clear();
    for (MissSlot &s : slots_)
        s = MissSlot{}; // in-flight misses are warm-up; drop them
    for (EngineAgg &e : engines_)
        e.reset();
    statGroup_.resetAll();
    handlerCount_.fill(0);
    handlerTicks_.fill(0);
    subOpTicks_.fill(0);
    busMemWait_ = 0;
    dispatchOnly_ = 0;
    netBytes_ = 0;
    xportRetx_ = 0;
    xportTo_ = 0;
    faultEvents_ = 0;
    faultKindCount_.fill(0);
    missSeq_ = 0;
    busSeq_ = 0;
    netSeq_ = 0;
    engineSeq_ = 0;
}

void
Tracer::absorb(Tracer &other)
{
    // Aggregates simply add: every hook fed exactly one shard's
    // tracer, so the shard records partition the machine-wide total.
    for (std::size_t i = 0; i < engines_.size(); ++i)
        engines_[i].merge(other.engines_[i]);
    for (unsigned c = 0; c < numReqClasses; ++c)
        classHist_[c]->merge(*other.classHist_[c]);
    for (unsigned h = 0; h < numHandlers; ++h) {
        handlerCount_[h] += other.handlerCount_[h];
        handlerTicks_[h] += other.handlerTicks_[h];
    }
    for (unsigned op = 0; op < numSubOps; ++op)
        subOpTicks_[op] += other.subOpTicks_[op];
    busMemWait_ += other.busMemWait_;
    dispatchOnly_ += other.dispatchOnly_;
    busLat_.merge(other.busLat_);
    netLat_.merge(other.netLat_);
    netBytes_ += other.netBytes_;
    xportRetx_ += other.xportRetx_;
    xportTo_ += other.xportTo_;
    faultEvents_ += other.faultEvents_;
    for (unsigned k = 0; k < numFaultKinds; ++k)
        faultKindCount_[k] += other.faultKindCount_[k];
    missSeq_ += other.missSeq_;
    busSeq_ += other.busSeq_;
    netSeq_ += other.netSeq_;
    engineSeq_ += other.engineSeq_;

    // Combine the event rings into one timeline ordered by start
    // tick. A stable sort over the deterministic concatenation
    // (self's events, then the absorbed shard's) keeps the merged
    // record reproducible. Ring accounting is carried over so
    // pushed/dropped still describe the original recording.
    std::vector<TraceEvent> all;
    all.reserve(ring_.size() + other.ring_.size());
    ring_.forEach([&](const TraceEvent &ev) { all.push_back(ev); });
    other.ring_.forEach(
        [&](const TraceEvent &ev) { all.push_back(ev); });
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.start != b.start)
                             return a.start < b.start;
                         if (a.kind != b.kind)
                             return a.kind < b.kind;
                         if (a.node != b.node)
                             return a.node < b.node;
                         return a.lane < b.lane;
                     });
    std::uint64_t pushed = ring_.pushed() + other.ring_.pushed();
    std::uint64_t dropped = ring_.dropped() + other.ring_.dropped();
    ring_.clear();
    other.ring_.clear();
    for (const TraceEvent &ev : all)
        ring_.push(ev); // overflow here is counted like any other
    pushed = pushed > ring_.pushed() ? pushed - ring_.pushed() : 0;
    ring_.bump(pushed, dropped);

    // Drain the absorbed tracer so a subsequent run's merge does not
    // count this run's record twice.
    other.reset(other.measureStart_);
}

void
Tracer::exportTo(TraceSink &sink, Tick now) const
{
    sink.begin(*this, now);
    ring_.forEach([&](const TraceEvent &ev) { sink.consume(ev); });
    sink.end(*this, now);
}

void
Tracer::exportAll(Tick now) const
{
    if (!cfg_.chromeTraceFile.empty()) {
        std::ofstream os(cfg_.chromeTraceFile);
        if (!os) {
            warn("obs: cannot open trace file '%s'",
                 cfg_.chromeTraceFile.c_str());
        } else {
            ChromeTraceSink sink(os);
            exportTo(sink, now);
        }
    }
    if (!cfg_.metricsFile.empty()) {
        std::ofstream os(cfg_.metricsFile);
        if (!os) {
            warn("obs: cannot open metrics file '%s'",
                 cfg_.metricsFile.c_str());
        } else {
            auto n = cfg_.metricsFile.size();
            bool csv = n >= 4 &&
                       cfg_.metricsFile.compare(n - 4, 4, ".csv") == 0;
            MetricsSink sink(os, csv ? MetricsSink::Format::Csv
                                     : MetricsSink::Format::Json);
            exportTo(sink, now);
        }
    }
}

} // namespace obs
} // namespace ccnuma
