#include "system/machine.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "net/reliable.hh"
#include "obs/tracer.hh"
#include "verify/checker.hh"
#include "verify/fault_injector.hh"
#include "verify/watchdog.hh"

namespace ccnuma
{

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), map_(cfg.numNodes, cfg.pageBytes),
      net_("net", eq_, cfg.numNodes, cfg.net),
      sync_("sync", eq_, cfg.syncBase, cfg.node.bus.lineBytes)
{
    // The CCNUMA_RELIABLE environment knob force-enables end-to-end
    // message recovery (transport + bounded NACK retry) without a
    // config change. Must happen before node construction: the nodes
    // copy their controller retry policy out of cfg_.
    if (const char *env = std::getenv("CCNUMA_RELIABLE")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.withReliableTransport();
        } else if (std::strcmp(env, "0") && std::strcmp(env, "off")) {
            warn("CCNUMA_RELIABLE=%s not recognized (use 1|on|0|off);"
                 " recovery stays off", env);
        }
    }
    cfg_.validate();

    map_.setPolicy(cfg_.placement);
    if (cfg_.reliable.enabled) {
        xport_ = std::make_unique<ReliableTransport>(
            "xport", eq_, net_, cfg_.reliable,
            [this](const Msg &m) { deliverMsg(m); });
    }
    auto next_version = [this] { return nextVersion(); };
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_.push_back(std::make_unique<SmpNode>(
            "node" + std::to_string(n), eq_, n, cfg_.node, net_, map_,
            sync_, next_version));
        nodes_.back()->cc().setRouter(this);
        if (xport_)
            nodes_.back()->cc().setTransport(xport_.get());
    }
    sync_.setBarrierParticipants(totalProcs());

    // Verification subsystem (off by default; see DESIGN.md). The
    // CCNUMA_VERIFY environment knob force-enables the checker
    // and/or watchdog without touching the configuration.
    if (const char *env = std::getenv("CCNUMA_VERIFY")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "checker") ||
            !std::strcmp(env, "all")) {
            cfg_.verify.checker = true;
        }
        if (!std::strcmp(env, "watchdog") ||
            !std::strcmp(env, "all")) {
            cfg_.verify.watchdog = true;
        }
        if (!cfg_.verify.checker && !cfg_.verify.watchdog) {
            warn("CCNUMA_VERIFY=%s not recognized (use "
                 "checker|watchdog|all|1); verification stays off",
                 env);
        }
    }
    const VerifyConfig &vc = cfg_.verify;
    if (vc.faults.anyEnabled()) {
        injector_ = std::make_unique<FaultInjector>(vc.faults);
        net_.setTap(injector_.get());
        if (vc.faults.engineStallProb > 0.0) {
            for (auto &nd : nodes_) {
                nd->cc().setStallHook(
                    [this] { return injector_->engineStall(); });
            }
        }
    }
    if (vc.checker) {
        std::vector<SmpNode *> ns;
        ns.reserve(nodes_.size());
        for (auto &nd : nodes_)
            ns.push_back(nd.get());
        // With corrupting faults armed, the checker reports
        // violations as injected-fault detections and halts the run
        // instead of panicking -- unless the reliable transport is
        // active, in which case every corruption must be healed
        // before delivery and the checker stays strict: a violation
        // is then a real bug (in the transport or the protocol).
        const bool tolerate = injector_ &&
                              injector_->config().corrupting() &&
                              !xport_;
        checker_ = std::make_unique<CoherenceChecker>(
            eq_, map_, std::move(ns), tolerate);
        for (auto &nd : nodes_) {
            NodeId id = nd->id();
            nd->bus().setCompletionTap(
                [this, id](const BusTxn &txn) {
                    checker_->noteBusComplete(id, txn);
                });
        }
    }
    // Observability subsystem (off by default; see DESIGN.md). The
    // CCNUMA_TRACE environment knob force-enables tracing without a
    // config change; the CCNUMA_TRACE_* knobs tune it.
    if (const char *env = std::getenv("CCNUMA_TRACE")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.obs.enabled = true;
        } else if (std::strcmp(env, "0") && std::strcmp(env, "off")) {
            warn("CCNUMA_TRACE=%s not recognized (use 1|on|0|off); "
                 "tracing stays off", env);
        }
    }
    if (cfg_.obs.enabled) {
        if (const char *env = std::getenv("CCNUMA_TRACE_FILE"))
            cfg_.obs.chromeTraceFile = env;
        if (const char *env = std::getenv("CCNUMA_TRACE_METRICS"))
            cfg_.obs.metricsFile = env;
        if (const char *env = std::getenv("CCNUMA_TRACE_SAMPLE"))
            cfg_.obs.sampleEvery =
                std::max<std::uint64_t>(
                    1, std::strtoull(env, nullptr, 10));
        if (const char *env = std::getenv("CCNUMA_TRACE_RING"))
            cfg_.obs.ringCapacity = static_cast<std::size_t>(
                std::max<std::uint64_t>(
                    1, std::strtoull(env, nullptr, 10)));

        obs::TracerContext tc;
        tc.numNodes = cfg_.numNodes;
        tc.procsPerNode = cfg_.node.procsPerNode;
        tc.enginesPerCc = cfg_.node.cc.numEngines;
        tc.lineBytes = cfg_.node.bus.lineBytes;
        tc.engineType = cfg_.node.cc.engineType;
        tc.homeOf = [this](Addr a) { return map_.homeOf(a); };
        tracer_ = std::make_unique<obs::Tracer>(cfg_.obs, tc);
        net_.setTracer(tracer_.get());
        if (xport_)
            xport_->setTracer(tracer_.get());
        for (auto &nd : nodes_) {
            nd->cc().setTracer(tracer_.get());
            nd->bus().setTracer(tracer_.get(), nd->id());
            for (unsigned i = 0; i < nd->numProcs(); ++i)
                nd->proc(i).setTracer(tracer_.get());
        }
    }

    if (vc.watchdog) {
        watchdog_ = std::make_unique<HangWatchdog>(
            eq_, vc.watchdogBudget,
            [this] {
                std::uint64_t retired = 0;
                for (auto &nd : nodes_) {
                    for (unsigned i = 0; i < nd->numProcs(); ++i)
                        retired += nd->proc(i).instructions();
                }
                return retired;
            },
            [this](std::ostream &os) { dumpDiagnostics(os); });
    }
}

Machine::~Machine() = default;

Processor &
Machine::proc(unsigned global)
{
    unsigned ppn = cfg_.node.procsPerNode;
    return nodes_.at(global / ppn)->proc(global % ppn);
}

void
Machine::deliverMsg(const Msg &msg)
{
    if (checker_ && !checker_->noteDeliver(msg))
        return; // detected injected fault; delivery swallowed
    if (tracer_)
        tracer_->noteDeliver(msg);
    nodes_.at(msg.dst)->cc().netReceive(msg);
}

void
Machine::onNetSend(Msg &msg)
{
    if (checker_)
        checker_->stampSend(msg);
}

void
Machine::dumpDiagnostics(std::ostream &os)
{
    os << "=== machine diagnostics at tick " << eq_.curTick()
       << " ===\n";
    os << "pending events: " << eq_.numPending() << "\n";
    os << "unfinished procs:";
    for (unsigned i = 0; i < totalProcs(); ++i) {
        if (!proc(i).finished())
            os << " " << i;
    }
    os << "\n";
    if (xport_)
        xport_->dumpState(os);
    for (auto &nd : nodes_)
        nd->cc().dumpState(os);
}

void
Machine::fillRecoveryStats(RunResult &r)
{
    if (injector_) {
        r.faultsInjected = injector_->injectedDrops() +
                           injector_->injectedDuplicates() +
                           injector_->injectedReorders();
    }
    if (xport_) {
        r.xportRetransmits = xport_->retransmits();
        r.xportTimeouts = xport_->timeouts();
        r.xportDupsDropped = xport_->dupsDropped();
        r.xportReordersHealed = xport_->reordersHealed();
        r.xportAcks = xport_->acksSent();
    }
    for (auto &nd : nodes_) {
        r.nackRetries += nd->cc().nackRetries();
        r.retryBackoffTicks += nd->cc().retryBackoffTicks();
    }
}

RunResult
Machine::run(Workload &w, bool check)
{
    if (w.numThreads() != totalProcs()) {
        fatal("workload %s has %u threads but the machine has %u "
              "processors", w.name().c_str(), w.numThreads(),
              totalProcs());
    }
    w.place(map_);

    unsigned n = totalProcs();
    finishedProcs_ = 0;
    for (unsigned i = 0; i < n; ++i) {
        Processor &p = proc(i);
        p.setProgram(w.thread(i));
        p.setFinishedCallback([this] { ++finishedProcs_; });
        p.start(0);
    }

    Tick limit = cfg_.maxTicks;
    if (const char *env = std::getenv("CCNUMA_MAX_TICKS"))
        limit = std::strtoull(env, nullptr, 10);
    if (watchdog_)
        watchdog_->arm();
    bool done = eq_.runUntil(
        [this, n] {
            return finishedProcs_ == n ||
                   (checker_ && checker_->shouldHalt());
        },
        limit);
    if (watchdog_)
        watchdog_->disarm();
    if (checker_ && checker_->shouldHalt()) {
        // An injected fault was detected; the protocol state is no
        // longer trustworthy, so skip the drain and the idle checks
        // and return a partial result.
        warn("run of %s halted after %llu injected-fault "
             "detection(s)", w.name().c_str(),
             (unsigned long long)checker_->violations());
        RunResult r;
        r.workload = w.name();
        r.arch =
            std::string(engineTypeName(cfg_.node.cc.engineType));
        r.execTicks = eq_.curTick();
        fillRecoveryStats(r);
        if (tracer_)
            tracer_->exportAll(eq_.curTick());
        return r;
    }
    if (!done) {
        // Diagnose: which processors are stuck, and what protocol
        // state is outstanding?
        dumpDiagnostics(std::cerr);
        std::string stuck;
        for (unsigned i = 0; i < n; ++i) {
            if (!proc(i).finished())
                stuck += " " + std::to_string(i);
        }
        panic("workload %s wedged at tick %llu (pending events: %llu;"
              " unfinished procs:%s)", w.name().c_str(),
              (unsigned long long)eq_.curTick(),
              (unsigned long long)eq_.numPending(), stuck.c_str());
    }

    Tick exec = 0;
    for (unsigned i = 0; i < n; ++i)
        exec = std::max(exec, proc(i).finishTick());

    // Drain in-flight protocol traffic (writeback acks etc.).
    eq_.run(eq_.curTick() + 10'000'000);
    for (auto &nd : nodes_) {
        if (!nd->cc().idle()) {
            panic("controller %u not idle after drain",
                  nd->id());
        }
    }
    if (xport_ && !xport_->idle()) {
        xport_->dumpState(std::cerr);
        panic("reliable transport not idle after drain");
    }

    if (check)
        checkInvariants();

    RunResult r;
    r.workload = w.name();
    r.arch = std::string(engineTypeName(cfg_.node.cc.engineType));
    if (cfg_.node.cc.numEngines > 1)
        r.arch += "x" + std::to_string(cfg_.node.cc.numEngines);
    r.execTicks = exec;
    for (unsigned i = 0; i < n; ++i) {
        Processor &p = proc(i);
        r.instructions += p.instructions();
        r.memRefs += p.memRefs();
        r.misses += p.misses();
    }
    double util_sum = 0.0;
    double qd_sum = 0.0;
    for (auto &nd : nodes_) {
        CoherenceController &cc = nd->cc();
        r.ccRequests += cc.totalArrivals();
        r.ccOccupancy += cc.totalOccupancy();
        util_sum += exec ? static_cast<double>(cc.totalOccupancy()) /
                               (static_cast<double>(exec) *
                                cc.numEngines())
                         : 0.0;
        qd_sum += cc.meanQueueDelay();
    }
    r.avgUtilization = util_sum / static_cast<double>(numNodes());
    r.avgQueueDelayTicks = qd_sum / static_cast<double>(numNodes());
    double exec_us = ticksToNs(exec) / 1000.0;
    r.arrivalsPerUs =
        exec_us > 0.0
            ? static_cast<double>(r.ccRequests) /
                  static_cast<double>(numNodes()) / exec_us
            : 0.0;
    fillRecoveryStats(r);
    r.completed = true;
    if (tracer_)
        tracer_->exportAll(eq_.curTick());
    return r;
}

void
Machine::resetStats()
{
    net_.statGroup().resetAll();
    if (xport_)
        xport_->statGroup().resetAll();
    sync_.statGroup().resetAll();
    for (auto &nd : nodes_) {
        nd->bus().statGroup().resetAll();
        nd->memory().statGroup().resetAll();
        nd->directory().statGroup().resetAll();
        nd->cc().statGroup().resetAll();
        nd->cc().resetStats();
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->proc(i).statGroup().resetAll();
            nd->cacheUnit(i).statGroup().resetAll();
        }
    }
    if (tracer_)
        tracer_->reset(eq_.curTick());
}

void
Machine::checkInvariants()
{
    struct Holder
    {
        NodeId node;
        LineState state;
        std::uint64_t version;
    };
    std::unordered_map<Addr, std::vector<Holder>> holders;
    for (auto &nd : nodes_) {
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->cacheUnit(i).l2().forEachLine(
                [&](const CacheLine &l) {
                    holders[l.lineAddr].push_back(
                        {nd->id(), l.state, l.version});
                });
        }
    }
    for (const auto &[line, hs] : holders) {
        unsigned modified = 0;
        for (const auto &h : hs) {
            if (h.state == LineState::Modified)
                ++modified;
        }
        if (modified > 1) {
            panic("line %#llx has %u Modified copies",
                  (unsigned long long)line, modified);
        }
        if (modified == 1 && hs.size() > 1) {
            panic("line %#llx has a Modified copy alongside %zu "
                  "other copies", (unsigned long long)line,
                  hs.size() - 1);
        }
        // Directory must cover every remote holder.
        NodeId home = map_.homeOf(line);
        const DirEntry *e = nodes_.at(home)->directory().peek(line);
        for (const auto &h : hs) {
            if (h.node == home)
                continue;
            if (!e) {
                panic("line %#llx cached at node %u but never "
                      "entered the home directory",
                      (unsigned long long)line, h.node);
            }
            if (h.state == LineState::Modified) {
                if (e->state != DirState::DirtyRemote ||
                    e->owner != h.node) {
                    panic("line %#llx Modified at node %u but "
                          "directory says %s owner %u",
                          (unsigned long long)line, h.node,
                          dirStateName(e->state), e->owner);
                }
            } else if (e->state == DirState::SharedRemote) {
                if (!e->isSharer(h.node)) {
                    panic("line %#llx Shared at node %u but not in "
                          "the sharer bitmap",
                          (unsigned long long)line, h.node);
                }
            } else if (e->state == DirState::Home) {
                panic("line %#llx cached at remote node %u but "
                      "directory says Home",
                      (unsigned long long)line, h.node);
            } else if (e->state == DirState::DirtyRemote &&
                       e->owner != h.node) {
                panic("line %#llx Shared at node %u under foreign "
                      "owner %u", (unsigned long long)line, h.node,
                      e->owner);
            }
        }
        // All non-modified copies must agree with memory.
        if (modified == 0) {
            std::uint64_t mem_version =
                nodes_.at(home)->memory().version(line);
            for (const auto &h : hs) {
                if (h.version != mem_version) {
                    panic("line %#llx: node %u holds version %llu "
                          "but memory has %llu",
                          (unsigned long long)line, h.node,
                          (unsigned long long)h.version,
                          (unsigned long long)mem_version);
                }
            }
        }
    }
}

void
Machine::printStats(std::ostream &os)
{
    net_.statGroup().print(os);
    if (xport_)
        xport_->statGroup().print(os);
    if (tracer_)
        tracer_->statGroup().print(os);
    sync_.statGroup().print(os);
    for (auto &nd : nodes_) {
        nd->bus().statGroup().print(os);
        nd->memory().statGroup().print(os);
        nd->directory().statGroup().print(os);
        nd->cc().statGroup().print(os);
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->proc(i).statGroup().print(os);
            nd->cacheUnit(i).statGroup().print(os);
        }
    }
}

} // namespace ccnuma
