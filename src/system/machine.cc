#include "system/machine.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "net/reliable.hh"
#include "obs/tracer.hh"
#include "sim/snapshot.hh"
#include "recovery/recovery_manager.hh"
#include "verify/checker.hh"
#include "verify/fault_injector.hh"
#include "verify/integrity_manager.hh"
#include "verify/watchdog.hh"

namespace ccnuma
{

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), map_(cfg.numNodes, cfg.pageBytes)
{
    // The CCNUMA_RELIABLE environment knob force-enables end-to-end
    // message recovery (transport + bounded NACK retry) without a
    // config change. Must happen before node construction: the nodes
    // copy their controller retry policy out of cfg_.
    if (const char *env = std::getenv("CCNUMA_RELIABLE")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.withReliableTransport();
        } else if (std::strcmp(env, "0") && std::strcmp(env, "off")) {
            warn("CCNUMA_RELIABLE=%s not recognized (use 1|on|0|off);"
                 " recovery stays off", env);
        }
    }
    // The CCNUMA_RECOVERY environment knob force-enables the
    // fail-stop crash-recovery subsystem (implying the reliable
    // transport) without a config change. Same before-node-construction
    // requirement: the knobs below travel into cfg_.node.
    if (const char *env = std::getenv("CCNUMA_RECOVERY")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.withCrashRecovery();
        } else if (std::strcmp(env, "0") && std::strcmp(env, "off")) {
            warn("CCNUMA_RECOVERY=%s not recognized (use 1|on|0|off);"
                 " crash recovery stays off", env);
        }
    }
    // The CCNUMA_INTEGRITY environment knob force-enables the
    // data-integrity subsystem (frame CRC, ECC scrubbing, line
    // poisoning — implying crash recovery and the reliable
    // transport) without a config change.
    if (const char *env = std::getenv("CCNUMA_INTEGRITY")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.withIntegrity();
        } else if (std::strcmp(env, "0") && std::strcmp(env, "off")) {
            warn("CCNUMA_INTEGRITY=%s not recognized (use "
                 "1|on|0|off); integrity stays off", env);
        }
    }
    // Recovery knobs reach the node components through the config:
    // the controllers copy their CcParams and the cache units their
    // per-miss timer out of cfg_.node at construction.
    if (cfg_.recovery.enabled) {
        cfg_.node.cc.recoveryEnabled = true;
        cfg_.node.cc.repairTicks = cfg_.recovery.repairTicks;
        cfg_.node.cc.timeoutRetries = cfg_.recovery.timeoutRetries;
        cfg_.node.cc.probeRetries = cfg_.recovery.probeRetries;
        cfg_.node.cc.probeFanout = cfg_.recovery.probeFanout;
        cfg_.node.cache.missTimeoutTicks =
            cfg_.recovery.missTimeoutTicks;
    }
    // CCNUMA_SHARDS overrides the configured shard count.
    if (const char *env = std::getenv("CCNUMA_SHARDS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            cfg_.shards = static_cast<unsigned>(v);
        } else {
            warn("CCNUMA_SHARDS=%s not recognized (use a positive "
                 "integer); shard count stays %u", env, cfg_.shards);
        }
    }
    // CCNUMA_WINDOW overrides the sharded window policy. Every
    // policy is bit-identical; this is a wall-clock ablation knob.
    if (const char *env = std::getenv("CCNUMA_WINDOW")) {
        if (!std::strcmp(env, "conservative")) {
            cfg_.windowPolicy = WindowPolicy::Conservative;
        } else if (!std::strcmp(env, "adaptive")) {
            cfg_.windowPolicy = WindowPolicy::Adaptive;
        } else if (!std::strcmp(env, "speculative")) {
            cfg_.windowPolicy = WindowPolicy::Speculative;
        } else {
            warn("CCNUMA_WINDOW=%s not recognized (use "
                 "conservative|adaptive|speculative); policy stays %s",
                 env, windowPolicyName(cfg_.windowPolicy));
        }
    }
    // Speculative tuning knobs: burst horizon and checkpoint spacing,
    // both in lookahead windows. Nonsense values are repaired with a
    // warning rather than rejected, like the other env knobs.
    if (const char *env = std::getenv("CCNUMA_SPEC_HORIZON")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            cfg_.specHorizonWindows = static_cast<unsigned>(v);
        } else {
            warn("CCNUMA_SPEC_HORIZON=%s not recognized (use a "
                 "positive integer); horizon stays %u", env,
                 cfg_.specHorizonWindows);
        }
    }
    if (const char *env = std::getenv("CCNUMA_SPEC_CKPT")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            cfg_.specCkptWindows = static_cast<unsigned>(v);
        } else {
            warn("CCNUMA_SPEC_CKPT=%s not recognized (use a positive "
                 "integer); spacing stays %u", env,
                 cfg_.specCkptWindows);
        }
    }
    if (cfg_.specHorizonWindows == 0)
        cfg_.specHorizonWindows = 1;
    if (cfg_.specCkptWindows == 0 ||
        cfg_.specCkptWindows > cfg_.specHorizonWindows ||
        cfg_.specHorizonWindows % cfg_.specCkptWindows != 0) {
        warn("specCkptWindows=%u does not divide specHorizonWindows="
             "%u; using a checkpoint every window",
             cfg_.specCkptWindows, cfg_.specHorizonWindows);
        cfg_.specCkptWindows = 1;
    }
    // CCNUMA_SYNC_DEFER forces the deferred (sharded-style) sync
    // grant path in serial runs, making a serial run a bit-identity
    // oracle for the sharded modes.
    if (const char *env = std::getenv("CCNUMA_SYNC_DEFER")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.forceSyncDefer = true;
        } else if (!std::strcmp(env, "0") || !std::strcmp(env, "off")) {
            cfg_.forceSyncDefer = false;
        } else {
            warn("CCNUMA_SYNC_DEFER=%s not recognized (use 1|on|0|"
                 "off); sync deferral stays %s", env,
                 cfg_.forceSyncDefer ? "on" : "off");
        }
    }
    // Verification subsystem (off by default; see DESIGN.md). The
    // CCNUMA_VERIFY environment knob force-enables the checker
    // and/or watchdog without touching the configuration. Parsed
    // before the shard layout is fixed: the checker forces serial.
    if (const char *env = std::getenv("CCNUMA_VERIFY")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "checker") ||
            !std::strcmp(env, "all")) {
            cfg_.verify.checker = true;
        }
        if (!std::strcmp(env, "watchdog") ||
            !std::strcmp(env, "all")) {
            cfg_.verify.watchdog = true;
        }
        if (!cfg_.verify.checker && !cfg_.verify.watchdog) {
            warn("CCNUMA_VERIFY=%s not recognized (use "
                 "checker|watchdog|all|1); verification stays off",
                 env);
        }
    }
    cfg_.validate();
    shardsRequested_ = cfg_.shards;

    const VerifyConfig &vc = cfg_.verify;
    if (vc.faults.anyEnabled())
        injector_ = std::make_unique<FaultInjector>(vc.faults,
                                                    cfg_.numNodes);

    // Decide the scheduler before anything queue-dependent is built.
    // Falling back to serial is never silent: the reason is warned,
    // recorded, and reported in every RunResult.
    auto fall_back = [this](const char *why) {
        if (cfg_.shards == 1)
            return;
        warn("sharded scheduling (%u shards) disabled: %s; using the "
             "serial scheduler", cfg_.shards, why);
        fallbackReason_ = why;
        cfg_.shards = 1;
    };
    if (vc.checker) {
        fall_back("the coherence invariant checker reads global "
                  "machine state at every delivery");
    }
    if (cfg_.placement == PlacementPolicy::FirstTouch) {
        fall_back("first-touch placement resolves page homes at miss "
                  "time, a cross-shard race");
    }
    if (!vc.faults.crashes.empty()) {
        fall_back("crash recovery mutates cross-node state (receive "
                  "fences, directory rebuilds, page remaps) "
                  "synchronously at the crash and repair events");
    }
    if (!vc.faults.flips.empty()) {
        fall_back("integrity fault injection mutates cross-node "
                  "state (ECC words, line poisoning, processor "
                  "kills) synchronously at each flip event");
    }
    // Conservative lookahead: no shard may outrun another by more
    // than the earliest possible cross-node interaction — the
    // network's minimum send-to-arrival gap (shrunk by any early
    // delivery the fault tap may inject) or a sync grant hand-off,
    // whichever is smaller.
    Tick min_net = 2 * cfg_.net.portCycle + cfg_.net.flightLatency;
    long long w = static_cast<long long>(min_net) +
                  (injector_ ? injector_->minExtraDelay() : 0);
    w = std::min(w, static_cast<long long>(cfg_.syncHandoffTicks));
    if (w <= 0) {
        fall_back("the conservative lookahead window is empty "
                  "(network minimum latency, fault-tap early "
                  "delivery, and sync hand-off leave no safe slack)");
    }
    lookahead_ = cfg_.shards > 1 ? static_cast<Tick>(w) : 0;

    for (unsigned s = 0; s < cfg_.shards; ++s)
        queues_.push_back(std::make_unique<EventQueue>());
    std::vector<EventQueue *> qs;
    for (auto &q : queues_)
        qs.push_back(q.get());
    shardMap_ = ShardMap::partition(qs, cfg_.numNodes);
    for (auto &q : queues_)
        q->setNumContexts(shardMap_.numContexts());
    if (cfg_.shards > 1)
        team_ = std::make_unique<ShardTeam>(cfg_.shards);

    map_.setPolicy(cfg_.placement);
    net_ = std::make_unique<Network>("net", shardMap_, cfg_.net);
    if (injector_)
        net_->setTap(injector_.get());
    sync_ = std::make_unique<SyncManager>(
        "sync", shardMap_, cfg_.syncBase, cfg_.node.bus.lineBytes);
    sync_->setHandoffTicks(cfg_.syncHandoffTicks);
    sync_->setForceDefer(cfg_.forceSyncDefer);
    if (cfg_.reliable.enabled) {
        xport_ = std::make_unique<ReliableTransport>(
            "xport", shardMap_, *net_, cfg_.reliable,
            [this](const Msg &m) { deliverMsg(m); });
        if (injector_) {
            xport_->setCorruptHook(
                [this](NodeId src, wire::FrameImage &f) {
                    return injector_->corruptFrame(src, f);
                });
        }
    }
    auto next_version = [this] { return nextVersion(); };
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        nodes_.push_back(std::make_unique<SmpNode>(
            "node" + std::to_string(n), shardMap_.of(n), n, cfg_.node,
            *net_, map_, *sync_, next_version));
        nodes_.back()->cc().setRouter(this);
        if (xport_)
            nodes_.back()->cc().setTransport(xport_.get());
    }
    sync_->setBarrierParticipants(totalProcs());

    if (injector_ && vc.faults.engineStallProb > 0.0) {
        for (auto &nd : nodes_) {
            NodeId id = nd->id();
            nd->cc().setStallHook(
                [this, id] { return injector_->engineStall(id); });
        }
    }
    if (vc.checker) {
        std::vector<SmpNode *> ns;
        ns.reserve(nodes_.size());
        for (auto &nd : nodes_)
            ns.push_back(nd.get());
        // With corrupting faults armed, the checker reports
        // violations as injected-fault detections and halts the run
        // instead of panicking -- unless the reliable transport is
        // active, in which case every corruption must be healed
        // before delivery and the checker stays strict: a violation
        // is then a real bug (in the transport or the protocol).
        const bool tolerate = injector_ &&
                              injector_->config().corrupting() &&
                              !xport_;
        checker_ = std::make_unique<CoherenceChecker>(
            *queues_[0], map_, std::move(ns), tolerate);
        for (auto &nd : nodes_) {
            NodeId id = nd->id();
            nd->bus().setCompletionTap(
                [this, id](const BusTxn &txn) {
                    checker_->noteBusComplete(id, txn);
                });
        }
    }
    if (cfg_.recovery.enabled) {
        std::vector<SmpNode *> ns;
        ns.reserve(nodes_.size());
        for (auto &nd : nodes_)
            ns.push_back(nd.get());
        recovery_ = std::make_unique<RecoveryManager>(
            *queues_[0], map_, std::move(ns), xport_.get(),
            injector_.get(), checker_.get(), cfg_.recovery);
        recovery_->arm();
    }
    // Observability subsystem (off by default; see DESIGN.md). The
    // CCNUMA_TRACE environment knob force-enables tracing without a
    // config change; the CCNUMA_TRACE_* knobs tune it.
    if (const char *env = std::getenv("CCNUMA_TRACE")) {
        if (!std::strcmp(env, "1") || !std::strcmp(env, "on")) {
            cfg_.obs.enabled = true;
        } else if (std::strcmp(env, "0") && std::strcmp(env, "off")) {
            warn("CCNUMA_TRACE=%s not recognized (use 1|on|0|off); "
                 "tracing stays off", env);
        }
    }
    if (cfg_.obs.enabled) {
        if (const char *env = std::getenv("CCNUMA_TRACE_FILE"))
            cfg_.obs.chromeTraceFile = env;
        if (const char *env = std::getenv("CCNUMA_TRACE_METRICS"))
            cfg_.obs.metricsFile = env;
        if (const char *env = std::getenv("CCNUMA_TRACE_SAMPLE"))
            cfg_.obs.sampleEvery =
                std::max<std::uint64_t>(
                    1, std::strtoull(env, nullptr, 10));
        if (const char *env = std::getenv("CCNUMA_TRACE_RING"))
            cfg_.obs.ringCapacity = static_cast<std::size_t>(
                std::max<std::uint64_t>(
                    1, std::strtoull(env, nullptr, 10)));

        obs::TracerContext tc;
        tc.numNodes = cfg_.numNodes;
        tc.procsPerNode = cfg_.node.procsPerNode;
        tc.enginesPerCc = cfg_.node.cc.numEngines;
        tc.lineBytes = cfg_.node.bus.lineBytes;
        tc.engineType = cfg_.node.cc.engineType;
        tc.homeOf = [this](Addr a) { return map_.homeOf(a); };
        // One tracer per shard so hooks record without locking; a
        // sharded run merges them into tracers_[0] at the end.
        for (unsigned s = 0; s < cfg_.shards; ++s)
            tracers_.push_back(
                std::make_unique<obs::Tracer>(cfg_.obs, tc));
        pendingNotes_.resize(cfg_.shards);
        std::vector<obs::Tracer *> per_node(cfg_.numNodes);
        for (NodeId n = 0; n < cfg_.numNodes; ++n)
            per_node[n] = tracers_[shardMap_.shardOf(n)].get();
        net_->setTracers(per_node);
        if (xport_)
            xport_->setTracers(per_node);
        for (auto &nd : nodes_) {
            obs::Tracer *t = per_node[nd->id()];
            nd->cc().setTracer(t);
            nd->bus().setTracer(t, nd->id());
            for (unsigned i = 0; i < nd->numProcs(); ++i)
                nd->proc(i).setTracer(t);
        }
    }

    if (cfg_.integrity.enabled) {
        std::vector<SmpNode *> ns;
        ns.reserve(nodes_.size());
        for (auto &nd : nodes_)
            ns.push_back(nd.get());
        integrity_ = std::make_unique<IntegrityManager>(
            *queues_[0], map_, std::move(ns), injector_.get(),
            cfg_.integrity, cfg_.recovery.repairTicks);
        integrity_->setTracer(tracer());
        integrity_->arm();
        // The poison fence: when a requester bounces off a dead
        // line, every local processor whose miss targets it is
        // killed and every local copy discarded — the corruption is
        // contained to the processors that asked for the lost data.
        for (auto &nd : nodes_) {
            SmpNode *np = nd.get();
            np->cc().setPoisonFence([this, np](Addr line) {
                for (unsigned i = 0; i < np->numProcs(); ++i) {
                    CacheUnit &cu = np->cacheUnit(i);
                    if (cu.missPendingOn(line)) {
                        cu.poisonAbort(line);
                        np->proc(i).kill();
                        integrity_->notePoisonKill();
                        if (obs::Tracer *t = tracer()) {
                            t->faultEvent(obs::FaultKind::ProcKill,
                                          np->id(), line,
                                          queues_[0]->curTick());
                        }
                    }
                    cu.discardLine(line);
                }
            });
        }
    }

    if (vc.watchdog) {
        watchdog_ = std::make_unique<HangWatchdog>(
            *queues_[0], vc.watchdogBudget,
            [this] {
                std::uint64_t retired = 0;
                for (auto &nd : nodes_) {
                    for (unsigned i = 0; i < nd->numProcs(); ++i)
                        retired += nd->proc(i).instructions();
                }
                return retired;
            },
            [this](std::ostream &os) { dumpDiagnostics(os); });
    }

    // Speculative (Time-Warp) bursts roll component state back on
    // straggler cross-shard traffic, so every subsystem a shard can
    // touch must be checkpointable. The ones that are not — the
    // reliable transport's retransmission state, fault injection's
    // RNG streams, crash recovery, the integrity managers, and the
    // observability tracers — demote speculative to the adaptive
    // policy; the hang watchdog demotes it to conservative (it polls
    // only at lock-step barriers). Demotion is counted, never silent.
    if (cfg_.windowPolicy == WindowPolicy::Speculative &&
        shardMap_.sharded()) {
        auto demote = [this](const char *why, WindowPolicy to) {
            if (cfg_.windowPolicy != WindowPolicy::Speculative)
                return;
            warn("speculative windows disabled: %s; using the %s "
                 "policy", why, windowPolicyName(to));
            specFallback_ = why;
            cfg_.windowPolicy = to;
        };
        if (watchdog_) {
            demote("the hang watchdog polls at lock-step barriers",
                   WindowPolicy::Conservative);
        }
        if (xport_) {
            demote("the reliable transport's retransmission windows "
                   "are not checkpointable", WindowPolicy::Adaptive);
        }
        if (injector_) {
            demote("fault injection consumes RNG streams that a "
                   "rollback cannot rewind", WindowPolicy::Adaptive);
        }
        if (recovery_ || integrity_) {
            demote("the recovery/integrity managers mutate cross-node "
                   "state outside the checkpointed set",
                   WindowPolicy::Adaptive);
        }
        if (!tracers_.empty()) {
            demote("the observability tracers' rings and open spans "
                   "are not checkpointable", WindowPolicy::Adaptive);
        }
    }
    specActive_ = shardMap_.sharded() &&
                  cfg_.windowPolicy == WindowPolicy::Speculative;
    // Adaptive windows need every widening decision to be taken at a
    // barrier with all shards quiescent; the hang watchdog also polls
    // at barriers, and a shard running an arbitrarily wide window
    // would starve it, so a watchdog pins the conservative policy.
    adaptiveActive_ = shardMap_.sharded() &&
                      cfg_.windowPolicy == WindowPolicy::Adaptive &&
                      !watchdog_;
    if (adaptiveActive_) {
        // A widened shard's clock may only outrun a peer when that
        // peer provably cannot act; its own sends and sync posts are
        // the loopholes, closed by these self-clamps (DESIGN.md §19).
        net_->setSendClampMargin(lookahead_);
        sync_->setAdaptiveWindows(true);
    }
    if (specActive_) {
        // Per-shard checkpoint sets: everything a shard's events can
        // mutate. The shard's event queue and its slice of the
        // network's port pods are snapshotted separately (the queue
        // by specSave, the pods by specSaveShard); the sync manager
        // needs no snapshot — its barrier/lock state mutates only
        // during committed single-threaded barrier processing.
        specComps_.resize(shardMap_.numShards);
        specStats_.resize(shardMap_.numShards);
        for (auto &nd : nodes_) {
            unsigned s = shardMap_.shardOf(nd->id());
            auto &cs = specComps_[s];
            cs.push_back(&nd->bus());
            cs.push_back(&nd->memory());
            cs.push_back(&nd->directory());
            cs.push_back(&nd->cc());
            auto &st = specStats_[s];
            auto add_group = [&st](stats::Group &g) {
                for (stats::Stat *x : g.stats())
                    st.push_back(x);
            };
            add_group(nd->bus().statGroup());
            add_group(nd->memory().statGroup());
            add_group(nd->directory().statGroup());
            add_group(nd->cc().statGroup());
            for (unsigned i = 0; i < nd->numProcs(); ++i) {
                cs.push_back(&nd->cacheUnit(i));
                cs.push_back(&nd->proc(i));
                add_group(nd->proc(i).statGroup());
                add_group(nd->cacheUnit(i).statGroup());
            }
        }
        // Straggler sentry on the deferred grant path. The burst
        // frontier is capped at the earliest recorded sync
        // operation's grant tick, so a grant can never land below a
        // committed shard clock; this hook turns a violation of that
        // proof into an immediate diagnostic instead of a downstream
        // schedule-in-the-past panic.
        sync_->setPreGrantHook([this](NodeId node, Tick when) {
            EventQueue &q = shardMap_.of(node);
            if (when < q.curTick()) {
                panic("speculative barrier: sync grant for node %u "
                      "lands at tick %llu, below its shard clock %llu"
                      " — the frontier's sync cap was violated",
                      node, (unsigned long long)when,
                      (unsigned long long)q.curTick());
            }
        });
    }
}

Machine::~Machine() = default;

Processor &
Machine::proc(unsigned global)
{
    unsigned ppn = cfg_.node.procsPerNode;
    return nodes_.at(global / ppn)->proc(global % ppn);
}

void
Machine::deliverMsg(const Msg &msg)
{
    if (checker_ && !checker_->noteDeliver(msg))
        return; // detected injected fault; delivery swallowed
    if (!tracers_.empty()) {
        // Classification must see the delivery on every shard whose
        // procs might have the line's miss open. The destination's
        // own shard observes it inline (its miss may restart within
        // this window); the others at the window barrier — safe,
        // because a cross-shard-flagged miss cannot restart sooner
        // than a full network flight, i.e. not inside this window.
        unsigned s = shardMap_.shardOf(msg.dst);
        tracers_[s]->noteDeliver(msg);
        if (shardMap_.sharded())
            pendingNotes_[s].push_back(msg);
    }
    nodes_.at(msg.dst)->cc().netReceive(msg);
}

void
Machine::onNetSend(Msg &msg)
{
    if (checker_)
        checker_->stampSend(msg);
}

Tick
Machine::now() const
{
    Tick t = 0;
    for (const auto &q : queues_)
        t = std::max(t, q->curTick());
    return t;
}

void
Machine::dumpDiagnostics(std::ostream &os)
{
    os << "=== machine diagnostics at tick " << now() << " ===\n";
    std::uint64_t pending = 0;
    for (const auto &q : queues_)
        pending += q->numPending();
    os << "pending events: " << pending << "\n";
    // Shard-aware scheduler state: when a sharded run hangs, the
    // per-shard clocks and event horizons show which queue stalled
    // the lock-step window barrier.
    os << "scheduler: " << shardMap_.numShards << " shard(s)";
    if (shardsRequested_ != shardMap_.numShards) {
        os << " (requested " << shardsRequested_ << "; fallback: "
           << fallbackReason_ << ")";
    }
    if (shardMap_.sharded()) {
        os << ", lookahead window " << lookahead_ << " ticks, "
           << windowPolicyName(windowPolicy()) << " policy";
    }
    os << "\n";
    for (unsigned s = 0; s < queues_.size(); ++s) {
        os << "  shard " << s << ": tick " << queues_[s]->curTick()
           << ", pending " << queues_[s]->numPending()
           << ", next event ";
        Tick nw = queues_[s]->nextWhen();
        if (nw == maxTick)
            os << "(none)";
        else
            os << "at " << nw;
        os << ", nodes";
        for (NodeId n = 0; n < static_cast<NodeId>(numNodes()); ++n) {
            if (shardMap_.shardOf(n) == s)
                os << " " << static_cast<unsigned>(n);
        }
        os << "\n";
    }
    os << "unfinished procs:";
    for (unsigned i = 0; i < totalProcs(); ++i) {
        if (!proc(i).finished())
            os << " " << i;
    }
    os << "\n";
    if (xport_)
        xport_->dumpState(os);
    for (auto &nd : nodes_)
        nd->cc().dumpState(os);
}

void
Machine::fillRecoveryStats(RunResult &r)
{
    if (injector_) {
        r.faultsInjected = injector_->injectedDrops() +
                           injector_->injectedDuplicates() +
                           injector_->injectedReorders();
    }
    if (xport_) {
        r.xportRetransmits = xport_->retransmits();
        r.xportTimeouts = xport_->timeouts();
        r.xportDupsDropped = xport_->dupsDropped();
        r.xportReordersHealed = xport_->reordersHealed();
        r.xportAcks = xport_->acksSent();
    }
    for (auto &nd : nodes_) {
        CoherenceController &cc = nd->cc();
        r.nackRetries += cc.nackRetries();
        r.retryBackoffTicks += cc.retryBackoffTicks();
        r.dirRebuilds += cc.dirRebuilds();
        r.rebuildLines += cc.rebuildLines();
        r.reconstructionTicksMax = std::max(
            r.reconstructionTicksMax, cc.reconstructionTicksMax());
        r.recoveryNacks += cc.recoveryNacks();
        r.missTimeouts += cc.missTimeouts();
        r.timeoutResends += cc.timeoutResends();
        r.recoveryProbes += cc.recoveryProbes();
        r.degradedEntries += cc.degradedEntries();
        r.strayDrops += cc.strayDrops();
    }
    if (recovery_) {
        r.crashesInjected = recovery_->crashesFired();
        r.migrations = recovery_->migrations();
    }
    if (xport_) {
        r.crcChecked = xport_->crcChecked();
        r.crcDetected = xport_->crcDetected();
    }
    for (auto &nd : nodes_) {
        r.eccCorrected += nd->directory().eccCorrected();
        r.eccPendingDropped += nd->directory().pendingDropped();
        r.poisonNacks += nd->cc().poisonNacks();
        for (unsigned i = 0; i < nd->numProcs(); ++i)
            r.eccCorrected += nd->cacheUnit(i).eccCorrected();
    }
    if (integrity_) {
        std::uint64_t frames =
            injector_ ? injector_->framesCorrupted() : 0;
        r.flipsInjected = integrity_->flipsApplied() + frames;
        r.flipsSkipped =
            integrity_->flipsSkipped() +
            (integrity_->messageFlipsArmed() - frames);
        r.scrubCorrections = integrity_->scrubCorrections();
        r.containedDiscards = integrity_->containedDiscards();
        r.linesPoisoned = integrity_->linesDead();
        r.procsKilledPoison = integrity_->procsKilled();
        r.integrityEscalations = integrity_->escalations();
        // Every applied corruption must be answered by exactly one
        // defense; anything left over escaped detection.
        r.escapedCorruptions =
            static_cast<std::int64_t>(r.flipsInjected) -
            static_cast<std::int64_t>(
                r.crcDetected + r.eccCorrected +
                r.eccPendingDropped + r.containedDiscards +
                r.linesPoisoned + r.integrityEscalations);
    }
}

bool
Machine::runWindows(const std::function<bool()> &done, Tick limit)
{
    const unsigned S = static_cast<unsigned>(queues_.size());
    std::vector<Tick> ends(S);
    std::vector<Tick> nws(S);
    while (!done()) {
        // GVT skip-ahead: the window starts at the globally earliest
        // pending event, so fully idle stretches cost nothing.
        Tick t0 = maxTick;
        for (auto &q : queues_)
            t0 = std::min(t0, q->nextWhen());
        if (t0 == maxTick || t0 > limit)
            return false;
        Tick end = limit < maxTick - 1 ? limit + 1 : maxTick;
        Tick cons = end - t0 > lookahead_ ? t0 + lookahead_ : end;
        ++windowsRun_;
        bool widened = false;
        if (adaptiveActive_) {
            // Per-shard window ends: shard s may not outrun the
            // earliest event of any *other non-empty* shard — the
            // only peers able to originate cross-shard traffic this
            // window — nor the earliest deferred sync operation, by
            // more than the conservative lookahead. An empty peer is
            // provably quiet: mailboxes drain only at barriers, so it
            // cannot act before the next planning step sees whatever
            // woke it, and the sender's own self-clamps (network send,
            // sync post) keep this shard's clock below any reply such
            // a wake could produce. A shard whose peers are all empty
            // therefore saturates to the run limit and executes at
            // full serial speed until traffic appears.
            Tick sync_min = sync_->pendingMinWhen();
            for (unsigned s = 0; s < S; ++s)
                nws[s] = queues_[s]->nextWhen();
            for (unsigned s = 0; s < S; ++s) {
                Tick bound = sync_min;
                for (unsigned o = 0; o < S; ++o) {
                    if (o != s && nws[o] != maxTick)
                        bound = std::min(bound, nws[o]);
                }
                // No clamp up to the conservative end: a deferred
                // sync operation older than t0 must keep every
                // window at or below its grant tick.
                Tick t1 = bound >= end || end - bound <= lookahead_
                              ? end
                              : bound + lookahead_;
                if (t1 > cons)
                    widened = true;
                ends[s] = t1;
            }
        } else {
            for (unsigned s = 0; s < S; ++s)
                ends[s] = cons;
        }
        if (widened)
            ++windowsWidened_;
        else if (adaptiveActive_)
            ++windowFallbacks_;
        team_->run(
            [this, &ends](unsigned s) { queues_[s]->runWindow(ends[s]); });
        windowBarrier(*std::max_element(ends.begin(), ends.end()));
    }
    return true;
}

void
Machine::windowBarrier(Tick window_end)
{
    // All shard threads are quiescent here; injection order is
    // irrelevant because arrivals and grants carry explicit keys.
    net_->drainMailboxes();
    // Adaptive windows ran different spans per shard, so only sync
    // operations every shard has provably passed may be processed
    // now; the rest stay deferred (they bound the next windows).
    // Conservative windows all ended together: process everything,
    // exactly the PR 5 merge.
    Tick safe = maxTick;
    if (adaptiveActive_) {
        for (auto &q : queues_)
            safe = std::min(safe, q->nextWhen());
    }
    sync_->processPending(safe);
    if (!tracers_.empty()) {
        for (unsigned s = 0; s < pendingNotes_.size(); ++s) {
            for (const Msg &m : pendingNotes_[s]) {
                for (unsigned t = 0; t < tracers_.size(); ++t) {
                    if (t != s)
                        tracers_[t]->noteDeliver(m);
                }
            }
            pendingNotes_[s].clear();
        }
    }
    if (watchdog_)
        watchdog_->poll(window_end - 1);
}

bool
Machine::runSpeculative(const std::function<bool()> &done, Tick limit)
{
    const unsigned S = static_cast<unsigned>(queues_.size());
    const Tick L = lookahead_;
    const Tick P = static_cast<Tick>(cfg_.specCkptWindows) * L;
    const unsigned max_segs =
        cfg_.specHorizonWindows / cfg_.specCkptWindows;
    const Tick handoff = cfg_.syncHandoffTicks;
    const Tick max_target = limit < maxTick - 1 ? limit + 1 : maxTick;

    /** One grid checkpoint of one shard. */
    struct Ckpt
    {
        Tick tick = 0;
        std::uint64_t processed = 0;
        std::size_t bytes = 0;
        std::shared_ptr<const EventQueue::QueueSnap> queue;
        std::shared_ptr<const void> net;
        std::vector<std::shared_ptr<const void>> comps;
        std::vector<double> statVals;
    };
    std::vector<std::vector<Ckpt>> ckpts(S);

    // Capture shard s at grid tick t. Runs on the shard's own team
    // thread: everything touched (queue, owned network pods,
    // components, stats) is shard-private during a burst, and the
    // footprint is tallied into the shared counter only at the
    // barrier (via Ckpt::bytes).
    auto take = [&](unsigned s, Tick t) {
        auto &list = ckpts[s];
        Ckpt c;
        c.tick = t;
        c.processed = queues_[s]->numProcessed();
        if (!list.empty() && list.back().processed == c.processed) {
            // Idle segment: nothing ran since the previous grid
            // point, so the state is unchanged — alias the previous
            // snapshot's payloads instead of re-capturing them.
            c.queue = list.back().queue;
            c.net = list.back().net;
            c.comps = list.back().comps;
            c.statVals = list.back().statVals;
            list.push_back(std::move(c));
            return;
        }
        std::size_t bytes = 0;
        c.queue = queues_[s]->specSave(bytes);
        c.net = net_->specSaveShard(s, bytes);
        c.comps.reserve(specComps_[s].size());
        for (Snapshottable *comp : specComps_[s])
            c.comps.push_back(comp->specSave(bytes));
        for (stats::Stat *st : specStats_[s])
            st->appendValues(c.statVals);
        bytes += c.statVals.size() * sizeof(double);
        c.bytes = bytes;
        list.push_back(std::move(c));
    };

    // Roll shard s back to checkpoint c. The clock rewind is
    // mandatory for *every* shard whenever the frontier stops short
    // of the burst target — a committed grant or arrival may land in
    // [F, target), which must not lie in any queue's past — so this
    // runs even for shards that processed nothing past c (their
    // pending set is then bit-identical and only the clock moves).
    auto restore = [&](unsigned s, const Ckpt &c) {
        queues_[s]->specRestore(*c.queue);
        net_->specRestoreShard(s, c.net.get());
        for (std::size_t i = 0; i < specComps_[s].size(); ++i)
            specComps_[s][i]->specRestore(c.comps[i].get());
        std::size_t pos = 0;
        for (stats::Stat *st : specStats_[s])
            st->restoreValues(c.statVals, pos);
    };

    // Account and drop the burst's checkpoints (every burst is
    // self-contained: nothing survives its own barrier).
    auto reclaim = [&] {
        for (unsigned s = 0; s < S; ++s) {
            for (const Ckpt &c : ckpts[s])
                checkpointBytes_ += c.bytes;
            ckpts[s].clear();
        }
    };

    // One conservative window + barrier, for bursts where no grid
    // point is committable (the sync horizon or the run limit lies
    // nearer than the first checkpoint). The end stays short of the
    // earliest deferred sync operation's grant so no grant can land
    // in a shard's past; the burst-base bound (base <= deferredMin +
    // handoff) keeps that end at or past base, and the barrier's
    // horizon-limited sync processing guarantees progress even when
    // the window itself is empty.
    auto conservativeStep = [&](Tick base) {
        Tick end = base + L < max_target ? base + L : max_target;
        Tick dm = sync_->pendingMinWhen();
        if (dm != maxTick && dm + handoff < end)
            end = dm + handoff;
        ++windowsRun_;
        ++windowFallbacks_;
        team_->run(
            [this, end](unsigned s) { queues_[s]->runWindow(end); });
        net_->drainMailboxes();
        Tick safe = maxTick;
        for (auto &q : queues_)
            safe = std::min(safe, q->nextWhen());
        sync_->processPending(safe);
    };

    while (!done()) {
        // Burst-start invariant: every cross-shard arrival was either
        // delivered (its send committed) or squashed (its sender
        // rolled back) at the previous barrier.
        ccnuma_assert(net_->mailboxesEmpty());
        // The burst base is the earliest committable action anywhere:
        // a pending event, or a buffered sync operation's grant.
        Tick base = maxTick;
        for (auto &q : queues_)
            base = std::min(base, q->nextWhen());
        Tick sm = sync_->recordedMinWhen();
        if (sm != maxTick && sm + handoff < base)
            base = sm + handoff;
        if (base == maxTick || base > limit)
            return false;

        // Segment count: never speculate past the point where a
        // buffered sync operation's grant could land (it caps the
        // commit frontier regardless, so windows past it are wasted
        // work), nor past the run limit. This pre-clamp is also what
        // keeps the frontier at or above base + L below: with it, any
        // sync cap admitting segs >= 1 is at least base + P.
        unsigned segs = max_segs;
        if (sm != maxTick) {
            Tick cap = sm + handoff;
            if (cap < base + P) {
                segs = 0;
            } else {
                segs = std::min<unsigned>(
                    segs,
                    static_cast<unsigned>((cap - base + P - 1) / P));
            }
        }
        if (max_target - base < P) {
            segs = 0;
        } else {
            segs = std::min<unsigned>(
                segs, static_cast<unsigned>((max_target - base) / P));
        }
        if (segs == 0) {
            conservativeStep(base);
            continue;
        }
        const Tick target = base + static_cast<Tick>(segs) * P;

        // Optimistic phase: every shard runs segs checkpoint
        // segments past the base with no cross-shard coordination.
        // Cross-shard sends buffer in the network mailboxes and sync
        // posts in the per-shard logs — both cancellable, so nothing
        // speculative ever escapes the shard.
        ++windowsRun_;
        team_->run([&](unsigned s) {
            take(s, base);
            for (unsigned i = 1; i <= segs; ++i) {
                queues_[s]->runWindow(base +
                                      static_cast<Tick>(i) * P);
                take(s, base + static_cast<Tick>(i) * P);
            }
        });

        // Commit frontier: start from the burst target capped by the
        // earliest buffered sync grant, then close under straggler
        // arrivals — a buffered arrival sent below the frontier and
        // arriving below it drags the frontier down to its arrival
        // tick (its receiver must re-execute from there with the
        // message present). Every send this burst has schedTick >=
        // base and arrives at least a lookahead later, and the sync
        // pre-clamp bounds the cap, so rawF >= base + L always.
        Tick rawF = target;
        sm = sync_->recordedMinWhen();
        if (sm != maxTick && sm + handoff < rawF)
            rawF = sm + handoff;
        for (bool changed = true; changed;) {
            changed = false;
            net_->forEachMailboxEntry(
                [&](unsigned, NodeId, Tick sched, Tick when) {
                    if (sched < rawF && when < rawF) {
                        rawF = when;
                        changed = true;
                    }
                });
        }
        ccnuma_assert(rawF >= base + L);

        // Committed frontier F: the highest checkpoint grid point at
        // or below rawF (restores can only land on checkpoints).
        const unsigned ci =
            rawF >= target
                ? segs
                : static_cast<unsigned>((rawF - base) / P);
        const Tick F = base + static_cast<Tick>(ci) * P;

        if (ci == 0) {
            // The frontier cleared no grid point (checkpoint spacing
            // exceeds the lookahead and a straggler arrived early):
            // squash the whole burst and take one conservative window
            // instead — counted, never silent.
            for (unsigned s = 0; s < S; ++s) {
                std::uint64_t delta = queues_[s]->numProcessed() -
                                      ckpts[s][0].processed;
                restore(s, ckpts[s][0]);
                if (delta) {
                    squashedEvents_ += delta;
                    ++rollbacks_;
                    antiMessages_ += net_->squashSends(s, F);
                    antiMessages_ += sync_->squashFrom(s, F);
                }
            }
            ccnuma_assert(net_->mailboxesEmpty());
            reclaim();
            conservativeStep(base);
            continue;
        }

        if (ci < segs) {
            // Roll every shard back to its checkpoint at F and cancel
            // the squashed segments' unobserved cross-shard sends and
            // sync posts (anti-messages). Shards that processed
            // nothing past F only rewind their clock; they made no
            // squashable send, so the counters stay quiet.
            for (unsigned s = 0; s < S; ++s) {
                std::uint64_t delta = queues_[s]->numProcessed() -
                                      ckpts[s][ci].processed;
                restore(s, ckpts[s][ci]);
                if (delta) {
                    squashedEvents_ += delta;
                    ++rollbacks_;
                    antiMessages_ += net_->squashSends(s, F);
                    antiMessages_ += sync_->squashFrom(s, F);
                }
            }
        }
        // Everything below F is final. Deliver the committed mail
        // (after the squash every buffered send has schedTick < F,
        // and the closure above guarantees it arrives at or past
        // rawF >= F, i.e. in every shard's future), process committed
        // sync operations under the same horizon, and let journaled
        // stores drop their committed prefixes (the GVT sweep).
        net_->drainMailboxesCommitted(F);
        ccnuma_assert(net_->mailboxesEmpty());
        sync_->processPending(F);
        for (unsigned s = 0; s < S; ++s) {
            for (std::size_t i = 0; i < specComps_[s].size(); ++i)
                specComps_[s][i]->specCommit(
                    ckpts[s][ci].comps[i].get());
        }
        ++gvtSweeps_;
        reclaim();
    }
    return true;
}

void
Machine::mergeTracers()
{
    for (std::size_t s = 1; s < tracers_.size(); ++s)
        tracers_[0]->absorb(*tracers_[s]);
}

RunResult
Machine::run(Workload &w, bool check)
{
    if (w.numThreads() != totalProcs()) {
        fatal("workload %s has %u threads but the machine has %u "
              "processors", w.name().c_str(), w.numThreads(),
              totalProcs());
    }
    w.place(map_);

    unsigned n = totalProcs();
    unsigned ppn = cfg_.node.procsPerNode;
    finishedProcs_.store(0, std::memory_order_relaxed);
    finishedSerial_ = 0;
    for (unsigned i = 0; i < n; ++i) {
        Processor &p = proc(i);
        p.setProgram(w.thread(i));
        // Serial runs count completions through a plain variable: the
        // single-queue fast loop polls it every event, and an atomic
        // there is pure overhead.
        if (specActive_) {
            // A rollback past a completion would re-fire the callback
            // on replay and double-count; the speculative loop polls
            // the processors' finished flags instead — they are part
            // of the checkpointed processor state, so at a burst
            // boundary they reflect exactly the committed prefix.
            p.setFinishedCallback([] {});
        } else if (shardMap_.sharded()) {
            p.setFinishedCallback([this] {
                finishedProcs_.fetch_add(1,
                                         std::memory_order_release);
            });
        } else {
            p.setFinishedCallback([this] { ++finishedSerial_; });
        }
        // Attribute the start event to the processor's node context
        // so its key is identical under any queue layout.
        NodeId node = i / ppn;
        EventQueue &q = shardMap_.of(node);
        q.setContext(shardMap_.nodeCtx(node));
        p.start(0);
    }
    for (auto &q : queues_)
        q->setContext(shardMap_.externalCtx());

    Tick limit = cfg_.maxTicks;
    if (const char *env = std::getenv("CCNUMA_MAX_TICKS"))
        limit = std::strtoull(env, nullptr, 10);
    if (specActive_) {
        // Arm the journaled stores and tapes for the whole run; the
        // burst loop takes and drops checkpoints inside this session.
        for (auto &cs : specComps_) {
            for (Snapshottable *c : cs)
                c->specBegin();
        }
    }
    bool done;
    if (specActive_) {
        done = runSpeculative(
            [this, n] {
                for (unsigned i = 0; i < n; ++i) {
                    if (!proc(i).finished())
                        return false;
                }
                return true;
            },
            limit);
    } else if (shardMap_.sharded()) {
        if (watchdog_)
            watchdog_->armPolled(0);
        done = runWindows(
            [this, n] {
                return finishedProcs_.load(
                           std::memory_order_acquire) == n;
            },
            limit);
    } else {
        if (watchdog_)
            watchdog_->arm();
        if (checker_) {
            done = queues_[0]->runUntil(
                [this, n] {
                    return finishedSerial_ == n ||
                           checker_->shouldHalt();
                },
                limit);
        } else {
            // Single-queue fast loop: an inlined completion check
            // with no std::function dispatch per event (PR 9; this is
            // the PR 4 serial hot loop).
            done = queues_[0]->runUntilFast(
                [this, n] { return finishedSerial_ == n; }, limit);
        }
    }
    if (watchdog_)
        watchdog_->disarm();
    if (checker_ && checker_->shouldHalt()) {
        // An injected fault was detected; the protocol state is no
        // longer trustworthy, so skip the drain and the idle checks
        // and return a partial result. (The checker forces the
        // serial scheduler, so no merge is needed here.)
        warn("run of %s halted after %llu injected-fault "
             "detection(s)", w.name().c_str(),
             (unsigned long long)checker_->violations());
        RunResult r;
        r.workload = w.name();
        r.arch =
            std::string(engineTypeName(cfg_.node.cc.engineType));
        r.execTicks = now();
        r.shardsRequested = shardsRequested_;
        r.shardsUsed = shardMap_.numShards;
        r.shardFallback = fallbackReason_;
        r.windowPolicy = "serial";
        r.windowPolicyFallback = specFallback_;
        fillRecoveryStats(r);
        if (!tracers_.empty()) {
            mergeTracers();
            tracers_[0]->exportAll(now());
        }
        return r;
    }
    if (!done) {
        // Diagnose: which processors are stuck, and what protocol
        // state is outstanding?
        dumpDiagnostics(std::cerr);
        std::string stuck;
        for (unsigned i = 0; i < n; ++i) {
            if (!proc(i).finished())
                stuck += " " + std::to_string(i);
        }
        std::uint64_t pending = 0;
        for (auto &q : queues_)
            pending += q->numPending();
        panic("workload %s wedged at tick %llu (pending events: %llu;"
              " unfinished procs:%s)", w.name().c_str(),
              (unsigned long long)now(),
              (unsigned long long)pending, stuck.c_str());
    }

    Tick exec = 0;
    for (unsigned i = 0; i < n; ++i)
        exec = std::max(exec, proc(i).finishTick());

    // Drain in-flight protocol traffic (writeback acks etc.).
    if (specActive_) {
        runSpeculative(
            [this] {
                for (auto &q : queues_) {
                    if (!q->empty())
                        return false;
                }
                return net_->mailboxesEmpty() &&
                       sync_->pendingEmpty();
            },
            now() + 10'000'000);
        // The speculative session is over: drop journal storage,
        // replay tapes, and the queues' injection ledgers.
        for (auto &cs : specComps_) {
            for (Snapshottable *c : cs)
                c->specEnd();
        }
        for (auto &q : queues_)
            q->specSessionEnd();
    } else if (shardMap_.sharded()) {
        runWindows(
            [this] {
                for (auto &q : queues_) {
                    if (!q->empty())
                        return false;
                }
                return true;
            },
            now() + 10'000'000);
    } else {
        queues_[0]->run(queues_[0]->curTick() + 10'000'000);
    }
    for (auto &nd : nodes_) {
        if (!nd->cc().idle()) {
            nd->cc().dumpState(std::cerr);
            panic("controller %u not idle after drain",
                  nd->id());
        }
    }
    if (xport_ && !xport_->idle()) {
        xport_->dumpState(std::cerr);
        panic("reliable transport not idle after drain");
    }
    // Close the integrity ledger: a flip landing after the last
    // access and the last periodic pass would otherwise stay latent.
    if (integrity_)
        integrity_->finalScrub();

    if (check)
        checkInvariants();

    RunResult r;
    r.workload = w.name();
    r.arch = std::string(engineTypeName(cfg_.node.cc.engineType));
    if (cfg_.node.cc.numEngines > 1)
        r.arch += "x" + std::to_string(cfg_.node.cc.numEngines);
    r.execTicks = exec;
    for (unsigned i = 0; i < n; ++i) {
        Processor &p = proc(i);
        r.instructions += p.instructions();
        r.memRefs += p.memRefs();
        r.misses += p.misses();
    }
    double util_sum = 0.0;
    double qd_sum = 0.0;
    for (auto &nd : nodes_) {
        CoherenceController &cc = nd->cc();
        r.ccRequests += cc.totalArrivals();
        r.ccOccupancy += cc.totalOccupancy();
        util_sum += exec ? static_cast<double>(cc.totalOccupancy()) /
                               (static_cast<double>(exec) *
                                cc.numEngines())
                         : 0.0;
        qd_sum += cc.meanQueueDelay();
    }
    r.avgUtilization = util_sum / static_cast<double>(numNodes());
    r.avgQueueDelayTicks = qd_sum / static_cast<double>(numNodes());
    double exec_us = ticksToNs(exec) / 1000.0;
    r.arrivalsPerUs =
        exec_us > 0.0
            ? static_cast<double>(r.ccRequests) /
                  static_cast<double>(numNodes()) / exec_us
            : 0.0;
    fillRecoveryStats(r);
    r.completed = true;
    r.shardsRequested = shardsRequested_;
    r.shardsUsed = shardMap_.numShards;
    r.shardFallback = fallbackReason_;
    r.windowPolicy = shardMap_.sharded()
                         ? windowPolicyName(windowPolicy())
                         : "serial";
    r.windowsRun = windowsRun_;
    r.windowsWidened = windowsWidened_;
    r.windowFallbacks = windowFallbacks_;
    for (auto &q : queues_)
        r.syncWindowStops += q->windowClamps();
    r.windowPolicyFallback = specFallback_;
    r.rollbacks = rollbacks_;
    r.antiMessages = antiMessages_;
    r.squashedEvents = squashedEvents_;
    r.checkpointBytes = checkpointBytes_;
    r.gvtSweeps = gvtSweeps_;
    if (!tracers_.empty()) {
        mergeTracers();
        tracers_[0]->exportAll(now());
    }
    return r;
}

void
Machine::resetStats()
{
    net_->resetStats();
    if (xport_)
        xport_->resetStats();
    sync_->statGroup().resetAll();
    for (auto &nd : nodes_) {
        nd->bus().statGroup().resetAll();
        nd->memory().statGroup().resetAll();
        nd->directory().statGroup().resetAll();
        nd->cc().statGroup().resetAll();
        nd->cc().resetStats();
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->proc(i).statGroup().resetAll();
            nd->cacheUnit(i).statGroup().resetAll();
        }
    }
    for (auto &t : tracers_)
        t->reset(now());
}

void
Machine::checkInvariants()
{
    struct Holder
    {
        NodeId node;
        LineState state;
        std::uint64_t version;
    };
    std::unordered_map<Addr, std::vector<Holder>> holders;
    for (auto &nd : nodes_) {
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->cacheUnit(i).l2().forEachLine(
                [&](const CacheLine &l) {
                    holders[l.lineAddr].push_back(
                        {nd->id(), l.state, l.version});
                });
        }
    }
    for (const auto &[line, hs] : holders) {
        // A poisoned (dead) line is outside the coherence domain:
        // its only up-to-date copy was lost to an uncorrectable
        // error and every cached copy was discarded by the fence, so
        // nothing about it can be checked against memory.
        if (nodes_.at(map_.homeOf(line))->cc().isLineDead(line))
            continue;
        unsigned modified = 0;
        for (const auto &h : hs) {
            if (h.state == LineState::Modified)
                ++modified;
        }
        if (modified > 1) {
            panic("line %#llx has %u Modified copies",
                  (unsigned long long)line, modified);
        }
        if (modified == 1 && hs.size() > 1) {
            panic("line %#llx has a Modified copy alongside %zu "
                  "other copies", (unsigned long long)line,
                  hs.size() - 1);
        }
        // Directory must cover every remote holder.
        NodeId home = map_.homeOf(line);
        const DirEntry *e = nodes_.at(home)->directory().peek(line);
        for (const auto &h : hs) {
            if (h.node == home)
                continue;
            if (!e) {
                panic("line %#llx cached at node %u but never "
                      "entered the home directory",
                      (unsigned long long)line, h.node);
            }
            if (h.state == LineState::Modified) {
                if (e->state != DirState::DirtyRemote ||
                    e->owner != h.node) {
                    panic("line %#llx Modified at node %u but "
                          "directory says %s owner %u",
                          (unsigned long long)line, h.node,
                          dirStateName(e->state), e->owner);
                }
            } else if (e->state == DirState::SharedRemote) {
                if (!e->isSharer(h.node)) {
                    panic("line %#llx Shared at node %u but not in "
                          "the sharer bitmap",
                          (unsigned long long)line, h.node);
                }
            } else if (e->state == DirState::Home) {
                panic("line %#llx cached at remote node %u but "
                      "directory says Home",
                      (unsigned long long)line, h.node);
            } else if (e->state == DirState::DirtyRemote &&
                       e->owner != h.node) {
                panic("line %#llx Shared at node %u under foreign "
                      "owner %u", (unsigned long long)line, h.node,
                      e->owner);
            }
        }
        // All non-modified copies must agree with memory.
        if (modified == 0) {
            std::uint64_t mem_version =
                nodes_.at(home)->memory().version(line);
            for (const auto &h : hs) {
                if (h.version != mem_version) {
                    panic("line %#llx: node %u holds version %llu "
                          "but memory has %llu",
                          (unsigned long long)line, h.node,
                          (unsigned long long)h.version,
                          (unsigned long long)mem_version);
                }
            }
        }
    }
}

void
Machine::printStats(std::ostream &os)
{
    net_->syncStats();
    net_->statGroup().print(os);
    if (xport_) {
        xport_->syncStats();
        xport_->statGroup().print(os);
    }
    if (!tracers_.empty())
        tracers_[0]->statGroup().print(os);
    sync_->statGroup().print(os);
    for (auto &nd : nodes_) {
        nd->bus().statGroup().print(os);
        nd->memory().statGroup().print(os);
        nd->directory().statGroup().print(os);
        nd->cc().statGroup().print(os);
        for (unsigned i = 0; i < nd->numProcs(); ++i) {
            nd->proc(i).statGroup().print(os);
            nd->cacheUnit(i).statGroup().print(os);
        }
    }
}

} // namespace ccnuma
