#include "system/config.hh"

#include "sim/logging.hh"

namespace ccnuma
{

const char *
archName(Arch a)
{
    switch (a) {
      case Arch::HWC: return "HWC";
      case Arch::PPC: return "PPC";
      case Arch::TwoHWC: return "2HWC";
      case Arch::TwoPPC: return "2PPC";
    }
    return "?";
}

const char *
windowPolicyName(WindowPolicy p)
{
    switch (p) {
      case WindowPolicy::Conservative: return "conservative";
      case WindowPolicy::Adaptive: return "adaptive";
      case WindowPolicy::Speculative: return "speculative";
    }
    return "?";
}

MachineConfig
MachineConfig::base()
{
    MachineConfig c;
    c.numNodes = 16;
    c.node.procsPerNode = 4;
    // Table 1 defaults are encoded in the substructures' field
    // initializers (bus, memory, network, directory, caches).
    return c;
}

MachineConfig &
MachineConfig::withReliableTransport()
{
    reliable.enabled = true;
    // Bounded protocol retry: first re-attempt after 32 ticks,
    // doubling up to 8192, giving up (with a diagnostic) after 64
    // tries. 64 doublings capped at 8K ticks is far beyond any
    // transient condition the protocol can produce, so escalation
    // only fires on genuine livelock.
    node.cc.retry.backoffBase = 32;
    node.cc.retry.backoffMax = 8192;
    node.cc.retry.maxRetries = 64;
    return *this;
}

MachineConfig &
MachineConfig::withCrashRecovery()
{
    recovery.enabled = true;
    // A crashed controller drops undelivered frames on the floor and
    // relies on sender retransmission to replay them after restart.
    return withReliableTransport();
}

MachineConfig &
MachineConfig::withIntegrity()
{
    integrity.enabled = true;
    // Corruption-as-loss needs the CRC check on every frame, and a
    // directory UE escalates through the crash-recovery machinery.
    reliable.crc = true;
    return withCrashRecovery();
}

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
MachineConfig::validate() const
{
    if (numNodes == 0)
        fatal("config: numNodes is zero; a machine needs at least "
              "one node");
    if (node.procsPerNode == 0)
        fatal("config: procsPerNode is zero; each SMP node needs at "
              "least one processor");
    if (!isPow2(node.cache.lineBytes))
        fatal("config: cache line size %u is not a power of two",
              node.cache.lineBytes);
    if (node.bus.lineBytes != node.cache.lineBytes ||
        node.mem.lineBytes != node.cache.lineBytes ||
        node.dir.lineBytes != node.cache.lineBytes) {
        fatal("config: inconsistent line sizes (cache %u, bus %u, "
              "mem %u, dir %u); use withLineBytes() to change them "
              "together",
              node.cache.lineBytes, node.bus.lineBytes,
              node.mem.lineBytes, node.dir.lineBytes);
    }
    if (!isPow2(pageBytes))
        fatal("config: page size %u is not a power of two",
              pageBytes);
    if (pageBytes < node.cache.lineBytes)
        fatal("config: page size %u is smaller than the %u-byte "
              "cache line",
              pageBytes, node.cache.lineBytes);
    if (net.portWidthBytes == 0)
        fatal("config: network port width is zero bytes; nothing "
              "could ever be transferred");
    if (net.portCycle == 0)
        fatal("config: network port cycle is zero ticks");
    if (maxTicks == 0)
        fatal("config: maxTicks is zero; the watchdog would abort "
              "every run immediately");
    if (shards == 0)
        fatal("config: shards is zero; use 1 for the serial "
              "scheduler");
    if (numNodes % shards != 0)
        fatal("config: %u nodes cannot be split evenly over %u "
              "shards",
              numNodes, shards);
    if (reliable.enabled) {
        if (reliable.retransmitTimeout == 0)
            fatal("config: reliable transport enabled with a zero "
                  "retransmit timeout; every frame would retransmit "
                  "instantly");
        if (reliable.retransmitTimeoutMax < reliable.retransmitTimeout)
            fatal("config: reliable transport retransmit timeout cap "
                  "%llu is below the base timeout %llu",
                  static_cast<unsigned long long>(
                      reliable.retransmitTimeoutMax),
                  static_cast<unsigned long long>(
                      reliable.retransmitTimeout));
        if (reliable.reorderBufCap == 0)
            fatal("config: reliable transport reorder buffer capacity "
                  "is zero; no out-of-order frame could ever be held");
    }
    if (node.cc.retry.backoffBase != 0 &&
        node.cc.retry.backoffMax != 0 &&
        node.cc.retry.backoffMax < node.cc.retry.backoffBase) {
        fatal("config: retry backoff cap %llu is below the base "
              "delay %llu",
              static_cast<unsigned long long>(node.cc.retry.backoffMax),
              static_cast<unsigned long long>(
                  node.cc.retry.backoffBase));
    }
    if (!verify.faults.crashes.empty()) {
        if (!recovery.enabled)
            fatal("config: crash faults are listed but recovery is "
                  "disabled; call withCrashRecovery() (or set "
                  "CCNUMA_RECOVERY=1) so the machine can survive "
                  "them");
        if (!reliable.enabled)
            fatal("config: crash faults require the reliable "
                  "transport: a crashed controller fences its "
                  "receive side and depends on sender retransmission "
                  "to re-deliver dropped frames; use "
                  "withCrashRecovery() which enables both");
        for (const CrashFault &c : verify.faults.crashes) {
            if (c.node >= numNodes)
                fatal("config: crash fault targets node %u but the "
                      "machine has only %u nodes",
                      c.node, numNodes);
        }
    }
    if (integrity.enabled) {
        if (!reliable.enabled || !reliable.crc)
            fatal("config: integrity is enabled but the reliable "
                  "transport's CRC check is not; a corrupted frame "
                  "could only be detected as a loss, so use "
                  "withIntegrity() (or CCNUMA_INTEGRITY=1) which "
                  "enables both");
        if (integrity.scrubIntervalTicks == 0)
            fatal("config: integrity.scrubIntervalTicks is zero; a "
                  "latent correctable error would never be scrubbed");
    }
    if (!verify.faults.flips.empty()) {
        if (!integrity.enabled)
            fatal("config: bit-flip faults are listed but the "
                  "integrity subsystem is disabled; an injected flip "
                  "would be a guaranteed silent corruption, so call "
                  "withIntegrity() (or set CCNUMA_INTEGRITY=1) "
                  "first");
        for (const FlipFault &f : verify.faults.flips) {
            if (f.node >= numNodes)
                fatal("config: flip fault targets node %u but the "
                      "machine has only %u nodes",
                      f.node, numNodes);
            if (f.bits != 1 && f.bits != 2)
                fatal("config: flip fault flips %u bits; the SECDED "
                      "fault model covers 1 (correctable) or 2 "
                      "(uncorrectable)",
                      f.bits);
            if (f.bits == 2 && f.domain != FlipDomain::Message &&
                !recovery.enabled)
                fatal("config: an uncorrectable directory or cache "
                      "flip escalates through the crash-recovery "
                      "subsystem, which is disabled; use "
                      "withIntegrity() which enables it");
        }
    }
    if (recovery.enabled) {
        if (recovery.repairTicks == 0)
            fatal("config: recovery.repairTicks is zero; a crashed "
                  "controller would restart in the same tick it "
                  "died, making the crash a no-op");
        if (recovery.missTimeoutTicks != 0 && reliable.enabled &&
            recovery.missTimeoutTicks <= reliable.retransmitTimeoutMax)
            fatal("config: recovery.missTimeoutTicks %llu must exceed "
                  "the reliable transport's maximum retransmission "
                  "timeout %llu, or a slow-but-healthy home would be "
                  "escalated as dead while the transport is still "
                  "retrying",
                  static_cast<unsigned long long>(
                      recovery.missTimeoutTicks),
                  static_cast<unsigned long long>(
                      reliable.retransmitTimeoutMax));
        if (recovery.probeFanout > numNodes - 1)
            fatal("config: recovery.probeFanout %u exceeds the %u "
                  "peer nodes a recovering home could probe; use 0 "
                  "to probe all peers at once",
                  recovery.probeFanout, numNodes - 1);
    }
}

MachineConfig &
MachineConfig::withArch(Arch a)
{
    switch (a) {
      case Arch::HWC:
        node.cc.engineType = EngineType::HWC;
        node.cc.numEngines = 1;
        break;
      case Arch::PPC:
        node.cc.engineType = EngineType::PP;
        node.cc.numEngines = 1;
        break;
      case Arch::TwoHWC:
        node.cc.engineType = EngineType::HWC;
        node.cc.numEngines = 2;
        break;
      case Arch::TwoPPC:
        node.cc.engineType = EngineType::PP;
        node.cc.numEngines = 2;
        break;
    }
    return *this;
}

MachineConfig &
MachineConfig::withLineBytes(unsigned bytes)
{
    node.bus.lineBytes = bytes;
    node.mem.lineBytes = bytes;
    node.dir.lineBytes = bytes;
    node.cache.lineBytes = bytes;
    return *this;
}

MachineConfig &
MachineConfig::withNetworkLatency(Tick ticks)
{
    net.flightLatency = ticks;
    return *this;
}

MachineConfig &
MachineConfig::withProcsPerNode(unsigned ppn, unsigned total_procs)
{
    if (ppn == 0 || total_procs % ppn != 0)
        fatal("cannot split %u processors into nodes of %u",
              total_procs, ppn);
    node.procsPerNode = ppn;
    numNodes = total_procs / ppn;
    return *this;
}

} // namespace ccnuma
