#include "system/config.hh"

#include "sim/logging.hh"

namespace ccnuma
{

const char *
archName(Arch a)
{
    switch (a) {
      case Arch::HWC: return "HWC";
      case Arch::PPC: return "PPC";
      case Arch::TwoHWC: return "2HWC";
      case Arch::TwoPPC: return "2PPC";
    }
    return "?";
}

MachineConfig
MachineConfig::base()
{
    MachineConfig c;
    c.numNodes = 16;
    c.node.procsPerNode = 4;
    // Table 1 defaults are encoded in the substructures' field
    // initializers (bus, memory, network, directory, caches).
    return c;
}

MachineConfig &
MachineConfig::withArch(Arch a)
{
    switch (a) {
      case Arch::HWC:
        node.cc.engineType = EngineType::HWC;
        node.cc.numEngines = 1;
        break;
      case Arch::PPC:
        node.cc.engineType = EngineType::PP;
        node.cc.numEngines = 1;
        break;
      case Arch::TwoHWC:
        node.cc.engineType = EngineType::HWC;
        node.cc.numEngines = 2;
        break;
      case Arch::TwoPPC:
        node.cc.engineType = EngineType::PP;
        node.cc.numEngines = 2;
        break;
    }
    return *this;
}

MachineConfig &
MachineConfig::withLineBytes(unsigned bytes)
{
    node.bus.lineBytes = bytes;
    node.mem.lineBytes = bytes;
    node.dir.lineBytes = bytes;
    node.cache.lineBytes = bytes;
    return *this;
}

MachineConfig &
MachineConfig::withNetworkLatency(Tick ticks)
{
    net.flightLatency = ticks;
    return *this;
}

MachineConfig &
MachineConfig::withProcsPerNode(unsigned ppn, unsigned total_procs)
{
    if (ppn == 0 || total_procs % ppn != 0)
        fatal("cannot split %u processors into nodes of %u",
              total_procs, ppn);
    node.procsPerNode = ppn;
    numNodes = total_procs / ppn;
    return *this;
}

} // namespace ccnuma
