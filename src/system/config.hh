/**
 * @file
 * Whole-machine configuration, with named presets for the paper's
 * experimental configurations.
 */

#ifndef CCNUMA_SYSTEM_CONFIG_HH
#define CCNUMA_SYSTEM_CONFIG_HH

#include <string>

#include "net/network.hh"
#include "net/reliable.hh"
#include "node/smp_node.hh"
#include "obs/obs_config.hh"
#include "recovery/recovery_config.hh"
#include "verify/integrity_config.hh"
#include "verify/verify_config.hh"

namespace ccnuma
{

/** The four coherence controller architectures under study. */
enum class Arch
{
    HWC,    ///< one custom-hardware FSM
    PPC,    ///< one commodity protocol processor
    TwoHWC, ///< two FSMs (LPE/RPE)
    TwoPPC, ///< two protocol processors (LPE/RPE)
};

const char *archName(Arch a);

/**
 * How the sharded scheduler sizes its lookahead windows (PR 9).
 * Both policies are bit-identical to the serial scheduler — the
 * identity suite proves it — so this knob trades wall clock only and
 * is deliberately excluded from the canonical cache key, like the
 * shard count itself.
 */
enum class WindowPolicy
{
    /**
     * PR 5's lock-step windows: every shard runs the same
     * [t0, t0 + lookahead) span, with t0 the global earliest event.
     */
    Conservative,
    /**
     * Per-shard windows bounded by the *other* shards' event
     * horizons (plus any deferred sync operations): a shard whose
     * peers are idle or far ahead runs a wide window and skips the
     * barriers the conservative policy would have paid. Falls back
     * to the conservative span the moment cross-shard traffic can
     * exist. The default.
     */
    Adaptive,
    /**
     * Optimistic (Time-Warp) execution (PR 10): shards run past the
     * conservative bound, checkpointing on a common grid every
     * specCkptWindows lookahead windows; a straggler cross-shard
     * message rolls its destination back to the last safe
     * checkpoint, anti-messages cancel the squashed segment's
     * unobserved sends, and a frontier (GVT) sweep reclaims
     * committed checkpoints. Bit-identical to serial, like the
     * other two policies; every rollback/anti-message/squashed
     * event/checkpoint byte is counted in RunResult.
     */
    Speculative,
};

const char *windowPolicyName(WindowPolicy p);

/** Full machine configuration. */
struct MachineConfig
{
    unsigned numNodes = 16;
    NodeParams node;
    NetworkParams net;
    unsigned pageBytes = 4096;
    /**
     * Page placement: the paper's round-robin default, or the
     * first-touch-after-initialization policy it reports as slightly
     * inferior (load imbalance, memory/controller contention).
     */
    PlacementPolicy placement = PlacementPolicy::RoundRobin;
    Addr syncBase = 0x4000'0000;
    /**
     * Barrier/lock grant hand-off latency (ticks): every sync grant
     * reaches its processor this long after the triggering
     * operation, modeling the flag-propagation delay of a real
     * flag-based barrier. Also the ceiling of the sharded
     * scheduler's lookahead window, so it must stay at or below the
     * network's minimum latency for sharding to pay off.
     */
    Tick syncHandoffTicks = 16;
    /**
     * Event-queue shards for intra-machine parallel simulation
     * (PR 5). 1 = the classic serial scheduler; k > 1 partitions the
     * nodes over k queues advanced in lock-step conservative
     * windows, with results bit-identical to serial. numNodes must
     * divide evenly. The CCNUMA_SHARDS environment variable
     * overrides without a config change.
     */
    unsigned shards = 1;
    /**
     * Lookahead-window sizing for the sharded scheduler (PR 9);
     * ignored when shards == 1. Bit-identical either way, so this is
     * omitted from the canonical cache key alongside `shards`. The
     * CCNUMA_WINDOW environment variable
     * (conservative|adaptive|speculative) overrides without a config
     * change.
     */
    WindowPolicy windowPolicy = WindowPolicy::Adaptive;
    /**
     * Speculative horizon, in lookahead windows: each burst runs
     * every shard K windows past its base before the rollback
     * barrier. Larger values amortize barrier cost but deepen the
     * work lost per rollback. CCNUMA_SPEC_HORIZON overrides.
     */
    unsigned specHorizonWindows = 8;
    /**
     * Checkpoint spacing, in lookahead windows; must divide
     * specHorizonWindows so the grid lands on burst targets.
     * CCNUMA_SPEC_CKPT overrides.
     */
    unsigned specCkptWindows = 2;
    /**
     * Force the deferred (sharded-style) sync grant path in serial
     * runs, so a serial run can serve as a bit-identity oracle for
     * the sharded modes. CCNUMA_SYNC_DEFER overrides. Normal serial
     * runs keep the seed's zero-delay wakes.
     */
    bool forceSyncDefer = false;
    /** Simulation watchdog: abort if a run exceeds this many ticks. */
    Tick maxTicks = 4'000'000'000ull;
    /**
     * Verification subsystem (invariant checker, fault injector,
     * hang watchdog); everything off by default. The CCNUMA_VERIFY
     * environment variable (checker|watchdog|all|1) force-enables
     * the checker and/or watchdog without a config change.
     */
    VerifyConfig verify;

    /**
     * End-to-end message recovery (PR 2): reliable transport under
     * the protocol plus a bounded NACK-retry policy in the
     * controllers. Off by default so paper-fidelity timing is
     * unchanged; the CCNUMA_RELIABLE environment variable (1|on)
     * force-enables it without a config change.
     */
    ReliableParams reliable;

    /**
     * Fail-stop crash recovery (PR 6): controller restart, directory
     * reconstruction, the miss-timeout escalation ladder, and
     * degraded-mode page remapping. Off by default; crash faults are
     * listed in verify.faults.crashes and rejected by validate()
     * unless this is enabled together with the reliable transport.
     * The CCNUMA_RECOVERY environment variable (1|on) force-enables
     * it (implying the reliable transport) without a config change.
     */
    RecoveryConfig recovery;

    /**
     * End-to-end data integrity (PR 7): CRC-32 on transport frames,
     * SECDED ECC on directory entries and cache lines with a
     * background scrubber, and line poisoning for uncorrectable
     * errors. Off by default; bit flips are listed in
     * verify.faults.flips and rejected by validate() unless this is
     * enabled. The CCNUMA_INTEGRITY environment variable (1|on)
     * force-enables it (implying the reliable transport) without a
     * config change.
     */
    IntegrityConfig integrity;

    /**
     * Observability subsystem (per-request tracing, occupancy
     * timelines, Chrome-trace and metrics export); off by default so
     * paper-fidelity timing and output are untouched. The
     * CCNUMA_TRACE environment variable (1|on) force-enables it
     * without a config change; see obs/obs_config.hh for the
     * companion CCNUMA_TRACE_* tuning knobs.
     */
    ObsConfig obs;

    /**
     * The paper's base system: 16 nodes x 4 x 200 MHz processors,
     * 128-byte lines, 100 MHz 16-byte bus, 70 ns network.
     */
    static MachineConfig base();

    /**
     * Enable the reliable transport sublayer and switch the
     * controllers from the paper's immediate unbounded NACK retry to
     * a capped-exponential-backoff bounded policy (escalating to a
     * FatalError diagnostic instead of livelocking).
     */
    MachineConfig &withReliableTransport();

    /**
     * Enable the fail-stop crash-recovery subsystem. Implies
     * withReliableTransport(): a crashed controller fences its
     * receive side and relies on sender retransmission to re-deliver
     * what it dropped, so recovery without the transport is rejected
     * by validate().
     */
    MachineConfig &withCrashRecovery();

    /**
     * Enable the data-integrity subsystem: per-frame CRC-32 on the
     * reliable transport (implies withReliableTransport(): a
     * corrupted frame is discarded as a loss and re-delivered by
     * retransmission), SECDED ECC + scrubbing on directories and
     * caches, and line poisoning. Directory-UE escalation rebuilds
     * through the crash-recovery subsystem, so this implies
     * withCrashRecovery() too.
     */
    MachineConfig &withIntegrity();

    /**
     * Sanity-check the configuration, raising FatalError with an
     * actionable message on nonsense (zero nodes, non-power-of-two
     * line/page sizes, zero port width/cycle, ...). Machine's
     * constructor calls this before building anything.
     */
    void validate() const;

    /** Apply a coherence controller architecture. */
    MachineConfig &withArch(Arch a);

    /** Use @p bytes cache lines everywhere (Figure 7 uses 32). */
    MachineConfig &withLineBytes(unsigned bytes);

    /** Use a slow network (Figure 8 uses 1 us = 200 ticks). */
    MachineConfig &withNetworkLatency(Tick ticks);

    /**
     * Keep 64 processors total but change processors per node
     * (Figure 10: 1, 2, 4, 8).
     */
    MachineConfig &withProcsPerNode(unsigned ppn,
                                    unsigned total_procs = 64);

    unsigned totalProcs() const
    {
        return numNodes * node.procsPerNode;
    }
};

} // namespace ccnuma

#endif // CCNUMA_SYSTEM_CONFIG_HH
