/**
 * @file
 * The whole CC-NUMA machine: nodes, interconnect, synchronization,
 * and the run loop that executes a workload to completion and
 * collects the paper's measurement set (execution time, RCCPI,
 * occupancy, utilization, queuing delay, arrival rates).
 */

#ifndef CCNUMA_SYSTEM_MACHINE_HH
#define CCNUMA_SYSTEM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "system/config.hh"
#include "workload/workload.hh"

namespace ccnuma
{

class CoherenceChecker;
class FaultInjector;
class HangWatchdog;
class ReliableTransport;

namespace obs
{
class Tracer;
} // namespace obs

/** Measurements from one workload run (Table 6 inputs). */
struct RunResult
{
    std::string workload;
    std::string arch;
    Tick execTicks = 0;          ///< parallel-phase execution time
    std::uint64_t instructions = 0;
    std::uint64_t memRefs = 0;
    std::uint64_t misses = 0;
    std::uint64_t ccRequests = 0; ///< requests to all controllers
    Tick ccOccupancy = 0;         ///< engine-busy ticks, all ctrls
    double avgUtilization = 0.0;  ///< mean per-ctrl occupancy/time
    double avgQueueDelayTicks = 0.0;
    double arrivalsPerUs = 0.0;   ///< per controller per microsecond

    // --- recovery scorecard inputs (PR 2); zero unless faults
    // and/or the reliable transport are armed ---
    std::uint64_t faultsInjected = 0;   ///< drops + dups + reorders
    std::uint64_t xportRetransmits = 0;
    std::uint64_t xportTimeouts = 0;
    std::uint64_t xportDupsDropped = 0;
    std::uint64_t xportReordersHealed = 0;
    std::uint64_t xportAcks = 0;
    std::uint64_t nackRetries = 0;      ///< bounded-policy re-attempts
    Tick retryBackoffTicks = 0;         ///< ticks spent backing off
    bool completed = false;             ///< retired the full workload

    double
    rccpi() const
    {
        return instructions
                   ? static_cast<double>(ccRequests) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    double execNs() const { return ticksToNs(execTicks); }
};

/** The simulated machine. */
class Machine : public MsgRouter
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine() override;

    EventQueue &eq() { return eq_; }
    AddressMap &map() { return map_; }
    Network &network() { return net_; }
    SyncManager &sync() { return sync_; }
    const MachineConfig &config() const { return cfg_; }

    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodes_.size());
    }
    SmpNode &node(unsigned i) { return *nodes_.at(i); }

    unsigned totalProcs() const { return cfg_.totalProcs(); }
    Processor &proc(unsigned global);

    /** Monotonic data-version source for the invariant checker. */
    std::uint64_t nextVersion() { return ++versionCounter_; }

    // --- MsgRouter ---
    void deliverMsg(const Msg &msg) override;
    void onNetSend(Msg &msg) override;

    /** The online invariant checker (null unless enabled). */
    CoherenceChecker *checker() { return checker_.get(); }

    /** The fault injector (null unless faults are armed). */
    FaultInjector *injector() { return injector_.get(); }

    /** The reliable transport (null unless recovery is enabled). */
    ReliableTransport *transport() { return xport_.get(); }

    /** The observability tracer (null unless tracing is enabled). */
    obs::Tracer *tracer() { return tracer_.get(); }

    /** Write diagnostic state (controllers, queues, procs) to @p os. */
    void dumpDiagnostics(std::ostream &os);

    /**
     * Run @p w to completion (its thread count must equal
     * totalProcs()), drain in-flight protocol traffic, and collect
     * measurements.
     * @param check run the coherence invariant checker afterwards
     */
    RunResult run(Workload &w, bool check = false);

    /** Verify global coherence invariants; panics on violation. */
    void checkInvariants();

    /**
     * Discard all measurements collected so far (warm-up exclusion):
     * controller occupancy/arrival counters, component stat groups,
     * and — when tracing is enabled — the tracer's histograms, event
     * ring, and any open spans. Call between a warm-up run() phase
     * and the measured phase (e.g. via eq().scheduleFunction).
     */
    void resetStats();

    /** Dump all registered statistics. */
    void printStats(std::ostream &os);

  private:
    /** Fill the RunResult recovery counters from the live stats. */
    void fillRecoveryStats(RunResult &r);

    MachineConfig cfg_;
    EventQueue eq_;
    AddressMap map_;
    Network net_;
    SyncManager sync_;
    std::unique_ptr<ReliableTransport> xport_;
    std::vector<std::unique_ptr<SmpNode>> nodes_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<CoherenceChecker> checker_;
    std::unique_ptr<HangWatchdog> watchdog_;
    std::unique_ptr<obs::Tracer> tracer_;
    std::uint64_t versionCounter_ = 0;
    unsigned finishedProcs_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_SYSTEM_MACHINE_HH
