/**
 * @file
 * The whole CC-NUMA machine: nodes, interconnect, synchronization,
 * and the run loop that executes a workload to completion and
 * collects the paper's measurement set (execution time, RCCPI,
 * occupancy, utilization, queuing delay, arrival rates).
 */

#ifndef CCNUMA_SYSTEM_MACHINE_HH
#define CCNUMA_SYSTEM_MACHINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "system/config.hh"
#include "workload/workload.hh"

namespace ccnuma
{

class CoherenceChecker;
class FaultInjector;
class HangWatchdog;
class IntegrityManager;
class RecoveryManager;
class ReliableTransport;
class Snapshottable;

namespace obs
{
class Tracer;
} // namespace obs

/** Measurements from one workload run (Table 6 inputs). */
struct RunResult
{
    std::string workload;
    std::string arch;
    Tick execTicks = 0;          ///< parallel-phase execution time
    std::uint64_t instructions = 0;
    std::uint64_t memRefs = 0;
    std::uint64_t misses = 0;
    std::uint64_t ccRequests = 0; ///< requests to all controllers
    Tick ccOccupancy = 0;         ///< engine-busy ticks, all ctrls
    double avgUtilization = 0.0;  ///< mean per-ctrl occupancy/time
    double avgQueueDelayTicks = 0.0;
    double arrivalsPerUs = 0.0;   ///< per controller per microsecond

    // --- recovery scorecard inputs (PR 2); zero unless faults
    // and/or the reliable transport are armed ---
    std::uint64_t faultsInjected = 0;   ///< drops + dups + reorders
    std::uint64_t xportRetransmits = 0;
    std::uint64_t xportTimeouts = 0;
    std::uint64_t xportDupsDropped = 0;
    std::uint64_t xportReordersHealed = 0;
    std::uint64_t xportAcks = 0;
    std::uint64_t nackRetries = 0;      ///< bounded-policy re-attempts
    Tick retryBackoffTicks = 0;         ///< ticks spent backing off
    bool completed = false;             ///< retired the full workload

    // --- crash-recovery scorecard inputs (PR 6); zero unless the
    // recovery subsystem and/or crash faults are armed ---
    std::uint64_t crashesInjected = 0; ///< fail-stop controller kills
    std::uint64_t dirRebuilds = 0;     ///< DirProbe reconstructions
    std::uint64_t rebuildLines = 0;    ///< directory lines rebuilt
    Tick reconstructionTicksMax = 0;   ///< worst restart-to-rebuilt
    std::uint64_t recoveryNacks = 0;   ///< requests fenced off while
                                       ///< a home was rebuilding
    std::uint64_t missTimeouts = 0;    ///< per-miss timer expiries
    std::uint64_t timeoutResends = 0;  ///< ladder rung 1: re-sends
    std::uint64_t recoveryProbes = 0;  ///< ladder rung 2: probes
    std::uint64_t degradedEntries = 0; ///< ladder exhaustions
    std::uint64_t strayDrops = 0;      ///< stale responses dropped
    std::uint64_t migrations = 0;      ///< dead homes remapped

    // --- data-integrity scorecard inputs (PR 7); zero unless the
    // integrity subsystem and/or flip faults are armed. The ledger
    // must close: every applied corruption is accounted for by
    // exactly one defense, so escapedCorruptions stays zero. ---
    std::uint64_t flipsInjected = 0;   ///< corruptions applied
    std::uint64_t flipsSkipped = 0;    ///< armed, found no victim
    std::uint64_t crcChecked = 0;      ///< frames CRC-verified
    std::uint64_t crcDetected = 0;     ///< frames dropped by CRC
    std::uint64_t eccCorrected = 0;    ///< words fixed (access+scrub)
    std::uint64_t scrubCorrections = 0;///< subset fixed by scrubber
    std::uint64_t eccPendingDropped = 0;///< latent CEs voided by crash
    std::uint64_t poisonNacks = 0;     ///< bounces off dead lines
    std::uint64_t containedDiscards = 0;///< clean-UE silent discards
    std::uint64_t linesPoisoned = 0;   ///< dirty-UE dead lines
    std::uint64_t procsKilledPoison = 0;///< processors fenced dead
    std::uint64_t integrityEscalations = 0;///< directory-UE rebuilds
    /** applied − detected − corrected − contained − escalated. */
    std::int64_t escapedCorruptions = 0;

    // --- sharded-scheduler accounting (PR 5) ---
    unsigned shardsRequested = 1; ///< config (or CCNUMA_SHARDS) value
    unsigned shardsUsed = 1;      ///< after any serial fallback
    /** Non-empty iff the machine fell back to the serial scheduler. */
    std::string shardFallback;

    // --- window-policy accounting (PR 9); like the shard counts,
    // execution-strategy metadata excluded from resultsIdentical().
    // Counters are zero when shardsUsed == 1. ---
    /** "serial", "conservative", or "adaptive" (effective policy). */
    std::string windowPolicy;
    std::uint64_t windowsRun = 0;     ///< lock-step windows executed
    /** Windows where at least one shard ran past the conservative
     *  end (counted, never silent — same rule as shard fallbacks). */
    std::uint64_t windowsWidened = 0;
    /** Adaptive windows forced back to the conservative floor by
     *  cross-shard traffic or deferred sync operations. */
    std::uint64_t windowFallbacks = 0;
    /** Windows cut short early by a sync post's self-grant clamp. */
    std::uint64_t syncWindowStops = 0;

    // --- speculative (Time-Warp) accounting (PR 10); zero unless the
    // speculative policy ran. Execution-strategy metadata like the
    // other window fields: excluded from resultsIdentical(), because
    // speculative runs are bit-identical to serial in everything
    // above this block. Counted, never silent. ---
    /** Non-empty iff speculative was requested but demoted (and to
     *  what the reason was); the effective policy is windowPolicy. */
    std::string windowPolicyFallback;
    /** Shard segments squashed by a straggler (rollback episodes). */
    std::uint64_t rollbacks = 0;
    /** Cross-shard sends and sync posts cancelled by rollbacks. */
    std::uint64_t antiMessages = 0;
    /** Events whose effects were undone and later re-executed. */
    std::uint64_t squashedEvents = 0;
    /** Total footprint of all checkpoints taken (bytes). */
    std::uint64_t checkpointBytes = 0;
    /** Frontier (GVT) commits: bursts whose prefix was reclaimed. */
    std::uint64_t gvtSweeps = 0;

    double
    rccpi() const
    {
        return instructions
                   ? static_cast<double>(ccRequests) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    double execNs() const { return ticksToNs(execTicks); }
};

/** The simulated machine. */
class Machine : public MsgRouter
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine() override;

    /** Shard 0's queue: THE queue when running serially. */
    EventQueue &eq() { return *queues_[0]; }
    AddressMap &map() { return map_; }
    Network &network() { return *net_; }
    SyncManager &sync() { return *sync_; }
    const MachineConfig &config() const { return cfg_; }

    /** Node-to-queue routing and context numbering. */
    const ShardMap &shardMap() const { return shardMap_; }

    /** Shards actually in use (1 after a serial fallback). */
    unsigned shardsUsed() const { return shardMap_.numShards; }

    /** Why the machine fell back to serial ("" if it did not). */
    const std::string &shardFallbackReason() const
    {
        return fallbackReason_;
    }

    /** The conservative lookahead window (ticks; 0 when serial). */
    Tick lookahead() const { return lookahead_; }

    /** The effective window policy (conservative under a watchdog). */
    WindowPolicy windowPolicy() const
    {
        if (specActive_)
            return WindowPolicy::Speculative;
        return adaptiveActive_ ? WindowPolicy::Adaptive
                               : WindowPolicy::Conservative;
    }

    /** Why speculative execution was demoted ("" if it was not). */
    const std::string &specFallbackReason() const
    {
        return specFallback_;
    }

    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodes_.size());
    }
    SmpNode &node(unsigned i) { return *nodes_.at(i); }

    unsigned totalProcs() const { return cfg_.totalProcs(); }
    Processor &proc(unsigned global);

    /**
     * Monotonic data-version source for the invariant checker.
     * Atomic: shard threads stamp concurrently. Values are not part
     * of any deterministic output; per-line monotonicity still holds
     * under sharding because successive writers of one line are
     * separated by at least a network flight, hence by a window
     * barrier.
     */
    std::uint64_t
    nextVersion()
    {
        return versionCounter_.fetch_add(1,
                                         std::memory_order_relaxed) +
               1;
    }

    // --- MsgRouter ---
    void deliverMsg(const Msg &msg) override;
    void onNetSend(Msg &msg) override;

    /** The online invariant checker (null unless enabled). */
    CoherenceChecker *checker() { return checker_.get(); }

    /** The fault injector (null unless faults are armed). */
    FaultInjector *injector() { return injector_.get(); }

    /** The reliable transport (null unless recovery is enabled). */
    ReliableTransport *transport() { return xport_.get(); }

    /** The crash-recovery manager (null unless crash recovery is on). */
    RecoveryManager *recoveryManager() { return recovery_.get(); }

    /** The data-integrity manager (null unless integrity is on). */
    IntegrityManager *integrityManager() { return integrity_.get(); }

    /**
     * The observability tracer (null unless tracing is enabled).
     * Sharded runs keep one tracer per shard; this is shard 0's, the
     * one the end-of-run merge folds the others into.
     */
    obs::Tracer *tracer()
    {
        return tracers_.empty() ? nullptr : tracers_[0].get();
    }

    /** Write diagnostic state (controllers, queues, procs) to @p os. */
    void dumpDiagnostics(std::ostream &os);

    /**
     * Run @p w to completion (its thread count must equal
     * totalProcs()), drain in-flight protocol traffic, and collect
     * measurements.
     * @param check run the coherence invariant checker afterwards
     */
    RunResult run(Workload &w, bool check = false);

    /** Verify global coherence invariants; panics on violation. */
    void checkInvariants();

    /**
     * Discard all measurements collected so far (warm-up exclusion):
     * controller occupancy/arrival counters, component stat groups,
     * and — when tracing is enabled — the tracer's histograms, event
     * ring, and any open spans. Call between a warm-up run() phase
     * and the measured phase (e.g. via eq().scheduleFunction).
     */
    void resetStats();

    /** Dump all registered statistics. */
    void printStats(std::ostream &os);

  private:
    /** Fill the RunResult recovery counters from the live stats. */
    void fillRecoveryStats(RunResult &r);

    /** Max curTick over the shard queues (diagnostics/exports). */
    Tick now() const;

    /**
     * Advance lock-step windows until @p done holds at a barrier,
     * every queue drains, or the earliest pending event lies beyond
     * @p limit. Conservative policy: every shard runs the same
     * [t0, t0 + lookahead) span. Adaptive policy: each shard's end is
     * bounded by the other shards' earliest events and any deferred
     * sync operations, widening up to the limit when peers are
     * provably quiet (see DESIGN.md §19 for the proof sketch).
     * @return true iff @p done became true.
     */
    bool runWindows(const std::function<bool()> &done, Tick limit);

    /** Window-barrier bookkeeping (mailboxes, sync, tracing). */
    void windowBarrier(Tick window_end);

    /**
     * Speculative (Time-Warp) burst loop: every shard runs up to
     * specHorizonWindows lookahead windows past the burst base,
     * checkpointing on a common grid every specCkptWindows windows;
     * the barrier computes the committable frontier F (straggler
     * cross-shard arrivals and the earliest pending sync grant bound
     * it), rolls every shard back to its checkpoint at F, cancels the
     * squashed segments' unobserved sends (anti-messages), delivers
     * the committed mail, and reclaims the burst's checkpoints. Same
     * contract as runWindows; results are bit-identical to serial.
     */
    bool runSpeculative(const std::function<bool()> &done, Tick limit);

    /** Fold the sharded tracers into tracer 0 (no-op when serial). */
    void mergeTracers();

    MachineConfig cfg_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    ShardMap shardMap_;
    std::unique_ptr<ShardTeam> team_;
    AddressMap map_;
    std::unique_ptr<Network> net_;
    std::unique_ptr<SyncManager> sync_;
    std::unique_ptr<ReliableTransport> xport_;
    std::vector<std::unique_ptr<SmpNode>> nodes_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<CoherenceChecker> checker_;
    std::unique_ptr<RecoveryManager> recovery_;
    std::unique_ptr<IntegrityManager> integrity_;
    std::unique_ptr<HangWatchdog> watchdog_;
    /** One per shard; merged into [0] at the end of a sharded run. */
    std::vector<std::unique_ptr<obs::Tracer>> tracers_;
    /** Per-shard logs of delivered msgs awaiting cross-shard note. */
    std::vector<std::vector<Msg>> pendingNotes_;
    std::atomic<std::uint64_t> versionCounter_{0};
    std::atomic<unsigned> finishedProcs_{0};
    /** Serial-mode finished count: plain, no atomic traffic in the
     *  single-queue fast loop. */
    unsigned finishedSerial_ = 0;
    Tick lookahead_ = 0;
    unsigned shardsRequested_ = 1;
    std::string fallbackReason_;
    /** Adaptive windows in effect (sharded, policy adaptive, and no
     *  watchdog — the watchdog polls only at conservative barriers). */
    bool adaptiveActive_ = false;
    std::uint64_t windowsRun_ = 0;
    std::uint64_t windowsWidened_ = 0;
    std::uint64_t windowFallbacks_ = 0;

    // --- speculative (Time-Warp) execution (PR 10) ---
    /** Speculative bursts in effect (sharded, policy speculative,
     *  and none of the demoting subsystems armed). */
    bool specActive_ = false;
    /** Why speculative was demoted ("" if it was not). */
    std::string specFallback_;
    /** Per-shard checkpointable components (nodes' buses, memory and
     *  directory controllers, CCs, cache units, processors). */
    std::vector<std::vector<Snapshottable *>> specComps_;
    /** Per-shard stats, flattened for checkpoint value snapshots. */
    std::vector<std::vector<stats::Stat *>> specStats_;
    std::uint64_t rollbacks_ = 0;
    std::uint64_t antiMessages_ = 0;
    std::uint64_t squashedEvents_ = 0;
    std::uint64_t checkpointBytes_ = 0;
    std::uint64_t gvtSweeps_ = 0;
};

} // namespace ccnuma

#endif // CCNUMA_SYSTEM_MACHINE_HH
