file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_coherence.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_coherence.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_latency.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_latency.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_machine.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_machine.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_smoke.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_smoke.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_workload_runs.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_workload_runs.cc.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
