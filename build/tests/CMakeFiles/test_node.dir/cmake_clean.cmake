file(REMOVE_RECURSE
  "CMakeFiles/test_node.dir/node/test_cache_unit.cc.o"
  "CMakeFiles/test_node.dir/node/test_cache_unit.cc.o.d"
  "CMakeFiles/test_node.dir/node/test_op_stream.cc.o"
  "CMakeFiles/test_node.dir/node/test_op_stream.cc.o.d"
  "CMakeFiles/test_node.dir/node/test_processor.cc.o"
  "CMakeFiles/test_node.dir/node/test_processor.cc.o.d"
  "CMakeFiles/test_node.dir/node/test_sync.cc.o"
  "CMakeFiles/test_node.dir/node/test_sync.cc.o.d"
  "test_node"
  "test_node.pdb"
  "test_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
