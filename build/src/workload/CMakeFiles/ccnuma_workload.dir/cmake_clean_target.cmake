file(REMOVE_RECURSE
  "libccnuma_workload.a"
)
