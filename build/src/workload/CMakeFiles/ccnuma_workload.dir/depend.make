# Empty dependencies file for ccnuma_workload.
# This may be replaced when dependencies are built.
