
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/barnes.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/barnes.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/barnes.cc.o.d"
  "/root/repo/src/workload/cholesky.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/cholesky.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/cholesky.cc.o.d"
  "/root/repo/src/workload/fft.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/fft.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/fft.cc.o.d"
  "/root/repo/src/workload/lu.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/lu.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/lu.cc.o.d"
  "/root/repo/src/workload/ocean.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/ocean.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/ocean.cc.o.d"
  "/root/repo/src/workload/radix.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/radix.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/radix.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/water.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/water.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/water.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/ccnuma_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/ccnuma_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccnuma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ccnuma_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
