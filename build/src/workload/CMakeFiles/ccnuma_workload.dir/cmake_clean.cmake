file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_workload.dir/barnes.cc.o"
  "CMakeFiles/ccnuma_workload.dir/barnes.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/cholesky.cc.o"
  "CMakeFiles/ccnuma_workload.dir/cholesky.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/fft.cc.o"
  "CMakeFiles/ccnuma_workload.dir/fft.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/lu.cc.o"
  "CMakeFiles/ccnuma_workload.dir/lu.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/ocean.cc.o"
  "CMakeFiles/ccnuma_workload.dir/ocean.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/radix.cc.o"
  "CMakeFiles/ccnuma_workload.dir/radix.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/synthetic.cc.o"
  "CMakeFiles/ccnuma_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/trace.cc.o"
  "CMakeFiles/ccnuma_workload.dir/trace.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/water.cc.o"
  "CMakeFiles/ccnuma_workload.dir/water.cc.o.d"
  "CMakeFiles/ccnuma_workload.dir/workload.cc.o"
  "CMakeFiles/ccnuma_workload.dir/workload.cc.o.d"
  "libccnuma_workload.a"
  "libccnuma_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
