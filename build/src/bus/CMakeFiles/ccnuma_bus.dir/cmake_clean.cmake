file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_bus.dir/bus.cc.o"
  "CMakeFiles/ccnuma_bus.dir/bus.cc.o.d"
  "libccnuma_bus.a"
  "libccnuma_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
