file(REMOVE_RECURSE
  "libccnuma_bus.a"
)
