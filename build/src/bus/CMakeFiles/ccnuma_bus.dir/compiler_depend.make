# Empty compiler generated dependencies file for ccnuma_bus.
# This may be replaced when dependencies are built.
