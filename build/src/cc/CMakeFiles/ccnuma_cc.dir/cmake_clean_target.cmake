file(REMOVE_RECURSE
  "libccnuma_cc.a"
)
