# Empty compiler generated dependencies file for ccnuma_cc.
# This may be replaced when dependencies are built.
