file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_cc.dir/coherence_controller.cc.o"
  "CMakeFiles/ccnuma_cc.dir/coherence_controller.cc.o.d"
  "libccnuma_cc.a"
  "libccnuma_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
