# Empty compiler generated dependencies file for ccnuma_sim.
# This may be replaced when dependencies are built.
