file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_sim.dir/event_queue.cc.o"
  "CMakeFiles/ccnuma_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ccnuma_sim.dir/logging.cc.o"
  "CMakeFiles/ccnuma_sim.dir/logging.cc.o.d"
  "CMakeFiles/ccnuma_sim.dir/stats.cc.o"
  "CMakeFiles/ccnuma_sim.dir/stats.cc.o.d"
  "libccnuma_sim.a"
  "libccnuma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
