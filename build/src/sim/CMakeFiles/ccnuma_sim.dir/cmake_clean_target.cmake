file(REMOVE_RECURSE
  "libccnuma_sim.a"
)
