file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_report.dir/table.cc.o"
  "CMakeFiles/ccnuma_report.dir/table.cc.o.d"
  "libccnuma_report.a"
  "libccnuma_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
