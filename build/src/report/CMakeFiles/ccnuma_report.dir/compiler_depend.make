# Empty compiler generated dependencies file for ccnuma_report.
# This may be replaced when dependencies are built.
