file(REMOVE_RECURSE
  "libccnuma_report.a"
)
