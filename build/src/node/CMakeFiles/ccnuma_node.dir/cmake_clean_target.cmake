file(REMOVE_RECURSE
  "libccnuma_node.a"
)
