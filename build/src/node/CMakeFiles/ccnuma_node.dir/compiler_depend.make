# Empty compiler generated dependencies file for ccnuma_node.
# This may be replaced when dependencies are built.
