file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_node.dir/cache_unit.cc.o"
  "CMakeFiles/ccnuma_node.dir/cache_unit.cc.o.d"
  "CMakeFiles/ccnuma_node.dir/processor.cc.o"
  "CMakeFiles/ccnuma_node.dir/processor.cc.o.d"
  "CMakeFiles/ccnuma_node.dir/smp_node.cc.o"
  "CMakeFiles/ccnuma_node.dir/smp_node.cc.o.d"
  "CMakeFiles/ccnuma_node.dir/sync.cc.o"
  "CMakeFiles/ccnuma_node.dir/sync.cc.o.d"
  "libccnuma_node.a"
  "libccnuma_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
