file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_mem.dir/cache.cc.o"
  "CMakeFiles/ccnuma_mem.dir/cache.cc.o.d"
  "CMakeFiles/ccnuma_mem.dir/memory_controller.cc.o"
  "CMakeFiles/ccnuma_mem.dir/memory_controller.cc.o.d"
  "libccnuma_mem.a"
  "libccnuma_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
