file(REMOVE_RECURSE
  "libccnuma_mem.a"
)
