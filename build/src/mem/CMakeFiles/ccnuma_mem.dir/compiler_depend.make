# Empty compiler generated dependencies file for ccnuma_mem.
# This may be replaced when dependencies are built.
