# Empty compiler generated dependencies file for ccnuma_net.
# This may be replaced when dependencies are built.
