file(REMOVE_RECURSE
  "libccnuma_net.a"
)
