file(REMOVE_RECURSE
  "CMakeFiles/ccnuma_net.dir/network.cc.o"
  "CMakeFiles/ccnuma_net.dir/network.cc.o.d"
  "libccnuma_net.a"
  "libccnuma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
